import pytest

from repro.coherence.inc import InterNodeCache
from repro.common.errors import ConfigError
from repro.common.units import MB


class TestGeometry:
    def test_default_is_seven_way(self):
        inc = InterNodeCache(1 * MB)
        assert inc.ways == 7
        assert inc.num_sets == 4096
        assert inc.data_capacity_bytes == 4096 * 7 * 32

    def test_rejects_bad_reservation(self):
        with pytest.raises(ConfigError):
            InterNodeCache(100)


class TestBehaviour:
    def test_probe_miss_then_install_then_hit(self):
        inc = InterNodeCache(1 * MB)
        assert not inc.probe(0x1000)
        inc.install(0x1000)
        assert inc.probe(0x1000)
        assert inc.hit_rate == 0.5

    def test_seven_aliases_coexist_eighth_evicts(self):
        inc = InterNodeCache(1 * MB)
        stride = inc.num_sets * 32  # same set each time
        evicted = []
        inc._on_evict = evicted.append
        for i in range(8):
            inc.install(i * stride)
        assert evicted == [0]
        assert not inc.contains(0)
        assert all(inc.contains(i * stride) for i in range(1, 8))

    def test_lru_within_set(self):
        inc = InterNodeCache(1 * MB)
        stride = inc.num_sets * 32
        for i in range(7):
            inc.install(i * stride)
        inc.probe(0)  # make block 0 MRU
        inc.install(7 * stride)  # evicts block 1 (stride)
        assert inc.contains(0)
        assert not inc.contains(stride)

    def test_invalidate(self):
        inc = InterNodeCache(1 * MB)
        inc.install(0x40)
        inc.invalidate(0x40)
        assert not inc.contains(0x40)

    def test_install_is_idempotent(self):
        inc = InterNodeCache(1 * MB)
        inc.install(0x40)
        inc.install(0x40)
        assert inc.installs == 1

    def test_reset(self):
        inc = InterNodeCache(1 * MB)
        inc.install(0x40)
        inc.probe(0x40)
        inc.reset()
        assert inc.probes == 0
        assert not inc.contains(0x40)
