import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ProtocolError
from repro.coherence.protocol import BlockEntry, BlockState, Directory


class TestBlockEntry:
    def test_default_is_unowned(self):
        entry = BlockEntry()
        entry.check()
        assert entry.state is BlockState.UNOWNED

    def test_invariant_violations_detected(self):
        with pytest.raises(ProtocolError):
            BlockEntry(state=BlockState.UNOWNED, sharers={1}).check()
        with pytest.raises(ProtocolError):
            BlockEntry(state=BlockState.SHARED, sharers=set()).check()
        with pytest.raises(ProtocolError):
            BlockEntry(state=BlockState.EXCLUSIVE, owner=None).check()
        with pytest.raises(ProtocolError):
            BlockEntry(state=BlockState.EXCLUSIVE, owner=1, sharers={2}).check()


class TestDirectoryTransitions:
    def test_remote_read_adds_sharer(self):
        directory = Directory()
        directory.record_read(0x100, requester=2, home=0)
        entry = directory.entry(0x100)
        assert entry.state is BlockState.SHARED
        assert entry.sharers == {2}

    def test_home_read_leaves_unowned(self):
        directory = Directory()
        directory.record_read(0x100, requester=0, home=0)
        assert directory.entry(0x100).state is BlockState.UNOWNED

    def test_remote_write_takes_exclusive(self):
        directory = Directory()
        directory.record_read(0x100, requester=1, home=0)
        directory.record_read(0x100, requester=2, home=0)
        victims = directory.record_write(0x100, requester=3, home=0)
        assert victims == {1, 2}
        entry = directory.entry(0x100)
        assert entry.state is BlockState.EXCLUSIVE
        assert entry.owner == 3

    def test_home_write_invalidates_and_returns_to_memory(self):
        directory = Directory()
        directory.record_read(0x100, requester=1, home=0)
        victims = directory.record_write(0x100, requester=0, home=0)
        assert victims == {1}
        assert directory.entry(0x100).state is BlockState.UNOWNED

    def test_read_of_exclusive_block_recalls(self):
        directory = Directory()
        directory.record_write(0x100, requester=1, home=0)
        directory.record_read(0x100, requester=2, home=0)
        entry = directory.entry(0x100)
        assert entry.state is BlockState.SHARED
        assert entry.sharers == {1, 2}
        assert directory.stats.recalls == 1
        assert directory.stats.writebacks == 1

    def test_owner_rewrite_has_no_victims(self):
        directory = Directory()
        directory.record_write(0x100, requester=1, home=0)
        assert directory.record_write(0x100, requester=1, home=0) == set()

    def test_eviction_of_shared_copy(self):
        directory = Directory()
        directory.record_read(0x100, requester=1, home=0)
        directory.record_read(0x100, requester=2, home=0)
        directory.record_eviction(0x100, node=1)
        assert directory.entry(0x100).sharers == {2}
        directory.record_eviction(0x100, node=2)
        assert directory.entry(0x100).state is BlockState.UNOWNED

    def test_eviction_of_exclusive_writes_back(self):
        directory = Directory()
        directory.record_write(0x100, requester=1, home=0)
        directory.record_eviction(0x100, node=1)
        assert directory.entry(0x100).state is BlockState.UNOWNED
        assert directory.stats.writebacks == 1

    def test_block_granularity_is_32_bytes(self):
        directory = Directory()
        directory.record_read(0x100, requester=1, home=0)
        assert directory.entry(0x11F).sharers == {1}
        assert directory.entry(0x120).sharers == set()

    def test_helper_predicates(self):
        directory = Directory()
        directory.record_write(0x100, requester=1, home=0)
        assert directory.is_remote_exclusive(0x100, node=0)
        assert not directory.is_remote_exclusive(0x100, node=1)
        assert directory.is_owner(0x100, node=1)


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.booleans(),  # write?
            st.integers(0, 3),  # requester
            st.sampled_from([0x0, 0x20, 0x40]),  # block
        ),
        max_size=60,
    )
)
def test_single_writer_multiple_readers_invariant(ops):
    """After every operation the directory satisfies SWMR, and the
    entry invariants hold (check() raises otherwise)."""
    directory = Directory()
    holders: dict[int, set[int]] = {}  # block -> nodes with valid copies
    for write, requester, block in ops:
        home = 0
        if write:
            victims = directory.record_write(block, requester, home)
            held = holders.setdefault(block, set())
            held -= victims
            held.discard(requester)
            if requester != home:
                held.add(requester)
            # Writer is the only remote copy-holder after a write.
            assert held <= {requester}
        else:
            directory.record_read(block, requester, home)
            if requester != home:
                holders.setdefault(block, set()).add(requester)
        entry = directory.entry(block)
        entry.check()
        if entry.state is BlockState.EXCLUSIVE:
            assert len(entry.sharers) == 0


class TestConfiguredNodeCount:
    """With ``num_nodes`` configured, node ids are validated everywhere."""

    def test_requester_out_of_range_rejected(self):
        directory = Directory(num_nodes=4)
        with pytest.raises(ProtocolError, match=r"requester 7 out of range"):
            directory.record_read(0x100, requester=7, home=0)
        with pytest.raises(ProtocolError, match=r"requester 4 out of range"):
            directory.record_write(0x100, requester=4, home=0)

    def test_home_out_of_range_rejected(self):
        directory = Directory(num_nodes=2)
        with pytest.raises(ProtocolError, match=r"home 5 out of range"):
            directory.record_read(0x100, requester=1, home=5)

    def test_eviction_by_unknown_node_rejected(self):
        directory = Directory(num_nodes=2)
        with pytest.raises(ProtocolError, match=r"evicting node 3"):
            directory.record_eviction(0x100, node=3)

    def test_negative_node_rejected_even_unconfigured(self):
        directory = Directory()
        with pytest.raises(ProtocolError, match=r"requester -1"):
            directory.record_read(0x100, requester=-1, home=0)

    def test_error_names_the_block_address(self):
        directory = Directory(num_nodes=2)
        with pytest.raises(ProtocolError, match=r"at block 0x140"):
            directory.record_write(0x145, requester=9, home=0)

    def test_entry_check_bounds_owner_and_sharers(self):
        entry = BlockEntry(state=BlockState.EXCLUSIVE, owner=12)
        entry.check()  # arbitrary int still fine when size unknown
        with pytest.raises(ProtocolError, match=r"node id\(s\) \[12\].*4-node"):
            entry.check(num_nodes=4)
        shared = BlockEntry(state=BlockState.SHARED, sharers={1, 5, 9})
        with pytest.raises(ProtocolError, match=r"\[5, 9\]"):
            shared.check(num_nodes=4, addr=0x20)
        with pytest.raises(ProtocolError, match=r"negative node id"):
            BlockEntry(state=BlockState.SHARED, sharers={-2}).check()

    def test_in_range_ids_accepted(self):
        directory = Directory(num_nodes=4)
        directory.record_read(0x100, requester=3, home=0)
        victims = directory.record_write(0x100, requester=1, home=0)
        assert victims == {3}

    def test_nonpositive_num_nodes_rejected(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            Directory(num_nodes=0)
