import pytest

from repro.coherence.engines import DEFAULT_SERVICE_CYCLES, engine_report
from repro.common.errors import ConfigError
from repro.interconnect.fabric import FabricStats, MessageType


def _stats(**counts) -> FabricStats:
    stats = FabricStats()
    for name, count in counts.items():
        stats.record(MessageType[name.upper()], count)
    return stats


class TestEngineReport:
    def test_idle_run(self):
        report = engine_report(FabricStats(), elapsed_cycles=1000, num_nodes=4)
        assert report.outbound_occupancy == 0.0
        assert report.inbound_occupancy == 0.0
        assert not report.saturated

    def test_occupancy_scales_with_traffic(self):
        light = engine_report(_stats(read_request=10, read_reply=10),
                              elapsed_cycles=10_000, num_nodes=2)
        heavy = engine_report(_stats(read_request=1000, read_reply=1000),
                              elapsed_cycles=10_000, num_nodes=2)
        assert heavy.outbound_occupancy > light.outbound_occupancy

    def test_saturation_detected(self):
        report = engine_report(
            _stats(read_request=10_000, read_reply=10_000),
            elapsed_cycles=10_000,
            num_nodes=1,
        )
        assert report.saturated
        assert report.outbound_occupancy == 1.0  # clamped

    def test_table6_traffic_levels_leave_engines_unsaturated(self):
        """The Table 6 latencies assume the engines never queue; a typical
        SPLASH run's traffic should keep occupancy low."""
        from repro.mp.system import MPSystem, SystemKind
        from repro.mp.engine import MPEngine
        from repro.workloads.splash import OceanKernel

        kernel = OceanKernel(n=18, iterations=3)
        system = MPSystem(4, SystemKind.INTEGRATED)
        result = MPEngine(system).run(kernel.build(4, system.layout))
        report = engine_report(
            system.fabric.stats, result.execution_time, system.num_nodes
        )
        assert not report.saturated

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigError):
            engine_report(FabricStats(), elapsed_cycles=0, num_nodes=2)

    def test_all_message_types_priced(self):
        assert set(DEFAULT_SERVICE_CYCLES) == set(MessageType)
