import pytest

from repro.common.errors import ConfigError
from repro.common.units import KB, MB
from repro.machines.models import (
    CacheLevel,
    MachineModel,
    integrated_device,
    sparcstation_5,
    sparcstation_10,
)


class TestValidation:
    def test_rejects_zero_clock(self):
        with pytest.raises(ConfigError):
            MachineModel("m", 0.0, 1.0, (CacheLevel(8 * KB, 32, 10.0),))

    def test_rejects_no_levels(self):
        with pytest.raises(ConfigError):
            MachineModel("m", 100.0, 1.0, ())

    def test_rejects_shrinking_levels(self):
        with pytest.raises(ConfigError):
            MachineModel(
                "m", 100.0, 1.0,
                (CacheLevel(64 * KB, 32, 10.0), CacheLevel(8 * KB, 32, 20.0)),
            )

    def test_rejects_bad_level(self):
        with pytest.raises(ConfigError):
            CacheLevel(0, 32, 10.0)


class TestAccessTime:
    def test_fits_first_level(self):
        ss10 = sparcstation_10()
        assert ss10.access_time_ns(8 * KB, 64) == ss10.levels[0].latency_ns

    def test_fits_second_level(self):
        ss10 = sparcstation_10()
        mid = ss10.access_time_ns(256 * KB, 4096)
        assert ss10.levels[0].latency_ns < mid <= (
            ss10.levels[0].latency_ns + ss10.levels[1].latency_ns
        )

    def test_overflows_everything(self):
        ss10 = sparcstation_10()
        far = ss10.access_time_ns(32 * MB, 4096)
        assert far > ss10.memory_latency_ns

    def test_small_stride_amortizes_misses(self):
        ss5 = sparcstation_5()
        dense = ss5.access_time_ns(32 * MB, 4)
        sparse = ss5.access_time_ns(32 * MB, 4096)
        assert dense < sparse

    def test_rejects_zero_stride(self):
        with pytest.raises(ConfigError):
            sparcstation_5().access_time_ns(1024, 0)


class TestPaperSection2Claims:
    def test_ss5_has_lower_memory_latency(self):
        # The integrated memory controller gives the SS-5 the lower
        # main-memory latency (the whole point of Figure 2).
        assert sparcstation_5().memory_latency_ns < sparcstation_10().memory_latency_ns

    def test_ss10_wins_in_l2_region(self):
        ss5, ss10 = sparcstation_5(), sparcstation_10()
        assert ss10.access_time_ns(512 * KB, 4096) < ss5.access_time_ns(512 * KB, 4096)

    def test_ss5_wins_beyond_l2(self):
        ss5, ss10 = sparcstation_5(), sparcstation_10()
        assert ss5.access_time_ns(8 * MB, 4096) < ss10.access_time_ns(8 * MB, 4096)

    def test_integrated_device_has_lowest_memory_latency(self):
        assert integrated_device().memory_latency_ns == 30.0


class TestRuntimeModel:
    def test_runtime_scales_with_instructions(self):
        ss5 = sparcstation_5()
        t1 = ss5.runtime_seconds(1e9, (0.02,))
        t2 = ss5.runtime_seconds(2e9, (0.02,))
        assert t2 == pytest.approx(2 * t1)

    def test_misses_increase_runtime(self):
        ss5 = sparcstation_5()
        assert ss5.runtime_seconds(1e9, (0.10,)) > ss5.runtime_seconds(1e9, (0.01,))

    def test_wrong_miss_rate_arity_rejected(self):
        with pytest.raises(ConfigError):
            sparcstation_10().runtime_seconds(1e9, (0.02,))
