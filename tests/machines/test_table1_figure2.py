from repro.common.units import KB, MB
from repro.machines.stridewalk import crossover_sizes, stride_walk_curve
from repro.machines.table1 import table1_model
from repro.machines.models import sparcstation_5, sparcstation_10


class TestTable1:
    def test_ss10_wins_spec_class(self):
        ss5, ss10 = table1_model()
        assert ss10.spec_runtime_s < ss5.spec_runtime_s

    def test_ss5_wins_synopsys_class(self):
        # The paper's headline: 32 vs 44 minutes despite the lower Spec rating.
        ss5, ss10 = table1_model()
        assert ss5.synopsys_runtime_s < ss10.synopsys_runtime_s

    def test_synopsys_advantage_magnitude(self):
        # Paper ratio: 44/32 = 1.375; ours should be within ~25%.
        ss5, ss10 = table1_model()
        ratio = ss10.synopsys_runtime_s / ss5.synopsys_runtime_s
        assert 1.1 < ratio < 1.7


class TestFigure2:
    def test_curve_shape_monotone_in_size(self):
        points = stride_walk_curve(sparcstation_10(), strides=(4096,))
        latencies = [p.latency_ns for p in points]
        assert latencies == sorted(latencies)

    def test_prefetch_hides_small_strides(self):
        # Footnote 2: the SS-10 prefetch unit hides memory access time for
        # small linear strides.
        points = stride_walk_curve(
            sparcstation_10(), strides=(16,), prefetch_threshold_bytes=64
        )
        assert all(
            p.latency_ns == sparcstation_10().levels[0].latency_ns for p in points
        )

    def test_crossover_beyond_l2(self):
        wins = crossover_sizes(sparcstation_5(), sparcstation_10())
        big_wins = [w for w in wins if w > 1 * MB]
        assert big_wins  # SS-5 wins somewhere beyond the SS-10's 1 MB L2
        assert 512 * KB not in wins  # but not in the L2 sweet spot
