"""Cross-validation: simulated stride walk vs the analytic Figure 2 model."""

import pytest

from repro.common.units import KB, MB
from repro.machines.models import sparcstation_5, sparcstation_10
from repro.machines.simulated_walk import (
    simulate_integrated_walk,
    simulate_machine_walk,
)


class TestAgainstAnalyticModel:
    @pytest.mark.parametrize("array_kb", [4, 64, 2048])
    def test_ss5_simulation_matches_model(self, array_kb):
        ss5 = sparcstation_5()
        point = simulate_machine_walk(ss5, array_kb * KB, 4096)
        predicted = ss5.access_time_ns(array_kb * KB, 4096)
        assert point.latency_ns == pytest.approx(predicted, rel=0.25)

    def test_ss10_l2_region(self):
        ss10 = sparcstation_10()
        point = simulate_machine_walk(ss10, 256 * KB, 4096)
        # Inside the 1 MB L2: every access hits the second level.
        assert point.latency_ns == pytest.approx(
            ss10.levels[1].latency_ns, rel=0.05
        )

    def test_ss10_beyond_l2_hits_memory(self):
        ss10 = sparcstation_10()
        point = simulate_machine_walk(ss10, 4 * MB, 4096)
        assert point.latency_ns > ss10.memory_latency_ns * 0.9
        assert point.miss_rate > 0.9

    def test_crossover_emerges_from_simulation(self):
        """The Figure 2 crossover measured, not computed."""
        ss5, ss10 = sparcstation_5(), sparcstation_10()
        mid_5 = simulate_machine_walk(ss5, 512 * KB, 4096).latency_ns
        mid_10 = simulate_machine_walk(ss10, 512 * KB, 4096).latency_ns
        far_5 = simulate_machine_walk(ss5, 4 * MB, 4096).latency_ns
        far_10 = simulate_machine_walk(ss10, 4 * MB, 4096).latency_ns
        assert mid_10 < mid_5
        assert far_5 < far_10


class TestIntegratedDevice:
    def test_flat_latency_profile(self):
        """The device's memory is 30 ns away at every working-set size."""
        small = simulate_integrated_walk(8 * KB, 4096)
        large = simulate_integrated_walk(4 * MB, 4096)
        assert small.latency_ns <= 30.0 + 1e-9
        assert large.latency_ns <= 30.0 + 1e-9

    def test_dense_strides_hit_column_buffers(self):
        point = simulate_integrated_walk(64 * KB, 8)
        # 512 B lines: one miss per 64 strides of 8 B.
        assert point.miss_rate < 0.05
        assert point.latency_ns < 7.0

    def test_beats_both_workstations_at_large_sizes(self):
        integrated = simulate_integrated_walk(8 * MB, 4096).latency_ns
        ss5 = simulate_machine_walk(sparcstation_5(), 8 * MB, 4096).latency_ns
        assert integrated < ss5 / 5
