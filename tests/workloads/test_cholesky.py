"""Cholesky extension kernel tests."""

import pytest

from repro.mp.system import SystemKind
from repro.workloads.splash import CholeskyKernel


class TestCholesky:
    def test_factorization_correct(self):
        kernel = CholeskyKernel(n=16, block=4)
        kernel.run_on(SystemKind.INTEGRATED, 2)
        assert kernel.verify()

    def test_correct_on_every_system_kind(self):
        for kind in SystemKind:
            kernel = CholeskyKernel(n=12, block=4)
            kernel.run_on(kind, 2)
            assert kernel.verify(), kind

    def test_parallel_speedup(self):
        serial = CholeskyKernel(n=24, block=4)
        t1, _ = serial.run_on(SystemKind.INTEGRATED, 1)
        parallel = CholeskyKernel(n=24, block=4)
        t4, _ = parallel.run_on(SystemKind.INTEGRATED, 4)
        assert t4.execution_time < t1.execution_time

    def test_cheaper_than_lu_at_same_size(self):
        """The triangular update does roughly half of LU's work."""
        from repro.workloads.splash import LUKernel

        chol = CholeskyKernel(n=24, block=4)
        t_chol, _ = chol.run_on(SystemKind.INTEGRATED, 1)
        lu = LUKernel(n=24, block=4)
        t_lu, _ = lu.run_on(SystemKind.INTEGRATED, 1)
        assert t_chol.execution_time < t_lu.execution_time * 0.75

    def test_rejects_bad_block(self):
        with pytest.raises(ValueError):
            CholeskyKernel(n=10, block=4)

    def test_verify_before_run_raises(self):
        with pytest.raises(RuntimeError):
            CholeskyKernel().verify()
