import pytest

from repro.common.errors import ConfigError
from repro.trace.code import CodeProfile
from repro.trace.stream import ReferenceTrace
from repro.workloads.spec.model import InstructionMix, PipelineCosts, SpecProxy


def _dummy_builder(length, rng):
    return ReferenceTrace.reads(range(0, 4 * length, 4))


def _proxy(**kw):
    defaults = dict(
        name="test.bench",
        description="test",
        category="int",
        mix=InstructionMix(),
        code=CodeProfile(code_bytes=32 * 1024, hot_bytes=8 * 1024),
        data_builder=_dummy_builder,
    )
    defaults.update(kw)
    return SpecProxy(**defaults)


class TestValidation:
    def test_rejects_bad_category(self):
        with pytest.raises(ConfigError):
            _proxy(category="mixed")

    def test_rejects_negative_mix(self):
        with pytest.raises(ConfigError):
            InstructionMix(p_load=-0.1)

    def test_rejects_mix_over_one(self):
        with pytest.raises(ConfigError):
            InstructionMix(p_load=0.5, p_store=0.3, p_fp=0.2, p_branch=0.1)


class TestTraces:
    def test_instruction_trace_length_and_determinism(self):
        proxy = _proxy()
        a = proxy.instruction_trace(5000, seed=3)
        b = proxy.instruction_trace(5000, seed=3)
        assert len(a) == 5000
        assert a.addresses.tolist() == b.addresses.tolist()

    def test_different_seeds_differ(self):
        proxy = _proxy()
        a = proxy.instruction_trace(5000, seed=1)
        b = proxy.instruction_trace(5000, seed=2)
        assert a.addresses.tolist() != b.addresses.tolist()

    def test_data_trace_exact_length(self):
        proxy = _proxy()
        assert len(proxy.data_trace(1234, seed=0)) == 1234

    def test_empty_data_builder_rejected(self):
        proxy = _proxy(data_builder=lambda length, rng: ReferenceTrace.empty())
        with pytest.raises(ConfigError):
            proxy.data_trace(100)


class TestBaseCpi:
    def test_integer_code_is_near_one(self):
        proxy = _proxy(
            mix=InstructionMix(p_branch=0.0),
            costs=PipelineCosts(dependency_fraction=0.0, mispredict_rate=0.0),
        )
        assert proxy.base_cpi() == pytest.approx(1.0)

    def test_fp_dependencies_raise_cpi(self):
        proxy = _proxy(
            category="fp",
            mix=InstructionMix(p_load=0.3, p_store=0.1, p_fp=0.38, p_branch=0.04),
            costs=PipelineCosts(dependency_fraction=0.64),
        )
        # hydro2d-like: the paper's MicroSparc-II component is 1.74.
        assert proxy.base_cpi() == pytest.approx(1.74, abs=0.05)

    def test_branches_raise_cpi(self):
        cheap = _proxy(costs=PipelineCosts(mispredict_rate=0.0))
        costly = _proxy(costs=PipelineCosts(mispredict_rate=0.2))
        assert costly.base_cpi() > cheap.base_cpi()
