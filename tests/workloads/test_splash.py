"""SPLASH kernel tests: architectural correctness (the kernels really
compute) and the Section 6.2 performance claims at small scale."""

import pytest

from repro.mp.system import SystemKind
from repro.workloads.splash import (
    KERNELS,
    LUKernel,
    MP3DKernel,
    OceanKernel,
    PthorKernel,
    WaterKernel,
)

# Small instances keep the execution-driven runs fast in CI.
SMALL = {
    "lu": lambda: LUKernel(n=16, block=4),
    "mp3d": lambda: MP3DKernel(particles=200, steps=3),
    "ocean": lambda: OceanKernel(n=18, iterations=3),
    "water": lambda: WaterKernel(molecules=16, steps=2),
    "pthor": lambda: PthorKernel(gates=200, steps=8),
}


class TestRegistry:
    def test_kernel_registry(self):
        # The paper's five (Table 5) plus the Cholesky extension.
        assert set(KERNELS) == {
            "lu", "mp3d", "ocean", "water", "pthor", "cholesky"
        }


class TestComputationalCorrectness:
    """Execution-driven means the kernels do real work — verify it."""

    def test_lu_factorization_correct(self):
        kernel = SMALL["lu"]()
        kernel.run_on(SystemKind.INTEGRATED, 2)
        assert kernel.verify()

    def test_lu_correct_at_any_proc_count(self):
        for procs in (1, 4):
            kernel = SMALL["lu"]()
            kernel.run_on(SystemKind.REFERENCE, procs)
            assert kernel.verify()

    def test_mp3d_particles_stay_in_box(self):
        kernel = SMALL["mp3d"]()
        kernel.run_on(SystemKind.INTEGRATED, 2)
        assert kernel.verify()

    def test_ocean_relaxation_reduces_residual(self):
        kernel = SMALL["ocean"]()
        before = None
        kernel.run_on(SystemKind.INTEGRATED, 2)
        after = kernel.residual()
        # A few sweeps of Gauss-Seidel on random data leave residual < 0.5.
        assert after < 0.5
        del before

    def test_water_molecules_move_and_stay_finite(self):
        kernel = SMALL["water"]()
        kernel.run_on(SystemKind.INTEGRATED, 2)
        assert kernel.verify()

    def test_pthor_outputs_binary_dag(self):
        kernel = SMALL["pthor"]()
        kernel.run_on(SystemKind.INTEGRATED, 2)
        assert kernel.verify()

    def test_results_independent_of_system_kind(self):
        """The architecture model changes timing, never results."""
        results = []
        for kind in SystemKind:
            kernel = SMALL["lu"]()
            kernel.run_on(kind, 2)
            results.append(kernel.matrix.copy())
        assert (results[0] == results[1]).all()
        assert (results[0] == results[2]).all()


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(SMALL))
    def test_execution_time_reproducible(self, name):
        a = SMALL[name]()
        ra, _ = a.run_on(SystemKind.INTEGRATED, 2)
        b = SMALL[name]()
        rb, _ = b.run_on(SystemKind.INTEGRATED, 2)
        assert ra.execution_time == rb.execution_time


class TestSection62Claims:
    """Timing claims from the paper, exercised at reduced scale."""

    def test_integrated_beats_reference_at_small_proc_counts(self):
        # "the integrated design outperforms the traditional CC-NUMA
        # designs for small numbers of processors in all cases".
        kernel_i = LUKernel(n=24, block=4)
        time_i, _ = kernel_i.run_on(SystemKind.INTEGRATED, 1)
        kernel_r = LUKernel(n=24, block=4)
        time_r, _ = kernel_r.run_on(SystemKind.REFERENCE, 1)
        assert time_i.execution_time < time_r.execution_time

    def test_water_punishes_plain_column_buffers(self):
        # "WATER is the only benchmark for which the reference CC-NUMA
        # shows better results than the integrated architecture unaided
        # by a victim cache."
        water_nv = WaterKernel(molecules=24, steps=2)
        t_nv, _ = water_nv.run_on(SystemKind.INTEGRATED_NO_VICTIM, 4)
        water_ref = WaterKernel(molecules=24, steps=2)
        t_ref, _ = water_ref.run_on(SystemKind.REFERENCE, 4)
        assert t_ref.execution_time < t_nv.execution_time

    def test_victim_cache_rescues_water(self):
        water_v = WaterKernel(molecules=24, steps=2)
        t_v, _ = water_v.run_on(SystemKind.INTEGRATED, 4)
        water_nv = WaterKernel(molecules=24, steps=2)
        t_nv, _ = water_nv.run_on(SystemKind.INTEGRATED_NO_VICTIM, 4)
        assert t_v.execution_time < t_nv.execution_time

    def test_parallel_speedup_lu(self):
        serial = LUKernel(n=24, block=4)
        t1, _ = serial.run_on(SystemKind.INTEGRATED, 1)
        parallel = LUKernel(n=24, block=4)
        t4, _ = parallel.run_on(SystemKind.INTEGRATED, 4)
        assert t4.execution_time < t1.execution_time
