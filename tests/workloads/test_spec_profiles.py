"""Tests that the proxy suite reproduces the paper's Section 5.2-5.4
claims — these are the load-bearing calibration checks for Figures 7/8."""

import pytest

from repro.caches import (
    DirectMappedCache,
    direct_mapped_miss_rate,
    proposed_dcache,
    proposed_icache,
    two_way_lru_miss_flags,
)
from repro.common.params import CacheGeometry
from repro.common.units import KB
from repro.workloads.spec import (
    ALL_NAMES,
    SPEC_FP_NAMES,
    SPEC_INT_NAMES,
    all_proxies,
    get_proxy,
)

TRACE_LEN = 60_000


def _icache_rates(name):
    trace = get_proxy(name).instruction_trace(TRACE_LEN, seed=1)
    proposed = proposed_icache()
    proposed.run(trace)
    conv = {
        size: direct_mapped_miss_rate(trace.addresses, CacheGeometry(size * KB, 32, 1))
        for size in (8, 16, 64)
    }
    return proposed.stats.miss_rate, conv


def _dcache_rates(name):
    trace = get_proxy(name).data_trace(TRACE_LEN, seed=1)
    plain = proposed_dcache(with_victim=False)
    plain.run(trace)
    vict = proposed_dcache(with_victim=True)
    vict.run(trace)
    dm16 = direct_mapped_miss_rate(trace.addresses, CacheGeometry(16 * KB, 32, 1))
    w16 = float(
        two_way_lru_miss_flags(trace.addresses, CacheGeometry(16 * KB, 32, 2)).mean()
    )
    dm64 = direct_mapped_miss_rate(trace.addresses, CacheGeometry(64 * KB, 32, 1))
    return plain.stats.miss_rate, vict.stats.miss_rate, dm16, w16, dm64


class TestRegistry:
    def test_nineteen_benchmarks(self):
        assert len(ALL_NAMES) == 19

    def test_int_fp_split_matches_table2(self):
        assert len(SPEC_INT_NAMES) == 8
        assert len(SPEC_FP_NAMES) == 10

    def test_get_proxy_unknown_name(self):
        with pytest.raises(KeyError):
            get_proxy("999.nope")

    def test_all_proxies_build_traces(self):
        for proxy in all_proxies():
            assert len(proxy.data_trace(2000, seed=0)) == 2000
            assert len(proxy.instruction_trace(2000, seed=0)) == 2000

    def test_base_cpi_ranges(self):
        # Integer codes near 1; FP codes up to ~1.8 (paper Table 3 cpu column).
        for proxy in all_proxies():
            cpi = proxy.base_cpi()
            assert 1.0 <= cpi < 1.9
            if proxy.category == "int":
                assert cpi < 1.1


class TestICacheClaims:
    """Section 5.2."""

    def test_tight_loop_benchmarks_fit_8kb(self):
        # "applu, compress, swim, mgrid, ijpeg run very tight code loops
        # that almost entirely fit an 8KByte cache."
        for name in ("110.applu", "129.compress", "102.swim", "107.mgrid",
                     "132.ijpeg"):
            prop, conv = _icache_rates(name)
            assert prop < 0.002, name

    def test_proposed_beats_conventional_twice_the_size_almost_always(self):
        # "For almost all of the applications, the proposed cache has a
        # lower miss rate than conventional I-caches of over twice the size."
        wins = 0
        checked = 0
        for name in ALL_NAMES:
            if name == "125.turb3d":
                continue  # the paper's own exception
            prop, conv = _icache_rates(name)
            checked += 1
            if prop <= conv[16]:
                wins += 1
        assert wins >= checked - 1

    def test_fpppp_dramatic_long_line_win(self):
        # Paper: factor 11.2 vs same-size conventional, 8.2 vs twice the size.
        prop, conv = _icache_rates("145.fpppp")
        assert conv[8] / prop > 6.0
        assert conv[16] / prop > 4.0

    def test_turb3d_is_the_only_loser(self):
        # "The only application to produce a higher miss rate on the
        # proposed architecture was 125.turb3d" (loop/callee aliasing).
        prop, conv = _icache_rates("125.turb3d")
        assert prop > conv[8] * 1.5

    def test_perl_high_but_below_conventional_same_size(self):
        prop, conv = _icache_rates("134.perl")
        assert prop > 0.004  # "surprisingly high"
        assert prop < conv[8]  # "still lower than the equivalent conventional"

    def test_gcc_in_the_64kb_neighbourhood(self):
        # Paper: gcc's proposed-cache miss rate is "within 27% of those of
        # a 64KByte conventional I-cache".  Our proxy lands somewhat below
        # the 64 KB conventional instead of slightly above it (recorded in
        # EXPERIMENTS.md); the check pins it to that neighbourhood.
        prop, conv = _icache_rates("126.gcc")
        assert conv[64] / 5 < prop < conv[16]


class TestDCacheClaims:
    """Sections 5.3 and 5.4."""

    def test_mgrid_long_lines_win_big(self):
        # "over a factor of ten lower for mgrid ... than a conventional
        # direct-mapped D-cache of the same capacity".
        plain, vict, dm16, w16, dm64 = _dcache_rates("107.mgrid")
        assert dm16 / plain > 8.0

    def test_hydro2d_long_lines_win(self):
        plain, vict, dm16, w16, dm64 = _dcache_rates("104.hydro2d")
        assert dm16 / plain > 5.0

    @pytest.mark.parametrize("name", ["101.tomcatv", "102.swim", "103.su2cor"])
    def test_colliding_stream_benchmarks_punish_long_lines(self, name):
        # "the 512-Byte line size increases the conflict misses by almost a
        # factor of five over a conventional cache of the same size".
        plain, vict, dm16, w16, dm64 = _dcache_rates(name)
        assert plain > dm16 * 2.5, name

    @pytest.mark.parametrize("name", ["101.tomcatv", "103.su2cor"])
    def test_victim_rescues_colliding_streams(self, name):
        # "the victim cache absorbed the conflict misses reducing the miss
        # rate to approximately that of a conventional 2-way 16KByte cache".
        plain, vict, dm16, w16, dm64 = _dcache_rates(name)
        assert vict < plain / 3
        assert vict < w16 * 1.5

    @pytest.mark.parametrize("name", ["102.swim", "146.wave5", "130.li"])
    def test_victim_two_to_five_fold_cut(self, name):
        # "for three other applications the miss rate was reduced between
        # two and five-fold".
        plain, vict, dm16, w16, dm64 = _dcache_rates(name)
        assert plain / vict > 1.9, name

    def test_go_victim_helps_but_modestly(self):
        # "the victim cache helps reduce the miss rate by 25%, [but] it does
        # not have the capacity to absorb the conflicts" for go.
        plain, vict, dm16, w16, dm64 = _dcache_rates("099.go")
        assert 1.05 < plain / vict < 2.0
        assert plain > dm16  # long lines are a net loss for go

    def test_victim_beats_16kb_direct_mapped_in_all_but_one(self):
        # "In all but one application the combined D-cache and victim cache
        # has a lower miss rate than the 16KByte direct-mapped data cache."
        losses = []
        for name in ALL_NAMES:
            plain, vict, dm16, w16, dm64 = _dcache_rates(name)
            if vict > dm16:
                losses.append(name)
        assert len(losses) <= 2, losses
