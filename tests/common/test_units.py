import math

import pytest

from repro.common.units import (
    BITS_PER_BYTE,
    GB,
    KB,
    MB,
    bits_for_bytes,
    cycles_for_time,
    is_power_of_two,
    log2_int,
    time_for_cycles,
)


class TestSizeConstants:
    def test_kb(self):
        assert KB == 1024

    def test_mb(self):
        assert MB == 1024 * 1024

    def test_gb(self):
        assert GB == 1024**3


class TestCyclesForTime:
    def test_exact_cycles(self):
        # 30 ns on a 200 MHz clock is exactly 6 cycles (the paper's DRAM access).
        assert cycles_for_time(30e-9, 200e6) == 6

    def test_rounds_up(self):
        assert cycles_for_time(31e-9, 200e6) == 7

    def test_zero(self):
        assert cycles_for_time(0.0, 200e6) == 0

    def test_float_noise_is_not_a_cycle(self):
        # 3.0 * 1e-9 scaled by a 1 GHz clock multiplies out to
        # 3.0000000000000004; the representation error must not be
        # billed as a fourth cycle.
        seconds = 3.0 * 1e-9
        assert seconds * 1e9 > 3  # the raw product really is off
        assert cycles_for_time(seconds, 1e9) == 3

    def test_roundtrip_is_exact_for_whole_cycles(self):
        # time_for_cycles then cycles_for_time must be the identity for
        # every clock, even when the division/multiplication pair lands
        # a hair off the integer (naive ceil gets 18 of these wrong).
        for hz in (33e6, 200e6, 333e6, 1e9, 2e9):
            for cycles in (1, 3, 6, 7, 100, 199):
                assert cycles_for_time(time_for_cycles(cycles, hz), hz) \
                    == cycles

    def test_decimal_nanoseconds_across_clocks(self):
        # Every paper latency is a decimal ns figure; none may drift.
        for ns, hz, expect in [(30, 200e6, 6), (10, 1e9, 10),
                               (60, 200e6, 12), (7, 1e9, 7),
                               (2.5, 2e9, 5)]:
            assert cycles_for_time(ns * 1e-9, hz) == expect

    def test_genuine_fraction_still_rounds_up(self):
        assert cycles_for_time(31e-9, 200e6) == 7  # 6.2 cycles
        assert cycles_for_time(1.5e-9, 1e9) == 2   # 1.5 cycles
        assert cycles_for_time(1.001e-9, 1e9) == 2  # barely over 1

    def test_tiny_duration_rounds_up_to_one(self):
        # Far below one cycle but nonzero: still costs a cycle, and the
        # relative-epsilon path must not snap it to 0.
        assert cycles_for_time(1e-15, 1e6) == 1

    def test_roundtrip(self):
        assert time_for_cycles(6, 200e6) == pytest.approx(30e-9)


class TestRoundtripProperty:
    """Property-style sweeps of the seconds<->cycles conversion pair.

    The pair is the sanctioned boundary the units pass points every
    seconds/cycles mix at, so its numerics carry the whole tree: every
    decimal-ns latency at every plausible clock must convert without
    drift, and the ulp tolerance must neither bill representation noise
    as a cycle nor swallow a genuinely fractional one.
    """

    # 100 MHz .. 1 GHz in awkward steps, plus the paper's 200 MHz.
    CLOCKS_HZ = [100e6, 133e6, 166e6, 200e6, 250e6, 333e6, 400e6,
                 500e6, 666e6, 800e6, 1e9]
    # Decimal-ns latencies of the kind the paper tabulates.
    LATENCIES_NS = [0.5, 1, 2, 2.5, 5, 6, 7, 10, 12.5, 15, 20, 24, 30,
                    45, 60, 90, 100, 120, 180, 200, 240, 300]

    def test_decimal_ns_latencies_match_exact_arithmetic(self):
        # cycles_for_time must agree with exact (Fraction-free) ceil
        # computed in integers: ns * hz / 1e9 with hz a multiple of 1e6
        # makes the exact product (ns * MHz) / 1000.
        for hz in self.CLOCKS_HZ:
            mhz = round(hz / 1e6)
            for ns in self.LATENCIES_NS:
                exact = math.ceil(round(ns * 10) * mhz / 10_000)
                got = cycles_for_time(ns * 1e-9, mhz * 1e6)
                assert got == exact, (ns, mhz, got, exact)

    def test_roundtrip_is_identity_over_the_grid(self):
        for hz in self.CLOCKS_HZ:
            for cycles in [1, 2, 3, 5, 6, 7, 11, 64, 100, 199, 1000,
                           12_345]:
                seconds = time_for_cycles(cycles, hz)
                assert cycles_for_time(seconds, hz) == cycles, (cycles, hz)

    def test_just_below_an_integer_snaps_within_ulp_tolerance(self):
        # One ulp below an exact whole-cycle product is representation
        # noise, not a shorter duration: it must snap to the integer,
        # not truncate-and-round-up to the same value by accident at a
        # different boundary.  Verify via a product that is *not*
        # exactly representable: 6 cycles at 333 MHz.
        seconds = time_for_cycles(6, 333e6)
        noisy = math.nextafter(seconds, 0.0)
        assert cycles_for_time(noisy, 333e6) == 6

    def test_just_above_an_integer_snaps_within_ulp_tolerance(self):
        seconds = time_for_cycles(6, 333e6)
        noisy = math.nextafter(seconds, math.inf)
        assert cycles_for_time(noisy, 333e6) == 6

    def test_clearly_fractional_is_not_snapped(self):
        # 0.1% over a whole cycle is a real fraction of a cycle — far
        # outside the 4e-16 relative tolerance — and must round up.
        for hz in self.CLOCKS_HZ:
            seconds = time_for_cycles(6, hz) * 1.001
            assert cycles_for_time(seconds, hz) == 7, hz


class TestBitsForBytes:
    def test_scales_by_eight(self):
        assert BITS_PER_BYTE == 8
        assert bits_for_bytes(32) == 256
        assert bits_for_bytes(0) == 0


class TestPowerOfTwo:
    def test_accepts_powers(self):
        for k in range(20):
            assert is_power_of_two(1 << k)

    def test_rejects_non_powers(self):
        for v in (0, -1, 3, 6, 12, 1000):
            assert not is_power_of_two(v)

    def test_log2_int(self):
        assert log2_int(512) == 9
        assert log2_int(1) == 0

    def test_log2_int_rejects(self):
        with pytest.raises(ValueError):
            log2_int(48)
