import pytest

from repro.common.units import (
    GB,
    KB,
    MB,
    cycles_for_time,
    is_power_of_two,
    log2_int,
    time_for_cycles,
)


class TestSizeConstants:
    def test_kb(self):
        assert KB == 1024

    def test_mb(self):
        assert MB == 1024 * 1024

    def test_gb(self):
        assert GB == 1024**3


class TestCyclesForTime:
    def test_exact_cycles(self):
        # 30 ns on a 200 MHz clock is exactly 6 cycles (the paper's DRAM access).
        assert cycles_for_time(30e-9, 200e6) == 6

    def test_rounds_up(self):
        assert cycles_for_time(31e-9, 200e6) == 7

    def test_zero(self):
        assert cycles_for_time(0.0, 200e6) == 0

    def test_roundtrip(self):
        assert time_for_cycles(6, 200e6) == pytest.approx(30e-9)


class TestPowerOfTwo:
    def test_accepts_powers(self):
        for k in range(20):
            assert is_power_of_two(1 << k)

    def test_rejects_non_powers(self):
        for v in (0, -1, 3, 6, 12, 1000):
            assert not is_power_of_two(v)

    def test_log2_int(self):
        assert log2_int(512) == 9
        assert log2_int(1) == 0

    def test_log2_int_rejects(self):
        with pytest.raises(ValueError):
            log2_int(48)
