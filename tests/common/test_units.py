import pytest

from repro.common.units import (
    GB,
    KB,
    MB,
    cycles_for_time,
    is_power_of_two,
    log2_int,
    time_for_cycles,
)


class TestSizeConstants:
    def test_kb(self):
        assert KB == 1024

    def test_mb(self):
        assert MB == 1024 * 1024

    def test_gb(self):
        assert GB == 1024**3


class TestCyclesForTime:
    def test_exact_cycles(self):
        # 30 ns on a 200 MHz clock is exactly 6 cycles (the paper's DRAM access).
        assert cycles_for_time(30e-9, 200e6) == 6

    def test_rounds_up(self):
        assert cycles_for_time(31e-9, 200e6) == 7

    def test_zero(self):
        assert cycles_for_time(0.0, 200e6) == 0

    def test_float_noise_is_not_a_cycle(self):
        # 3.0 * 1e-9 scaled by a 1 GHz clock multiplies out to
        # 3.0000000000000004; the representation error must not be
        # billed as a fourth cycle.
        seconds = 3.0 * 1e-9
        assert seconds * 1e9 > 3  # the raw product really is off
        assert cycles_for_time(seconds, 1e9) == 3

    def test_roundtrip_is_exact_for_whole_cycles(self):
        # time_for_cycles then cycles_for_time must be the identity for
        # every clock, even when the division/multiplication pair lands
        # a hair off the integer (naive ceil gets 18 of these wrong).
        for hz in (33e6, 200e6, 333e6, 1e9, 2e9):
            for cycles in (1, 3, 6, 7, 100, 199):
                assert cycles_for_time(time_for_cycles(cycles, hz), hz) \
                    == cycles

    def test_decimal_nanoseconds_across_clocks(self):
        # Every paper latency is a decimal ns figure; none may drift.
        for ns, hz, expect in [(30, 200e6, 6), (10, 1e9, 10),
                               (60, 200e6, 12), (7, 1e9, 7),
                               (2.5, 2e9, 5)]:
            assert cycles_for_time(ns * 1e-9, hz) == expect

    def test_genuine_fraction_still_rounds_up(self):
        assert cycles_for_time(31e-9, 200e6) == 7  # 6.2 cycles
        assert cycles_for_time(1.5e-9, 1e9) == 2   # 1.5 cycles
        assert cycles_for_time(1.001e-9, 1e9) == 2  # barely over 1

    def test_tiny_duration_rounds_up_to_one(self):
        # Far below one cycle but nonzero: still costs a cycle, and the
        # relative-epsilon path must not snap it to 0.
        assert cycles_for_time(1e-15, 1e6) == 1

    def test_roundtrip(self):
        assert time_for_cycles(6, 200e6) == pytest.approx(30e-9)


class TestPowerOfTwo:
    def test_accepts_powers(self):
        for k in range(20):
            assert is_power_of_two(1 << k)

    def test_rejects_non_powers(self):
        for v in (0, -1, 3, 6, 12, 1000):
            assert not is_power_of_two(v)

    def test_log2_int(self):
        assert log2_int(512) == 9
        assert log2_int(1) == 0

    def test_log2_int_rejects(self):
        with pytest.raises(ValueError):
            log2_int(48)
