from repro.common.rng import make_rng, split_rng


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42)
        b = make_rng(42)
        assert a.integers(0, 1 << 30) == b.integers(0, 1 << 30)

    def test_different_seeds_differ(self):
        draws_a = make_rng(1).integers(0, 1 << 30, size=8)
        draws_b = make_rng(2).integers(0, 1 << 30, size=8)
        assert list(draws_a) != list(draws_b)

    def test_default_seed_is_stable(self):
        assert make_rng().integers(0, 1 << 30) == make_rng().integers(0, 1 << 30)


class TestSplitRng:
    def test_children_with_same_label_match(self):
        a = split_rng(make_rng(7), "caches")
        b = split_rng(make_rng(7), "caches")
        assert a.integers(0, 1 << 30) == b.integers(0, 1 << 30)

    def test_children_with_different_labels_differ(self):
        parent = make_rng(7)
        a = split_rng(parent, "caches")
        parent2 = make_rng(7)
        b = split_rng(parent2, "dram")
        assert list(a.integers(0, 1 << 30, size=8)) != list(
            b.integers(0, 1 << 30, size=8)
        )
