from repro.common.rng import make_rng, split_rng


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42)
        b = make_rng(42)
        assert a.integers(0, 1 << 30) == b.integers(0, 1 << 30)

    def test_different_seeds_differ(self):
        draws_a = make_rng(1).integers(0, 1 << 30, size=8)
        draws_b = make_rng(2).integers(0, 1 << 30, size=8)
        assert list(draws_a) != list(draws_b)

    def test_default_seed_is_stable(self):
        assert make_rng().integers(0, 1 << 30) == make_rng().integers(0, 1 << 30)


class TestSplitRng:
    def test_children_with_same_label_match(self):
        a = split_rng(make_rng(7), "caches")
        b = split_rng(make_rng(7), "caches")
        assert a.integers(0, 1 << 30) == b.integers(0, 1 << 30)

    def test_children_with_different_labels_differ(self):
        parent = make_rng(7)
        a = split_rng(parent, "caches")
        parent2 = make_rng(7)
        b = split_rng(parent2, "dram")
        assert list(a.integers(0, 1 << 30, size=8)) != list(
            b.integers(0, 1 << 30, size=8)
        )

    def test_children_independent_of_sibling_order(self):
        # Each split draws fresh parent entropy, so the *stream position*
        # matters — but a child at the same position with the same label
        # must reproduce exactly, however many siblings follow it.
        first = split_rng(make_rng(11), "trace")
        parent = make_rng(11)
        again = split_rng(parent, "trace")
        split_rng(parent, "later-sibling")  # must not affect `again`
        assert list(first.integers(0, 1 << 30, size=8)) == list(
            again.integers(0, 1 << 30, size=8)
        )

    def test_multi_label_paths_differ_from_joined(self):
        # ("a", "b") and ("a.b",) are distinct derivation paths; the
        # separator byte in the label hash keeps them apart.
        a = split_rng(make_rng(3), "a", "b")
        b = split_rng(make_rng(3), "a.b")
        assert list(a.integers(0, 1 << 30, size=8)) != list(
            b.integers(0, 1 << 30, size=8)
        )

    def test_no_collisions_over_registry_labels(self):
        # Collision-resistance smoke over the labels the runner actually
        # derives: every experiment/shard combination in the registry
        # must get a pairwise-distinct stream from one parent position.
        from repro.analysis.registry import SPECS

        labels = []
        for name, spec in SPECS.items():
            if spec.shard_values:
                labels.extend((name, str(v)) for v in spec.shard_values)
            else:
                labels.append((name,))
        assert len(labels) > 30  # the registry really is exercised
        draws = {}
        for label in labels:
            child = split_rng(make_rng(0), *label)
            draws[label] = tuple(child.integers(0, 1 << 30, size=4))
        seen = {}
        for label, draw in draws.items():
            assert draw not in seen, (label, seen.get(draw))
            seen[draw] = label
