import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.common.address import (
    bank_of,
    line_address,
    line_index,
    set_index,
    sub_block,
    tag_of,
    vector_set_index,
    vector_tag,
)


class TestScalarHelpers:
    def test_line_address(self):
        assert line_address(0x1234, 512) == 0x1200
        assert line_address(0x1FF, 512) == 0

    def test_line_index(self):
        assert line_index(1024, 512) == 2

    def test_set_index_wraps(self):
        # 16 sets of 512 B lines: set repeats every 8 KB.
        assert set_index(0, 512, 16) == set_index(8192, 512, 16)
        assert set_index(512, 512, 16) == 1

    def test_tag_distinguishes_aliases(self):
        assert tag_of(0, 512, 16) != tag_of(8192, 512, 16)

    def test_bank_interleaving(self):
        # Banks interleave at column (512 B) granularity.
        assert bank_of(0, 512, 16) == 0
        assert bank_of(512, 512, 16) == 1
        assert bank_of(512 * 16, 512, 16) == 0

    def test_sub_block(self):
        assert sub_block(0, 512, 32) == 0
        assert sub_block(33, 512, 32) == 1
        assert sub_block(511, 512, 32) == 15


@given(st.integers(0, 2**40), st.sampled_from([32, 64, 512]), st.sampled_from([16, 256]))
def test_address_decomposition_roundtrip(addr, line, sets):
    """tag/set/offset decomposition reconstructs the line address."""
    tag = tag_of(addr, line, sets)
    idx = set_index(addr, line, sets)
    bits_line = line.bit_length() - 1
    bits_set = sets.bit_length() - 1
    rebuilt = (tag << (bits_line + bits_set)) | (idx << bits_line)
    assert rebuilt == line_address(addr, line)


@given(st.lists(st.integers(0, 2**40), min_size=1, max_size=50))
def test_vector_helpers_match_scalar(addrs):
    arr = np.asarray(addrs, dtype=np.int64)
    vec_sets = vector_set_index(arr, 512, 16)
    vec_tags = vector_tag(arr, 512, 16)
    for i, addr in enumerate(addrs):
        assert vec_sets[i] == set_index(addr, 512, 16)
        assert vec_tags[i] == tag_of(addr, 512, 16)
