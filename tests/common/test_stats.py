import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.stats import Counter, Histogram, RatioStat, RunningStats


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.stddev == 0.0

    def test_single_value(self):
        stats = RunningStats()
        stats.add(5.0)
        assert stats.mean == 5.0
        assert stats.variance == 0.0

    def test_known_values(self):
        stats = RunningStats()
        stats.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.mean == pytest.approx(5.0)
        assert stats.variance == pytest.approx(32.0 / 7.0)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_matches_numpy(self, values):
        stats = RunningStats()
        stats.extend(values)
        assert stats.mean == pytest.approx(float(np.mean(values)), rel=1e-9, abs=1e-9)
        assert stats.variance == pytest.approx(
            float(np.var(values, ddof=1)), rel=1e-6, abs=1e-6
        )

    def test_stderr_shrinks_with_count(self):
        stats = RunningStats()
        stats.extend([1.0, 2.0] * 10)
        wide = stats.stderr
        stats.extend([1.0, 2.0] * 90)
        assert stats.stderr < wide


class TestRatioStat:
    def test_rates(self):
        ratio = RatioStat()
        for hit in (True, True, False, True):
            ratio.record(hit)
        assert ratio.hit_rate == pytest.approx(0.75)
        assert ratio.miss_rate == pytest.approx(0.25)
        assert ratio.misses == 1

    def test_empty_is_zero(self):
        assert RatioStat().hit_rate == 0.0
        assert RatioStat().miss_rate == 0.0

    def test_merge(self):
        a = RatioStat(hits=3, total=4)
        b = RatioStat(hits=1, total=6)
        merged = a.merge(b)
        assert merged.hits == 4
        assert merged.total == 10

    @given(st.lists(st.booleans(), max_size=100))
    def test_hit_plus_miss_is_total(self, flags):
        ratio = RatioStat()
        for flag in flags:
            ratio.record(flag)
        assert ratio.hits + ratio.misses == ratio.total
        if flags:
            assert ratio.hit_rate + ratio.miss_rate == pytest.approx(1.0)


class TestCounter:
    def test_increment_and_reset(self):
        counter = Counter("misses")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0


class TestHistogram:
    def test_mean(self):
        hist = Histogram()
        hist.add(1, 2)
        hist.add(3, 2)
        assert hist.mean() == pytest.approx(2.0)
        assert hist.total == 4

    def test_percentile(self):
        hist = Histogram()
        for value in range(1, 11):
            hist.add(value)
        assert hist.percentile(0.5) == 5
        assert hist.percentile(1.0) == 10

    def test_percentile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram().percentile(1.5)

    def test_empty(self):
        assert Histogram().mean() == 0.0
        assert Histogram().percentile(0.5) == 0
