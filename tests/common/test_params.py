import pytest

from repro.common.errors import ConfigError
from repro.common.params import (
    COHERENCE_UNIT_BYTES,
    DIRECTORY_BITS_PER_BLOCK,
    INC_WAYS,
    CacheGeometry,
    ConventionalSystemParams,
    DRAMTiming,
    IntegratedDeviceParams,
    MPLatencies,
    PipelineParams,
    VictimCacheParams,
)
from repro.common.units import KB


class TestCacheGeometry:
    def test_direct_mapped_sets(self):
        geom = CacheGeometry(8 * KB, 32, 1)
        assert geom.num_lines == 256
        assert geom.num_sets == 256
        assert geom.ways == 1

    def test_two_way(self):
        geom = CacheGeometry(16 * KB, 512, 2)
        assert geom.num_lines == 32
        assert geom.num_sets == 16
        assert geom.ways == 2

    def test_fully_associative(self):
        geom = CacheGeometry(512, 32, 0)
        assert geom.ways == 16
        assert geom.num_sets == 1

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigError):
            CacheGeometry(8 * KB, 48, 1)

    def test_rejects_size_not_multiple_of_line(self):
        with pytest.raises(ConfigError):
            CacheGeometry(1000, 32, 1)

    def test_rejects_negative_assoc(self):
        with pytest.raises(ConfigError):
            CacheGeometry(8 * KB, 32, -1)


class TestIntegratedDeviceParams:
    def test_paper_icache_is_8kb_direct_mapped_512b_lines(self):
        geom = IntegratedDeviceParams().icache_geometry
        assert geom.size_bytes == 8 * KB
        assert geom.line_bytes == 512
        assert geom.ways == 1
        assert geom.num_sets == 16

    def test_paper_dcache_is_16kb_2way_512b_lines(self):
        geom = IntegratedDeviceParams().dcache_geometry
        assert geom.size_bytes == 16 * KB
        assert geom.line_bytes == 512
        assert geom.ways == 2
        assert geom.num_sets == 16

    def test_internal_bandwidth_is_1_6_gbytes(self):
        # Each 64-bit datapath at 200 MHz gives 1.6 GB/s (Section 4.1).
        assert IntegratedDeviceParams().internal_bandwidth_gbytes == pytest.approx(1.6)

    def test_dram_access_is_six_cycles(self):
        assert IntegratedDeviceParams().dram.access_cycles == 6

    def test_victim_cache_is_one_column(self):
        params = IntegratedDeviceParams()
        assert params.victim.size_bytes == params.column_bytes

    def test_rejects_non_power_of_two_banks(self):
        with pytest.raises(ConfigError):
            IntegratedDeviceParams(num_banks=12)


class TestMPLatencies:
    def test_table6_defaults(self):
        lat = MPLatencies()
        assert lat.cache_hit == 1
        assert lat.victim_hit == 1
        assert lat.local_memory == 6
        assert lat.invalidation_round_trip == 80
        assert lat.remote_load == 80
        assert lat.flc_hit == 1
        assert lat.slc_hit == 6

    def test_inc_access_includes_tag_check(self):
        lat = MPLatencies()
        assert lat.inc_access == lat.local_memory + lat.inc_tag_check

    def test_rejects_zero_latency(self):
        with pytest.raises(ConfigError):
            MPLatencies(local_memory=0)


class TestOtherParams:
    def test_coherence_unit(self):
        assert COHERENCE_UNIT_BYTES == 32

    def test_inc_ways(self):
        assert INC_WAYS == 7

    def test_directory_bits(self):
        assert DIRECTORY_BITS_PER_BLOCK == 14

    def test_pipeline_cycle_time(self):
        assert PipelineParams().cycle_ns == pytest.approx(5.0)

    def test_pipeline_rejects_superscalar(self):
        with pytest.raises(ConfigError):
            PipelineParams(issue_width=4)

    def test_dram_timing_rejects_zero_access(self):
        with pytest.raises(ConfigError):
            DRAMTiming(access_cycles=0)

    def test_conventional_defaults(self):
        params = ConventionalSystemParams()
        assert params.l1i.size_bytes == 16 * KB
        assert params.l2.size_bytes == 256 * KB
        assert params.memory_banks == 2

    def test_victim_params_reject_zero_entries(self):
        with pytest.raises(ConfigError):
            VictimCacheParams(entries=0)
