import pytest

from repro.interconnect.fabric import HEADER_BYTES, Fabric, MessageType


class TestMessageAccounting:
    def test_payload_sizes(self):
        assert MessageType.READ_REPLY.payload_bytes == 32
        assert MessageType.WRITEBACK.payload_bytes == 32
        assert MessageType.READ_REQUEST.payload_bytes == 0
        assert MessageType.INVALIDATE.payload_bytes == 0

    def test_byte_counting(self):
        fabric = Fabric()
        fabric.send(MessageType.READ_REQUEST)
        fabric.send(MessageType.READ_REPLY)
        assert fabric.stats.bytes_sent == 2 * HEADER_BYTES + 32

    def test_bulk_send(self):
        fabric = Fabric()
        fabric.send(MessageType.INVALIDATE, count=5)
        assert fabric.stats.messages[MessageType.INVALIDATE] == 5

    def test_reset(self):
        fabric = Fabric()
        fabric.send(MessageType.ACK)
        fabric.reset()
        assert fabric.stats.bytes_sent == 0


class TestBandwidth:
    def test_peak_bandwidth_matches_paper(self):
        # "Four links provide a peak I/O bandwidth of 1.6 Gbytes/sec".
        assert Fabric().bandwidth_gbytes() == pytest.approx(1.28, rel=0.3)

    def test_utilization_bounded(self):
        fabric = Fabric()
        for _ in range(1000):
            fabric.send(MessageType.READ_REPLY)
        util = fabric.utilization(elapsed_cycles=10_000, num_nodes=2)
        assert 0.0 < util <= 1.0

    def test_zero_cases(self):
        fabric = Fabric()
        assert fabric.utilization(0, 2) == 0.0
        assert fabric.utilization(100, 0) == 0.0

    def test_utilization_value_pins_the_cycles_to_seconds_conversion(self):
        # Regression for the explicit time_for_cycles boundary: 10_000
        # cycles at the default 200 MHz clock are 50 us of wall-clock
        # capacity.
        fabric = Fabric()
        for _ in range(1000):
            fabric.send(MessageType.READ_REPLY)
        bytes_sent = fabric.stats.bytes_sent
        elapsed_seconds = 10_000 / 200e6
        capacity = fabric.bandwidth_gbytes() * 1e9 * elapsed_seconds * 2
        util = fabric.utilization(elapsed_cycles=10_000, num_nodes=2)
        assert util == pytest.approx(bytes_sent / capacity)
