"""Code fingerprinting: stability, invalidation, dependency slices."""

import textwrap
from pathlib import Path

from repro.runner import code_fingerprint, invalidate, slice_fingerprint


def _tree(tmp_path: Path) -> Path:
    root = tmp_path / "pkg"
    (root / "sub").mkdir(parents=True)
    (root / "a.py").write_text("A = 1\n")
    (root / "sub" / "b.py").write_text("B = 2\n")
    return root


def _sliceable(tmp_path: Path) -> Path:
    """A package whose entry slice excludes exporter.py."""
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "__init__.py").touch()
    (root / "entry.py").write_text(textwrap.dedent("""
        from pkg.model import simulate

        def experiment():
            return simulate()
    """))
    (root / "model.py").write_text("def simulate():\n    return 42\n")
    (root / "exporter.py").write_text("FORMAT = 'json'\n")
    return root


class TestCodeFingerprint:
    def test_deterministic(self, tmp_path):
        root = _tree(tmp_path)
        first = code_fingerprint(root, use_cache=False)
        second = code_fingerprint(root, use_cache=False)
        assert first == second
        assert len(first) == 64  # sha256 hex

    def test_content_change_invalidates(self, tmp_path):
        root = _tree(tmp_path)
        before = code_fingerprint(root, use_cache=False)
        (root / "sub" / "b.py").write_text("B = 3\n")
        assert code_fingerprint(root, use_cache=False) != before

    def test_new_file_invalidates(self, tmp_path):
        root = _tree(tmp_path)
        before = code_fingerprint(root, use_cache=False)
        (root / "c.py").write_text("")
        assert code_fingerprint(root, use_cache=False) != before

    def test_rename_invalidates(self, tmp_path):
        root = _tree(tmp_path)
        before = code_fingerprint(root, use_cache=False)
        (root / "a.py").rename(root / "z.py")
        assert code_fingerprint(root, use_cache=False) != before

    def test_pycache_ignored(self, tmp_path):
        root = _tree(tmp_path)
        before = code_fingerprint(root, use_cache=False)
        cachedir = root / "__pycache__"
        cachedir.mkdir()
        (cachedir / "a.cpython-311.py").write_text("junk")
        assert code_fingerprint(root, use_cache=False) == before

    def test_package_default(self):
        # Fingerprinting the installed package works and is cached.
        assert code_fingerprint() == code_fingerprint()

    def test_memo_notices_midprocess_edit(self, tmp_path):
        # Regression: the old memo was keyed by root alone, so a file
        # edited after the first call kept serving the stale digest for
        # the life of the process.  The stat-summary key must miss.
        root = _tree(tmp_path)
        before = code_fingerprint(root)  # memoized
        (root / "a.py").write_text("A = 1  # edited, longer line\n")
        assert code_fingerprint(root) != before

    def test_invalidate_clears_the_memo(self, tmp_path):
        root = _tree(tmp_path)
        first = code_fingerprint(root)
        invalidate(root)
        assert code_fingerprint(root) == first  # recomputed, same tree
        invalidate()  # all-roots form is accepted too
        assert code_fingerprint(root) == first


class TestSliceFingerprint:
    def test_clean_entry_yields_slice_kind(self, tmp_path):
        root = _sliceable(tmp_path)
        sliced = slice_fingerprint("pkg.entry.experiment", root)
        assert sliced.kind == "slice"
        assert sliced.reason == ""
        assert set(sliced.modules) == {"pkg", "pkg.entry", "pkg.model"}
        assert len(sliced.digest) == 64

    def test_edit_outside_slice_keeps_digest(self, tmp_path):
        root = _sliceable(tmp_path)
        before = slice_fingerprint("pkg.entry.experiment", root)
        tree_before = code_fingerprint(root)
        (root / "exporter.py").write_text("FORMAT = 'csv'  # changed\n")
        after = slice_fingerprint("pkg.entry.experiment", root)
        assert after.digest == before.digest
        # ... while the whole-tree hash does move.
        assert code_fingerprint(root) != tree_before

    def test_edit_inside_slice_changes_digest(self, tmp_path):
        root = _sliceable(tmp_path)
        before = slice_fingerprint("pkg.entry.experiment", root)
        (root / "model.py").write_text("def simulate():\n    return 43\n")
        after = slice_fingerprint("pkg.entry.experiment", root)
        assert after.kind == "slice"
        assert after.digest != before.digest

    def test_dynamic_import_degrades_to_tree(self, tmp_path):
        root = _sliceable(tmp_path)
        (root / "model.py").write_text(
            "import importlib\n"
            "def simulate():\n"
            "    return importlib.import_module('json')\n"
        )
        sliced = slice_fingerprint("pkg.entry.experiment", root)
        assert sliced.kind == "tree"
        assert "dynamic import" in sliced.reason
        assert sliced.digest == code_fingerprint(root)
        assert sliced.modules == ()

    def test_entry_outside_package_degrades_to_tree(self, tmp_path):
        root = _sliceable(tmp_path)
        sliced = slice_fingerprint("tests.something.fn", root)
        assert sliced.kind == "tree"
        assert "outside package" in sliced.reason
        assert sliced.digest == code_fingerprint(root)

    def test_unknown_entry_module_degrades_to_tree(self, tmp_path):
        root = _sliceable(tmp_path)
        sliced = slice_fingerprint("pkg.ghost.fn", root)
        assert sliced.kind == "tree"
        assert sliced.digest == code_fingerprint(root)

    def test_real_experiment_slices_exclude_exporters_and_checks(self):
        # The headline behaviour: obs/export.py and the check passes are
        # outside every experiment's slice, so editing them cannot
        # invalidate cached GSPN results.
        sliced = slice_fingerprint("repro.analysis.experiments.table1")
        assert sliced.kind == "slice", sliced.reason
        assert "repro.analysis.experiments" in sliced.modules
        assert "repro.obs.export" not in sliced.modules
        assert "repro.check.gspn" not in sliced.modules
        assert "repro.check.deps" not in sliced.modules
        assert "repro.__main__" not in sliced.modules


class TestSlicerSalt:
    def test_slicer_change_would_invalidate_slices(self, tmp_path):
        # The slicer hashes itself (callgraph.py + fingerprint.py) into
        # every slice: digests computed by a buggy slicer must die with
        # the bug.  Simulate with a synthetic tree carrying those files.
        root = _sliceable(tmp_path)
        (root / "check").mkdir()
        (root / "check" / "__init__.py").touch()
        (root / "check" / "callgraph.py").write_text("VERSION = 1\n")
        before = slice_fingerprint("pkg.entry.experiment", root)
        (root / "check" / "callgraph.py").write_text("VERSION = 2\n")
        after = slice_fingerprint("pkg.entry.experiment", root)
        assert before.kind == after.kind == "slice"
        # pkg.check is not imported by the entry, yet the digest moved.
        assert "pkg.check.callgraph" not in before.modules
        assert after.digest != before.digest


class TestCheckoutScripts:
    """In a src-layout checkout, the sibling scripts/ tree is hashed too."""

    def _checkout(self, tmp_path: Path) -> Path:
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "a.py").write_text("A = 1\n")
        scripts = tmp_path / "scripts"
        scripts.mkdir()
        (scripts / "check_docs.py").write_text("GATE = 1\n")
        return pkg

    def test_scripts_change_invalidates(self, tmp_path):
        pkg = self._checkout(tmp_path)
        before = code_fingerprint(pkg, use_cache=False)
        (tmp_path / "scripts" / "check_docs.py").write_text("GATE = 2\n")
        assert code_fingerprint(pkg, use_cache=False) != before

    def test_scripts_cannot_shadow_package_paths(self, tmp_path):
        # A scripts/x.py and a repro/scripts/x.py get distinct labels.
        from repro.runner.fingerprint import _tracked_sources

        pkg = self._checkout(tmp_path)
        (pkg / "scripts").mkdir()
        (pkg / "scripts" / "check_docs.py").write_text("GATE = 1\n")
        labels = [label for label, _ in _tracked_sources(pkg)]
        assert "scripts/check_docs.py" in labels
        assert "@scripts/check_docs.py" in labels
        assert len(labels) == len(set(labels))

    def test_non_checkout_layout_ignores_siblings(self, tmp_path):
        pkg = tmp_path / "site-packages" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "a.py").write_text("A = 1\n")
        (tmp_path / "scripts").mkdir()
        (tmp_path / "scripts" / "x.py").write_text("X = 1\n")
        before = code_fingerprint(pkg, use_cache=False)
        (tmp_path / "scripts" / "x.py").write_text("X = 2\n")
        assert code_fingerprint(pkg, use_cache=False) == before


class TestMemoUnderContention:
    def test_concurrent_misses_agree_and_fill_the_memo(self, tmp_path):
        # Regression for the _MEMO_LOCK guard: barrier-released threads
        # all miss the memo at once; duplicate computes are allowed but
        # every thread must return the same digest and the memo must
        # end up filled (a torn dict write under free-threading would
        # corrupt it).  The static side is `check --only races`.
        import threading

        root = _tree(tmp_path)
        invalidate()
        digests = [None] * 8
        barrier = threading.Barrier(len(digests))

        def work(i):
            barrier.wait()
            digests[i] = code_fingerprint(root)

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(len(digests))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        assert len(set(digests)) == 1
        assert digests[0] == code_fingerprint(root)  # memo hit agrees
