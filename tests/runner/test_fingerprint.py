"""Code fingerprinting: stability and invalidation."""

from pathlib import Path

from repro.runner import code_fingerprint


def _tree(tmp_path: Path) -> Path:
    root = tmp_path / "pkg"
    (root / "sub").mkdir(parents=True)
    (root / "a.py").write_text("A = 1\n")
    (root / "sub" / "b.py").write_text("B = 2\n")
    return root


class TestCodeFingerprint:
    def test_deterministic(self, tmp_path):
        root = _tree(tmp_path)
        first = code_fingerprint(root, use_cache=False)
        second = code_fingerprint(root, use_cache=False)
        assert first == second
        assert len(first) == 64  # sha256 hex

    def test_content_change_invalidates(self, tmp_path):
        root = _tree(tmp_path)
        before = code_fingerprint(root, use_cache=False)
        (root / "sub" / "b.py").write_text("B = 3\n")
        assert code_fingerprint(root, use_cache=False) != before

    def test_new_file_invalidates(self, tmp_path):
        root = _tree(tmp_path)
        before = code_fingerprint(root, use_cache=False)
        (root / "c.py").write_text("")
        assert code_fingerprint(root, use_cache=False) != before

    def test_rename_invalidates(self, tmp_path):
        root = _tree(tmp_path)
        before = code_fingerprint(root, use_cache=False)
        (root / "a.py").rename(root / "z.py")
        assert code_fingerprint(root, use_cache=False) != before

    def test_pycache_ignored(self, tmp_path):
        root = _tree(tmp_path)
        before = code_fingerprint(root, use_cache=False)
        cachedir = root / "__pycache__"
        cachedir.mkdir()
        (cachedir / "a.cpython-311.py").write_text("junk")
        assert code_fingerprint(root, use_cache=False) == before

    def test_package_default(self):
        # Fingerprinting the installed package works and is cached.
        assert code_fingerprint() == code_fingerprint()


class TestCheckoutScripts:
    """In a src-layout checkout, the sibling scripts/ tree is hashed too."""

    def _checkout(self, tmp_path: Path) -> Path:
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "a.py").write_text("A = 1\n")
        scripts = tmp_path / "scripts"
        scripts.mkdir()
        (scripts / "check_docs.py").write_text("GATE = 1\n")
        return pkg

    def test_scripts_change_invalidates(self, tmp_path):
        pkg = self._checkout(tmp_path)
        before = code_fingerprint(pkg, use_cache=False)
        (tmp_path / "scripts" / "check_docs.py").write_text("GATE = 2\n")
        assert code_fingerprint(pkg, use_cache=False) != before

    def test_scripts_cannot_shadow_package_paths(self, tmp_path):
        # A scripts/x.py and a repro/scripts/x.py get distinct labels.
        from repro.runner.fingerprint import _tracked_sources

        pkg = self._checkout(tmp_path)
        (pkg / "scripts").mkdir()
        (pkg / "scripts" / "check_docs.py").write_text("GATE = 1\n")
        labels = [label for label, _ in _tracked_sources(pkg)]
        assert "scripts/check_docs.py" in labels
        assert "@scripts/check_docs.py" in labels
        assert len(labels) == len(set(labels))

    def test_non_checkout_layout_ignores_siblings(self, tmp_path):
        pkg = tmp_path / "site-packages" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "a.py").write_text("A = 1\n")
        (tmp_path / "scripts").mkdir()
        (tmp_path / "scripts" / "x.py").write_text("X = 1\n")
        before = code_fingerprint(pkg, use_cache=False)
        (tmp_path / "scripts" / "x.py").write_text("X = 2\n")
        assert code_fingerprint(pkg, use_cache=False) == before
