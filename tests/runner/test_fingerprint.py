"""Code fingerprinting: stability and invalidation."""

from pathlib import Path

from repro.runner import code_fingerprint


def _tree(tmp_path: Path) -> Path:
    root = tmp_path / "pkg"
    (root / "sub").mkdir(parents=True)
    (root / "a.py").write_text("A = 1\n")
    (root / "sub" / "b.py").write_text("B = 2\n")
    return root


class TestCodeFingerprint:
    def test_deterministic(self, tmp_path):
        root = _tree(tmp_path)
        first = code_fingerprint(root, use_cache=False)
        second = code_fingerprint(root, use_cache=False)
        assert first == second
        assert len(first) == 64  # sha256 hex

    def test_content_change_invalidates(self, tmp_path):
        root = _tree(tmp_path)
        before = code_fingerprint(root, use_cache=False)
        (root / "sub" / "b.py").write_text("B = 3\n")
        assert code_fingerprint(root, use_cache=False) != before

    def test_new_file_invalidates(self, tmp_path):
        root = _tree(tmp_path)
        before = code_fingerprint(root, use_cache=False)
        (root / "c.py").write_text("")
        assert code_fingerprint(root, use_cache=False) != before

    def test_rename_invalidates(self, tmp_path):
        root = _tree(tmp_path)
        before = code_fingerprint(root, use_cache=False)
        (root / "a.py").rename(root / "z.py")
        assert code_fingerprint(root, use_cache=False) != before

    def test_pycache_ignored(self, tmp_path):
        root = _tree(tmp_path)
        before = code_fingerprint(root, use_cache=False)
        cachedir = root / "__pycache__"
        cachedir.mkdir()
        (cachedir / "a.cpython-311.py").write_text("junk")
        assert code_fingerprint(root, use_cache=False) == before

    def test_package_default(self):
        # Fingerprinting the installed package works and is cached.
        assert code_fingerprint() == code_fingerprint()
