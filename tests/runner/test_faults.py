"""Fault-injection plans: parsing, matching, determinism."""

import pytest

from repro.faults import (
    ENV_INJECT,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    corrupt_payload,
    parse_fault_entry,
)


class TestParsing:
    def test_label_kind(self):
        spec = parse_fault_entry("figure7/126.gcc=crash")
        assert spec == FaultSpec("figure7/126.gcc", "crash", None)

    def test_attempt_bound(self):
        spec = parse_fault_entry("table1=raise:2")
        assert spec.times == 2

    def test_label_may_contain_equals(self):
        spec = parse_fault_entry("replication/seed=3=hang")
        assert spec.pattern == "replication/seed=3"
        assert spec.kind == "hang"

    @pytest.mark.parametrize("bad", [
        "no-equals", "=crash", "x=", "x=unknown", "x=crash:zero",
        "x=crash:0",
    ])
    def test_bad_entries_rejected(self, bad):
        with pytest.raises(FaultPlanError):
            parse_fault_entry(bad)

    def test_plan_parse_skips_blank_entries(self):
        plan = FaultPlan.parse(["a=crash", "  ", ""])
        assert len(plan.specs) == 1

    def test_from_env(self):
        plan = FaultPlan.from_env({ENV_INJECT: "a=crash, b=raise:1"})
        assert [s.kind for s in plan.specs] == ["crash", "raise"]
        assert not FaultPlan.from_env({})


class TestMatching:
    def test_exact_label(self):
        plan = FaultPlan.parse(["figure7/126.gcc=crash"])
        assert plan.fault_for("figure7/126.gcc", 1) == "crash"
        assert plan.fault_for("figure7/102.swim", 1) is None

    def test_glob_matches_every_shard(self):
        plan = FaultPlan.parse(["figure7/*=hang"])
        assert plan.fault_for("figure7/126.gcc", 1) == "hang"
        assert plan.fault_for("figure8/126.gcc", 1) is None

    def test_times_bounds_attempts(self):
        plan = FaultPlan.parse(["t=crash:2"])
        assert plan.fault_for("t", 1) == "crash"
        assert plan.fault_for("t", 2) == "crash"
        assert plan.fault_for("t", 3) is None

    def test_unbounded_faults_every_attempt(self):
        plan = FaultPlan.parse(["t=corrupt"])
        assert all(plan.fault_for("t", n) == "corrupt" for n in (1, 5, 50))

    def test_first_match_wins(self):
        plan = FaultPlan.parse(["t=crash:1", "t=raise"])
        assert plan.fault_for("t", 1) == "crash"
        assert plan.fault_for("t", 2) == "raise"

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan.parse(["t=crash"])


class TestCorruptPayload:
    def test_deterministic_and_damaging(self):
        payload = b"\x80\x05data"
        assert corrupt_payload(payload) != payload
        assert corrupt_payload(payload) == corrupt_payload(payload)
        assert len(corrupt_payload(payload)) == len(payload)

    def test_empty_payload_still_changes(self):
        assert corrupt_payload(b"") != b""
