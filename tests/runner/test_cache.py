"""Result cache: hit/miss semantics and key sensitivity."""

from repro.runner import ResultCache, cached_call


def _cache(tmp_path, fingerprint="f" * 64):
    return ResultCache(tmp_path / "cache", fingerprint=fingerprint)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = _cache(tmp_path)
        key = cache.key("experiment:demo", {"n": 3})
        assert cache.load(key) is None
        cache.store(key, {"value": 42}, {"tallies": {"gspn_firings": 7}})
        entry = cache.load(key)
        assert entry is not None
        assert entry.result == {"value": 42}
        assert entry.meta["tallies"] == {"gspn_firings": 7}

    def test_key_depends_on_kwargs(self, tmp_path):
        cache = _cache(tmp_path)
        assert cache.key("experiment:demo", {"n": 3}) != cache.key(
            "experiment:demo", {"n": 4}
        )

    def test_key_depends_on_call_id(self, tmp_path):
        cache = _cache(tmp_path)
        assert cache.key("experiment:a", {}) != cache.key("experiment:b", {})

    def test_kwarg_order_is_canonical(self, tmp_path):
        cache = _cache(tmp_path)
        assert cache.key("x", {"a": 1, "b": 2}) == cache.key(
            "x", {"b": 2, "a": 1}
        )

    def test_code_fingerprint_invalidates(self, tmp_path):
        old = ResultCache(tmp_path / "cache", fingerprint="a" * 64)
        new = ResultCache(tmp_path / "cache", fingerprint="b" * 64)
        key = old.key("experiment:demo", {"n": 3})
        old.store(key, "stale", {})
        # The same logical computation under new code is a different key,
        # so the stale entry can never be returned.
        assert new.key("experiment:demo", {"n": 3}) != key
        assert new.load(new.key("experiment:demo", {"n": 3})) is None

    def test_damaged_entry_is_a_miss(self, tmp_path):
        cache = _cache(tmp_path)
        key = cache.key("experiment:demo", {})
        cache.store(key, [1, 2, 3], {})
        pkl, _ = cache._paths(key)
        pkl.write_bytes(b"not a pickle")
        assert cache.load(key) is None


def _double(x=0):
    return 2 * x


class TestCachedCall:
    def test_roundtrip_and_reuse(self, tmp_path):
        cache = _cache(tmp_path)
        assert cached_call(_double, {"x": 4}, cache) == 8
        key = cache.key(
            f"{_double.__module__}.{_double.__qualname__}", {"x": 4}
        )
        entry = cache.load(key)
        assert entry is not None and entry.result == 8
        # Poison the cache to prove the second call is served from it.
        cache.store(key, 99, entry.meta)
        assert cached_call(_double, {"x": 4}, cache) == 99

    def test_positional_args_in_key(self, tmp_path):
        cache = _cache(tmp_path)
        assert cached_call(_double, {}, cache, args=(5,)) == 10
        assert cached_call(_double, {}, cache, args=(6,)) == 12

    def test_disabled(self, tmp_path):
        assert cached_call(_double, {"x": 4}, None) == 8
        assert not (tmp_path / "cache").exists()
