"""Result cache: hit/miss semantics, key sensitivity, quarantine."""

import textwrap

from repro.common import tally
from repro.runner import ResultCache, cached_call, code_fingerprint


def _cache(tmp_path, fingerprint="f" * 64):
    return ResultCache(tmp_path / "cache", fingerprint=fingerprint)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = _cache(tmp_path)
        key = cache.key("experiment:demo", {"n": 3})
        assert cache.load(key) is None
        cache.store(key, {"value": 42}, {"tallies": {"gspn_firings": 7}})
        entry = cache.load(key)
        assert entry is not None
        assert entry.result == {"value": 42}
        assert entry.meta["tallies"] == {"gspn_firings": 7}

    def test_key_depends_on_kwargs(self, tmp_path):
        cache = _cache(tmp_path)
        assert cache.key("experiment:demo", {"n": 3}) != cache.key(
            "experiment:demo", {"n": 4}
        )

    def test_key_depends_on_call_id(self, tmp_path):
        cache = _cache(tmp_path)
        assert cache.key("experiment:a", {}) != cache.key("experiment:b", {})

    def test_kwarg_order_is_canonical(self, tmp_path):
        cache = _cache(tmp_path)
        assert cache.key("x", {"a": 1, "b": 2}) == cache.key(
            "x", {"b": 2, "a": 1}
        )

    def test_code_fingerprint_invalidates(self, tmp_path):
        old = ResultCache(tmp_path / "cache", fingerprint="a" * 64)
        new = ResultCache(tmp_path / "cache", fingerprint="b" * 64)
        key = old.key("experiment:demo", {"n": 3})
        old.store(key, "stale", {})
        # The same logical computation under new code is a different key,
        # so the stale entry can never be returned.
        assert new.key("experiment:demo", {"n": 3}) != key
        assert new.load(new.key("experiment:demo", {"n": 3})) is None

    def test_damaged_entry_is_a_miss(self, tmp_path):
        cache = _cache(tmp_path)
        key = cache.key("experiment:demo", {})
        cache.store(key, [1, 2, 3], {})
        pkl, _ = cache._paths(key)
        pkl.write_bytes(b"not a pickle")
        assert cache.load(key) is None

    def test_damaged_entry_is_quarantined_not_rereadable(self, tmp_path):
        # A corrupt .pkl must be renamed aside so it is read (and fails)
        # exactly once, and the event must surface in the tallies.
        cache = _cache(tmp_path)
        key = cache.key("experiment:demo", {})
        cache.store(key, [1, 2, 3], {"tallies": {}})
        pkl, meta = cache._paths(key)
        pkl.write_bytes(b"not a pickle")
        before = tally.snapshot()
        assert cache.load(key) is None
        assert tally.since(before) == {"cache_corrupt_entries": 1}
        assert not pkl.exists()
        assert pkl.with_suffix(".pkl.corrupt").exists()
        assert meta.with_suffix(".json.corrupt").exists()
        # The quarantined entry stays a plain miss afterwards, with no
        # second tally: there is nothing left on disk to re-read.
        before = tally.snapshot()
        assert cache.load(key) is None
        assert tally.since(before) == {}
        # A recompute can store fresh results under the same key.
        cache.store(key, [4, 5], {})
        entry = cache.load(key)
        assert entry is not None and entry.result == [4, 5]

    def test_damaged_meta_quarantines_both_files(self, tmp_path):
        cache = _cache(tmp_path)
        key = cache.key("experiment:demo", {})
        cache.store(key, "value", {})
        pkl, meta = cache._paths(key)
        meta.write_text("{not json")
        assert cache.load(key) is None
        assert not pkl.exists() and not meta.exists()
        assert pkl.with_suffix(".pkl.corrupt").exists()

    def test_torn_write_at_final_path_still_quarantines(self, tmp_path):
        # The atomic-rename protocol means store() can never leave a
        # partial pickle at the final path — but a crashed writer from
        # *before* the protocol (or a filesystem fault) still can, and
        # that entry must quarantine exactly like any other damage.
        cache = _cache(tmp_path)
        key = cache.key("experiment:demo", {})
        cache.store(key, list(range(100)), {})
        pkl, _ = cache._paths(key)
        pkl.write_bytes(pkl.read_bytes()[:10])  # torn mid-payload
        before = tally.snapshot()
        assert cache.load(key) is None
        assert tally.since(before) == {"cache_corrupt_entries": 1}
        assert pkl.with_suffix(".pkl.corrupt").exists()


class TestConcurrentStore:
    """The daemon's worker threads store concurrently; writes must be
    atomic (write-to-temp + ``os.replace``) so a reader never sees — and
    the quarantine path never fires on — a torn entry."""

    def test_tmp_suffixes_never_collide(self, tmp_path):
        import threading

        cache = _cache(tmp_path)
        suffixes = []
        lock = threading.Lock()

        def grab():
            mine = [cache._tmp_suffix() for _ in range(50)]
            with lock:
                suffixes.extend(mine)

        threads = [threading.Thread(target=grab) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(suffixes)) == len(suffixes)
        # pid and thread id are both in the name, so two *processes*
        # (or a fork) cannot collide either.
        import os

        assert str(os.getpid()) in suffixes[0]

    def test_concurrent_same_key_stores_never_quarantine(self, tmp_path):
        # Before atomic renames, two threads sharing the temp path
        # interleaved their pickles into a torn file; this hammers the
        # exact same key from many threads and demands every subsequent
        # load is a clean hit with one of the written payloads.
        import threading

        cache = _cache(tmp_path)
        key = cache.key("experiment:demo", {"n": 1})
        payloads = [list(range(i, i + 1000)) for i in range(8)]
        barrier = threading.Barrier(len(payloads))

        def writer(payload):
            barrier.wait()
            for _ in range(25):
                cache.store(key, payload, {"tallies": {}})

        threads = [threading.Thread(target=writer, args=(p,))
                   for p in payloads]
        before = tally.snapshot()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        entry = cache.load(key)
        assert entry is not None and entry.result in payloads
        assert tally.since(before) == {}  # no quarantine ever fired
        pkl, _ = cache._paths(key)
        assert not pkl.with_suffix(".pkl.corrupt").exists()
        # No temp litter left behind either.
        assert [p.name for p in pkl.parent.iterdir()
                if ".tmp-" in p.name] == []


def _sliceable(tmp_path):
    """A tiny package: entry.py -> model.py, exporter.py outside."""
    root = tmp_path / "spkg"
    root.mkdir()
    (root / "__init__.py").touch()
    (root / "entry.py").write_text(textwrap.dedent("""
        from spkg.model import simulate

        def experiment():
            return simulate()
    """))
    (root / "model.py").write_text("def simulate():\n    return 42\n")
    (root / "exporter.py").write_text("FORMAT = 'json'\n")
    return root


class TestSliceKeying:
    def test_no_entry_point_uses_tree_fingerprint(self, tmp_path):
        cache = ResultCache(tmp_path / "cache",
                            package_root=_sliceable(tmp_path))
        assert cache.fingerprint_for(None) == (cache.fingerprint, "tree")

    def test_entry_point_gets_slice_kind(self, tmp_path):
        root = _sliceable(tmp_path)
        cache = ResultCache(tmp_path / "cache", package_root=root)
        digest, kind = cache.fingerprint_for("spkg.entry.experiment")
        assert kind == "slice"
        assert digest != cache.fingerprint

    def test_edit_outside_slice_keeps_key(self, tmp_path):
        root = _sliceable(tmp_path)
        cache = ResultCache(tmp_path / "cache", package_root=root)
        key = cache.key("experiment:demo", {"n": 3},
                        entry="spkg.entry.experiment")
        (root / "exporter.py").write_text("FORMAT = 'csv'\n")
        fresh = ResultCache(tmp_path / "cache", package_root=root)
        assert fresh.fingerprint != cache.fingerprint  # tree hash moved
        assert fresh.key("experiment:demo", {"n": 3},
                         entry="spkg.entry.experiment") == key

    def test_edit_inside_slice_changes_key(self, tmp_path):
        root = _sliceable(tmp_path)
        cache = ResultCache(tmp_path / "cache", package_root=root)
        key = cache.key("experiment:demo", {"n": 3},
                        entry="spkg.entry.experiment")
        (root / "model.py").write_text("def simulate():\n    return 43\n")
        fresh = ResultCache(tmp_path / "cache", package_root=root)
        assert fresh.key("experiment:demo", {"n": 3},
                         entry="spkg.entry.experiment") != key

    def test_degraded_slice_lands_on_pinned_fingerprint(self, tmp_path):
        # A dynamic import degrades the slice; the key must fall back to
        # the cache's own (here explicitly pinned) tree fingerprint, not
        # some recomputed digest the pinning caller never saw.
        root = _sliceable(tmp_path)
        (root / "model.py").write_text(
            "import importlib\n"
            "def simulate():\n"
            "    return importlib.import_module('json')\n"
        )
        cache = ResultCache(tmp_path / "cache", fingerprint="f" * 64,
                            package_root=root)
        assert cache.fingerprint_for("spkg.entry.experiment") == \
            ("f" * 64, "tree")

    def test_slicing_disabled_always_uses_tree(self, tmp_path):
        root = _sliceable(tmp_path)
        cache = ResultCache(tmp_path / "cache", slicing=False,
                            package_root=root)
        assert cache.fingerprint_for("spkg.entry.experiment") == \
            (cache.fingerprint, "tree")

    def test_slice_lookup_is_memoized(self, tmp_path):
        root = _sliceable(tmp_path)
        cache = ResultCache(tmp_path / "cache", package_root=root)
        first = cache.fingerprint_for("spkg.entry.experiment")
        assert cache._slices["spkg.entry.experiment"] == first
        assert cache.fingerprint_for("spkg.entry.experiment") is \
            cache._slices["spkg.entry.experiment"]

    def test_real_registry_entry_slices(self, tmp_path):
        # The shipped tree: registry entry points key by slice, and an
        # unsliceable test-module entry degrades to the tree digest.
        cache = ResultCache(tmp_path / "cache")
        digest, kind = cache.fingerprint_for(
            "repro.analysis.experiments.table1")
        assert kind == "slice"
        assert digest != code_fingerprint()
        assert cache.fingerprint_for("tests.runner.test_cache._double") == \
            (cache.fingerprint, "tree")


def _double(x=0):
    return 2 * x


class TestCachedCall:
    def test_roundtrip_and_reuse(self, tmp_path):
        cache = _cache(tmp_path)
        assert cached_call(_double, {"x": 4}, cache) == 8
        key = cache.key(
            f"{_double.__module__}.{_double.__qualname__}", {"x": 4}
        )
        entry = cache.load(key)
        assert entry is not None and entry.result == 8
        # Poison the cache to prove the second call is served from it.
        cache.store(key, 99, entry.meta)
        assert cached_call(_double, {"x": 4}, cache) == 99

    def test_positional_args_in_key(self, tmp_path):
        cache = _cache(tmp_path)
        assert cached_call(_double, {}, cache, args=(5,)) == 10
        assert cached_call(_double, {}, cache, args=(6,)) == 12

    def test_disabled(self, tmp_path):
        assert cached_call(_double, {"x": 4}, None) == 8
        assert not (tmp_path / "cache").exists()
