"""End-to-end: registry sharding reproduces direct experiment calls.

Small trace lengths keep this fast; the properties checked are exactly
the CLI's guarantees — ``--jobs N`` output is byte-identical to
``--jobs 1`` and to calling the experiment function directly, and a
second run is served entirely from the cache.
"""

import pytest

from repro.analysis import EXPERIMENTS, SPECS, run_experiments
from repro.analysis.docs import render_result
from repro.runner import ResultCache

SMALL = {
    "figure7": {"trace_len": 2_000},
    "figure11": {"trace_len": 2_000, "instructions": 300},
    "table3": {"trace_len": 2_000, "instructions": 300,
               "names": ("126.gcc", "102.swim")},
    "crossover": {"trace_len": 2_000, "instructions": 300},
    "section5.6": {"trace_len": 4_000, "instructions": 400},
    "figures13-17": {"proc_counts": (1, 2)},
}


class TestShardingEquality:
    @pytest.mark.parametrize("name", sorted(SMALL))
    def test_sharded_matches_direct(self, name):
        direct = EXPERIMENTS[name](**SMALL[name])
        results, metrics = run_experiments(
            [name], {name: SMALL[name]}, jobs=1, cache=None
        )
        assert render_result(results[name]) == render_result(direct)
        if SPECS[name].shard_param is not None:
            assert len(metrics.tasks) > 1  # actually fanned out

    def test_parallel_matches_serial(self):
        names = ["figure7", "section5.6"]
        overrides = {n: SMALL[n] for n in names}
        serial, _ = run_experiments(names, overrides, jobs=1)
        parallel, _ = run_experiments(names, overrides, jobs=2)
        for name in names:
            assert render_result(parallel[name]) == render_result(serial[name])

    def test_second_run_is_all_cache_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        overrides = {"figure11": SMALL["figure11"]}
        first, m1 = run_experiments(["figure11"], overrides, jobs=1,
                                    cache=cache)
        assert m1.misses == len(m1.tasks)
        second, m2 = run_experiments(["figure11"], overrides, jobs=1,
                                     cache=cache)
        assert m2.hits == len(m2.tasks) and m2.misses == 0
        assert render_result(second["figure11"]) == render_result(
            first["figure11"]
        )


class TestRegistry:
    def test_every_experiment_has_a_spec(self):
        assert set(SPECS) == set(EXPERIMENTS)

    def test_specs_document_paper_and_modules(self):
        import importlib

        for spec in SPECS.values():
            assert spec.paper_ref and spec.summary
            for module in spec.modules:
                importlib.import_module(module)

    def test_shard_values_cover_defaults(self):
        from repro.paperdata import PAPER_TABLE3
        from repro.workloads.spec import ALL_NAMES

        assert SPECS["figure7"].shard_values == tuple(ALL_NAMES)
        assert SPECS["table3"].shard_values == tuple(PAPER_TABLE3)
        assert SPECS["figures13-17"].shard_values == (
            "lu", "mp3d", "ocean", "water", "pthor",
        )

    def test_docs_table_lists_every_experiment(self):
        from repro.analysis import docs_table

        table = docs_table()
        for name in SPECS:
            assert f"`{name}`" in table
