"""Run journal semantics, and the SIGTERM-drains-like-Ctrl-C bridge."""

import json
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.runner import ResultCache, RunJournal, sigterm_interrupts
from repro.runner.journal import (
    STATUS_DONE,
    STATUS_QUARANTINED,
    STATUS_SUBMITTED,
)


def _journal(tmp_path):
    return RunJournal(tmp_path / "cache", "f" * 64)


class TestRecords:
    def test_begin_truncates_unless_resuming(self, tmp_path):
        journal = _journal(tmp_path)
        journal.begin(resume=False)
        journal.record("a", status=STATUS_DONE, key="k1")
        journal.begin(resume=True)
        assert journal.completed() == {"a": "k1"}
        journal.begin(resume=False)
        assert journal.completed() == {}

    def test_extra_fields_are_merged(self, tmp_path):
        journal = _journal(tmp_path)
        journal.begin(resume=False)
        journal.record("a", status=STATUS_SUBMITTED, key="k1",
                       extra={"request": {"n": 3}})
        [record] = journal.entries()
        assert record["request"] == {"n": 3}
        assert record["status"] == STATUS_SUBMITTED

    def test_submitted_never_demotes_done(self, tmp_path):
        # The daemon journals an admission before the settle; a *later*
        # submit of the same label (coalesce miss, resubmit) must not
        # make --resume forget the completion.
        journal = _journal(tmp_path)
        journal.begin(resume=False)
        journal.record("a", status=STATUS_DONE, key="k1")
        journal.record("a", status=STATUS_SUBMITTED, key="k1")
        assert journal.completed() == {"a": "k1"}
        journal.record("a", status=STATUS_QUARANTINED, key="k1")
        assert journal.completed() == {}  # a real verdict still un-does it

    def test_pending_is_latest_submitted_only(self, tmp_path):
        journal = _journal(tmp_path)
        journal.begin(resume=False)
        journal.record("a", status=STATUS_SUBMITTED, key="k1")
        journal.record("b", status=STATUS_SUBMITTED, key="k2")
        journal.record("a", status=STATUS_DONE, key="k1")
        pending = journal.pending()
        assert [record["label"] for record in pending] == ["b"]

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        journal = _journal(tmp_path)
        journal.begin(resume=False)
        journal.record("a", status=STATUS_DONE, key="k1")
        with journal.path.open("a") as fh:
            fh.write('{"label": "b", "stat')  # killed mid-append
        assert journal.completed() == {"a": "k1"}


class TestSigtermBridge:
    def test_noop_off_the_main_thread(self):
        # Only the main thread may set signal handlers; elsewhere the
        # bridge must be a transparent no-op, not an error.
        import threading

        before = signal.getsignal(signal.SIGTERM)
        seen = {}

        def run():
            with sigterm_interrupts():
                seen["handler"] = signal.getsignal(signal.SIGTERM)

        thread = threading.Thread(target=run)
        thread.start()
        thread.join()
        assert seen["handler"] is before

    def test_restores_previous_handler(self):
        def handler(signum, frame):
            pass

        previous = signal.signal(signal.SIGTERM, handler)
        try:
            with sigterm_interrupts():
                assert signal.getsignal(signal.SIGTERM) is not handler
            assert signal.getsignal(signal.SIGTERM) is handler
        finally:
            signal.signal(signal.SIGTERM, previous)

    def test_raises_keyboard_interrupt_in_context(self):
        with pytest.raises(KeyboardInterrupt):
            with sigterm_interrupts():
                signal.raise_signal(signal.SIGTERM)

    @pytest.mark.skipif(sys.platform == "win32",
                        reason="POSIX signal semantics")
    def test_sigterm_flushes_journal_like_ctrl_c(self, tmp_path):
        # Regression for the daemon/sweep drain path: a run killed with
        # SIGTERM mid-sweep must leave the same journal a Ctrl-C leaves —
        # every task that settled *before* the signal journaled done,
        # the run exiting through the KeyboardInterrupt path (130).
        script = tmp_path / "victim.py"
        src = Path(__file__).resolve().parents[2] / "src"
        script.write_text(textwrap.dedent(f"""
            import signal, sys
            sys.path.insert(0, {str(src)!r})
            from repro.runner import ResultCache, RunJournal, run_tasks, \\
                sigterm_interrupts
            from repro.runner.core import Task

            def ok(n=0):
                return n

            def terminate(n=0):
                signal.raise_signal(signal.SIGTERM)  # a `kill <pid>`
                return n

            cache = ResultCache({str(tmp_path / "cache")!r},
                                fingerprint="f" * 64)
            journal = RunJournal(cache.root, cache.fingerprint)
            tasks = [
                Task("demo", "first", ok, {{"n": 1}}),
                Task("demo", "second", terminate, {{"n": 2}}),
                Task("demo", "third", ok, {{"n": 3}}),
            ]
            try:
                with sigterm_interrupts():
                    run_tasks(tasks, jobs=1, cache=cache, journal=journal)
            except KeyboardInterrupt:
                sys.exit(130)
            sys.exit(0)
        """))
        proc = subprocess.run([sys.executable, str(script)],
                              capture_output=True, text=True, timeout=60)
        assert proc.returncode == 130, proc.stderr

        # The journal survived the kill, flushed: first done, the rest
        # never settled (so a --resume would rerun exactly those).
        journal = RunJournal(tmp_path / "cache", "f" * 64)
        completed = journal.completed()
        assert list(completed) == ["demo/first"]
        cache = ResultCache(tmp_path / "cache", fingerprint="f" * 64)
        entry = cache.load(completed["demo/first"])
        assert entry is not None and entry.result == 1

    def test_journal_lines_are_whole_json(self, tmp_path):
        # Per-record flush writes the line atomically enough that a
        # reader mid-run parses every completed line.
        journal = _journal(tmp_path)
        journal.begin(resume=False)
        for index in range(50):
            journal.record(f"t{index}", status=STATUS_DONE, key=f"k{index}")
        lines = journal.path.read_text().splitlines()
        assert len(lines) == 50
        for line in lines:
            json.loads(line)
