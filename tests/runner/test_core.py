"""Task executor: jobs=1 vs jobs=N equality, caching, metrics."""

import json

from repro.common import tally
from repro.runner import (
    METRICS_SCHEMA_VERSION,
    ResultCache,
    Task,
    run_tasks,
)


def _work(n=1, seed=0):
    # Deterministic in its arguments, like every experiment function.
    tally.add("gspn_firings", 10 * n)
    return sum((seed + i) ** 2 for i in range(n))


def _tasks():
    return [
        Task("demo", str(n), _work, {"n": n, "seed": n}) for n in (1, 2, 3, 4)
    ]


class TestRunTasks:
    def test_serial_parallel_equality(self):
        serial, _ = run_tasks(_tasks(), jobs=1)
        parallel, _ = run_tasks(_tasks(), jobs=3)
        assert serial == parallel

    def test_results_keyed_by_shard(self):
        results, _ = run_tasks(_tasks(), jobs=1)
        assert results[("demo", "2")] == _work(n=2, seed=2)

    def test_cache_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="c" * 64)
        first, m1 = run_tasks(_tasks(), jobs=1, cache=cache)
        assert m1.misses == 4 and m1.hits == 0
        second, m2 = run_tasks(_tasks(), jobs=2, cache=cache)
        assert m2.hits == 4 and m2.misses == 0
        assert first == second
        # Tallies survive the cache: hits report the original counts.
        assert m2.tallies_for("demo") == m1.tallies_for("demo")

    def test_fingerprint_change_forces_recompute(self, tmp_path):
        old = ResultCache(tmp_path, fingerprint="c" * 64)
        run_tasks(_tasks(), jobs=1, cache=old)
        new = ResultCache(tmp_path, fingerprint="d" * 64)
        _, metrics = run_tasks(_tasks(), jobs=1, cache=new)
        assert metrics.misses == 4

    def test_metrics_order_and_tallies(self):
        _, metrics = run_tasks(_tasks(), jobs=2)
        assert [t.shard for t in metrics.tasks] == ["1", "2", "3", "4"]
        assert metrics.tallies_for("demo") == {"gspn_firings": 100}


class TestMetricsJSON:
    def test_schema(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="c" * 64)
        _, metrics = run_tasks(_tasks(), jobs=2, cache=cache)
        out = tmp_path / "metrics.json"
        metrics.write(out)
        data = json.loads(out.read_text())
        assert data["schema"] == METRICS_SCHEMA_VERSION
        assert data["jobs"] == 2
        assert data["fingerprint"] == "c" * 64
        assert data["cache_misses"] == 4
        assert data["quarantined"] == 0
        assert 0.0 <= data["utilization"] <= 1.0
        assert data["wall_s"] >= 0 and data["busy_s"] >= 0
        assert len(data["tasks"]) == 4
        for task in data["tasks"]:
            assert set(task) == {
                "experiment", "shard", "cache", "wall_s", "worker",
                "tallies", "key", "status", "attempts",
            }
            assert task["cache"] in ("hit", "miss", "off", "resumed")
            assert task["status"] == "ok" and task["attempts"] == 1
            assert task["tallies"] == {"gspn_firings": 10 * int(task["shard"])}

    def test_render_mentions_cache_and_jobs(self):
        _, metrics = run_tasks(_tasks(), jobs=1)
        text = metrics.render()
        assert "demo" in text
        assert "jobs=1" in text
        assert "utilization" in text
