"""Task executor: jobs=1 vs jobs=N equality, caching, metrics."""

import json

import pytest

from repro import obs
from repro.common import tally
from repro.faults import FaultPlan
from repro.runner import (
    METRICS_SCHEMA_VERSION,
    ResultCache,
    SupervisionPolicy,
    Task,
    run_tasks,
)


def _work(n=1, seed=0):
    # Deterministic in its arguments, like every experiment function.
    tally.add("gspn_firings", 10 * n)
    return sum((seed + i) ** 2 for i in range(n))


def _tasks():
    return [
        Task("demo", str(n), _work, {"n": n, "seed": n}) for n in (1, 2, 3, 4)
    ]


class TestRunTasks:
    def test_serial_parallel_equality(self):
        serial, _ = run_tasks(_tasks(), jobs=1)
        parallel, _ = run_tasks(_tasks(), jobs=3)
        assert serial == parallel

    def test_results_keyed_by_shard(self):
        results, _ = run_tasks(_tasks(), jobs=1)
        assert results[("demo", "2")] == _work(n=2, seed=2)

    def test_cache_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="c" * 64)
        first, m1 = run_tasks(_tasks(), jobs=1, cache=cache)
        assert m1.misses == 4 and m1.hits == 0
        second, m2 = run_tasks(_tasks(), jobs=2, cache=cache)
        assert m2.hits == 4 and m2.misses == 0
        assert first == second
        # Tallies survive the cache: hits report the original counts.
        assert m2.tallies_for("demo") == m1.tallies_for("demo")

    def test_fingerprint_change_forces_recompute(self, tmp_path):
        old = ResultCache(tmp_path, fingerprint="c" * 64)
        run_tasks(_tasks(), jobs=1, cache=old)
        new = ResultCache(tmp_path, fingerprint="d" * 64)
        _, metrics = run_tasks(_tasks(), jobs=1, cache=new)
        assert metrics.misses == 4

    def test_metrics_order_and_tallies(self):
        _, metrics = run_tasks(_tasks(), jobs=2)
        assert [t.shard for t in metrics.tasks] == ["1", "2", "3", "4"]
        assert metrics.tallies_for("demo") == {"gspn_firings": 100}


class TestMetricsJSON:
    def test_schema(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="c" * 64)
        _, metrics = run_tasks(_tasks(), jobs=2, cache=cache)
        out = tmp_path / "metrics.json"
        metrics.write(out)
        data = json.loads(out.read_text())
        assert data["schema"] == METRICS_SCHEMA_VERSION
        assert data["jobs"] == 2
        assert data["fingerprint"] == "c" * 64
        assert data["cache_misses"] == 4
        assert data["quarantined"] == 0
        assert 0.0 <= data["utilization"] <= 1.0
        assert data["wall_s"] >= 0 and data["busy_s"] >= 0
        assert len(data["tasks"]) == 4
        for task in data["tasks"]:
            assert set(task) == {
                "experiment", "shard", "cache", "wall_s", "worker",
                "tallies", "key", "status", "attempts", "fingerprint_kind",
            }
            assert task["cache"] in ("hit", "miss", "off", "resumed")
            assert task["fingerprint_kind"] in ("slice", "tree")
            assert task["status"] == "ok" and task["attempts"] == 1
            assert task["tallies"] == {"gspn_firings": 10 * int(task["shard"])}

    def test_render_mentions_cache_and_jobs(self):
        _, metrics = run_tasks(_tasks(), jobs=1)
        text = metrics.render()
        assert "demo" in text
        assert "jobs=1" in text
        assert "utilization" in text


class TestSpanCollection:
    """Tracing across the executor: every settled task contributes its
    spans exactly once, whatever mix of workers, retries, and crashes."""

    @pytest.fixture(autouse=True)
    def tracing(self):
        obs.enable()
        obs.reset()
        yield
        obs.disable()
        obs.reset()

    def _task_spans(self):
        return sorted(
            r.name for r in obs.records() if r.name.startswith("task/")
        )

    def test_stages_populated_when_tracing(self):
        _, metrics = run_tasks(_tasks(), jobs=1)
        assert set(metrics.stages) == {
            f"task/demo/{n}" for n in (1, 2, 3, 4)
        }
        stage = metrics.stages["task/demo/2"]
        assert stage["count"] == 1
        assert stage["counters"]["gspn_firings"] == 20
        assert metrics.to_json()["stages"]["task/demo/2"]["count"] == 1

    def test_stages_empty_when_disabled(self):
        obs.disable()
        _, metrics = run_tasks(_tasks(), jobs=1)
        assert metrics.stages == {}
        assert metrics.to_json()["stages"] == {}

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_pool_workers_ship_spans_back(self, jobs):
        _, metrics = run_tasks(_tasks(), jobs=jobs)
        assert self._task_spans() == [
            "task/demo/1", "task/demo/2", "task/demo/3", "task/demo/4"
        ]
        assert metrics.stages["task/demo/3"]["counters"]["gspn_firings"] == 30

    def test_crashed_attempt_spans_are_not_double_counted(self):
        # demo/2's first pooled attempt crashes; its spans die with the
        # worker, and only the successful retry's spans come back.
        faults = FaultPlan.parse(["demo/2=crash:1"])
        _, metrics = run_tasks(
            _tasks(), jobs=2, faults=faults,
            policy=SupervisionPolicy(max_retries=1),
        )
        assert metrics.quarantined == 0
        assert self._task_spans() == [
            "task/demo/1", "task/demo/2", "task/demo/3", "task/demo/4"
        ]
        assert metrics.stages["task/demo/2"]["count"] == 1
        assert metrics.stages["task/demo/2"]["counters"]["gspn_firings"] == 20

    def test_failed_inline_attempt_spans_roll_back(self):
        # Inline execution (jobs=1) shares the supervisor's record list;
        # a corrupt first attempt's spans must be erased before the
        # retry, or the stage would count the task twice.
        faults = FaultPlan.parse(["demo/3=corrupt:1"])
        _, metrics = run_tasks(
            _tasks(), jobs=1, faults=faults,
            policy=SupervisionPolicy(max_retries=1),
        )
        assert metrics.quarantined == 0
        assert self._task_spans() == [
            "task/demo/1", "task/demo/2", "task/demo/3", "task/demo/4"
        ]
        assert metrics.stages["task/demo/3"]["count"] == 1
        assert metrics.stages["task/demo/3"]["counters"]["gspn_firings"] == 30
