"""Supervised executor: retries, timeouts, quarantine, resume, faults.

Every fault here is injected through :mod:`repro.faults`, so the
failure scenarios are deterministic — no flaky sleeps or real
segfaults, and the healthy shards must stay byte-identical to a
fault-free run.
"""

import time

import pytest

from repro.common.errors import SimulationError
from repro.faults import FaultPlan
from repro.runner import (
    FailFastError,
    ResultCache,
    RunJournal,
    SupervisionPolicy,
    Task,
    run_tasks,
    supervised_call,
    supervised_map,
)


def _work(n=1, seed=0):
    return sum((seed + i) ** 2 for i in range(n))


def _tasks():
    return [
        Task("demo", str(n), _work, {"n": n, "seed": n}) for n in (1, 2, 3, 4)
    ]


def _interrupt(n=0):
    raise KeyboardInterrupt


def _sleepy(duration=30.0):
    time.sleep(duration)
    return duration


FAST = dict(policy=SupervisionPolicy(max_retries=1))


class TestRetry:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_crash_then_retry_succeeds(self, jobs):
        # The first attempt of demo/2 crashes; the retry must succeed
        # and the sweep's results must match a fault-free run exactly.
        clean, _ = run_tasks(_tasks(), jobs=1)
        faults = FaultPlan.parse(["demo/2=crash:1"])
        results, metrics = run_tasks(
            _tasks(), jobs=jobs, faults=faults,
            policy=SupervisionPolicy(max_retries=1),
        )
        assert results == clean
        assert metrics.quarantined == 0
        by_shard = {t.shard: t for t in metrics.tasks}
        assert by_shard["2"].attempts == 2
        assert all(by_shard[s].attempts == 1 for s in "134")

    @pytest.mark.parametrize("kind", ["crash", "raise", "corrupt"])
    def test_each_fault_kind_recovers_after_one_retry(self, kind):
        faults = FaultPlan.parse([f"demo/3={kind}:1"])
        clean, _ = run_tasks(_tasks(), jobs=1)
        results, metrics = run_tasks(_tasks(), jobs=2, faults=faults, **FAST)
        assert results == clean and metrics.quarantined == 0

    def test_deterministic_backoff_is_applied(self):
        faults = FaultPlan.parse(["demo/1=raise:1"])
        started = time.monotonic()
        _, metrics = run_tasks(
            [_tasks()[0]], jobs=1, faults=faults,
            policy=SupervisionPolicy(max_retries=1, backoff_s=0.2),
        )
        assert time.monotonic() - started >= 0.2
        assert metrics.tasks[0].attempts == 2


class TestQuarantine:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_exhausted_retries_quarantine_only_that_shard(self, jobs):
        clean, _ = run_tasks(_tasks(), jobs=1)
        faults = FaultPlan.parse(["demo/2=crash"])  # every attempt
        results, metrics = run_tasks(_tasks(), jobs=jobs, faults=faults, **FAST)
        # The healthy shards are byte-identical to the fault-free run.
        assert ("demo", "2") not in results
        assert results == {k: v for k, v in clean.items() if k[1] != "2"}
        assert metrics.quarantined == 1
        [failed] = metrics.failures
        assert failed.shard == "2"
        assert failed.status == "quarantined"
        assert failed.attempts == 2
        assert failed.failure["kind"] == "crash"

    def test_k_injected_faults_give_exactly_k_quarantines(self):
        clean, _ = run_tasks(_tasks(), jobs=1)
        faults = FaultPlan.parse(["demo/1=raise", "demo/4=crash"])
        results, metrics = run_tasks(_tasks(), jobs=2, faults=faults, **FAST)
        assert metrics.quarantined == 2
        assert sorted(results) == [("demo", "2"), ("demo", "3")]
        assert all(results[k] == clean[k] for k in results)

    def test_exception_fault_records_type_and_traceback(self):
        faults = FaultPlan.parse(["demo/1=raise"])
        _, metrics = run_tasks(_tasks(), jobs=2, faults=faults, **FAST)
        [failed] = metrics.failures
        assert failed.failure["error_type"] == "InjectedFault"
        assert "InjectedFault" in failed.failure["traceback"]
        assert failed.failure["worker"] > 0

    def test_corrupted_result_detected_by_integrity_digest(self):
        faults = FaultPlan.parse(["demo/3=corrupt"])
        results, metrics = run_tasks(_tasks(), jobs=2, faults=faults, **FAST)
        [failed] = metrics.failures
        assert failed.failure["kind"] == "corrupt"
        assert ("demo", "3") not in results

    def test_metrics_json_carries_the_failure(self, tmp_path):
        faults = FaultPlan.parse(["demo/2=crash"])
        _, metrics = run_tasks(_tasks(), jobs=2, faults=faults, **FAST)
        out = tmp_path / "metrics.json"
        metrics.write(out)
        import json

        data = json.loads(out.read_text())
        assert data["quarantined"] == 1
        [task] = [t for t in data["tasks"] if t["status"] == "quarantined"]
        assert task["failure"]["kind"] == "crash"
        assert task["attempts"] == 2

    def test_render_lists_quarantined_shards(self):
        faults = FaultPlan.parse(["demo/2=crash"])
        _, metrics = run_tasks(_tasks(), jobs=2, faults=faults, **FAST)
        text = metrics.render()
        assert "quarantined shards:" in text
        assert "demo/2" in text

    def test_fail_fast_aborts_the_sweep(self):
        faults = FaultPlan.parse(["demo/1=raise"])
        with pytest.raises(FailFastError) as err:
            run_tasks(
                _tasks(), jobs=1, faults=faults,
                policy=SupervisionPolicy(max_retries=0, fail_fast=True),
            )
        assert err.value.failure.label == "demo/1"


class TestTimeout:
    def test_hung_worker_is_killed_and_quarantined(self):
        # demo/2 hangs (sleeps far beyond the timeout); the watchdog
        # must kill it and the other shards must still complete.
        clean, _ = run_tasks(_tasks(), jobs=1)
        faults = FaultPlan.parse(["demo/2=hang"])
        results, metrics = run_tasks(
            _tasks(), jobs=2, faults=faults,
            policy=SupervisionPolicy(max_retries=0, task_timeout=0.5),
        )
        [failed] = metrics.failures
        assert failed.failure["kind"] == "timeout"
        assert failed.failure["worker"] > 0
        assert results == {k: v for k, v in clean.items() if k[1] != "2"}

    def test_timeout_then_replacement_retry_succeeds(self):
        # First attempt hangs, the replacement worker's attempt runs clean.
        faults = FaultPlan.parse(["demo/2=hang:1"])
        clean, _ = run_tasks(_tasks(), jobs=1)
        results, metrics = run_tasks(
            _tasks(), jobs=2, faults=faults,
            policy=SupervisionPolicy(max_retries=1, task_timeout=0.5),
        )
        assert results == clean
        assert metrics.quarantined == 0
        by_shard = {t.shard: t for t in metrics.tasks}
        assert by_shard["2"].attempts == 2

    def test_genuinely_slow_task_times_out(self):
        tasks = [Task("slow", "1", _sleepy, {"duration": 30.0}),
                 Task("slow", "2", _work, {"n": 2})]
        results, metrics = run_tasks(
            tasks, jobs=2,
            policy=SupervisionPolicy(max_retries=0, task_timeout=0.5),
        )
        [failed] = metrics.failures
        assert failed.shard == "1" and failed.failure["kind"] == "timeout"
        assert results[("slow", "2")] == _work(n=2)


class TestJournalResume:
    def test_resume_skips_journaled_shards(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="a" * 64)
        journal = RunJournal(tmp_path, "a" * 64)
        # "Interrupted" run: only the first two shards completed.
        run_tasks(_tasks()[:2], jobs=1, cache=cache, journal=journal)
        assert len(journal.completed()) == 2
        # Resume executes none of the journaled shards.
        results, metrics = run_tasks(
            _tasks(), jobs=1, cache=cache, journal=journal, resume=True
        )
        assert [t.cache for t in metrics.tasks] == \
            ["resumed", "resumed", "miss", "miss"]
        assert len(results) == 4

    def test_fresh_run_truncates_the_journal(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="a" * 64)
        journal = RunJournal(tmp_path, "a" * 64)
        run_tasks(_tasks(), jobs=1, cache=cache, journal=journal)
        assert len(journal.completed()) == 4
        run_tasks(_tasks()[:1], jobs=1, cache=cache, journal=journal)
        assert set(journal.completed()) == {"demo/1"}

    def test_stale_journal_from_old_code_never_matches(self, tmp_path):
        old_cache = ResultCache(tmp_path, fingerprint="a" * 64)
        old_journal = RunJournal(tmp_path, "a" * 64)
        run_tasks(_tasks(), jobs=1, cache=old_cache, journal=old_journal)
        # New code fingerprint: its journal is a different file, and the
        # old keys can never validate, so everything re-executes.
        new_cache = ResultCache(tmp_path, fingerprint="b" * 64)
        new_journal = RunJournal(tmp_path, "b" * 64)
        _, metrics = run_tasks(
            _tasks(), jobs=1, cache=new_cache, journal=new_journal,
            resume=True,
        )
        assert all(t.cache == "miss" for t in metrics.tasks)

    def test_quarantined_shard_is_journaled_and_retried_on_resume(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="a" * 64)
        journal = RunJournal(tmp_path, "a" * 64)
        faults = FaultPlan.parse(["demo/2=crash"])
        _, metrics = run_tasks(
            _tasks(), jobs=1, cache=cache, journal=journal, faults=faults,
            policy=SupervisionPolicy(max_retries=0),
        )
        assert metrics.quarantined == 1
        assert "demo/2" not in journal.completed()
        # Resume without the fault: only the quarantined shard runs.
        results, metrics2 = run_tasks(
            _tasks(), jobs=1, cache=cache, journal=journal, resume=True
        )
        assert metrics2.quarantined == 0 and len(results) == 4
        by_shard = {t.shard: t.cache for t in metrics2.tasks}
        assert by_shard["2"] == "miss"
        assert by_shard["1"] == by_shard["3"] == by_shard["4"] == "resumed"

    def test_torn_journal_line_is_skipped(self, tmp_path):
        journal = RunJournal(tmp_path, "a" * 64)
        journal.begin(resume=False)
        journal.record("demo/1", status="done", key="k1")
        with journal.path.open("a") as fh:
            fh.write('{"label": "demo/2", "status"')  # killed mid-write
        assert journal.completed() == {"demo/1": "k1"}


class TestKeyboardInterrupt:
    def test_interrupt_flushes_journal_and_partial_metrics(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="a" * 64)
        journal = RunJournal(tmp_path, "a" * 64)
        tasks = _tasks()[:2] + [Task("demo", "boom", _interrupt, {})]
        seen = []
        with pytest.raises(KeyboardInterrupt):
            run_tasks(
                tasks, jobs=1, cache=cache, journal=journal,
                on_partial=seen.append,
            )
        # Both completed shards are journaled, cached, and in the
        # partial metrics handed to on_partial before the re-raise.
        assert set(journal.completed()) == {"demo/1", "demo/2"}
        [partial] = seen
        assert [t.shard for t in partial.tasks] == ["1", "2"]
        # And the interrupted run resumes cleanly.
        results, metrics = run_tasks(
            _tasks(), jobs=1, cache=cache, journal=journal, resume=True
        )
        assert len(results) == 4
        assert [t.cache for t in metrics.tasks] == \
            ["resumed", "resumed", "miss", "miss"]


class TestSupervisedMap:
    def test_outcomes_in_input_order(self):
        outcomes = supervised_map(
            _probe, [3, 1, 2], labels=["a", "b", "c"], jobs=2,
        )
        assert [o.result for o in outcomes] == [9, 1, 4]
        assert [o.label for o in outcomes] == ["a", "b", "c"]

    def test_mismatched_labels_rejected(self):
        with pytest.raises(ValueError):
            supervised_map(_probe, [1, 2], labels=["only-one"])

    def test_on_done_fires_for_every_item(self):
        done = []
        supervised_map(
            _probe, [1, 2, 3], labels=["a", "b", "c"], jobs=2,
            on_done=lambda i, o: done.append(i),
        )
        assert sorted(done) == [0, 1, 2]


def _probe(n):
    return n * n


def _fragile(attempts=()):
    raise SimulationError("always fails")


class TestSupervisedCall:
    def test_returns_result(self):
        assert supervised_call(_probe, label="one", args=(5,)) == 25

    def test_exhaustion_raises_fail_fast(self):
        with pytest.raises(FailFastError) as err:
            supervised_call(
                _fragile, label="bench:fragile",
                policy=SupervisionPolicy(max_retries=1),
            )
        assert err.value.failure.attempts == 2
        assert err.value.failure.error_type == "SimulationError"

    def test_injected_fault_applies_to_label(self):
        faults = FaultPlan.parse(["bench:*=raise"])
        with pytest.raises(FailFastError):
            supervised_call(
                _probe, label="bench:probe", args=(2,), faults=faults,
                policy=SupervisionPolicy(max_retries=0),
            )


class TestPolicyValidation:
    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            SupervisionPolicy(task_timeout=0)
        with pytest.raises(ValueError):
            SupervisionPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            SupervisionPolicy(backoff_s=-0.1)
