"""Deterministic multithread stress for the admission/breaker layer.

These are the *dynamic* witnesses for the invariants the static races
pass (``check --only races``) verifies structurally: every thread is
released through a :class:`threading.Barrier` so the contention is
maximal and repeatable, the clock is frozen so token refill cannot
launder a lost update, and every assertion is an exact count — a
single torn read-modify-write would change it.
"""

import threading

from repro.runner import ResultCache, RunJournal
from repro.runner.core import Task
from repro.serve import (
    BreakerConfig,
    CircuitBreaker,
    RateLimiter,
    ServeRequestError,
    ServiceConfig,
    SimulationService,
)
from repro.serve.service import JOB_DONE, JOB_QUARANTINED

SETTLE_S = 10.0

THREADS = 8


def _hammer(n_threads, work):
    """Run ``work(i)`` on ``n_threads`` barrier-released threads."""
    barrier = threading.Barrier(n_threads)

    def _runner(i):
        barrier.wait()
        work(i)

    threads = [threading.Thread(target=_runner, args=(i,))
               for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(SETTLE_S)
        assert not thread.is_alive(), "stress thread wedged"


class FrozenClock:
    """A clock that advances only when the test says so."""

    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRateLimiterUnderContention:
    def test_one_client_gets_exactly_burst_grants(self):
        # 8 threads x 16 tries = 128 attempts against a 32-token bucket
        # on a frozen clock: exactly 32 may win.  A race in the bucket
        # (which has no lock of its own — the limiter's critical
        # section is its guard) would double-spend or lose tokens and
        # break the exact count.
        burst = 32
        limiter = RateLimiter(rate=1.0, burst=float(burst),
                              clock=FrozenClock())
        grants = [0] * THREADS

        def work(i):
            grants[i] = sum(
                1 for _ in range(16)
                if limiter.try_acquire("greedy") == 0.0
            )

        _hammer(THREADS, work)
        assert sum(grants) == burst

    def test_clients_cannot_steal_each_others_tokens(self):
        limiter = RateLimiter(rate=1.0, burst=4.0, clock=FrozenClock())
        grants = [0] * THREADS

        def work(i):
            grants[i] = sum(
                1 for _ in range(10)
                if limiter.try_acquire(f"client-{i}") == 0.0
            )

        _hammer(THREADS, work)
        assert grants == [4] * THREADS


class TestBreakerUnderContention:
    def test_concurrent_failures_trip_exactly_once(self):
        # 64 concurrent failures against threshold 3: the breaker must
        # open, and must count exactly one closed->open transition —
        # a racy counter would either never reach the threshold or
        # record several trips.
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=3, reset_timeout_s=1e9),
            clock=FrozenClock(),
        )

        def work(i):
            for _ in range(8):
                breaker.record_failure()

        _hammer(THREADS, work)
        snapshot = breaker.snapshot()
        assert snapshot["state"] == "open"
        assert snapshot["opens"] == 1

    def test_probe_limit_holds_under_concurrent_allow(self):
        clock = FrozenClock()
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1, reset_timeout_s=5.0,
                          probe_limit=1),
            clock=clock,
        )
        breaker.record_failure()  # trips open
        clock.advance(10.0)  # past the reset timeout, then freeze
        admitted = [0] * THREADS

        def work(i):
            admitted[i] = sum(1 for _ in range(8) if breaker.allow())

        # Every allow() now sees a half-open breaker (the probe is
        # never settled); exactly one may pass the probe_limit gate.
        _hammer(THREADS, work)
        assert sum(admitted) == 1


def _toy_fn(n=1, fail=False):
    if fail:
        raise RuntimeError(f"injected failure for n={n}")
    return {"n": n}


def _toy_resolve(request):
    if not isinstance(request, dict) or "n" not in request:
        raise ServeRequestError("request must carry 'n'")
    kwargs = {"n": int(request["n"])}
    if "fail" in request:
        kwargs["fail"] = request["fail"]
    return Task("toy", f"n={kwargs['n']}", _toy_fn, kwargs)


class TestSettleSnapshotConsistency:
    def test_status_never_shows_a_half_settled_job(self, tmp_path):
        # Regression for the _settle fix: status/failure/attempts/
        # finished_at now change together under the service lock, so a
        # concurrent status() reader may see the job pending or settled
        # but never a torn mixture (e.g. quarantined without its
        # failure record).  Reader threads hammer status() while jobs
        # settle; every observation must be internally consistent.
        cache = ResultCache(tmp_path / "cache", fingerprint="f" * 64)
        service = SimulationService(
            _toy_resolve, cache,
            config=ServiceConfig(
                workers=2, isolate=False, rate=1e6, burst=1e6,
                breaker=BreakerConfig(failure_threshold=10_000),
            ),
            journal=RunJournal(cache.root, cache.fingerprint),
        )
        service.start()
        try:
            jobs = []
            for n in range(12):
                code, body, _ = service.submit(
                    {"n": n, "fail": n % 2 == 0}, client=f"c{n}")
                assert code == 202
                jobs.append(service.job(body["id"]))

            torn = []

            def observe(i):
                job = jobs[i % len(jobs)]
                while True:
                    settled = job.settled.is_set()
                    _, view = service.status(job.id)
                    if view["status"] == JOB_DONE and "failure" in view:
                        torn.append(("done-with-failure", view))
                    if view["status"] == JOB_QUARANTINED and (
                            "failure" not in view
                            or view["attempts"] < 1):
                        torn.append(("quarantine-without-failure", view))
                    if settled:  # one full read after settling, then stop
                        return

            _hammer(THREADS, observe)
            for job in jobs:
                assert job.settled.wait(SETTLE_S)
            assert torn == []
            statuses = {job.id: job.status for job in jobs}
            assert set(statuses.values()) == {JOB_DONE, JOB_QUARANTINED}
        finally:
            service.drain(1.0)
