"""HTTP front end + concurrent loadtest against a live in-process daemon.

These are the acceptance-criteria tests: 32 concurrent clients at a
90/10 hit/miss mix with zero dropped requests and low-millisecond hit
latency, and an injected pool outage that degrades the service to
cache-hit-only mode until the breaker recovers — all over real sockets.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.faults import FaultPlan
from repro.runner import ResultCache, RunJournal
from repro.runner.core import Task
from repro.serve import BreakerConfig, ServeRequestError, ServiceConfig, \
    SimulationService
from repro.serve.http import make_server
from repro.serve.loadtest import LoadtestClient, run_loadtest


def _toy_fn(n=1, fail=False):
    if fail:
        raise RuntimeError(f"injected failure for n={n}")
    return {"n": n, "double": 2 * n}


def _toy_resolve(request):
    if not isinstance(request, dict) or "n" not in request:
        raise ServeRequestError("request must carry 'n'")
    kwargs = {"n": int(request["n"])}
    if "fail" in request:
        kwargs["fail"] = request["fail"]
    return Task("toy", f"n={kwargs['n']}", _toy_fn, kwargs)


@pytest.fixture
def daemon(tmp_path):
    """A live in-process daemon; yields ``(url, service)``."""
    cache = ResultCache(tmp_path / "cache", fingerprint="f" * 64)
    config = ServiceConfig(
        workers=2, isolate=False, queue_depth=256,
        rate=10_000.0, burst=10_000.0,
        breaker=BreakerConfig(failure_threshold=2, reset_timeout_s=0.3),
        max_retries=0,
    )
    service = SimulationService(
        _toy_resolve, cache, config=config,
        journal=RunJournal(cache.root, cache.fingerprint),
    )
    service.start()
    server = make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}", service
    finally:
        server.shutdown()
        server.server_close()
        service.drain(1.0)


class TestEndpoints:
    def test_submit_status_result_roundtrip(self, daemon):
        url, _ = daemon
        client = LoadtestClient(url, "t")
        status, reply, _ = client.call("POST", "/submit", {"n": 3})
        assert status in (200, 202)
        job_id = reply["id"]
        deadline = time.monotonic() + 10.0  # repro: allow(wall-clock) — test deadline
        while True:
            status, reply, _ = client.call("GET", f"/result/{job_id}")
            if status == 200 and reply["status"] == "done":
                break
            assert time.monotonic() < deadline  # repro: allow(wall-clock) — test deadline
            time.sleep(0.02)
        assert reply["result"] == {"n": 3, "double": 6}
        status, reply, _ = client.call("GET", f"/status/{job_id}")
        assert status == 200 and reply["status"] == "done"

    def test_health_and_metrics(self, daemon):
        url, _ = daemon
        client = LoadtestClient(url, "t")
        status, health, _ = client.call("GET", "/health")
        assert status == 200 and health["status"] == "ok"
        assert health["breaker"]["state"] == "closed"
        status, metrics, _ = client.call("GET", "/metrics")
        assert status == 200
        assert metrics["kind"] == "bench" and metrics["subsystem"] == "serve"

    def test_unknown_endpoint_and_job(self, daemon):
        url, _ = daemon
        client = LoadtestClient(url, "t")
        assert client.call("GET", "/nope")[0] == 404
        assert client.call("POST", "/nope", {})[0] == 404
        assert client.call("GET", "/result/zzz")[0] == 404

    def test_malformed_body_is_400(self, daemon):
        url, _ = daemon
        request = urllib.request.Request(
            url + "/submit", data=b"{not json", method="POST",
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request, timeout=10) as rsp:
                status = rsp.status
        except urllib.error.HTTPError as exc:
            status = exc.code
        assert status == 400
        client = LoadtestClient(url, "t")
        assert client.call("POST", "/submit", {"wrong": 1})[0] == 400


class TestLoadtest:
    def test_32_clients_90_10_zero_dropped(self, daemon, tmp_path):
        # The acceptance criterion: a 32-client storm at a 90/10
        # hit/miss mix, every submit driven to a terminal verdict,
        # cache-hit p99 in the low milliseconds.
        url, service = daemon
        summary = run_loadtest(
            url, clients=32, requests_per_client=4, miss_every=10,
            hit_request={"n": 1},
            miss_requests=[{"n": 100 + i} for i in range(4)],
            deadline_s=60.0, poll_interval_s=0.01,
        )
        assert summary["dropped"] == 0
        assert summary["requests"] == 128
        assert summary["outcomes"] == {"done": 128}
        # Slots 0, 10, ..., 120 are the 13 scheduled misses; the other
        # 115 hammer the warmed hit key.
        hits = summary["stages"]["serve/hit"]
        assert hits["count"] == 115
        assert summary["stages"]["serve/miss"]["count"] == 13
        # The <50ms hit criterion is measured at the service's admission
        # path (the client-side numbers carry the load generator's own
        # 32-thread scheduling overhead and are published, not asserted).
        assert summary["server"]["stages"]["serve/hit"]["p99_ms"] < 50.0
        # Server-side: every hit was absorbed without pool admission.
        counters = service.counters()
        assert counters["hits"] >= hits["count"]
        assert counters.get("rejected_queue_full", 0) == 0
        # The summary is a JSON-ready BENCH stage artifact.
        assert summary["kind"] == "bench"
        json.dumps(summary)

    def test_pool_outage_degrades_then_recovers(self, tmp_path):
        # --inject through the HTTP path: consecutive worker failures
        # open the breaker (degraded cache-hit-only service), and after
        # the reset timeout a healthy probe closes it again.
        cache = ResultCache(tmp_path / "cache", fingerprint="f" * 64)
        config = ServiceConfig(
            workers=1, isolate=False, rate=10_000.0, burst=10_000.0,
            breaker=BreakerConfig(failure_threshold=2, reset_timeout_s=0.3),
            max_retries=0,
        )
        service = SimulationService(
            _toy_resolve, cache, config=config,
            journal=RunJournal(cache.root, cache.fingerprint),
            faults=FaultPlan.parse(["toy/n=9*=raise"]),
        )
        service.start()
        server = make_server(service, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        client = LoadtestClient(url, "t")
        try:
            # Warm a key while the pool is healthy.
            status, reply, _ = client.call("POST", "/submit", {"n": 1})
            self._await_terminal(client, reply["id"])

            # Two faulted configs quarantine back to back -> breaker opens.
            for n in (90, 91):
                status, reply, _ = client.call("POST", "/submit", {"n": n})
                assert status in (200, 202)
                final = self._await_terminal(client, reply["id"])
                assert final["status"] == "quarantined"
            status, health, _ = client.call("GET", "/health")
            assert health["breaker"]["state"] == "open"
            assert health["status"] == "degraded"

            # Degraded mode over HTTP: misses 503 + Retry-After, hits 200.
            status, reply, headers = client.call("POST", "/submit", {"n": 2})
            assert status == 503 and "Retry-After" in headers
            assert reply["breaker"]["state"] == "open"
            status, reply, _ = client.call("POST", "/submit", {"n": 1})
            assert status == 200 and reply["source"] == "cache"

            # After the reset timeout a healthy probe closes the breaker.
            time.sleep(0.35)
            status, reply, _ = client.call("POST", "/submit", {"n": 2})
            assert status in (200, 202)
            final = self._await_terminal(client, reply["id"])
            assert final["status"] == "done"
            status, health, _ = client.call("GET", "/health")
            assert health["breaker"]["state"] == "closed"
            assert health["status"] == "ok"
            assert health["counters"]["rejected_breaker"] >= 1
        finally:
            server.shutdown()
            server.server_close()
            service.drain(1.0)

    @staticmethod
    def _await_terminal(client, job_id, timeout_s=10.0):
        deadline = time.monotonic() + timeout_s  # repro: allow(wall-clock) — test deadline
        while time.monotonic() < deadline:  # repro: allow(wall-clock) — test deadline
            status, reply, _ = client.call("GET", f"/result/{job_id}")
            if status == 200 and reply["status"] in (
                    "done", "quarantined", "expired"):
                return reply
            time.sleep(0.02)
        raise AssertionError(f"job {job_id} never settled")
