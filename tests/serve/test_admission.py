"""Token buckets and the per-client rate limiter, on a fake clock."""

import pytest

from repro.serve import RateLimiter, TokenBucket


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_is_granted_immediately(self):
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=FakeClock())
        assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        assert bucket.try_acquire() > 0.0

    def test_retry_after_is_exact(self):
        # Empty bucket at 2 tokens/s: one token is 0.5s away.
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=FakeClock())
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == pytest.approx(0.5)

    def test_refill_on_the_clock(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        bucket.try_acquire(2.0)
        assert bucket.try_acquire() > 0.0
        clock.advance(0.5)  # 1 token back
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.tokens == pytest.approx(2.0)

    @pytest.mark.parametrize("rate,burst", [(0.0, 1.0), (-1.0, 1.0),
                                            (1.0, 0.0), (1.0, 0.5)])
    def test_bad_knobs_are_rejected(self, rate, burst):
        with pytest.raises(ValueError):
            TokenBucket(rate=rate, burst=burst)


class TestRateLimiter:
    def test_clients_are_independent(self):
        limiter = RateLimiter(1.0, 1.0, clock=FakeClock())
        assert limiter.try_acquire("a") == 0.0
        assert limiter.try_acquire("a") > 0.0  # a is exhausted
        assert limiter.try_acquire("b") == 0.0  # b is untouched

    def test_lru_eviction_bounds_the_table(self):
        clock = FakeClock()
        limiter = RateLimiter(1.0, 1.0, max_clients=2, clock=clock)
        limiter.try_acquire("a")
        limiter.try_acquire("b")
        limiter.try_acquire("c")  # evicts a (stalest)
        assert limiter.snapshot()["clients"] == 2
        # a restarts with a full bucket (eviction errs in its favour).
        assert limiter.try_acquire("a") == 0.0

    def test_recent_use_refreshes_lru_position(self):
        limiter = RateLimiter(1.0, 2.0, max_clients=2, clock=FakeClock())
        limiter.try_acquire("a")
        limiter.try_acquire("b")
        limiter.try_acquire("a")  # a is now most recent
        limiter.try_acquire("c")  # evicts b, not a
        # a kept its drained bucket: 2 tokens spent, none left.
        assert limiter.try_acquire("a") > 0.0

    def test_snapshot(self):
        limiter = RateLimiter(5.0, 10.0, clock=FakeClock())
        limiter.try_acquire("a")
        assert limiter.snapshot() == {"clients": 1, "rate": 5.0,
                                      "burst": 10.0}

    def test_bad_max_clients(self):
        with pytest.raises(ValueError, match="max_clients"):
            RateLimiter(1.0, 1.0, max_clients=0)
