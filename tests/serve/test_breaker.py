"""Circuit breaker state machine, tick by tick on an injected clock."""

import pytest

from repro.serve import BreakerConfig, CircuitBreaker


class FakeClock:
    """Injectable monotonic clock: advances only when told to."""

    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _breaker(threshold=3, reset=30.0, successes=1, limit=1):
    clock = FakeClock()
    breaker = CircuitBreaker(
        BreakerConfig(
            failure_threshold=threshold,
            reset_timeout_s=reset,
            probe_successes=successes,
            probe_limit=limit,
        ),
        clock=clock,
    )
    return breaker, clock


def _trip(breaker, count):
    for _ in range(count):
        assert breaker.allow()
        breaker.record_failure()


class TestConfig:
    def test_defaults_are_valid(self):
        BreakerConfig()

    @pytest.mark.parametrize("field,value", [
        ("failure_threshold", 0),
        ("reset_timeout_s", 0.0),
        ("reset_timeout_s", -1.0),
        ("probe_successes", 0),
        ("probe_limit", 0),
    ])
    def test_bad_knobs_are_rejected(self, field, value):
        with pytest.raises(ValueError, match=field):
            BreakerConfig(**{field: value})


class TestClosed:
    def test_starts_closed_and_allows(self):
        breaker, _ = _breaker()
        assert breaker.state == "closed"
        assert breaker.allow()
        assert breaker.retry_after() == 0.0

    def test_failures_below_threshold_stay_closed(self):
        breaker, _ = _breaker(threshold=3)
        _trip(breaker, 2)
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_success_resets_consecutive_count(self):
        # 2 failures + success + 2 failures never reaches threshold 3:
        # only *consecutive* failures trip.
        breaker, _ = _breaker(threshold=3)
        _trip(breaker, 2)
        breaker.record_success()
        assert breaker.snapshot()["consecutive_failures"] == 0
        _trip(breaker, 2)
        assert breaker.state == "closed"

    def test_trips_exactly_at_threshold(self):
        breaker, _ = _breaker(threshold=3)
        _trip(breaker, 3)
        assert breaker.state == "open"
        assert breaker.snapshot()["opens"] == 1


class TestOpen:
    def test_open_refuses_admission(self):
        breaker, _ = _breaker(threshold=1)
        _trip(breaker, 1)
        assert not breaker.allow()
        assert not breaker.allow()

    def test_retry_after_counts_down_on_the_clock(self):
        breaker, clock = _breaker(threshold=1, reset=30.0)
        _trip(breaker, 1)
        assert breaker.retry_after() == pytest.approx(30.0)
        clock.advance(10.0)
        assert breaker.retry_after() == pytest.approx(20.0)

    def test_late_failures_do_not_restart_the_timer(self):
        # Stragglers admitted before the trip settle while open; the
        # reset timeout must still measure from the trip instant.
        breaker, clock = _breaker(threshold=1, reset=30.0)
        _trip(breaker, 1)
        clock.advance(20.0)
        breaker.record_failure()
        assert breaker.retry_after() == pytest.approx(10.0)
        clock.advance(10.0)
        assert breaker.state == "half-open"


class TestHalfOpen:
    def test_timeout_promotes_to_half_open(self):
        breaker, clock = _breaker(threshold=1, reset=30.0)
        _trip(breaker, 1)
        clock.advance(29.9)
        assert breaker.state == "open"
        clock.advance(0.1)
        assert breaker.state == "half-open"

    def test_probe_slots_are_bounded(self):
        breaker, clock = _breaker(threshold=1, reset=1.0, limit=2)
        _trip(breaker, 1)
        clock.advance(1.0)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # both probe slots in flight
        assert breaker.snapshot()["probes_in_flight"] == 2

    def test_probe_success_closes(self):
        breaker, clock = _breaker(threshold=1, reset=1.0, successes=1)
        _trip(breaker, 1)
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        snapshot = breaker.snapshot()
        assert snapshot["consecutive_failures"] == 0
        assert snapshot["probes_in_flight"] == 0

    def test_multiple_probe_successes_required(self):
        breaker, clock = _breaker(threshold=1, reset=1.0,
                                  successes=2, limit=2)
        _trip(breaker, 1)
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "half-open"  # 1 of 2
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_probe_failure_reopens_and_restarts_timer(self):
        breaker, clock = _breaker(threshold=1, reset=30.0)
        _trip(breaker, 1)
        clock.advance(30.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.snapshot()["opens"] == 2
        assert breaker.retry_after() == pytest.approx(30.0)

    def test_full_cycle_can_repeat(self):
        breaker, clock = _breaker(threshold=2, reset=5.0)
        for _ in range(2):
            _trip(breaker, 2)
            assert breaker.state == "open"
            clock.advance(5.0)
            assert breaker.allow()
            breaker.record_success()
            assert breaker.state == "closed"
        assert breaker.snapshot()["opens"] == 2


class TestSnapshot:
    def test_snapshot_is_json_ready(self):
        import json

        breaker, _ = _breaker()
        snapshot = breaker.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["state"] == "closed"
        assert snapshot["opens"] == 0
