"""SimulationService admission path, end to end without sockets.

Everything runs inline (``isolate=False``) with real worker threads
over a toy resolver, so the tests exercise the real queue, journal,
cache, and breaker wiring at thread speed.
"""

import time

import pytest

from repro.faults import FaultPlan
from repro.runner import ResultCache, RunJournal
from repro.runner.core import Task
from repro.serve import (
    BreakerConfig,
    ServeRequestError,
    ServiceConfig,
    SimulationService,
)
from repro.serve.service import JOB_DONE, JOB_EXPIRED, JOB_QUARANTINED

SETTLE_S = 10.0  # generous per-event wait; tests finish in milliseconds


def _toy_fn(n=1, delay_s=0.0, fail=False):
    if fail:
        raise RuntimeError(f"injected failure for n={n}")
    if delay_s:
        time.sleep(delay_s)
    return {"n": n, "double": 2 * n}


def _toy_resolve(request):
    if not isinstance(request, dict) or "n" not in request:
        raise ServeRequestError("request must carry 'n'")
    kwargs = {"n": int(request["n"])}
    for key in ("delay_s", "fail"):
        if key in request:
            kwargs[key] = request[key]
    return Task("toy", f"n={kwargs['n']}", _toy_fn, kwargs)


def _service(tmp_path, *, faults=None, journal=True, clock=None, **over):
    cache = ResultCache(tmp_path / "cache", fingerprint="f" * 64)
    over.setdefault("workers", 1)
    over.setdefault("isolate", False)
    over.setdefault("rate", 10_000.0)
    over.setdefault("burst", 10_000.0)
    over.setdefault("breaker", BreakerConfig(failure_threshold=2,
                                             reset_timeout_s=60.0))
    config = ServiceConfig(**over)
    extra = {} if clock is None else {"clock": clock}
    service = SimulationService(
        _toy_resolve, cache, config=config,
        journal=RunJournal(cache.root, cache.fingerprint) if journal
        else None,
        faults=faults, **extra,
    )
    service.start()
    return service


def _settle(service, body):
    """The settled Job for the submit reply ``body``."""
    job = service.job(body["id"])
    assert job is not None
    assert job.settled.wait(SETTLE_S), f"job {body['id']} never settled"
    return job


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestSubmitBasics:
    def test_miss_then_result(self, tmp_path):
        service = _service(tmp_path)
        try:
            status, body, _ = service.submit({"n": 3}, client="t")
            assert status == 202 and body["id"]
            job = _settle(service, body)
            assert job.status == JOB_DONE
            status, reply = service.result(body["id"])
            assert status == 200
            assert reply["result"] == {"n": 3, "double": 6}
        finally:
            service.drain(0.5)

    def test_second_submit_is_a_cache_hit(self, tmp_path):
        service = _service(tmp_path)
        try:
            _, body, _ = service.submit({"n": 4}, client="t")
            _settle(service, body)
            status, reply, _ = service.submit({"n": 4}, client="t")
            assert status == 200
            assert reply["status"] == "done" and reply["source"] == "cache"
            assert service.counters()["hits"] == 1
        finally:
            service.drain(0.5)

    def test_cache_hits_cross_service_instances(self, tmp_path):
        # Anything a previous run computed — CLI, sweep, or another
        # daemon over the same cache — answers without the pool.
        first = _service(tmp_path)
        try:
            _, body, _ = first.submit({"n": 5}, client="t")
            _settle(first, body)
        finally:
            first.drain(0.5)
        second = _service(tmp_path)
        try:
            status, reply, _ = second.submit({"n": 5}, client="t")
            assert status == 200 and reply["source"] == "cache"
            assert second.counters() == {"hits": 1}
        finally:
            second.drain(0.5)

    def test_bad_request_is_400(self, tmp_path):
        service = _service(tmp_path)
        try:
            status, body, _ = service.submit({"nope": 1}, client="t")
            assert status == 400 and "error" in body
            status, body, _ = service.submit(
                {"n": 1, "timeout_s": "soon"}, client="t")
            assert status == 400
            status, body, _ = service.submit(
                {"n": 1, "timeout_s": 0}, client="t")
            assert status == 400
        finally:
            service.drain(0.5)

    def test_unknown_job_is_404(self, tmp_path):
        service = _service(tmp_path)
        try:
            assert service.status("missing")[0] == 404
            assert service.result("missing")[0] == 404
        finally:
            service.drain(0.5)


class TestCoalescing:
    def test_identical_inflight_submits_collapse(self, tmp_path):
        service = _service(tmp_path)
        try:
            _, body, _ = service.submit({"n": 7, "delay_s": 0.3}, client="a")
            status, dup, _ = service.submit({"n": 7, "delay_s": 0.3},
                                            client="b")
            assert status == 200
            assert dup["id"] == body["id"]
            assert dup["coalesced"] == 1
            assert service.counters()["coalesced"] == 1
            job = _settle(service, body)
            assert job.status == JOB_DONE  # one execution served both
            assert service.counters()["completed"] == 1
        finally:
            service.drain(1.0)


class TestBackpressure:
    def test_queue_full_is_429_with_retry_after(self, tmp_path):
        service = _service(tmp_path, queue_depth=1, workers=1)
        try:
            _, blocker, _ = service.submit({"n": 1, "delay_s": 0.4},
                                           client="t")
            # Wait until the worker picked the blocker up, so the next
            # submit deterministically occupies the queue's single slot.
            deadline = time.monotonic() + SETTLE_S  # repro: allow(wall-clock) — test deadline
            while service.job(blocker["id"]).status == "queued":
                assert time.monotonic() < deadline  # repro: allow(wall-clock) — test deadline
                time.sleep(0.005)
            status, queued, _ = service.submit({"n": 2}, client="t")
            assert status == 202
            status, body, headers = service.submit({"n": 3}, client="t")
            assert status == 429
            assert body["queue_depth"] == 1
            assert float(headers["Retry-After"]) >= 1
            # The refused work was never admitted anywhere.
            assert service.counters()["rejected_queue_full"] == 1
            _settle(service, blocker)
            _settle(service, queued)
        finally:
            service.drain(1.0)

    def test_rate_limit_is_429_and_hits_are_exempt(self, tmp_path):
        service = _service(tmp_path, rate=1.0, burst=1.0)
        try:
            _, body, _ = service.submit({"n": 1}, client="greedy")
            _settle(service, body)
            # Bucket for "greedy" is now empty; a new miss is refused...
            status, body, headers = service.submit({"n": 2}, client="greedy")
            assert status == 429 and "Retry-After" in headers
            assert body["retry_after_s"] > 0
            # ...another client is not...
            status, _, _ = service.submit({"n": 3}, client="patient")
            assert status == 202
            # ...and cache hits are never limited: absorbing identical
            # traffic is the whole point of the hit path.
            for _ in range(20):
                status, reply, _ = service.submit({"n": 1}, client="greedy")
                assert status == 200 and reply["source"] == "cache"
        finally:
            service.drain(1.0)


class TestBreaker:
    def test_outage_degrades_to_cache_hits_then_recovers(self, tmp_path):
        clock = FakeClock()
        service = _service(
            tmp_path, clock=clock,
            breaker=BreakerConfig(failure_threshold=2, reset_timeout_s=30.0),
            max_retries=0,
        )
        try:
            # Warm one key while healthy.
            _, body, _ = service.submit({"n": 1}, client="t")
            _settle(service, body)

            # Two consecutive quarantines trip the breaker.
            for n in (90, 91):
                _, body, _ = service.submit({"n": n, "fail": True},
                                            client="t")
                job = _settle(service, body)
                assert job.status == JOB_QUARANTINED
                assert job.failure is not None
            assert service.breaker.state == "open"

            # Degraded mode: misses get 503 + breaker detail, hits serve.
            status, body, headers = service.submit({"n": 2}, client="t")
            assert status == 503
            assert body["breaker"]["state"] == "open"
            assert "Retry-After" in headers
            status, reply, _ = service.submit({"n": 1}, client="t")
            assert status == 200 and reply["source"] == "cache"
            assert service.health()[1]["status"] == "degraded"

            # Reset timeout elapses -> half-open -> healthy probe closes.
            clock.advance(30.0)
            status, body, _ = service.submit({"n": 3}, client="t")
            assert status == 202
            job = _settle(service, body)
            assert job.status == JOB_DONE
            assert service.breaker.state == "closed"
            assert service.health()[1]["status"] == "ok"

            # Full admission is restored.
            status, body, _ = service.submit({"n": 4}, client="t")
            assert status == 202
            _settle(service, body)
        finally:
            service.drain(1.0)

    def test_injected_faults_flow_through_the_service(self, tmp_path):
        # The same FaultPlan syntax the batch CLI takes, matched against
        # service job labels.
        service = _service(
            tmp_path,
            faults=FaultPlan.parse(["toy/n=66=raise"]),
            breaker=BreakerConfig(failure_threshold=2, reset_timeout_s=60.0),
            max_retries=0,
        )
        try:
            _, body, _ = service.submit({"n": 66}, client="t")
            job = _settle(service, body)
            assert job.status == JOB_QUARANTINED
            assert job.failure["error_type"] == "InjectedFault"
            assert service.counters()["quarantined"] == 1
            # Unmatched labels run healthy.
            _, body, _ = service.submit({"n": 67}, client="t")
            assert _settle(service, body).status == JOB_DONE
        finally:
            service.drain(1.0)


class TestDeadlines:
    def test_budget_expires_while_queued(self, tmp_path):
        service = _service(tmp_path, workers=1)
        try:
            _, blocker, _ = service.submit({"n": 1, "delay_s": 0.4},
                                           client="t")
            status, body, _ = service.submit(
                {"n": 2, "timeout_s": 0.01}, client="t")
            assert status == 202
            job = _settle(service, body)
            assert job.status == JOB_EXPIRED
            assert job.failure["error_type"] == "DeadlineExceeded"
            assert service.counters()["expired"] == 1
            _settle(service, blocker)
        finally:
            service.drain(1.0)


class TestDrainAndResume:
    def test_drain_journals_unfinished_work_for_resume(self, tmp_path):
        service = _service(tmp_path, workers=1)
        _, running, _ = service.submit({"n": 1, "delay_s": 0.3}, client="t")
        _, queued, _ = service.submit({"n": 2, "delay_s": 0.3}, client="t")
        drained = service.drain(0.0)  # no grace: abandon everything live
        assert drained["abandoned"] >= 1

        # Draining admits nothing new.
        status, _, _ = service.submit({"n": 3}, client="t")
        assert status == 503

        # A fresh daemon over the same cache resumes exactly the
        # abandoned requests (rate limits never block recovery).
        revived = _service(tmp_path, workers=1)
        try:
            resumed = revived.resume_pending()
            assert resumed == drained["abandoned"]
            deadline = time.monotonic() + SETTLE_S  # repro: allow(wall-clock) — test deadline
            while len(revived.journal.pending()) > 0:
                assert time.monotonic() < deadline  # repro: allow(wall-clock) — test deadline
                time.sleep(0.01)
            assert revived.counters()["resumed"] == resumed
            # Both requests are now terminally done and cached.
            for n in (1, 2):
                status, reply, _ = revived.submit(
                    {"n": n, "delay_s": 0.3}, client="t")
                assert status == 200 and reply["source"] == "cache"
        finally:
            revived.drain(1.0)

    def test_resume_with_clean_journal_is_a_noop(self, tmp_path):
        service = _service(tmp_path)
        try:
            _, body, _ = service.submit({"n": 9}, client="t")
            _settle(service, body)
            assert service.journal.pending() == []
            assert service.resume_pending() == 0
        finally:
            service.drain(1.0)


class TestObservability:
    def test_summary_is_bench_shaped(self, tmp_path):
        service = _service(tmp_path)
        try:
            _, body, _ = service.submit({"n": 11}, client="t")
            _settle(service, body)
            service.submit({"n": 11}, client="t")  # hit
            summary = service.service_summary()
            assert summary["schema"] == 1 and summary["kind"] == "bench"
            assert summary["subsystem"] == "serve"
            for stage in ("serve/hit", "serve/miss"):
                assert summary["stages"][stage]["count"] == 1
                assert summary["stages"][stage]["p99_ms"] >= 0
            assert summary["counters"]["completed"] == 1
        finally:
            service.drain(1.0)

    def test_health_shape(self, tmp_path):
        service = _service(tmp_path)
        try:
            status, body = service.health()
            assert status == 200 and body["status"] == "ok"
            assert body["queue"] == {"depth": 0, "capacity": 64}
            assert body["breaker"]["state"] == "closed"
            assert body["fingerprint"] == "f" * 64
        finally:
            service.drain(1.0)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="queue_depth"):
            ServiceConfig(queue_depth=0)
        with pytest.raises(ValueError, match="workers"):
            ServiceConfig(workers=0)
