import pytest

from repro.paperdata import PAPER_TABLE3, PAPER_TABLE4
from repro.uniproc.pipeline import CPIEstimate, conventional_cpi, integrated_cpi
from repro.workloads.spec import get_proxy

FAST = dict(trace_len=50_000, instructions=8_000)


class TestCPIEstimate:
    def test_total_is_sum(self):
        est = CPIEstimate("126.gcc", 1.01, 0.14)
        assert est.total_cpi == pytest.approx(1.15)

    def test_spec_ratio_uses_paper_constant(self):
        paper = PAPER_TABLE4["126.gcc"]
        est = CPIEstimate("126.gcc", paper.total_cpi, 0.0)
        assert est.spec_ratio == pytest.approx(paper.spec_ratio)

    def test_synopsys_has_no_spec_ratio(self):
        assert CPIEstimate("synopsys", 1.0, 0.1).spec_ratio is None


class TestIntegratedCPI:
    def test_mgrid_matches_paper_closely(self):
        est = integrated_cpi(get_proxy("107.mgrid"), **FAST)
        paper = PAPER_TABLE4["107.mgrid"]
        assert est.total_cpi == pytest.approx(paper.total_cpi, abs=0.1)

    def test_memory_cpi_in_paper_band(self):
        # Figure 12: at 30 ns the memory CPI impact is 10-25% above raw
        # for representative benchmarks; allow a wider test band.
        est = integrated_cpi(get_proxy("126.gcc"), **FAST)
        assert 0.02 < est.memory_cpi < 0.5

    def test_victim_lowers_cpi_for_conflict_benchmark(self):
        with_v = integrated_cpi(get_proxy("101.tomcatv"), with_victim=True, **FAST)
        without_v = integrated_cpi(get_proxy("101.tomcatv"), with_victim=False, **FAST)
        assert with_v.total_cpi < without_v.total_cpi

    def test_memory_cpi_grows_with_latency(self):
        fast = integrated_cpi(get_proxy("102.swim"), mem_access=6, **FAST)
        slow = integrated_cpi(get_proxy("102.swim"), mem_access=30, **FAST)
        assert slow.memory_cpi > fast.memory_cpi * 1.5


class TestConventionalCPI:
    def test_memory_latency_dominates(self):
        near = conventional_cpi(get_proxy("141.apsi"), mem_latency=10, **FAST)
        far = conventional_cpi(get_proxy("141.apsi"), mem_latency=60, **FAST)
        assert far.memory_cpi > near.memory_cpi

    def test_conventional_worse_than_integrated_at_high_mem_latency(self):
        # Figure 11 vs 12: conventional memory latencies cost far more
        # than the integrated device's 6-cycle DRAM.
        conv = conventional_cpi(get_proxy("126.gcc"), mem_latency=50, **FAST)
        integ = integrated_cpi(get_proxy("126.gcc"), **FAST)
        assert conv.memory_cpi > integ.memory_cpi
