import pytest

from repro.uniproc.measurement import measure_conventional, measure_integrated
from repro.workloads.spec import get_proxy

TRACE_LEN = 40_000


class TestMeasureIntegrated:
    def test_probabilities_well_formed(self):
        rates = measure_integrated(get_proxy("126.gcc"), TRACE_LEN)
        for probs in (rates.ifetch, rates.load, rates.store):
            assert 0.0 <= probs.hit <= 1.0
            assert probs.l2 == 0.0  # integrated system has no L2
            assert probs.hit + probs.mem == pytest.approx(1.0)

    def test_victim_improves_hit_rate_for_conflict_benchmark(self):
        with_v = measure_integrated(get_proxy("101.tomcatv"), TRACE_LEN,
                                    with_victim=True)
        without_v = measure_integrated(get_proxy("101.tomcatv"), TRACE_LEN,
                                       with_victim=False)
        assert with_v.dcache_miss_rate < without_v.dcache_miss_rate / 2

    def test_tight_loop_benchmark_has_high_ifetch_hit(self):
        rates = measure_integrated(get_proxy("129.compress"), TRACE_LEN)
        assert rates.ifetch.hit > 0.998

    def test_deterministic(self):
        a = measure_integrated(get_proxy("099.go"), TRACE_LEN, seed=5)
        b = measure_integrated(get_proxy("099.go"), TRACE_LEN, seed=5)
        assert a.ifetch.hit == b.ifetch.hit
        assert a.load.hit == b.load.hit


class TestMeasureConventional:
    def test_l2_fraction_present(self):
        rates = measure_conventional(get_proxy("126.gcc"), TRACE_LEN)
        assert rates.load.l2 > 0.0
        assert rates.load.hit + rates.load.l2 + rates.load.mem == pytest.approx(1.0)

    def test_shared_l2_sees_both_streams(self):
        rates = measure_conventional(get_proxy("134.perl"), TRACE_LEN)
        assert rates.ifetch.l2 > 0.0

    def test_conventional_l1_miss_rates_reasonable(self):
        rates = measure_conventional(get_proxy("107.mgrid"), TRACE_LEN)
        # mgrid streams: conventional 16 KB caches miss a few percent.
        assert 0.005 < rates.dcache_miss_rate < 0.2


class TestEngineEquivalence:
    """The vectorized measurement path must be bit-identical to the
    object-oriented simulators — same MissRates, not just close ones.
    (The default engine="auto" takes the fast path for every default
    configuration, so these comparisons exercise it.)"""

    @pytest.mark.parametrize("name", ["126.gcc", "101.tomcatv"])
    def test_integrated_engines_identical(self, name):
        proxy = get_proxy(name)
        fast = measure_integrated(proxy, TRACE_LEN, seed=3)
        exact = measure_integrated(proxy, TRACE_LEN, seed=3, engine="exact")
        assert fast == exact

    def test_integrated_without_victim_identical(self):
        proxy = get_proxy("129.compress")
        fast = measure_integrated(proxy, TRACE_LEN, with_victim=False)
        exact = measure_integrated(proxy, TRACE_LEN, with_victim=False,
                                   engine="exact")
        assert fast == exact

    @pytest.mark.parametrize("name", ["134.perl", "107.mgrid"])
    def test_conventional_engines_identical(self, name):
        """The shared L2 sees the two L1 miss streams merged in exact
        interleave order; any drift from the block-by-block replay shows
        up here."""
        proxy = get_proxy(name)
        fast = measure_conventional(proxy, TRACE_LEN, seed=7)
        exact = measure_conventional(proxy, TRACE_LEN, seed=7, engine="exact")
        assert fast == exact
