import pytest

from repro.common.errors import SimulationError
from repro.mp.engine import MPEngine
from repro.mp.layout import NODE_REGION_BYTES
from repro.mp.ops import Barrier, Compute, Lock, Read, Unlock, Write
from repro.mp.system import MPSystem, SystemKind


def _engine(n=2, kind=SystemKind.INTEGRATED, **kw):
    return MPEngine(MPSystem(n, kind), **kw)


class TestBasicExecution:
    def test_compute_only(self):
        def kernel(pid, n):
            yield Compute(100)

        result = _engine(2).run(kernel)
        assert result.finish_times == [100, 100]
        assert result.execution_time == 100

    def test_memory_ops_advance_time(self):
        def kernel(pid, n):
            yield Read(pid * NODE_REGION_BYTES)  # local cold: 6 cycles

        result = _engine(2).run(kernel)
        assert result.finish_times == [6, 6]

    def test_deterministic(self):
        def kernel(pid, n):
            for i in range(50):
                yield Read((pid * 37 + i) * 64)
                yield Compute(pid + 1)

        a = _engine(4).run(kernel)
        b = _engine(4).run(kernel)
        assert a.finish_times == b.finish_times

    def test_op_budget(self):
        def kernel(pid, n):
            while True:
                yield Compute(1)

        with pytest.raises(SimulationError):
            _engine(1, max_ops=100).run(kernel)


class TestBarriers:
    def test_barrier_synchronizes(self):
        def kernel(pid, n):
            yield Compute(100 if pid == 0 else 10)
            yield Barrier(0)
            yield Compute(1)

        result = _engine(2, barrier_overhead=5).run(kernel)
        # Both resume at max(100, 10) + 5, then one more cycle.
        assert result.finish_times == [106, 106]

    def test_barrier_wait_accounting(self):
        def kernel(pid, n):
            yield Compute(100 if pid == 0 else 0)
            yield Barrier(0)

        result = _engine(2, barrier_overhead=0).run(kernel)
        assert result.barrier_wait_cycles[1] == 100
        assert result.barrier_wait_cycles[0] == 0

    def test_barrier_reuse_across_iterations(self):
        def kernel(pid, n):
            for step in range(3):
                yield Compute(pid + 1)
                yield Barrier(7)

        result = _engine(2).run(kernel)
        assert result.finish_times[0] == result.finish_times[1]


class TestLocks:
    def test_mutual_exclusion_serializes(self):
        def kernel(pid, n):
            yield Lock(0)
            yield Compute(50)
            yield Unlock(0)

        result = _engine(2, lock_transfer_cycles=10).run(kernel)
        # The second holder starts only after the first releases.
        assert max(result.finish_times) > 100

    def test_lock_wait_accounting(self):
        def kernel(pid, n):
            yield Lock(0)
            yield Compute(100)
            yield Unlock(0)

        result = _engine(2).run(kernel)
        assert sum(result.lock_wait_cycles) > 0

    def test_unlock_without_hold_raises(self):
        def kernel(pid, n):
            yield Unlock(0)

        with pytest.raises(SimulationError):
            _engine(1).run(kernel)

    def test_fifo_handoff(self):
        order = []

        def kernel(pid, n):
            yield Compute(pid)  # staggered arrival: 0, 1, 2
            yield Lock(0)
            order.append(pid)
            yield Compute(5)
            yield Unlock(0)

        _engine(3).run(kernel)
        assert order == [0, 1, 2]


class TestDeadlockDetection:
    def test_unreleased_lock_deadlocks(self):
        def kernel(pid, n):
            yield Lock(0)
            # proc 0 never unlocks; proc 1 waits forever.

        with pytest.raises(SimulationError):
            _engine(2).run(kernel)

    def test_mismatched_barrier_deadlocks(self):
        def kernel(pid, n):
            if pid == 0:
                yield Barrier(0)
            else:
                yield Compute(1)

        with pytest.raises(SimulationError):
            _engine(2).run(kernel)
