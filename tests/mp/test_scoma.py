"""Simple-COMA mode tests (the Section 4.2 extension)."""

import pytest

from repro.common.params import MPLatencies
from repro.mp.layout import NODE_REGION_BYTES
from repro.mp.node import HitLevel, SCOMANode
from repro.mp.system import MPSystem, SystemKind
from repro.workloads.splash import LUKernel

LAT = MPLatencies()
REMOTE_BASE = NODE_REGION_BYTES


class TestSCOMANode:
    def test_first_touch_is_page_fault(self):
        node = SCOMANode(0)
        assert node.lookup(REMOTE_BASE, is_local=False) is HitLevel.PAGE_FAULT
        assert node.page_faults == 1

    def test_allocated_page_invalid_block_is_remote(self):
        node = SCOMANode(0)
        node.fill_remote(REMOTE_BASE)  # allocates the page, validates one block
        assert node.lookup(REMOTE_BASE + 64, is_local=False) is HitLevel.REMOTE
        assert node.page_faults == 0 or node.page_faults == 0

    def test_valid_block_served_at_local_latency(self):
        node = SCOMANode(0)
        node.fill_remote(REMOTE_BASE)
        level = node.lookup(REMOTE_BASE, is_local=False)
        # First access loads the column (local memory), then it hits.
        assert level in (HitLevel.LOCAL_MEMORY, HitLevel.CACHE, HitLevel.VICTIM)
        assert node.lookup(REMOTE_BASE, is_local=False) in (
            HitLevel.CACHE, HitLevel.VICTIM
        )

    def test_invalidation_revokes_block_not_page(self):
        node = SCOMANode(0)
        node.fill_remote(REMOTE_BASE)
        node.invalidate(REMOTE_BASE)
        assert node.lookup(REMOTE_BASE, is_local=False) is HitLevel.REMOTE
        assert not node.holds_remote(REMOTE_BASE)


class TestSCOMASystem:
    def test_first_touch_pays_fault_plus_remote(self):
        system = MPSystem(2, SystemKind.SCOMA)
        latency = system.access(0, REMOTE_BASE, write=False)
        assert latency == LAT.scoma_page_fault + LAT.remote_load

    def test_same_page_second_block_pays_remote_only(self):
        system = MPSystem(2, SystemKind.SCOMA)
        system.access(0, REMOTE_BASE, write=False)
        assert system.access(0, REMOTE_BASE + 64, write=False) == LAT.remote_load

    def test_reuse_is_local_speed(self):
        system = MPSystem(2, SystemKind.SCOMA)
        system.access(0, REMOTE_BASE, write=False)
        system.access(0, REMOTE_BASE, write=False)  # column now loaded
        assert system.access(0, REMOTE_BASE, write=False) == LAT.cache_hit

    def test_coherence_still_enforced(self):
        system = MPSystem(2, SystemKind.SCOMA)
        system.access(0, REMOTE_BASE, write=False)  # node 0 imports
        system.access(1, REMOTE_BASE, write=True)  # home writes
        # Node 0's copy was invalidated: next access re-fetches remotely.
        latency = system.access(0, REMOTE_BASE, write=False)
        assert latency == LAT.remote_load

    def test_lu_runs_and_verifies_on_scoma(self):
        kernel = LUKernel(n=16, block=4)
        result, system = kernel.run_on(SystemKind.SCOMA, 4)
        assert kernel.verify()
        assert result.execution_time > 0

    def test_scoma_beats_small_inc_on_reuse_heavy_working_set(self):
        """When the imported working set exceeds the INC, the attraction
        memory wins (the capacity argument for S-COMA)."""
        from repro.mp.engine import MPEngine
        from repro.mp.ops import Read

        def kernel(pid, nprocs):
            # Node 0 repeatedly sweeps 64 KB of node 1's memory.
            if pid != 0:
                return
            for _ in range(4):
                for offset in range(0, 64 * 1024, 32):
                    yield Read(REMOTE_BASE + offset)

        # CC-NUMA with a tiny INC (4 KB reservation): the working set
        # never fits, so every sweep re-fetches remotely.
        cc = MPSystem(2, SystemKind.INTEGRATED, inc_bytes=4096)
        time_cc = MPEngine(cc).run(kernel).execution_time
        scoma = MPSystem(2, SystemKind.SCOMA)
        time_scoma = MPEngine(scoma).run(kernel).execution_time
        assert time_scoma < time_cc / 2
