import pytest

from repro.common.errors import ConfigError
from repro.mp.layout import NODE_REGION_BYTES, Layout


class TestLayout:
    def test_home_of_region(self):
        layout = Layout(4)
        assert layout.home_of(0) == 0
        assert layout.home_of(NODE_REGION_BYTES) == 1
        assert layout.home_of(3 * NODE_REGION_BYTES + 100) == 3

    def test_home_rejects_out_of_range(self):
        layout = Layout(2)
        with pytest.raises(ConfigError):
            layout.home_of(5 * NODE_REGION_BYTES)

    def test_alloc_places_in_owner_region(self):
        layout = Layout(4)
        addr = layout.alloc(2, 4096)
        assert layout.home_of(addr) == 2

    def test_alloc_alignment_and_disjointness(self):
        layout = Layout(2)
        a = layout.alloc(0, 100, align=64)
        b = layout.alloc(0, 100, align=64)
        assert a % 64 == 0 and b % 64 == 0
        assert b >= a + 100

    def test_alloc_striped(self):
        layout = Layout(3)
        bases = layout.alloc_striped(4096)
        assert [layout.home_of(b) for b in bases] == [0, 1, 2]

    def test_region_exhaustion(self):
        layout = Layout(1, region_bytes=4096)
        layout.alloc(0, 4000)
        with pytest.raises(ConfigError):
            layout.alloc(0, 1000)

    def test_rejects_zero_nodes(self):
        with pytest.raises(ConfigError):
            Layout(0)
