"""Property-based robustness tests for the MP engine.

Random (but well-formed) kernels: every lock is released, every barrier
is reached by all processors — the engine must always terminate, be
deterministic, and respect basic accounting invariants.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mp.engine import MPEngine
from repro.mp.layout import NODE_REGION_BYTES
from repro.mp.ops import Barrier, Compute, Lock, Read, Unlock, Write
from repro.mp.system import MPSystem, SystemKind

# One work item: (kind, value) decoded inside the kernel.
work_item = st.tuples(
    st.sampled_from(["read", "write", "compute", "locked"]),
    st.integers(0, 255),
)
round_plan = st.lists(work_item, min_size=0, max_size=8)
kernel_plan = st.lists(  # plans[round][proc] -> ops for that proc
    st.tuples(round_plan, round_plan),
    min_size=1,
    max_size=4,
)


def _make_kernel(plans):
    def kernel(pid, nprocs):
        for round_index, per_proc in enumerate(plans):
            for kind, value in per_proc[pid]:
                addr = (value % 2) * NODE_REGION_BYTES + (value * 64)
                if kind == "read":
                    yield Read(addr)
                elif kind == "write":
                    yield Write(addr)
                elif kind == "compute":
                    yield Compute(value)
                else:
                    yield Lock(value % 4)
                    yield Write(addr)
                    yield Unlock(value % 4)
            yield Barrier(round_index)

    return kernel


@settings(max_examples=25, deadline=None)
@given(plans=kernel_plan)
def test_engine_terminates_and_is_deterministic(plans):
    first = MPEngine(MPSystem(2, SystemKind.INTEGRATED)).run(_make_kernel(plans))
    second = MPEngine(MPSystem(2, SystemKind.INTEGRATED)).run(_make_kernel(plans))
    assert first.finish_times == second.finish_times
    assert first.ops_executed == second.ops_executed


@settings(max_examples=25, deadline=None)
@given(plans=kernel_plan)
def test_accounting_invariants(plans):
    system = MPSystem(2, SystemKind.INTEGRATED)
    result = MPEngine(system).run(_make_kernel(plans))
    # Every memory op recorded exactly once, split across nodes.
    assert system.stats.total == sum(
        node.total for node in system.node_stats
    )
    assert sum(system.stats.by_level.values()) == system.stats.total
    # Nobody finishes before doing its barrier waits.
    for proc in range(2):
        assert result.finish_times[proc] >= 0
        assert result.barrier_wait_cycles[proc] >= 0
        assert result.lock_wait_cycles[proc] >= 0


@settings(max_examples=15, deadline=None)
@given(plans=kernel_plan, kind=st.sampled_from(list(SystemKind)))
def test_all_system_kinds_complete(plans, kind):
    result = MPEngine(MPSystem(2, kind)).run(_make_kernel(plans))
    assert all(time >= 0 for time in result.finish_times)
