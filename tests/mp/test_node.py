from repro.common.units import MB
from repro.mp.node import HitLevel, IntegratedNode, ReferenceNode


class TestIntegratedNode:
    def test_local_miss_then_column_hit(self):
        node = IntegratedNode(0)
        assert node.lookup(0x1000, is_local=True) is HitLevel.LOCAL_MEMORY
        assert node.lookup(0x1004, is_local=True) is HitLevel.CACHE

    def test_remote_miss_then_inc_path(self):
        node = IntegratedNode(0)
        addr = 0x1000_0000
        assert node.lookup(addr, is_local=False) is HitLevel.REMOTE
        node.fill_remote(addr)
        # Victim staging serves the freshly imported block at 1 cycle.
        assert node.lookup(addr, is_local=False) is HitLevel.VICTIM

    def test_inc_hit_after_victim_displacement(self):
        node = IntegratedNode(0)
        addr = 0x1000_0000
        node.fill_remote(addr)
        # Push 16 other blocks through the victim to displace the staging.
        for i in range(1, 17):
            node.fill_remote(addr + i * 4096)
        assert node.lookup(addr, is_local=False) is HitLevel.INC

    def test_invalidate_clears_inc_and_victim(self):
        node = IntegratedNode(0)
        addr = 0x1000_0000
        node.fill_remote(addr)
        node.invalidate(addr)
        assert node.lookup(addr, is_local=False) is HitLevel.REMOTE

    def test_no_victim_configuration(self):
        node = IntegratedNode(0, with_victim=False)
        addr = 0x1000_0000
        node.fill_remote(addr)
        assert node.lookup(addr, is_local=False) is HitLevel.INC

    def test_inc_eviction_notifies_and_drops_staging(self):
        events = []
        node = IntegratedNode(
            0, inc_bytes=1 * MB, on_remote_eviction=lambda n, a: events.append((n, a))
        )
        stride = node.inc.num_sets * 32
        for i in range(8):  # 7 ways + 1
            node.fill_remote(i * stride)
        assert events and events[0][0] == 0
        evicted_addr = events[0][1]
        assert not node.holds_remote(evicted_addr)
        assert node.victim is not None and not node.victim.contains(evicted_addr)

    def test_local_victim_hit_reported(self):
        node = IntegratedNode(0)
        # Two aliases thrash a direct-mapped... the D-cache is 2-way, so
        # three aliases are needed per set (8 KB apart).
        for addr in (0x0, 0x2000, 0x4000):
            node.lookup(addr, is_local=True)
        # Block 0 was evicted into the victim.
        assert node.lookup(0x0, is_local=True) is HitLevel.VICTIM


class TestReferenceNode:
    def test_local_cold_then_flc_hit(self):
        node = ReferenceNode(0)
        assert node.lookup(0x1000, is_local=True) is HitLevel.LOCAL_MEMORY
        assert node.lookup(0x1000, is_local=True) is HitLevel.CACHE

    def test_slc_is_infinite(self):
        node = ReferenceNode(0)
        # Touch far more than any finite cache would hold.
        for i in range(4096):
            node.lookup(i * 4096, is_local=True)
        # Everything hits the SLC on revisit (FLC conflicts aside).
        level = node.lookup(0, is_local=True)
        assert level in (HitLevel.CACHE, HitLevel.SLC)
        assert level is not HitLevel.LOCAL_MEMORY

    def test_remote_fill_and_hit(self):
        node = ReferenceNode(0)
        addr = 0x1000_0000
        assert node.lookup(addr, is_local=False) is HitLevel.REMOTE
        node.fill_remote(addr)
        level = node.lookup(addr, is_local=False)
        assert level in (HitLevel.CACHE, HitLevel.SLC)

    def test_invalidate_clears_both_levels(self):
        node = ReferenceNode(0)
        addr = 0x1000_0000
        node.fill_remote(addr)
        node.lookup(addr, is_local=False)  # pulls into FLC
        node.invalidate(addr)
        assert node.lookup(addr, is_local=False) is HitLevel.REMOTE
