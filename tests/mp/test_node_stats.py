"""Per-node access statistics."""

import pytest

from repro.mp.engine import MPEngine
from repro.mp.layout import NODE_REGION_BYTES
from repro.mp.ops import Read
from repro.mp.system import MPSystem, SystemKind
from repro.workloads.splash import LUKernel


class TestNodeStats:
    def test_per_node_counts_partition_global(self):
        system = MPSystem(2, SystemKind.INTEGRATED)
        system.access(0, 0x100, write=False)
        system.access(1, NODE_REGION_BYTES + 0x100, write=True)
        system.access(0, NODE_REGION_BYTES + 0x200, write=False)
        assert system.node_stats[0].total == 2
        assert system.node_stats[1].total == 1
        assert system.stats.total == 3

    def test_local_remote_split_per_node(self):
        system = MPSystem(2, SystemKind.INTEGRATED)
        system.access(0, 0x100, write=False)  # local to node 0
        system.access(0, NODE_REGION_BYTES, write=False)  # remote
        assert system.node_stats[0].local == 1
        assert system.node_stats[0].remote == 1
        assert system.node_stats[1].total == 0

    def test_levels_recorded_per_node(self):
        system = MPSystem(2, SystemKind.INTEGRATED)
        system.access(0, 0x100, write=False)
        system.access(0, 0x104, write=False)
        levels = system.node_stats[0].by_level
        assert sum(levels.values()) == 2

    def test_lu_load_balance(self):
        """Round-robin column ownership keeps LU roughly balanced."""
        system = MPSystem(4, SystemKind.INTEGRATED)
        kernel = LUKernel(n=32, block=4)
        MPEngine(system).run(kernel.build(4, system.layout))
        imbalance = system.stats.imbalance(system.node_stats)
        assert 1.0 <= imbalance < 1.6

    def test_engine_kernel_imbalance_visible(self):
        """A deliberately skewed kernel shows up in per-node stats."""

        def kernel(pid, nprocs):
            for i in range(100 if pid == 0 else 10):
                yield Read(pid * NODE_REGION_BYTES + i * 64)

        system = MPSystem(2, SystemKind.INTEGRATED)
        MPEngine(system).run(kernel)
        assert system.node_stats[0].total == 100
        assert system.node_stats[1].total == 10
        assert system.stats.imbalance(system.node_stats) == pytest.approx(
            100 / 55, rel=0.01
        )
