import pytest

from repro.common.params import MPLatencies
from repro.mp.layout import NODE_REGION_BYTES
from repro.mp.system import MPSystem, SystemKind

LAT = MPLatencies()
REMOTE_BASE = NODE_REGION_BYTES  # node 1's region


class TestLocalAccesses:
    def test_local_cold_miss_costs_local_memory(self):
        system = MPSystem(2, SystemKind.INTEGRATED)
        assert system.access(0, 0x1000, write=False) == LAT.local_memory

    def test_local_rehit_costs_one(self):
        system = MPSystem(2, SystemKind.INTEGRATED)
        system.access(0, 0x1000, write=False)
        assert system.access(0, 0x1004, write=False) == LAT.cache_hit

    def test_reference_local_rehit(self):
        system = MPSystem(2, SystemKind.REFERENCE)
        system.access(0, 0x1000, write=False)
        assert system.access(0, 0x1000, write=False) == LAT.flc_hit


class TestRemoteAccesses:
    def test_remote_cold_load_costs_80(self):
        system = MPSystem(2, SystemKind.INTEGRATED)
        assert system.access(0, REMOTE_BASE, write=False) == LAT.remote_load

    def test_remote_reload_hits_staging_then_inc(self):
        system = MPSystem(2, SystemKind.INTEGRATED)
        system.access(0, REMOTE_BASE, write=False)
        assert system.access(0, REMOTE_BASE, write=False) == LAT.victim_hit
        # Displace the victim staging with other imports.
        for i in range(1, 17):
            system.access(0, REMOTE_BASE + i * 4096, write=False)
        assert system.access(0, REMOTE_BASE, write=False) == LAT.inc_access

    def test_reference_remote_reload_hits_flc(self):
        system = MPSystem(2, SystemKind.REFERENCE)
        system.access(0, REMOTE_BASE, write=False)
        assert system.access(0, REMOTE_BASE, write=False) == LAT.flc_hit


class TestCoherence:
    def test_write_invalidates_remote_reader(self):
        system = MPSystem(2, SystemKind.INTEGRATED)
        system.access(1, 0x1000, write=False)  # node 1 imports node 0's block
        assert system.access(1, 0x1000, write=False) == LAT.victim_hit
        # Home writes: round trip to invalidate node 1.
        assert system.access(0, 0x1000, write=True) == LAT.invalidation_round_trip
        # Node 1 must re-fetch.
        assert system.access(1, 0x1000, write=False) == LAT.remote_load

    def test_remote_write_takes_ownership_then_cheap_rewrites(self):
        system = MPSystem(2, SystemKind.INTEGRATED)
        assert system.access(1, 0x1000, write=True) == LAT.invalidation_round_trip
        # Owner rewrite hits the staged copy.
        assert system.access(1, 0x1000, write=True) == LAT.victim_hit

    def test_home_read_of_remotely_owned_block_recalls(self):
        system = MPSystem(2, SystemKind.INTEGRATED)
        system.access(1, 0x1000, write=True)  # node 1 owns node 0's block
        assert system.access(0, 0x1000, write=False) == LAT.invalidation_round_trip
        assert system.stats.recalls == 1
        # After the recall both can read cheaply.
        assert system.access(0, 0x1000, write=False) == LAT.cache_hit

    def test_read_of_dirty_remote_block_costs_round_trip(self):
        system = MPSystem(4, SystemKind.INTEGRATED)
        system.access(1, 0x1000, write=True)  # node 1 owns node 0's block
        # Node 2 reads it: home forwards / recalls — lumped 80 cycles.
        latency = system.access(2, 0x1000, write=False)
        assert latency == LAT.remote_load
        assert system.directory.stats.recalls == 1

    def test_ping_pong_writes(self):
        system = MPSystem(2, SystemKind.INTEGRATED)
        for _ in range(3):
            assert system.access(1, 0x1000, write=True) == LAT.invalidation_round_trip
            assert system.access(0, 0x1000, write=True) == LAT.invalidation_round_trip

    def test_fabric_counts_messages(self):
        system = MPSystem(2, SystemKind.INTEGRATED)
        system.access(1, 0x1000, write=False)
        assert system.fabric.stats.bytes_sent > 0


class TestStats:
    def test_levels_partition_accesses(self):
        system = MPSystem(2, SystemKind.INTEGRATED)
        for i in range(50):
            system.access(0, i * 64, write=False)
            system.access(0, REMOTE_BASE + i * 64, write=i % 3 == 0)
        stats = system.stats
        assert sum(stats.by_level.values()) == stats.total == 100
        assert stats.local == 50
        assert stats.remote == 50

    def test_rejects_zero_nodes(self):
        with pytest.raises(Exception):
            MPSystem(0)
