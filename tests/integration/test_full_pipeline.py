"""Integration tests: chains crossing several subsystems."""

import pytest

from repro.caches import DirectMappedCache, proposed_dcache, proposed_icache
from repro.coherence.engines import engine_report
from repro.coherence.protocol import BlockState
from repro.isa import Assembler, CPU, CacheMemoryModel, PipelineTimer
from repro.isa.programs import vector_sum
from repro.mp.engine import MPEngine
from repro.mp.system import MPSystem, SystemKind
from repro.paperdata import PAPER_TABLE4
from repro.uniproc import integrated_cpi
from repro.workloads.spec import get_proxy
from repro.workloads.splash import LUKernel, OceanKernel


class TestUniprocessorChain:
    """proxy -> caches -> GSPN -> CPI -> Spec ratio, end to end."""

    @pytest.mark.parametrize("name", ["107.mgrid", "102.swim"])
    def test_table4_estimate_tracks_paper(self, name):
        estimate = integrated_cpi(get_proxy(name), trace_len=60_000,
                                  instructions=8_000)
        paper = PAPER_TABLE4[name]
        assert estimate.total_cpi == pytest.approx(paper.total_cpi, rel=0.15)
        assert estimate.spec_ratio == pytest.approx(paper.spec_ratio, rel=0.15)

    def test_estimate_is_reproducible(self):
        a = integrated_cpi(get_proxy("126.gcc"), trace_len=30_000,
                           instructions=4_000, seed=9)
        b = integrated_cpi(get_proxy("126.gcc"), trace_len=30_000,
                           instructions=4_000, seed=9)
        assert a.total_cpi == b.total_cpi


class TestISACrossValidation:
    """The mini-ISA's real executions agree with the proxy-driven
    conclusion: long lines + low latency beat a conventional hierarchy
    on streaming code (DESIGN.md section 6)."""

    def test_streaming_kernel_prefers_integrated_memory(self):
        program = Assembler().assemble(vector_sum(2048))
        timer = PipelineTimer()
        integrated = timer.run(
            CPU(program, keep_instruction_objects=True).run(),
            CacheMemoryModel(proposed_icache(), proposed_dcache(), miss_cycles=6),
        )
        conventional = timer.run(
            CPU(program, keep_instruction_objects=True).run(),
            CacheMemoryModel(
                DirectMappedCache(8192, 32),
                DirectMappedCache(16384, 32),
                miss_cycles=24,
            ),
        )
        assert integrated.cpi < conventional.cpi

    def test_isa_trace_feeds_cache_simulators_directly(self):
        execution = CPU(Assembler().assemble(vector_sum(512))).run()
        cache = proposed_dcache()
        stats = cache.run(execution.data_trace)
        # 512 words = 2 KB = 4 column lines; plus the final checksum store.
        assert stats.misses <= 6


class TestMultiprocessorChain:
    def test_directory_consistent_after_real_workload(self):
        system = MPSystem(4, SystemKind.INTEGRATED)
        kernel = OceanKernel(n=18, iterations=2)
        MPEngine(system).run(kernel.build(4, system.layout))
        # Every directory entry still satisfies its invariants, and every
        # EXCLUSIVE owner really holds the block.
        for block, entry in system.directory._entries.items():
            entry.check()
            if entry.state is BlockState.EXCLUSIVE:
                assert system.nodes[entry.owner].holds_remote(block) or (
                    system.layout.home_of(block) == entry.owner
                )

    def test_fabric_feeds_engine_occupancy_analysis(self):
        system = MPSystem(4, SystemKind.INTEGRATED)
        kernel = LUKernel(n=16, block=4)
        result = MPEngine(system).run(kernel.build(4, system.layout))
        report = engine_report(system.fabric.stats, result.execution_time, 4)
        assert 0.0 <= report.outbound_occupancy < 0.7
        assert not report.saturated

    def test_all_four_system_kinds_run_the_same_kernel(self):
        times = {}
        for kind in SystemKind:
            kernel = LUKernel(n=16, block=4)
            result, _ = kernel.run_on(kind, 2)
            assert kernel.verify()
            times[kind] = result.execution_time
        # Timing differs across systems, results do not (checked above).
        assert len(set(times.values())) > 1
