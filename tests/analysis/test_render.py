from repro.analysis.render import ascii_table, percent, series_block


class TestAsciiTable:
    def test_basic_shape(self):
        out = ascii_table(["a", "b"], [[1, 2.5], [30, 4.0]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "2.500" in lines[2]
        assert len(lines) == 4

    def test_alignment_with_long_values(self):
        out = ascii_table(["name"], [["very-long-benchmark-name"]])
        assert "very-long-benchmark-name" in out


class TestSeriesBlock:
    def test_title_and_rows(self):
        out = series_block("My Title", [1, 2], {"s1": [0.1, 0.2], "s2": [0.3, 0.4]},
                           x_label="n")
        assert out.startswith("My Title")
        assert "s1" in out and "s2" in out
        assert "0.400" in out


class TestPercent:
    def test_formatting(self):
        assert percent(0.1234) == "12.34%"
        assert percent(0.0) == "0.00%"
