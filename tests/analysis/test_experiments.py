"""Experiment harness tests at reduced sizes — each experiment builds,
renders, and reproduces its headline direction."""

import pytest

from repro.analysis.experiments import (
    figure2,
    figure7,
    figure8,
    figure11,
    figure12,
    section56,
    splash_figure,
    table1,
    table3,
    table4,
)
from repro.mp.system import SystemKind

SMALL = dict(trace_len=25_000)


class TestTable1AndFigure2:
    def test_table1_directions(self):
        exp = table1()
        by_name = {name: (spec, syn) for name, spec, syn in exp.rows}
        ss5 = by_name["SparcStation-5"]
        ss10 = by_name["SparcStation-10/61"]
        assert ss10[0] < ss5[0]  # SS-10 wins Spec-class
        assert ss5[1] < ss10[1]  # SS-5 wins Synopsys
        assert "Table 1" in exp.render()

    def test_figure2_crossover(self):
        exp = figure2()
        idx_big = exp.sizes.index(8 * 1024 * 1024)
        idx_mid = exp.sizes.index(512 * 1024)
        assert exp.curves["SS-5"][idx_big] < exp.curves["SS-10/61"][idx_big]
        assert exp.curves["SS-10/61"][idx_mid] < exp.curves["SS-5"][idx_mid]
        assert "Figure 2" in exp.render()


class TestMissRateFigures:
    def test_figure7_headline(self):
        exp = figure7(**SMALL)
        assert len(exp.benchmarks) == 19
        fpppp = exp.rows["145.fpppp"]
        assert fpppp[0] < fpppp[1] / 4  # proposed crushes DM 8K on fpppp
        turb = exp.rows["125.turb3d"]
        assert turb[0] > turb[1]  # the paper's one inversion
        assert "Figure 7" in exp.render()

    def test_figure8_headline(self):
        exp = figure8(**SMALL)
        tomcatv = exp.rows["101.tomcatv"]
        plain, victim, dm16 = tomcatv[0], tomcatv[1], tomcatv[3]
        assert plain > dm16  # long lines hurt tomcatv
        assert victim < plain / 2  # victim rescues it
        assert "Figure 8" in exp.render()


class TestCPIFigures:
    def test_figure11_monotone_and_ordered(self):
        exp = figure11(mem_latencies=(10, 40), trace_len=25_000,
                       instructions=4_000)
        for series in exp.curves.values():
            assert series[-1] > series[0]
        # apsi has the higher base CPI of the two.
        assert exp.curves["141.apsi"][0] > exp.curves["126.gcc"][0]

    def test_figure12_band_at_30ns(self):
        exp = figure12(mem_latencies=(6,), trace_len=25_000, instructions=4_000)
        for name, series in exp.curves.items():
            # "at 30ns access time the CPI impact is between 10% and 25%
            # above the raw CPI figure" — allow a generous band.
            from repro.workloads.spec import get_proxy

            raw = get_proxy(name).base_cpi()
            assert series[0] < raw * 1.35


class TestSpecTables:
    def test_table3_rows_and_render(self):
        exp = table3(trace_len=25_000, instructions=4_000,
                     names=["107.mgrid", "126.gcc"])
        assert len(exp.rows) == 2
        assert "Table 3" in exp.render()

    def test_table4_victim_no_worse(self):
        names = ["101.tomcatv"]
        no_victim = table3(trace_len=25_000, instructions=4_000, names=names)
        with_victim = table4(trace_len=25_000, instructions=4_000, names=names)
        assert (
            with_victim.rows[0][1] + with_victim.rows[0][2]
            <= no_victim.rows[0][1] + no_victim.rows[0][2] + 0.05
        )


class TestSection56:
    def test_cpi_insensitive_utilization_scales(self):
        exp = section56(trace_len=25_000, instructions=4_000,
                        bank_counts=(2, 16))
        # "performance differences were below the error limits".
        assert exp.cpi[2] == pytest.approx(exp.cpi[16], rel=0.10)
        # Fewer banks -> each is busier (paper: 1.2% -> 9.6%).
        assert exp.utilization[2] > 3 * exp.utilization[16]
        assert "5.6" in exp.render()


class TestSplashFigures:
    def test_lu_figure_shape(self):
        exp = splash_figure("lu", proc_counts=(1, 4), n=16, block=4)
        integrated = exp.times[SystemKind.INTEGRATED.value]
        reference = exp.times[SystemKind.REFERENCE.value]
        assert integrated[0] < reference[0]  # integrated wins at small p
        assert integrated[1] < integrated[0]  # speedup
        assert "Figure 13" in exp.render()
