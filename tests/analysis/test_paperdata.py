import pytest

from repro.paperdata import (
    PAPER_TABLE3,
    PAPER_TABLE4,
    spec_ratio_constant,
)


class TestPaperTables:
    def test_eighteen_spec_benchmarks(self):
        assert len(PAPER_TABLE3) == 18
        assert len(PAPER_TABLE4) == 18
        assert set(PAPER_TABLE3) == set(PAPER_TABLE4)

    def test_victim_never_hurts_cpi(self):
        # Table 4 totals are always <= Table 3 totals (victim helps or ties).
        for name, row3 in PAPER_TABLE3.items():
            row4 = PAPER_TABLE4[name]
            assert row4.total_cpi <= row3.cpu_cpi + row3.memory_cpi + 1e-9, name

    def test_swim_has_largest_memory_component(self):
        worst = max(PAPER_TABLE3, key=lambda n: PAPER_TABLE3[n].memory_cpi)
        assert worst == "102.swim"

    def test_spec_ratio_constant_roundtrip(self):
        for name, row in PAPER_TABLE4.items():
            assert spec_ratio_constant(name) / row.total_cpi == pytest.approx(
                row.spec_ratio
            )
