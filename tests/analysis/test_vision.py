import pytest

from repro.analysis.vision import (
    FramebufferBudget,
    framebuffer_budget,
    motherboard_budget,
)
from repro.common.errors import ConfigError


class TestFramebuffer:
    def test_default_display_is_feasible(self):
        # Section 8: "a framebuffer that retrieves its data from main
        # memory as it refreshes a screen ... is made feasible by the high
        # memory bandwidth that is available internally."
        budget = framebuffer_budget()
        assert budget.feasible
        assert budget.internal_fraction < 0.25

    def test_bandwidth_math(self):
        budget = framebuffer_budget(width=1000, height=1000,
                                    bits_per_pixel=32, refresh_hz=100)
        assert budget.bandwidth_gbytes == pytest.approx(0.4)

    def test_absurd_display_is_infeasible(self):
        budget = framebuffer_budget(width=8000, height=8000,
                                    bits_per_pixel=32, refresh_hz=120)
        assert not budget.feasible

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            framebuffer_budget(width=0)


class TestMotherboard:
    def test_bisection_scales_with_nodes(self):
        small = motherboard_budget(4)
        big = motherboard_budget(16)
        assert big.bisection_gbytes == pytest.approx(4 * small.bisection_gbytes)

    def test_memory_capacity(self):
        # Each 256 Mbit device contributes 32 MB.
        budget = motherboard_budget(32)
        assert budget.memory_gbytes == pytest.approx(1.0)

    def test_power_budget_is_modest(self):
        # "Dwarfed by its modest heat-sink to cool some 1.5W".
        assert motherboard_budget(16).power_watts == pytest.approx(24.0)

    def test_rejects_zero_nodes(self):
        with pytest.raises(ConfigError):
            motherboard_budget(0)
