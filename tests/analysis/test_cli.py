from repro.__main__ import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table4" in out
        assert "figures13-17" in out

    def test_unknown_experiment(self, capsys):
        assert main(["bogus"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "SparcStation-5" in out
        assert "[table1:" in out

    def test_run_with_trace_len(self, capsys):
        assert main(["section5.6", "--trace-len", "15000"]) == 0
        assert "bank-count" in capsys.readouterr().out

    def test_figures_with_procs(self, capsys):
        # Smallest possible MP sweep to keep the test quick.
        assert main(["figure2", "--procs", "1"]) == 0
        assert "Figure 2" in capsys.readouterr().out
