import json

import pytest

from repro.__main__ import main


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """Point the CLI cache at a per-test directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path / "cache"


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table4" in out
        assert "figures13-17" in out
        assert "Section" in out  # paper references are shown

    def test_unknown_experiment(self, capsys):
        assert main(["bogus"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_table1(self, capsys, cache_dir):
        assert main(["table1"]) == 0
        captured = capsys.readouterr()
        assert "SparcStation-5" in captured.out
        assert "[table1:" in captured.err

    def test_run_with_trace_len(self, capsys, cache_dir):
        assert main(["section5.6", "--trace-len", "15000"]) == 0
        assert "bank-count" in capsys.readouterr().out

    def test_procs_warns_when_not_applicable(self, capsys, cache_dir):
        # figure2 ignores --procs: the run still succeeds, but the flag
        # is called out instead of being silently dropped.
        assert main(["figure2", "--procs", "1"]) == 0
        captured = capsys.readouterr()
        assert "Figure 2" in captured.out
        assert "--procs" in captured.err
        assert "no effect" in captured.err

    def test_trace_len_warns_when_not_applicable(self, capsys, cache_dir):
        assert main(["table1", "--trace-len", "5000"]) == 0
        err = capsys.readouterr().err
        assert "--trace-len" in err and "no effect" in err

    def test_unknown_only_rejected(self, capsys):
        assert main(["all", "--only", "nope"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_empty_selection_rejected(self, capsys):
        assert main(["table1", "--skip", "table1"]) == 2
        assert "empty" in capsys.readouterr().err

    def test_only_and_skip_filter(self, capsys, cache_dir):
        assert main([
            "all", "--only", "table1,figure2", "--skip", "figure2",
        ]) == 0
        captured = capsys.readouterr()
        assert "SparcStation-5" in captured.out
        assert "Figure 2" not in captured.out

    def test_cache_round_trip_and_no_cache(self, capsys, cache_dir):
        assert main(["table1"]) == 0
        first = capsys.readouterr()
        assert "0/1 cached" in first.err
        assert main(["table1"]) == 0
        second = capsys.readouterr()
        assert "1/1 cached" in second.err
        assert second.out == first.out  # byte-identical rendered tables
        assert main(["table1", "--no-cache"]) == 0
        third = capsys.readouterr()
        assert "cache off" in third.err
        assert third.out == first.out

    def test_metrics_out(self, capsys, cache_dir, tmp_path):
        out = tmp_path / "metrics.json"
        assert main(["table1", "--metrics-out", str(out)]) == 0
        capsys.readouterr()
        data = json.loads(out.read_text())
        assert data["schema"] == 1
        assert data["tasks"][0]["experiment"] == "table1"

    def test_jobs_flag_parses(self, capsys, cache_dir):
        assert main(["table1", "--jobs", "2", "--no-cache"]) == 0
        assert "SparcStation-5" in capsys.readouterr().out

    def test_docs_rejects_partial_selection(self, capsys):
        assert main(["docs", "--only", "table1"]) == 2
        assert "docs" in capsys.readouterr().err
