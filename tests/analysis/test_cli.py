import json

import pytest

from repro import obs
from repro.__main__ import main
from repro.runner import METRICS_SCHEMA_VERSION


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """Point the CLI cache at a per-test directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path / "cache"


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table4" in out
        assert "figures13-17" in out
        assert "Section" in out  # paper references are shown

    def test_unknown_experiment(self, capsys):
        assert main(["bogus"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_table1(self, capsys, cache_dir):
        assert main(["table1"]) == 0
        captured = capsys.readouterr()
        assert "SparcStation-5" in captured.out
        assert "[table1:" in captured.err

    def test_run_with_trace_len(self, capsys, cache_dir):
        assert main(["section5.6", "--trace-len", "15000"]) == 0
        assert "bank-count" in capsys.readouterr().out

    def test_procs_warns_when_not_applicable(self, capsys, cache_dir):
        # figure2 ignores --procs: the run still succeeds, but the flag
        # is called out instead of being silently dropped.
        assert main(["figure2", "--procs", "1"]) == 0
        captured = capsys.readouterr()
        assert "Figure 2" in captured.out
        assert "--procs" in captured.err
        assert "no effect" in captured.err

    def test_trace_len_warns_when_not_applicable(self, capsys, cache_dir):
        assert main(["table1", "--trace-len", "5000"]) == 0
        err = capsys.readouterr().err
        assert "--trace-len" in err and "no effect" in err

    def test_unknown_only_rejected(self, capsys):
        assert main(["all", "--only", "nope"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_empty_selection_rejected(self, capsys):
        assert main(["table1", "--skip", "table1"]) == 2
        assert "empty" in capsys.readouterr().err

    def test_only_and_skip_filter(self, capsys, cache_dir):
        assert main([
            "all", "--only", "table1,figure2", "--skip", "figure2",
        ]) == 0
        captured = capsys.readouterr()
        assert "SparcStation-5" in captured.out
        assert "Figure 2" not in captured.out

    def test_cache_round_trip_and_no_cache(self, capsys, cache_dir):
        assert main(["table1"]) == 0
        first = capsys.readouterr()
        assert "0/1 cached" in first.err
        assert main(["table1"]) == 0
        second = capsys.readouterr()
        assert "1/1 cached" in second.err
        assert second.out == first.out  # byte-identical rendered tables
        assert main(["table1", "--no-cache"]) == 0
        third = capsys.readouterr()
        assert "cache off" in third.err
        assert third.out == first.out

    def test_metrics_out(self, capsys, cache_dir, tmp_path):
        out = tmp_path / "metrics.json"
        assert main(["table1", "--metrics-out", str(out)]) == 0
        capsys.readouterr()
        data = json.loads(out.read_text())
        assert data["schema"] == METRICS_SCHEMA_VERSION
        assert data["tasks"][0]["experiment"] == "table1"
        assert data["quarantined"] == 0

    def test_jobs_flag_parses(self, capsys, cache_dir):
        assert main(["table1", "--jobs", "2", "--no-cache"]) == 0
        assert "SparcStation-5" in capsys.readouterr().out

    def test_docs_rejects_partial_selection(self, capsys):
        assert main(["docs", "--only", "table1"]) == 2
        assert "docs" in capsys.readouterr().err


class TestCLIObservability:
    @pytest.fixture(autouse=True)
    def reset_tracing(self):
        # --trace/--perf-summary enable the process-global tracer; leave
        # it the way other tests expect it.
        yield
        obs.disable()
        obs.reset()

    def test_trace_emits_chrome_trace_for_every_layer(
            self, capsys, cache_dir, tmp_path):
        trace_out = tmp_path / "trace.json"
        assert main([
            "section5.6", "--trace-len", "8000", "--no-cache",
            "--trace", str(trace_out),
        ]) == 0
        assert "trace written" in capsys.readouterr().err
        doc = json.loads(trace_out.read_text())
        events = doc["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0
            assert set(event) >= {"name", "cat", "ts", "pid", "tid"}
        cats = {event["cat"] for event in events}
        # Every modeling layer this experiment exercises shows up.
        assert {"task", "gspn", "cache", "trace"} <= cats
        depths = {e["name"]: e for e in events}
        assert any(n.startswith("gspn/run/") for n in depths)
        assert any(n.startswith("task/section5.6/") for n in depths)

    def test_perf_summary_written_and_parseable(
            self, capsys, cache_dir, tmp_path):
        bench_out = tmp_path / "bench.json"
        assert main([
            "section5.6", "--trace-len", "8000", "--no-cache",
            "--perf-summary", str(bench_out),
        ]) == 0
        assert "perf summary" in capsys.readouterr().err
        bench = json.loads(bench_out.read_text())
        assert bench["schema"] == 1
        assert bench["kind"] == "bench"
        assert bench["events"] > 0
        assert bench["events_per_sec"] > 0
        assert bench["stages"]
        for stage in bench["stages"].values():
            assert stage["count"] >= 1
            assert stage["wall_s"] >= 0

    def test_metrics_include_stages_when_tracing(
            self, capsys, cache_dir, tmp_path):
        metrics_out = tmp_path / "metrics.json"
        trace_out = tmp_path / "trace.json"
        assert main([
            "section5.6", "--trace-len", "8000", "--no-cache",
            "--trace", str(trace_out), "--metrics-out", str(metrics_out),
        ]) == 0
        capsys.readouterr()
        data = json.loads(metrics_out.read_text())
        assert data["schema"] == METRICS_SCHEMA_VERSION
        assert any(name.startswith("task/section5.6/")
                   for name in data["stages"])

    def test_no_tracing_means_no_stages(self, capsys, cache_dir, tmp_path):
        metrics_out = tmp_path / "metrics.json"
        assert main(["table1", "--metrics-out", str(metrics_out)]) == 0
        capsys.readouterr()
        assert json.loads(metrics_out.read_text())["stages"] == {}


class TestCLIFaultTolerance:
    def test_injected_crash_is_quarantined_with_nonzero_exit(
            self, capsys, cache_dir, tmp_path):
        out = tmp_path / "metrics.json"
        assert main([
            "table1", "--inject", "table1=crash", "--max-retries", "0",
            "--metrics-out", str(out),
        ]) == 1
        err = capsys.readouterr().err
        assert "quarantined" in err
        data = json.loads(out.read_text())
        assert data["quarantined"] == 1
        [task] = [t for t in data["tasks"] if t["status"] == "quarantined"]
        assert task["failure"]["kind"] == "crash"

    def test_injected_crash_recovers_with_a_retry(self, capsys, cache_dir):
        assert main([
            "table1", "--inject", "table1=crash:1", "--max-retries", "1",
        ]) == 0
        assert "SparcStation-5" in capsys.readouterr().out

    def test_resume_serves_journaled_shards(self, capsys, cache_dir, tmp_path):
        assert main(["table1"]) == 0
        first = capsys.readouterr()
        out = tmp_path / "metrics.json"
        assert main(["table1", "--resume", "--metrics-out", str(out)]) == 0
        second = capsys.readouterr()
        assert second.out == first.out  # byte-identical rendered tables
        data = json.loads(out.read_text())
        assert [t["cache"] for t in data["tasks"]] == ["resumed"]

    def test_resume_requires_the_cache(self, capsys):
        assert main(["table1", "--resume", "--no-cache"]) == 2
        assert "--resume" in capsys.readouterr().err

    def test_bad_inject_rejected(self, capsys):
        assert main(["table1", "--inject", "table1=explode"]) == 2
        assert "inject" in capsys.readouterr().err.lower()

    def test_bad_timeout_rejected(self, capsys, cache_dir):
        assert main(["table1", "--task-timeout", "0"]) == 2
        assert "task_timeout" in capsys.readouterr().err

    def test_fail_fast_aborts(self, capsys, cache_dir):
        assert main([
            "all", "--only", "table1,figure2", "--inject", "table1=raise",
            "--max-retries", "0", "--fail-fast",
        ]) == 1
        err = capsys.readouterr().err
        assert "fail-fast" in err and "--resume" in err
