from repro.analysis import crossover


class TestCrossover:
    def test_structure_and_render(self):
        exp = crossover(
            benchmarks=("126.gcc",),
            mem_latencies=(8, 24),
            trace_len=20_000,
            instructions=3_000,
        )
        assert exp.benchmarks == ["126.gcc"]
        assert len(exp.conventional["126.gcc"]) == 2
        assert "Crossover" in exp.render()

    def test_conventional_cpi_monotone_in_latency(self):
        exp = crossover(
            benchmarks=("102.swim",),
            mem_latencies=(8, 40),
            trace_len=20_000,
            instructions=3_000,
        )
        series = exp.conventional["102.swim"]
        assert series[1] > series[0]

    def test_integrated_wins_within_the_sweep(self):
        """The paper's thesis: a conventional hierarchy needs unreachably
        fast memory to match the integrated device."""
        exp = crossover(
            benchmarks=("126.gcc",),
            mem_latencies=(8, 16, 24, 40),
            trace_len=20_000,
            instructions=3_000,
        )
        assert exp.crossover["126.gcc"] is not None
        assert exp.crossover["126.gcc"] <= 24
