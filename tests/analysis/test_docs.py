"""EXPERIMENTS.md generation and the drift check (tier-1)."""

from pathlib import Path

import pytest

from repro.analysis import docs

REPO_ROOT = Path(__file__).resolve().parents[2]


def _fake_artifacts():
    return {
        "schema": docs.ARTIFACTS_SCHEMA_VERSION,
        "fingerprint": "ab" * 32,
        "results": [
            {
                "name": "table1",
                "paper_ref": "Table 1 / Section 2",
                "summary": "demo summary",
                "modules": ["repro.machines"],
                "tasks": 1,
                "tallies": {},
                "rendered": "Table 1: demo\nrow",
            },
            {
                "name": "section5.6",
                "paper_ref": "Section 5.6",
                "summary": "bank sweep",
                "modules": ["repro.gspn"],
                "tasks": 4,
                "tallies": {"gspn_firings": 1234},
                "rendered": "banks",
            },
        ],
    }


class TestGeneration:
    def test_deterministic(self):
        artifacts = _fake_artifacts()
        assert docs.generate_experiments_md(
            artifacts
        ) == docs.generate_experiments_md(artifacts)

    def test_contains_sections_and_footer(self):
        text = docs.generate_experiments_md(_fake_artifacts())
        assert text.startswith("# EXPERIMENTS — paper vs measured")
        assert "## Table 1 / Section 2 — `table1`" in text
        assert "Table 1: demo" in text
        assert "## Run metadata" in text
        assert "`abababababababab`" in text  # fingerprint prefix
        assert "1,234" in text  # tallies make the footer table
        assert "wall_s" not in text  # timing never enters the document

    def test_no_timestamps(self):
        # Nothing date-like may enter the document: determinism is what
        # makes the zero-diff check possible.
        text = docs.generate_experiments_md(_fake_artifacts())
        for fragment in ("202", "19:", "UTC"):
            assert fragment not in text

    def test_artifacts_roundtrip(self, tmp_path):
        artifacts = _fake_artifacts()
        path = tmp_path / "artifacts" / "experiments.json"
        docs.write_artifacts(path, artifacts)
        assert docs.load_artifacts(path) == artifacts


class TestDrift:
    def test_checked_in_docs_are_in_sync(self):
        """The committed EXPERIMENTS.md regenerates byte-identically from
        the committed artifacts (scripts/check_docs.py runs this same
        check)."""
        if not (REPO_ROOT / docs.DEFAULT_ARTIFACTS_PATH).exists():
            pytest.skip("artifacts not generated yet")
        assert docs.check_drift(REPO_ROOT) == []

    def test_drift_is_detected(self, tmp_path):
        artifacts = _fake_artifacts()
        (tmp_path / "artifacts").mkdir()
        docs.write_artifacts(tmp_path / "artifacts" / "experiments.json",
                             artifacts)
        (tmp_path / "EXPERIMENTS.md").write_text(
            docs.generate_experiments_md(artifacts) + "manual edit\n"
        )
        diff = docs.check_drift(tmp_path)
        assert diff and any("manual edit" in line for line in diff)

    def test_in_sync_roundtrip(self, tmp_path):
        artifacts = _fake_artifacts()
        (tmp_path / "artifacts").mkdir()
        docs.write_artifacts(tmp_path / "artifacts" / "experiments.json",
                             artifacts)
        (tmp_path / "EXPERIMENTS.md").write_text(
            docs.generate_experiments_md(artifacts)
        )
        assert docs.check_drift(tmp_path) == []
