"""The model checker passes the shipped protocol and catches mutants."""

import pytest

from repro.check.protocol import (
    DEFAULT_CONFIGS,
    ProtocolModelChecker,
    check_protocol,
)
from repro.coherence.protocol import Directory
from repro.common.errors import ProtocolError


class TestShippedProtocol:
    def test_two_nodes_one_block_exhausts_clean(self):
        result = ProtocolModelChecker(2, 1).check()
        assert result.ok, [f.render() for f in result.findings]
        assert result.states > 20
        assert result.transitions > result.states

    def test_three_nodes_two_blocks_exhausts_clean(self):
        result = ProtocolModelChecker(3, 2).check()
        assert result.ok, [f.render() for f in result.findings]
        assert result.states > 1000

    def test_default_pass_is_clean(self):
        result = check_protocol()
        assert not result.findings
        assert result.info["configs"] == len(DEFAULT_CONFIGS)
        assert result.info["states"] > 0


class DropsInvalidations(Directory):
    """Mutant: grants writes without invalidating the other copies."""

    def record_write(self, addr, requester, home):
        super().record_write(addr, requester, home)
        return set()


class GrantsUntrackedWrites(Directory):
    """Mutant: forgets to record the new exclusive owner."""

    def record_write(self, addr, requester, home):
        victims = super().record_write(addr, requester, home)
        del self._entries[self.block_of(addr)]
        return victims


class RaisesOnWrite(Directory):
    def record_write(self, addr, requester, home):
        raise ProtocolError("injected failure")


class TestMutants:
    def test_dropped_invalidation_yields_counterexample(self):
        result = ProtocolModelChecker(
            3, 1, directory_factory=DropsInvalidations
        ).check()
        assert not result.ok
        rules = {f.rule for f in result.findings}
        assert "single-writer" in rules
        violation = next(f for f in result.findings
                         if f.rule == "single-writer")
        # BFS guarantees a minimal, replayable message-by-message trace.
        assert violation.trace
        assert any("write" in step for step in violation.trace)
        assert all(isinstance(step, str) for step in violation.trace)

    def test_dropped_invalidation_caught_at_minimum_size(self):
        result = ProtocolModelChecker(
            2, 1, directory_factory=DropsInvalidations
        ).check()
        assert not result.ok

    def test_untracked_owner_breaks_agreement(self):
        result = ProtocolModelChecker(
            2, 1, directory_factory=GrantsUntrackedWrites
        ).check()
        assert "cache-dir-agreement" in {f.rule for f in result.findings}

    def test_protocol_error_reported_with_trace(self):
        result = ProtocolModelChecker(
            2, 1, directory_factory=RaisesOnWrite
        ).check()
        finding = next(f for f in result.findings
                       if f.rule == "protocol-error")
        assert "injected failure" in finding.message

    def test_mutant_findings_flow_through_pass(self):
        result = check_protocol(
            configs=((2, 1),), directory_factory=DropsInvalidations
        )
        assert result.errors


class TestDeadlockAndLimits:
    def test_state_space_cap_reported(self):
        result = ProtocolModelChecker(3, 2, max_states=10).check()
        assert [f.rule for f in result.findings] == ["state-space"]

    def test_stuck_fill_reported_as_deadlock(self):
        class NeverCompletes(ProtocolModelChecker):
            def successors(self, state):
                for label, nxt in super().successors(state):
                    if "completes" not in label:
                        yield label, nxt

        result = NeverCompletes(2, 1).check()
        assert "deadlock" in {f.rule for f in result.findings}


class TestTraceShape:
    def test_trace_replays_from_initial_state(self):
        checker = ProtocolModelChecker(3, 1,
                                       directory_factory=DropsInvalidations)
        result = checker.check()
        violation = next(f for f in result.findings
                         if f.rule == "single-writer")
        # The trace must mention both racing nodes' operations.
        text = " ".join(violation.trace)
        assert "issues a write" in text
