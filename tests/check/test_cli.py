"""``python -m repro check`` CLI: selection, formats, exit codes."""

import json

import repro.__main__ as repro_main
from repro.check.cli import PASS_NAMES, main, run_check, select_passes
from repro.check.report import CheckReport, Finding, PassResult


class TestSelection:
    def test_default_selects_all_in_order(self):
        selected, unknown = select_passes(None, None)
        assert selected == list(PASS_NAMES)
        assert unknown == []

    def test_only_narrows(self):
        selected, unknown = select_passes("lints,protocol", None)
        assert selected == ["protocol", "lints"]  # declaration order
        assert unknown == []

    def test_skip_removes(self):
        selected, _ = select_passes(None, "gspn")
        assert selected == ["protocol", "lints", "deps", "units", "races"]

    def test_unknown_names_reported_not_ignored(self):
        _, unknown = select_passes("protocol,nosuch", "bogus")
        assert unknown == ["bogus", "nosuch"]


class TestMain:
    def test_unknown_pass_exits_2(self, capsys):
        assert main(["--only", "nosuch"]) == 2
        err = capsys.readouterr().err
        assert "unknown pass(es): nosuch" in err
        assert "known: protocol, gspn, lints, deps, units, races" in err

    def test_empty_selection_exits_2(self, capsys):
        assert main(["--skip", "protocol,gspn,lints,deps,units,races"]) == 2
        assert "selection is empty" in capsys.readouterr().err

    def test_json_format_parses(self, capsys):
        assert main(["--only", "lints", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [p["name"] for p in payload["passes"]] == ["lints"]
        assert payload["summary"]["ok"] is True
        assert payload["summary"]["errors"] == 0

    def test_text_format_has_summary_line(self, capsys):
        assert main(["--only", "lints"]) == 0
        out = capsys.readouterr().out
        assert "[lints] ok" in out
        assert "1 pass(es), 0 error(s)" in out

    def test_dispatch_from_repro_main(self, capsys):
        assert repro_main.main(["check", "--only", "lints"]) == 0
        assert "[lints] ok" in capsys.readouterr().out

    def test_experiment_cli_unaffected(self, capsys):
        assert repro_main.main(["list"]) == 0
        assert "table1" in capsys.readouterr().out


class TestFullSuite:
    def test_shipped_tree_passes_every_check(self):
        # The tier-1 self-check: protocol exhaustion, GSPN structural
        # analysis and lints all clean on the shipped sources.
        report = run_check()
        assert [p.name for p in report.passes] == list(PASS_NAMES)
        assert report.exit_code == 0, [f.render() for f in report.errors]


class TestReport:
    def _finding(self, severity="error"):
        return Finding("protocol", "single-writer", severity,
                       "nodes=2, blocks=1", "two writers",
                       ("node 0 issues a write of block 0",
                        "node 1 issues a write of block 0"))

    def test_error_sets_exit_code(self):
        report = CheckReport([PassResult("protocol", [self._finding()])])
        assert report.exit_code == 1

    def test_warnings_do_not_fail(self):
        report = CheckReport(
            [PassResult("gspn", [self._finding("warning")])]
        )
        assert report.exit_code == 0

    def test_render_includes_trace_steps(self):
        text = self._finding().render()
        assert "error[protocol/single-writer]" in text
        assert "counterexample trace:" in text
        assert "1. node 0 issues a write of block 0" in text

    def test_json_round_trips_trace(self):
        report = CheckReport([PassResult("protocol", [self._finding()])])
        payload = json.loads(report.to_json())
        finding = payload["passes"][0]["findings"][0]
        assert finding["rule"] == "single-writer"
        assert len(finding["trace"]) == 2
        assert payload["summary"]["ok"] is False
