"""Simulation-discipline lints: one fixture per rule, plus suppression."""

import textwrap

from repro.check.lints import LINT_RULES, lint_paths, lint_source


def rules_of(source: str) -> list[str]:
    return [f.rule for f in lint_source(textwrap.dedent(source))]


class TestGlobalRng:
    def test_stdlib_random_flagged(self):
        assert rules_of("""
            import random
            x = random.random()
        """) == ["global-rng"]

    def test_stdlib_random_seed_flagged(self):
        assert "global-rng" in rules_of("""
            import random
            random.seed(42)
        """)

    def test_numpy_module_rng_flagged_through_alias(self):
        assert rules_of("""
            import numpy as np
            x = np.random.rand(3)
        """) == ["global-rng"]

    def test_from_numpy_import_random_flagged(self):
        assert rules_of("""
            from numpy import random as npr
            npr.seed(0)
        """) == ["global-rng"]

    def test_generator_api_allowed(self):
        assert rules_of("""
            import numpy as np
            rng = np.random.default_rng(42)
            g = np.random.Generator(np.random.PCG64(1))
        """) == []

    def test_member_import_of_randrange_flagged(self):
        assert rules_of("""
            from random import randrange
            x = randrange(4)
        """) == ["global-rng"]

    def test_unrelated_random_name_not_flagged(self):
        assert rules_of("""
            def pick(random):
                return random.choice
        """) == []


class TestWallClock:
    def test_time_time_flagged(self):
        assert rules_of("""
            import time
            t = time.time()
        """) == ["wall-clock"]

    def test_perf_counter_member_import_flagged(self):
        assert rules_of("""
            from time import perf_counter
            t = perf_counter()
        """) == ["wall-clock"]

    def test_datetime_now_flagged(self):
        assert rules_of("""
            from datetime import datetime
            stamp = datetime.now()
        """) == ["wall-clock"]

    def test_time_sleep_not_flagged(self):
        assert rules_of("""
            import time
            time.sleep(0.1)
        """) == []


class TestFloatEq:
    def test_eq_against_float_literal_flagged(self):
        assert rules_of("x = 1.5\nif x == 0.3: pass\n") == ["float-eq"]

    def test_neq_flagged(self):
        assert rules_of("y = 0.0\nz = y != 2.5\n") == ["float-eq"]

    def test_integer_comparison_allowed(self):
        assert rules_of("x = 3\nif x == 3: pass\n") == []

    def test_less_than_float_allowed(self):
        assert rules_of("x = 1.5\nif x < 0.3: pass\n") == []


class TestMutableDefault:
    def test_list_default_flagged(self):
        assert rules_of("def f(a=[]): pass\n") == ["mutable-default"]

    def test_dict_call_default_flagged(self):
        assert rules_of("def f(*, a=dict()): pass\n") == ["mutable-default"]

    def test_none_default_allowed(self):
        assert rules_of("def f(a=None, b=(), c=0): pass\n") == []


class TestBroadExcept:
    def test_bare_except_swallow_flagged(self):
        assert rules_of("""
            try:
                risky()
            except:
                pass
        """) == ["broad-except"]

    def test_except_exception_swallow_flagged(self):
        assert rules_of("""
            try:
                risky()
            except Exception:
                result = None
        """) == ["broad-except"]

    def test_except_base_exception_in_tuple_flagged(self):
        assert rules_of("""
            try:
                risky()
            except (ValueError, BaseException):
                result = None
        """) == ["broad-except"]

    def test_reraise_allowed(self):
        assert rules_of("""
            try:
                risky()
            except Exception:
                cleanup()
                raise
        """) == []

    def test_raise_from_allowed(self):
        assert rules_of("""
            try:
                risky()
            except Exception as exc:
                raise RuntimeError("wrapped") from exc
        """) == []

    def test_logging_call_allowed(self):
        assert rules_of("""
            try:
                risky()
            except Exception as exc:
                log.warning("recovering from %s", exc)
        """) == []

    def test_print_allowed(self):
        assert rules_of("""
            try:
                risky()
            except Exception as exc:
                print(exc)
        """) == []

    def test_narrow_except_allowed(self):
        assert rules_of("""
            try:
                risky()
            except (OSError, ValueError):
                result = None
        """) == []

    def test_allow_comment_on_handler_line_suppresses(self):
        assert rules_of("""
            try:
                risky()
            except Exception:  # repro: allow(broad-except)
                result = None
        """) == []

    def test_flagged_on_the_handler_line(self):
        findings = lint_source(
            "try:\n    risky()\nexcept Exception:\n    pass\n"
        )
        assert len(findings) == 1
        assert findings[0].location.endswith(":3")


class TestSuppression:
    def test_allow_comment_suppresses_on_its_line(self):
        assert rules_of("""
            import time
            t = time.time()  # repro: allow(wall-clock)
        """) == []

    def test_allow_of_other_rule_does_not_suppress(self):
        # The finding survives, and the misdirected suppression is
        # itself reported as unused.
        assert rules_of("""
            import time
            t = time.time()  # repro: allow(float-eq)
        """) == ["wall-clock", "unused-suppression"]

    def test_allow_accepts_rule_list(self):
        assert rules_of("""
            import time, random
            t = time.time() + random.random()  # repro: allow(wall-clock, global-rng)
        """) == []

    def test_allow_on_other_line_does_not_suppress(self):
        assert rules_of("""
            import time  # repro: allow(wall-clock)
            t = time.time()
        """) == ["wall-clock", "unused-suppression"]


class TestSuppressionValidation:
    def test_unknown_rule_is_warned(self):
        findings = lint_source(
            "import time\nt = time.time()  # repro: allow(wall-clok)\n"
        )
        rules = [f.rule for f in findings]
        # The typo'd suppression guards nothing: the real finding
        # surfaces AND the bogus comment is called out.
        assert "wall-clock" in rules
        assert "unknown-suppression" in rules
        unknown = next(f for f in findings if f.rule == "unknown-suppression")
        assert unknown.severity == "warning"
        assert "wall-clok" in unknown.message
        assert unknown.location.endswith(":2")

    def test_deps_rules_are_known(self):
        # The allow() namespace spans the deps pass: suppressing one of
        # its interprocedural rules is not "unknown" here.
        findings = lint_source(
            "_REGISTRY = {}  # repro: allow(mutable-global)\n"
        )
        assert findings == []

    def test_unused_lint_suppression_is_warned(self):
        findings = lint_source("x = 1  # repro: allow(wall-clock)\n")
        assert [f.rule for f in findings] == ["unused-suppression"]
        assert findings[0].severity == "warning"
        assert "wall-clock" in findings[0].message

    def test_used_suppression_is_not_warned(self):
        findings = lint_source(
            "import time\nt = time.time()  # repro: allow(wall-clock)\n"
        )
        assert findings == []

    def test_deps_suppression_is_never_called_unused(self):
        # This linter cannot see deps findings, so it must not judge
        # deps-rule suppressions as unused.
        findings = lint_source("x = []  # repro: allow(untracked-input)\n")
        assert findings == []

    def test_doc_prose_about_the_syntax_is_ignored(self):
        findings = lint_source(
            '"""Suppress with ``# repro: allow(<rule>)`` comments."""\n'
        )
        assert findings == []


class TestDocCoverage:
    def test_off_by_default(self):
        # Fragments (and every other fixture in this file) are not
        # public API; the rule must not fire unless asked.
        assert rules_of("x = 1\n") == []

    def test_module_docstring_required_when_asked(self):
        findings = lint_source("x = 1\n", require_module_doc=True)
        assert [f.rule for f in findings] == ["doc-coverage"]
        assert findings[0].location.endswith(":1")

    def test_module_docstring_satisfies(self):
        findings = lint_source('"""Documented."""\nx = 1\n',
                               require_module_doc=True)
        assert findings == []

    def test_entry_point_docstring_required(self):
        source = "def table9():\n    return 1\n"
        findings = lint_source(source, required_docs=frozenset({"table9"}))
        assert [f.rule for f in findings] == ["doc-coverage"]
        assert "table9" in findings[0].message

    def test_only_named_functions_are_required(self):
        source = "def helper():\n    return 1\n"
        assert lint_source(source,
                           required_docs=frozenset({"table9"})) == []

    def test_suppressible_like_any_rule(self):
        source = "# repro: allow(doc-coverage)\nx = 1\n"
        assert lint_source(source, require_module_doc=True) == []

    def test_suppression_not_judged_unused_when_rule_off(self):
        # Explicit-roots scans do not run doc-coverage, so they cannot
        # call its suppressions stale.
        source = '"""Doc."""  # repro: allow(doc-coverage)\nx = 1\n'
        assert lint_source(source) == []

    def test_default_scan_requires_entry_point_docs(self):
        # Both registries contribute: the experiment entry points and
        # the sweep bases (which deliberately reuse experiment names).
        from repro.check.lints import _entry_point_docs

        required = _entry_point_docs()
        assert "splash_figure" in required["repro.analysis.experiments"]
        assert "icache_point" in required["repro.sweep.points"]


class TestLintPaths:
    def test_source_tree_is_clean(self):
        # The acceptance bar: the shipped simulator obeys its own
        # determinism contract (modulo reviewed `# repro: allow` sites).
        result = lint_paths()
        assert result.findings == [], [f.render() for f in result.findings]
        assert result.info["files"] > 50
        assert result.info["rules"] == len(LINT_RULES)

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        result = lint_paths([tmp_path])
        assert [f.rule for f in result.findings] == ["syntax"]

    def test_explicit_roots_are_scanned(self, tmp_path):
        (tmp_path / "a.py").write_text("import random\nrandom.seed(1)\n")
        (tmp_path / "b.py").write_text("x = 1\n")
        result = lint_paths([tmp_path])
        assert result.info["files"] == 2
        assert [f.rule for f in result.findings] == ["global-rng"]
        assert str(tmp_path / "a.py") in result.findings[0].location
