"""The races pass: thread roots, lockset verdicts, mutant fixtures.

The discipline mirrors the protocol checker's tests: the shipped tree
must verify clean, and *mutants* — the same toy service with one
concurrency bug introduced — must each produce the named finding with
a witness chain rooted at a thread root.
"""

import textwrap
from pathlib import Path

from repro.check.races import RACES_RULES, check_races

SVC_ENTRIES = {"toy": "pkg.svc.run"}

# A miniature of the serve layer: one lock-guarded counter, a worker
# thread started from `start`, and a main-root `poke`.  `{worker_body}`
# and `{poke_body}` are the mutation points.
_SVC_TEMPLATE = """
    import threading

    class Service:
        def __init__(self):
            self._lock = threading.Lock()
            self._other = threading.Lock()
            self.count = 0

        def start(self):
            worker = threading.Thread(target=self._worker)
            worker.start()

        def _worker(self):
{worker_body}

        def poke(self):
{poke_body}

    def run(svc: Service) -> None:
        svc.start()
        svc.poke()
"""


def _svc_source(worker_body: str, poke_body: str) -> str:
    return _SVC_TEMPLATE.format(
        worker_body=textwrap.indent(textwrap.dedent(worker_body), " " * 12),
        poke_body=textwrap.indent(textwrap.dedent(poke_body), " " * 12),
    )


def _pkg(tmp_path: Path, files: dict[str, str]) -> Path:
    root = tmp_path / "pkg"
    root.mkdir(exist_ok=True)
    (root / "__init__.py").touch()
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


def _run(tmp_path, files, entries):
    return check_races(_pkg(tmp_path, files), entry_points=entries)


def _rules(result, severity=None):
    return [f.rule for f in result.findings
            if severity is None or f.severity == severity]


class TestCleanFixtures:
    def test_consistently_guarded_counter_is_clean(self, tmp_path):
        source = _svc_source(
            "with self._lock:\n    self.count += 1",
            "with self._lock:\n    self.count += 1",
        )
        result = _run(tmp_path, {"svc.py": source}, SVC_ENTRIES)
        assert result.findings == []
        assert result.info["thread_roots"] == 1

    def test_event_and_queue_fields_are_whitelisted(self, tmp_path):
        source = """
            import queue
            import threading

            class Pipe:
                def __init__(self):
                    self.ready = threading.Event()
                    self.items = queue.Queue()

                def start(self):
                    threading.Thread(target=self._worker).start()

                def _worker(self):
                    self.items.put(1)
                    self.ready.set()

            def run(pipe: Pipe) -> None:
                pipe.start()
                pipe.items.put(2)
                pipe.ready.set()
        """
        result = _run(tmp_path, {"svc.py": source}, SVC_ENTRIES)
        assert result.findings == []

    def test_lock_free_code_without_lock_evidence_stays_silent(
            self, tmp_path):
        # Per-thread partitioned tallies (the loadtest idiom): writes
        # from two roots but no lock anywhere near — not reported as
        # unguarded, because there is no locking discipline to violate.
        source = """
            import threading

            class Tally:
                def __init__(self):
                    self.hits = 0

            def bump(tally: Tally) -> None:
                tally.hits += 1

            def run(tally: Tally) -> None:
                threading.Thread(target=bump, args=(tally,)).start()
                bump(tally)
        """
        result = _run(tmp_path, {"svc.py": source}, SVC_ENTRIES)
        assert _rules(result, "error") == []


class TestMutants:
    def test_deleted_with_block_is_race_unguarded(self, tmp_path):
        source = _svc_source(
            "with self._lock:\n    self.count += 1",
            "self.count += 1",  # the guard was deleted here
        )
        result = _run(tmp_path, {"svc.py": source}, SVC_ENTRIES)
        assert _rules(result, "error") == ["race-unguarded"]
        [finding] = [f for f in result.findings if f.severity == "error"]
        assert "pkg.svc.Service.count" in finding.message
        assert "pkg.svc.Service._lock" in finding.message
        # The witness is rooted at a thread root and ends at the access.
        assert "[thread root:" in finding.trace[0]
        assert "lockset {}" in finding.trace[-1]

    def test_different_lock_per_site_is_race_guard_mix(self, tmp_path):
        source = _svc_source(
            "with self._lock:\n    self.count += 1",
            "with self._other:\n    self.count += 1",
        )
        result = _run(tmp_path, {"svc.py": source}, SVC_ENTRIES)
        assert _rules(result, "error") == ["race-guard-mix"]
        [finding] = [f for f in result.findings if f.severity == "error"]
        assert "pkg.svc.Service._lock" in finding.message
        assert "pkg.svc.Service._other" in finding.message
        assert "[thread root:" in finding.trace[0]

    def test_inverted_acquisition_order_is_race_lock_order(self, tmp_path):
        source = _svc_source(
            "with self._lock:\n    with self._other:\n        self.count += 1",
            "with self._other:\n    with self._lock:\n        self.count += 1",
        )
        result = _run(tmp_path, {"svc.py": source}, SVC_ENTRIES)
        assert "race-lock-order" in _rules(result, "error")
        finding = next(f for f in result.findings
                       if f.rule == "race-lock-order")
        assert "both orders" in finding.message
        assert "[thread root:" in finding.trace[0]

    def test_lock_and_io_in_signal_handler_is_race_signal_unsafe(
            self, tmp_path):
        source = """
            import signal
            import threading

            _LOCK = threading.Lock()

            def handler(signum, frame):
                with _LOCK:
                    print("shutting down")

            def run() -> None:
                signal.signal(signal.SIGTERM, handler)
        """
        result = _run(tmp_path, {"svc.py": source}, SVC_ENTRIES)
        rules = _rules(result, "error")
        assert set(rules) == {"race-signal-unsafe"}
        assert len(rules) == 2  # the lock acquisition AND the print
        for finding in result.findings:
            assert "[thread root: signal]" in finding.trace[0]

    def test_event_set_in_signal_handler_is_allowed(self, tmp_path):
        # The serve daemon's request_shutdown idiom: Event.set() is the
        # documented reentrant-safe minimum, not a finding.
        source = """
            import signal
            import threading

            STOP = threading.Event()

            def handler(signum, frame):
                STOP.set()

            def run() -> None:
                signal.signal(signal.SIGTERM, handler)
        """
        result = _run(tmp_path, {"svc.py": source}, SVC_ENTRIES)
        assert result.findings == []


class TestWarnings:
    def test_check_then_act_window_is_warned(self, tmp_path):
        source = """
            import threading

            class Registry:
                def __init__(self):
                    self.table = {}

                def start(self):
                    threading.Thread(target=self._worker).start()

                def _worker(self):
                    self.table["x"] = 1

                def lookup(self):
                    if "x" in self.table:
                        return self.table["x"]
                    return None

            def run(reg: Registry) -> None:
                reg.start()
                reg.lookup()
        """
        result = _run(tmp_path, {"svc.py": source}, SVC_ENTRIES)
        assert _rules(result, "error") == []
        assert "race-check-then-act" in _rules(result, "warning")

    def test_unresolvable_thread_target_is_warned(self, tmp_path):
        source = """
            import threading

            def run() -> None:
                threading.Thread(target=missing_worker).start()
        """
        result = _run(tmp_path, {"svc.py": source}, SVC_ENTRIES)
        assert _rules(result) == ["race-thread-root"]
        [finding] = result.findings
        assert "missing_worker" in finding.message


class TestSuppressions:
    def test_allow_comment_suppresses_the_finding(self, tmp_path):
        source = _svc_source(
            "with self._lock:\n    self.count += 1",
            "self.count += 1  # repro: allow(race-unguarded) — reviewed",
        )
        result = _run(tmp_path, {"svc.py": source}, SVC_ENTRIES)
        assert result.findings == []

    def test_stale_allow_comment_is_reported_unused(self, tmp_path):
        source = _svc_source(
            "with self._lock:\n    self.count += 1",
            "with self._lock:\n    self.count += 1  "
            "# repro: allow(race-unguarded)",
        )
        result = _run(tmp_path, {"svc.py": source}, SVC_ENTRIES)
        assert _rules(result) == ["unused-suppression"]


class TestNamespace:
    def test_rule_namespace_is_stable(self):
        # CI configs, allow-comments and docs all name these: renaming
        # or dropping one is a breaking change and must be deliberate.
        assert RACES_RULES == (
            "race-unguarded",
            "race-guard-mix",
            "race-lock-order",
            "race-signal-unsafe",
            "race-check-then-act",
            "race-thread-root",
        )

    def test_races_rules_join_the_shared_allow_namespace(self):
        from repro.check.lints import _known_rules

        assert set(RACES_RULES) <= _known_rules()


class TestShippedTree:
    def test_shipped_tree_is_race_clean(self):
        result = check_races()
        assert [f.render() for f in result.findings] == []
        # The serve layer's concurrency is actually analyzed: worker
        # threads, HTTP handler methods and signal handlers all root
        # the walk, and the service/journal locks are tracked.
        assert result.info["thread_roots"] >= 1
        assert result.info["handler_roots"] >= 2
        assert result.info["signal_roots"] >= 1
        assert result.info["locks"] >= 4
        assert result.info["guarded_fields"] >= 5
