"""Static import/call graph: discovery, resolution, slices, witnesses."""

import textwrap
from pathlib import Path

from repro.check.callgraph import build_callgraph, canonicalize


def _pkg(tmp_path: Path, files: dict[str, str]) -> Path:
    """Materialize a synthetic package named ``pkg`` under tmp_path."""
    root = tmp_path / "pkg"
    root.mkdir(exist_ok=True)
    (root / "__init__.py").touch()
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        for parent in path.relative_to(root).parents:
            if str(parent) != ".":
                init = root / parent / "__init__.py"
                if not init.exists():
                    init.touch()
        path.write_text(textwrap.dedent(source))
    return root


class TestModuleDiscovery:
    def test_modules_and_packages_named(self, tmp_path):
        root = _pkg(tmp_path, {
            "a.py": "X = 1\n",
            "sub/b.py": "Y = 2\n",
        })
        graph = build_callgraph(root)
        assert set(graph.modules) == {"pkg", "pkg.a", "pkg.sub", "pkg.sub.b"}

    def test_unparseable_file_becomes_hole_not_crash(self, tmp_path):
        root = _pkg(tmp_path, {"bad.py": "def broken(:\n"})
        graph = build_callgraph(root)
        assert "pkg.bad" in graph.modules
        holes = graph.slice_holes({"pkg.bad"})
        assert holes and "unparseable" in holes[0][2]


class TestImportEdges:
    def test_absolute_and_from_imports_resolve(self, tmp_path):
        root = _pkg(tmp_path, {
            "a.py": "import pkg.b\nfrom pkg.sub import c\n",
            "b.py": "",
            "sub/c.py": "",
        })
        graph = build_callgraph(root)
        assert graph.modules["pkg.a"].imports == {"pkg.b", "pkg.sub.c"}
        assert graph.import_resolution == 1.0

    def test_relative_import_resolves(self, tmp_path):
        root = _pkg(tmp_path, {
            "sub/a.py": "from . import b\nfrom ..top import T\n",
            "sub/b.py": "",
            "top.py": "T = 1\n",
        })
        graph = build_callgraph(root)
        assert "pkg.sub.b" in graph.modules["pkg.sub.a"].imports
        assert "pkg.top" in graph.modules["pkg.sub.a"].imports

    def test_function_scope_import_counts_as_edge(self, tmp_path):
        # Lazy imports still execute when the function runs, so they are
        # slice edges like any other.
        root = _pkg(tmp_path, {
            "a.py": "def f():\n    from pkg import b\n    return b.X\n",
            "b.py": "X = 1\n",
        })
        graph = build_callgraph(root)
        assert "pkg.b" in graph.module_slice("pkg.a")

    def test_missing_target_is_unresolved(self, tmp_path):
        root = _pkg(tmp_path, {"a.py": "import pkg.nope\n"})
        graph = build_callgraph(root)
        assert graph.modules["pkg.a"].unresolved_imports
        assert graph.import_resolution < 1.0

    def test_external_imports_are_not_holes(self, tmp_path):
        root = _pkg(tmp_path, {"a.py": "import os\nimport numpy as np\n"})
        graph = build_callgraph(root)
        assert graph.modules["pkg.a"].unresolved_imports == []
        assert graph.modules["pkg.a"].external_imports == {"os", "numpy"}


class TestModuleSlice:
    def _graph(self, tmp_path):
        return build_callgraph(_pkg(tmp_path, {
            "entry.py": "from pkg.models import run\n",
            "models/core.py": "from pkg.common import util\n",
            "models/__init__.py": "from pkg.models.core import run\n",
            "common/util.py": "",
            "exporter.py": "import json\n",
            "other/stuff.py": "from pkg.exporter import x\n",
        }))

    def test_closure_includes_ancestor_packages(self, tmp_path):
        graph = self._graph(tmp_path)
        got = graph.module_slice("pkg.entry")
        assert got == {
            "pkg", "pkg.entry", "pkg.models", "pkg.models.core",
            "pkg.common", "pkg.common.util",
        }

    def test_unrelated_modules_are_outside(self, tmp_path):
        graph = self._graph(tmp_path)
        got = graph.module_slice("pkg.entry")
        assert "pkg.exporter" not in got
        assert "pkg.other.stuff" not in got

    def test_unknown_entry_raises(self, tmp_path):
        graph = self._graph(tmp_path)
        try:
            graph.module_slice("pkg.nope")
        except KeyError:
            pass
        else:
            raise AssertionError("expected KeyError")

    def test_dynamic_import_is_a_hole(self, tmp_path):
        root = _pkg(tmp_path, {
            "a.py": "import importlib\n"
                    "def load(name):\n"
                    "    return importlib.import_module(name)\n",
        })
        graph = build_callgraph(root)
        holes = graph.slice_holes(graph.module_slice("pkg.a"))
        assert [(m, w) for m, _, w in holes] == \
            [("pkg.a", "dynamic import via importlib.import_module")]


class TestCallResolution:
    def test_cross_module_call_resolves(self, tmp_path):
        root = _pkg(tmp_path, {
            "a.py": "from pkg.b import helper\n"
                    "def top():\n    return helper()\n",
            "b.py": "def helper():\n    return 1\n",
        })
        graph = build_callgraph(root)
        edges = dict(graph.edges)["pkg.a.top"]
        assert ("pkg.b.helper", 3) in edges

    def test_reexport_canonicalizes_to_defining_module(self, tmp_path):
        root = _pkg(tmp_path, {
            "models/__init__.py": "from pkg.models.core import run\n",
            "models/core.py": "def run():\n    return 0\n",
            "a.py": "from pkg import models\n"
                    "def go():\n    return models.run()\n",
        })
        graph = build_callgraph(root)
        assert canonicalize(graph, "pkg.models.run") == "pkg.models.core.run"
        assert ("pkg.models.core.run", 3) in graph.edges["pkg.a.go"]

    def test_self_method_call_resolves_to_sibling(self, tmp_path):
        root = _pkg(tmp_path, {
            "a.py": "class Sim:\n"
                    "    def step(self):\n        return self.fire()\n"
                    "    def fire(self):\n        return 1\n",
        })
        graph = build_callgraph(root)
        assert ("pkg.a.Sim.fire", 3) in graph.edges["pkg.a.Sim.step"]

    def test_local_callable_is_dynamic_dispatch(self, tmp_path):
        root = _pkg(tmp_path, {
            "a.py": "def apply(fn):\n    return fn()\n",
        })
        graph = build_callgraph(root)
        assert graph.edges["pkg.a.apply"] == []


class TestReachabilityWitness:
    def test_witness_walks_chain_back_to_entry(self, tmp_path):
        root = _pkg(tmp_path, {
            "entry.py": "from pkg.mid import middle\n"
                        "def main():\n    return middle()\n",
            "mid.py": "from pkg.leaf import leafy\n"
                      "def middle():\n    return leafy()\n",
            "leaf.py": "def leafy():\n    return 42\n",
        })
        graph = build_callgraph(root)
        parents = graph.reachable(["pkg.entry.main"])
        assert "pkg.leaf.leafy" in parents
        chain = graph.witness(parents, "pkg.leaf.leafy")
        assert len(chain) == 3
        assert chain[0].startswith("pkg.entry.main")
        assert "[entry point]" in chain[0]
        assert "called from pkg.mid.middle" in chain[2]

    def test_unreachable_function_not_in_parents(self, tmp_path):
        root = _pkg(tmp_path, {
            "entry.py": "def main():\n    return 0\n",
            "island.py": "def alone():\n    return 1\n",
        })
        graph = build_callgraph(root)
        parents = graph.reachable(["pkg.entry.main"])
        assert "pkg.island.alone" not in parents
        assert graph.witness(parents, "pkg.island.alone") == ()


class TestRealPackage:
    def test_meets_resolution_floor(self):
        # Acceptance bar from the issue: >= 95% of intra-package imports
        # statically resolved on the shipped tree.
        graph = build_callgraph()
        assert graph.import_resolution >= 0.95
        assert len(graph.modules) > 80
        assert not any(m.unresolved_imports for m in graph.modules.values())

    def test_no_dynamic_imports_in_shipped_tree(self):
        graph = build_callgraph()
        assert not any(m.dynamic_sites for m in graph.modules.values())
