"""The units pass: dimension lattice, mixing mutants, witnesses."""

import textwrap
from pathlib import Path

from repro.check.dimensions import (
    UNITS,
    combine,
    divide,
    is_pow10,
    multiply,
    suffix_dim,
    unit_comments,
)
from repro.check.units import UNITS_RULES, check_units


def _pkg(tmp_path: Path, files: dict[str, str]) -> Path:
    root = tmp_path / "pkg"
    root.mkdir(exist_ok=True)
    (root / "__init__.py").touch()
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        for parent in path.relative_to(root).parents:
            if str(parent) != ".":
                init = root / parent / "__init__.py"
                if not init.exists():
                    init.touch()
        path.write_text(textwrap.dedent(source))
    return root


def _run(tmp_path, files, entries, annotations=None):
    return check_units(_pkg(tmp_path, files), entry_points=entries,
                       annotations=annotations)


class TestDimensionLattice:
    def test_suffix_requires_underscore_form(self):
        assert suffix_dim("latency_ns") == UNITS["ns"]
        assert suffix_dim("line_bytes") == UNITS["bytes"]
        assert suffix_dim("clock_mhz") == UNITS["mhz"]
        assert suffix_dim("columns") is None  # merely *ends* in ns
        assert suffix_dim("ns") is None

    def test_bare_seconds_is_contractual(self):
        assert suffix_dim("seconds") == UNITS["s"]

    def test_combine_propagates_the_known_side(self):
        assert combine(UNITS["bytes"], None) == (UNITS["bytes"], False)
        assert combine(None, None) == (None, False)

    def test_combine_flags_scale_mixes_too(self):
        # ns + us is as wrong as ns + cycles: the scale is the unit.
        _, conflict = combine(UNITS["ns"], UNITS["us"])
        assert conflict

    def test_matched_time_freq_product_is_cycles(self):
        assert multiply(UNITS["ns"], UNITS["ghz"]) == (UNITS["cycles"], False)
        assert multiply(UNITS["s"], UNITS["hz"]) == (UNITS["cycles"], False)

    def test_mismatched_time_freq_product_conflicts(self):
        _, conflict = multiply(UNITS["ns"], UNITS["hz"])
        assert conflict

    def test_fraction_is_transparent_in_products(self):
        assert multiply(UNITS["fraction"], UNITS["ns"]) == (UNITS["ns"],
                                                            False)

    def test_cycles_over_freq_is_time_at_matching_scale(self):
        assert divide(UNITS["cycles"], UNITS["hz"]) == UNITS["s"]
        assert divide(UNITS["cycles"], UNITS["ghz"]) == UNITS["ns"]

    def test_same_unit_ratio_is_dimensionless(self):
        assert divide(UNITS["bytes"], UNITS["bytes"]) is None

    def test_pow10_literals_erase_but_binary_sizes_do_not(self):
        assert is_pow10(1e9)
        assert is_pow10(1000)
        assert not is_pow10(1024)
        assert not is_pow10(1)
        assert not is_pow10(True)

    def test_unit_comments_only_match_real_comments(self):
        source = (
            '"""Docs quoting # repro: unit(ns) declare nothing."""\n'
            "x = 1  # repro: unit(cycles)\n"
            'y = "# repro: unit(us)"\n'
        )
        assert unit_comments(source) == {2: "cycles"}


class TestMixingMutant:
    """One entry-point-rooted fixture firing six distinct error kinds,
    each with a call-chain witness — the acceptance mutant."""

    FILES = {
        "timing.py": """
            def hold(pause_ns):
                return pause_ns

            def wait_ns(delay_us):
                return delay_us

            def mix(latency_ns, budget_cycles, size_bytes, num_lines,
                    delay_us):
                total_ns = latency_ns + budget_cycles
                spare_bytes = size_bytes - num_lines
                if size_bytes < num_lines:
                    spare_bytes = 0
                total_bytes = num_lines
                hold(delay_us)
                return 0
        """,
        "entry.py": """
            from pkg.timing import mix, wait_ns

            def experiment():
                wait_ns(2.0)
                return mix(1.0, 2, 64, 4, 5.0)
        """,
    }

    def _result(self, tmp_path):
        return _run(tmp_path, self.FILES, {"exp": "pkg.entry.experiment"})

    def test_six_distinct_error_kinds_fire(self, tmp_path):
        result = self._result(tmp_path)
        rules = {f.rule for f in result.errors}
        assert rules == {"unit-conversion", "unit-mix", "unit-compare",
                         "unit-assign", "unit-arg", "unit-return"}

    def test_ns_plus_cycles_suggests_the_conversion_helpers(self, tmp_path):
        result = self._result(tmp_path)
        finding = next(f for f in result.errors
                       if f.rule == "unit-conversion")
        assert "cycles_for_time" in finding.message
        assert "time_for_cycles" in finding.message

    def test_every_error_has_an_entry_rooted_witness(self, tmp_path):
        result = self._result(tmp_path)
        assert result.errors
        for finding in result.errors:
            assert finding.trace, finding.render()
            assert "[entry point]" in finding.trace[0]
            assert "pkg.entry.experiment" in finding.trace[0]

    def test_us_into_ns_parameter_names_both_sides(self, tmp_path):
        result = self._result(tmp_path)
        finding = next(f for f in result.errors if f.rule == "unit-arg")
        assert "pause_ns" in finding.message
        assert "us" in finding.message

    def test_return_check_uses_the_function_name_suffix(self, tmp_path):
        result = self._result(tmp_path)
        finding = next(f for f in result.errors if f.rule == "unit-return")
        assert "wait_ns" in finding.location or "wait_ns" in finding.message


class TestInterprocedural:
    def test_return_dims_flow_through_two_call_hops(self, tmp_path):
        result = _run(tmp_path, {
            "lib.py": """
                def slow_path_ns(base_ns):
                    return base_ns

                def doubled():
                    return slow_path_ns(30.0)
            """,
            "main.py": """
                from pkg.lib import doubled

                def run(budget_cycles):
                    return budget_cycles + doubled()
            """,
        }, {"exp": "pkg.main.run"})
        rules = [f.rule for f in result.errors]
        assert rules == ["unit-conversion"]
        assert result.errors[0].trace
        assert "pkg.main.run" in result.errors[0].trace[0]

    def test_dataclass_constructor_fields_are_checked(self, tmp_path):
        result = _run(tmp_path, {
            "geom.py": """
                from dataclasses import dataclass

                @dataclass
                class Level:
                    size_bytes: int
                    latency_ns: float
            """,
            "main.py": """
                from pkg.geom import Level

                def build(num_lines):
                    return Level(size_bytes=num_lines, latency_ns=1.0)
            """,
        }, {"exp": "pkg.main.build"})
        finding = next(f for f in result.errors if f.rule == "unit-arg")
        assert "size_bytes" in finding.message
        assert "lines" in finding.message

    def test_explicit_field_annotations_reach_attribute_reads(self, tmp_path):
        result = _run(tmp_path, {
            "params.py": """
                from dataclasses import dataclass

                @dataclass
                class Latencies:
                    remote: int = 80  # repro: unit(cycles)
            """,
            "main.py": """
                from pkg.params import Latencies

                def run(latency_ns):
                    table = Latencies()
                    return latency_ns + table.remote
            """,
        }, {"exp": "pkg.main.run"})
        rules = [f.rule for f in result.errors]
        assert rules == ["unit-conversion"]


class TestConversionRules:
    def test_sound_timing_code_is_clean(self, tmp_path):
        result = _run(tmp_path, {
            "clean.py": """
                def to_cycles(latency_ns, clock_ghz):
                    busy_cycles = latency_ns * clock_ghz
                    return busy_cycles

                def scale_by_hand(delay_s):
                    delay_ns = delay_s * 1e9
                    return delay_ns

                def geometry(size_bytes, line_bytes):
                    num_lines = size_bytes // line_bytes
                    return num_lines

                def weighted(miss_fraction, penalty_cycles):
                    stall_cycles = miss_fraction * penalty_cycles
                    return stall_cycles

                def elapsed(total_cycles, clock_hz):
                    seconds = total_cycles / clock_hz
                    return seconds
            """,
        }, {})
        assert result.findings == [], [f.render() for f in result.findings]

    def test_mismatched_scale_product_is_flagged(self, tmp_path):
        result = _run(tmp_path, {
            "bad.py": """
                def broken(latency_ns, clock_hz):
                    return latency_ns * clock_hz
            """,
        }, {})
        rules = [f.rule for f in result.errors]
        assert rules == ["unit-mix"]
        assert "mismatched" in result.errors[0].message


class TestAnnotations:
    def test_registry_entries_dim_module_constants(self, tmp_path):
        result = _run(tmp_path, {
            "consts.py": "TICK = 1\n",
            "main.py": """
                from pkg.consts import TICK

                def run(budget_cycles):
                    return budget_cycles + TICK
            """,
        }, {}, annotations={"pkg.consts.TICK": "ns"})
        rules = [f.rule for f in result.errors]
        assert rules == ["unit-conversion"]

    def test_stale_and_misspelt_annotations_warn(self, tmp_path):
        result = _run(tmp_path, {
            "consts.py": "TICK = 1\nBAD = 2  # repro: unit(nanoseconds)\n",
        }, {}, annotations={"pkg.consts.TICK": "ns",
                            "pkg.consts.GONE": "ns",
                            "pkg.consts.WRONG": "parsecs"})
        messages = [f.message for f in result.findings
                    if f.rule == "unit-annotation"]
        assert any("pkg.consts.GONE" in m for m in messages)
        assert any("parsecs" in m for m in messages)
        assert any("nanoseconds" in m for m in messages)
        assert not any("pkg.consts.TICK" in m for m in messages)

    def test_inline_cast_on_assignment_is_trusted(self, tmp_path):
        result = _run(tmp_path, {
            "conv.py": """
                def runtime(instruction_count, cpi_value, clock_ghz):
                    total_cycles = instruction_count * cpi_value  # repro: unit(cycles)
                    busy_ns = total_cycles / clock_ghz
                    return busy_ns
            """,
        }, {})
        assert result.errors == [], [f.render() for f in result.errors]


class TestUnknownReturnWarning:
    FILES = {
        "api.py": """
            def fetch_ns(handle):
                return handle.read()

            def _fetch_ns(handle):
                return handle.read()

            def blessed_ns(handle):  # repro: unit(ns)
                return handle.read()
        """,
    }

    def test_public_suffixed_api_with_opaque_return_warns(self, tmp_path):
        result = _run(tmp_path, self.FILES, {})
        warnings = [f for f in result.findings
                    if f.rule == "unit-unknown-return"]
        assert len(warnings) == 1
        assert "fetch_ns" in warnings[0].message
        assert warnings[0].severity == "warning"

    def test_private_and_explicitly_blessed_functions_are_exempt(
            self, tmp_path):
        result = _run(tmp_path, self.FILES, {})
        messages = " ".join(f.message for f in result.findings)
        assert "_fetch_ns" not in messages
        assert "blessed_ns" not in messages


class TestSuppressions:
    def test_allow_comment_on_the_line_suppresses(self, tmp_path):
        result = _run(tmp_path, {
            "mix.py": """
                def mixed(latency_ns, budget_cycles):
                    return latency_ns + budget_cycles  # repro: allow(unit-conversion)
            """,
        }, {})
        assert result.findings == [], [f.render() for f in result.findings]

    def test_unused_unit_suppression_is_reported_by_this_pass(self, tmp_path):
        result = _run(tmp_path, {
            "clean.py": """
                def fine(latency_ns):
                    return latency_ns  # repro: allow(unit-mix)
            """,
        }, {})
        warnings = [f for f in result.findings
                    if f.rule == "unused-suppression"]
        assert len(warnings) == 1
        assert "allow(unit-mix)" in warnings[0].message


class TestRealPackage:
    def test_shipped_tree_has_zero_errors(self):
        # The tentpole acceptance bar: the whole simulator is
        # dimensionally clean under the suffix convention plus the
        # reviewed annotations.
        result = check_units()
        assert result.errors == [], [f.render() for f in result.errors]
        # 11 registered experiments + 4 sweep base points + 2 serve
        # roots (daemon + request resolver).
        assert result.info["entry_points"] == 17
        assert result.info["reachable_functions"] > 0
        assert result.info["seeded_names"] > 100

    def test_every_shipped_unit_suppression_carries_a_review_comment(self):
        import repro

        src = Path(repro.__file__).parent
        for path in sorted(src.rglob("*.py")):
            lines = path.read_text().splitlines()
            for i, line in enumerate(lines):
                if "allow(unit-" not in line:
                    continue
                above = lines[i - 1].strip() if i else ""
                assert above.startswith("#"), (
                    f"{path}:{i + 1}: allow(unit-...) needs a review "
                    f"comment on the preceding line")

    def test_rule_namespace_is_stable(self):
        assert UNITS_RULES == (
            "unit-mix", "unit-compare", "unit-arg", "unit-return",
            "unit-assign", "unit-conversion", "unit-unknown-return",
            "unit-annotation",
        )
