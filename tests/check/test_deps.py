"""The deps pass: seed-flow mutants, state/input rules, slice audit."""

import textwrap
from pathlib import Path

from repro.check.deps import DEPS_RULES, check_deps


def _pkg(tmp_path: Path, files: dict[str, str]) -> Path:
    root = tmp_path / "pkg"
    root.mkdir(exist_ok=True)
    (root / "__init__.py").touch()
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        for parent in path.relative_to(root).parents:
            if str(parent) != ".":
                init = root / parent / "__init__.py"
                if not init.exists():
                    init.touch()
        path.write_text(textwrap.dedent(source))
    return root


def _run(tmp_path, files, entries):
    return check_deps(_pkg(tmp_path, files), entry_points=entries)


class TestSeededMutant:
    """The acceptance mutant: a module-level Generator threaded through a
    helper must be caught, with the call chain from the experiment entry
    point as witness."""

    FILES = {
        "helpers.py": """
            import numpy as np

            _RNG = np.random.default_rng(0)

            def draw():
                return _RNG.random()
        """,
        "entry.py": """
            from pkg.helpers import draw

            def experiment():
                return draw()
        """,
    }

    def _result(self, tmp_path):
        return _run(tmp_path, self.FILES,
                    {"exp": "pkg.entry.experiment"})

    def test_module_level_generator_is_an_error(self, tmp_path):
        result = self._result(tmp_path)
        rules = [f.rule for f in result.errors]
        assert "module-rng" in rules
        assert "unthreaded-rng" in rules

    def test_module_rng_witness_chains_back_to_entry(self, tmp_path):
        result = self._result(tmp_path)
        finding = next(f for f in result.errors if f.rule == "module-rng")
        assert finding.trace, finding
        assert "[entry point]" in finding.trace[0]
        assert "pkg.entry.experiment" in finding.trace[0]
        assert "pkg.helpers.draw" in finding.trace[1]
        assert "_RNG" in finding.trace[-1]

    def test_unthreaded_use_names_the_offending_generator(self, tmp_path):
        result = self._result(tmp_path)
        finding = next(f for f in result.errors if f.rule == "unthreaded-rng")
        assert "pkg.helpers._RNG" in finding.message
        assert ".random()" in finding.message
        assert finding.trace and "[entry point]" in finding.trace[0]

    def test_imported_generator_is_caught_cross_module(self, tmp_path):
        result = _run(tmp_path, {
            "helpers.py": "import numpy as np\n"
                          "_RNG = np.random.default_rng(0)\n",
            "entry.py": "from pkg.helpers import _RNG\n"
                        "def experiment():\n"
                        "    return _RNG.integers(0, 10)\n",
        }, {"exp": "pkg.entry.experiment"})
        unthreaded = [f for f in result.errors if f.rule == "unthreaded-rng"]
        assert len(unthreaded) == 1
        assert "pkg.helpers._RNG" in unthreaded[0].message


class TestThreadedRngIsClean:
    def test_parameter_and_local_generators_pass(self, tmp_path):
        result = _run(tmp_path, {
            "entry.py": """
                import numpy as np

                def experiment(seed):
                    rng = np.random.default_rng(seed)
                    return helper(rng)

                def helper(rng):
                    return rng.normal()
            """,
        }, {"exp": "pkg.entry.experiment"})
        assert result.errors == [], [f.render() for f in result.errors]

    def test_instance_generator_is_not_flagged(self, tmp_path):
        result = _run(tmp_path, {
            "entry.py": """
                class Sim:
                    def __init__(self, rng):
                        self.rng = rng
                    def step(self):
                        return self.rng.random()
            """,
        }, {})
        assert result.errors == []


class TestSeedDrop:
    def test_unread_seed_parameter_is_warned(self, tmp_path):
        result = _run(tmp_path, {
            "entry.py": """
                def experiment(seed=0):
                    return 42
            """,
        }, {"exp": "pkg.entry.experiment"})
        drops = [f for f in result.warnings if f.rule == "seed-drop"]
        assert len(drops) == 1
        assert "seed" in drops[0].message
        assert drops[0].severity == "warning"

    def test_read_seed_parameter_is_fine(self, tmp_path):
        result = _run(tmp_path, {
            "entry.py": """
                def experiment(seed=0):
                    return seed + 1
            """,
        }, {"exp": "pkg.entry.experiment"})
        assert [f for f in result.findings if f.rule == "seed-drop"] == []


class TestMutableGlobal:
    FILES = {
        "state.py": """
            _MEMO = {}

            def remember(key, value):
                _MEMO[key] = value
                _MEMO.update({})
        """,
        "entry.py": """
            from pkg.state import remember

            def experiment():
                remember("a", 1)
        """,
    }

    def test_reachable_mutation_is_warned_with_witness(self, tmp_path):
        result = _run(tmp_path, self.FILES,
                      {"exp": "pkg.entry.experiment"})
        found = [f for f in result.warnings if f.rule == "mutable-global"]
        assert len(found) == 1
        assert "_MEMO" in found[0].message
        assert found[0].trace and "[entry point]" in found[0].trace[0]

    def test_unreachable_mutation_is_not_flagged(self, tmp_path):
        result = _run(tmp_path, self.FILES, {})  # no entry points
        assert [f for f in result.findings if f.rule == "mutable-global"] == []


class TestUntrackedInput:
    def test_env_and_file_reads_on_experiment_path_warned(self, tmp_path):
        result = _run(tmp_path, {
            "entry.py": """
                import os

                def experiment():
                    mode = os.environ.get("MODE")
                    data = open("data.txt").read()
                    return mode, data
            """,
        }, {"exp": "pkg.entry.experiment"})
        rules = [f.rule for f in result.warnings]
        assert rules.count("untracked-input") == 2
        messages = " ".join(
            f.message for f in result.warnings if f.rule == "untracked-input")
        assert "os.environ" in messages
        assert "reads a file" in messages

    def test_unreachable_env_read_is_silent(self, tmp_path):
        result = _run(tmp_path, {
            "config.py": """
                import os

                def load():
                    return os.environ.get("X")
            """,
            "entry.py": "def experiment():\n    return 1\n",
        }, {"exp": "pkg.entry.experiment"})
        assert [f for f in result.findings if f.rule == "untracked-input"] == []


class TestSliceAudit:
    def test_dynamic_import_degrades_the_experiment_slice(self, tmp_path):
        result = _run(tmp_path, {
            "entry.py": """
                import importlib

                def experiment(name):
                    return importlib.import_module(name)
            """,
        }, {"exp": "pkg.entry.experiment"})
        degr = [f for f in result.warnings if f.rule == "unresolvable-edge"]
        assert len(degr) == 1
        assert degr[0].location == "experiment:exp"
        assert "whole-tree hash" in degr[0].message
        assert result.info["slices_degraded"] == 1

    def test_clean_slice_reports_stats_without_warning(self, tmp_path):
        result = _run(tmp_path, {
            "entry.py": "def experiment():\n    return 1\n",
        }, {"exp": "pkg.entry.experiment"})
        assert [f for f in result.findings if f.rule == "unresolvable-edge"] == []
        assert result.info["slices_degraded"] == 0
        assert result.info["entry_points"] == 1


class TestEntryPointValidation:
    def test_unknown_entry_point_is_warned(self, tmp_path):
        result = _run(tmp_path, {
            "entry.py": "def experiment():\n    return 1\n",
        }, {"ghost": "pkg.entry.missing_fn"})
        warned = [f for f in result.warnings if f.rule == "entry-point"]
        assert len(warned) == 1
        assert "ghost" in warned[0].message


class TestSuppression:
    def test_allow_comment_on_binding_line_suppresses(self, tmp_path):
        result = _run(tmp_path, {
            "state.py": "import numpy as np\n"
                        "_RNG = np.random.default_rng(0)"
                        "  # repro: allow(module-rng)\n",
        }, {})
        assert result.findings == [], [f.render() for f in result.findings]


class TestRealPackage:
    def test_shipped_tree_has_zero_errors(self):
        # The tentpole acceptance bar: the pass runs clean on the repo
        # (warnings allowed, zero errors), with the import-resolution
        # floor met and every registry entry point resolved.
        result = check_deps()
        assert result.errors == [], [f.render() for f in result.errors]
        resolution = float(result.info["import_resolution"].rstrip("%")) / 100
        assert resolution >= 0.95
        # 11 registered experiments + 4 sweep base points + 2 serve
        # roots (daemon + request resolver).
        assert result.info["entry_points"] == 17
        assert [f for f in result.findings if f.rule == "entry-point"] == []

    def test_sweep_bases_join_the_entry_points(self):
        from repro.check.deps import registry_entry_points
        from repro.sweep.points import base_entry_points

        roots = registry_entry_points()
        for name, target in base_entry_points().items():
            assert roots[f"sweep:{name}"] == target

    def test_rule_namespace_is_stable(self):
        assert DEPS_RULES == (
            "module-rng", "unthreaded-rng", "seed-drop", "mutable-global",
            "untracked-input", "unresolvable-edge", "entry-point",
        )
