"""Structural GSPN analysis: invariants, coverage, dead transitions."""

from repro.check.gspn import (
    analyze_net,
    check_gspn_models,
    incidence_matrix,
    null_space_dimension,
    potentially_fireable,
    semiflows,
)
from repro.gspn.models import registered_nets
from repro.gspn.net import PetriNet


def cycle_net() -> PetriNet:
    """p1 -> t1 -> p2 -> t2 -> p1 with one circulating token."""
    net = PetriNet("cycle")
    net.place("p1", 1)
    net.place("p2", 0)
    net.exponential("t1", {"p1": 1}, {"p2": 1}, rate=1.0)
    net.exponential("t2", {"p2": 1}, {"p1": 1}, rate=1.0)
    return net


class TestAlgebra:
    def test_incidence_matrix_of_cycle(self):
        places, transitions, matrix = incidence_matrix(cycle_net())
        assert places == ["p1", "p2"]
        assert transitions == ["t1", "t2"]
        assert matrix == [[-1, 1], [1, -1]]

    def test_cycle_has_single_conservation_law(self):
        _, _, matrix = incidence_matrix(cycle_net())
        flows = semiflows(matrix)
        assert flows == [(1, 1)]  # p1 + p2 is invariant

    def test_semiflows_are_minimal_and_normalized(self):
        # Two independent cycles sharing no places: two unit semiflows,
        # never their sum.
        net = PetriNet("pair")
        for i in (1, 2):
            net.place(f"a{i}", 1)
            net.place(f"b{i}", 0)
            net.exponential(f"f{i}", {f"a{i}": 1}, {f"b{i}": 1}, rate=1.0)
            net.exponential(f"g{i}", {f"b{i}": 1}, {f"a{i}": 1}, rate=1.0)
        _, _, matrix = incidence_matrix(net)
        flows = semiflows(matrix)
        # places are declared [a1, b1, a2, b2]
        assert sorted(flows) == [(0, 0, 1, 1), (1, 1, 0, 0)]

    def test_null_space_dimension_matches_enumeration(self):
        _, _, matrix = incidence_matrix(cycle_net())
        transpose = [[matrix[p][t] for p in range(2)] for t in range(2)]
        assert null_space_dimension(transpose) == 1

    def test_weighted_conservation(self):
        # t consumes two of a to make one b: invariant is a + 2b.
        net = PetriNet("weighted")
        net.place("a", 4)
        net.place("b", 0)
        net.exponential("t", {"a": 2}, {"b": 1}, rate=1.0)
        net.exponential("back", {"b": 1}, {"a": 2}, rate=1.0)
        _, _, matrix = incidence_matrix(net)
        assert semiflows(matrix) == [(1, 2)]
        analysis = analyze_net(net)
        assert analysis.conserved_sums == [4]


class TestFindings:
    def test_nonconservative_net_fails_coverage(self):
        # The "bank" resource token is consumed and never returned, so
        # no P-invariant covers it: the defect the paper's CPI readings
        # would silently absorb.
        net = PetriNet("leaky")
        net.place("bank", 1)
        net.place("done", 0)
        net.exponential("serve", {"bank": 1}, {"done": 1}, rate=1.0)
        net.exponential("drop", {"done": 1}, {}, rate=1.0)
        analysis = analyze_net(net)
        rules = {f.rule for f in analysis.findings}
        assert "p-invariant-coverage" in rules
        finding = next(f for f in analysis.findings
                       if f.rule == "p-invariant-coverage")
        assert "bank" in finding.message
        assert finding.severity == "error"

    def test_conservative_net_has_no_findings(self):
        assert analyze_net(cycle_net()).findings == []

    def test_unmarked_uncovered_place_is_warning_only(self):
        net = PetriNet("open")
        net.place("src", 1)
        net.place("queue", 0)  # grows without bound
        net.exponential("emit", {"src": 1}, {"src": 1, "queue": 1}, rate=1.0)
        net.exponential("drain", {"queue": 1}, {}, rate=1.0)
        analysis = analyze_net(net)
        assert [f.rule for f in analysis.findings] == ["possibly-unbounded"]
        assert analysis.findings[0].severity == "warning"
        assert "queue" in analysis.findings[0].message

    def test_structurally_dead_transition_detected(self):
        net = PetriNet("dead")
        net.place("live", 1)
        net.place("nowhere", 0)  # no transition ever marks it
        net.exponential("spin", {"live": 1}, {"live": 1}, rate=1.0)
        net.exponential("stuck", {"nowhere": 1}, {"live": 1}, rate=1.0)
        assert potentially_fireable(net) == {"spin"}
        analysis = analyze_net(net)
        dead = [f for f in analysis.findings if f.rule == "dead-transition"]
        assert len(dead) == 1 and "stuck" in dead[0].message

    def test_nan_conflict_weight_detected(self):
        # Transition.__post_init__ now rejects NaN, so corrupt an
        # existing transition in place to model a future bypass.
        net = PetriNet("conflict")
        net.place("p", 1)
        net.place("out", 0)
        net.immediate("a", {"p": 1}, {"out": 1}, weight=1.0)
        net.immediate("b", {"p": 1}, {"out": 1}, weight=1.0)
        object.__setattr__(net.transitions["b"], "param", float("nan"))
        analysis = analyze_net(net)
        flagged = [f for f in analysis.findings
                   if f.rule == "conflict-weights"]
        assert len(flagged) == 1
        assert "b" in flagged[0].message and "a" in flagged[0].message


class TestRegisteredNets:
    def test_every_evaluation_net_analyzes_clean(self):
        result = check_gspn_models()
        assert not result.errors, [f.render() for f in result.errors]
        assert result.info["nets"] == len(registered_nets())
        assert result.info["p_invariants"] > 0

    def test_membank_net_conserves_its_bank_tokens(self):
        nets = registered_nets()
        analysis = analyze_net(nets["fig9.membank"], "fig9.membank")
        covered = {p for flow in analysis.p_semiflows for p in flow}
        marked = {p for p, tokens
                  in nets["fig9.membank"].initial_marking.items() if tokens}
        assert marked <= covered
