"""Sweep execution through the supervised runner (tier-1, small grids)."""

import pytest

from repro.faults import FaultPlan
from repro.runner import ResultCache, SupervisionPolicy
from repro.sweep.engine import compile_tasks, run_sweep
from repro.sweep.spec import parse_spec

TINY = {
    "name": "tiny",
    "base": "figure7",
    "axes": {"line_bytes": [256, 512], "num_banks": [4]},
    "fixed": {"benchmark": "126.gcc", "trace_len": 1500,
              "instructions": 400},
}


def tiny_spec(**overrides):
    table = dict(TINY)
    table.update(overrides)
    return parse_spec(table)


class TestCompile:
    def test_one_task_per_configuration(self):
        tasks = compile_tasks(tiny_spec())
        assert len(tasks) == 2
        assert {t.label for t in tasks} == {
            "sweep:figure7/line_bytes=256,num_banks=4",
            "sweep:figure7/line_bytes=512,num_banks=4",
        }

    def test_experiment_name_is_base_not_sweep(self):
        # Cache keys must not depend on the sweep's own name, so two
        # sweeps sharing a configuration collapse to one cached result.
        tasks = compile_tasks(tiny_spec(name="renamed"))
        assert all(t.experiment == "sweep:figure7" for t in tasks)

    def test_entry_point_resolves_for_slicing(self):
        # Module-level base functions give every task a dotted entry
        # point, which is what keys the dependency-slice fingerprint.
        for task in compile_tasks(tiny_spec()):
            assert task.entry_point() == "repro.sweep.points.icache_point"


class TestRun:
    def test_end_to_end_produces_metrics_and_verdicts(self):
        outcome, metrics = run_sweep(tiny_spec())
        assert len(outcome.configs) == 2
        assert outcome.failed == []
        for result in outcome.configs:
            assert set(result.metrics) == {
                "miss_rate", "cpi", "bank_utilization"}
        assert len(outcome.frontier) >= 1
        assert len(metrics.tasks) == 2

    def test_second_run_is_all_cache_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first_outcome, first = run_sweep(tiny_spec(), cache=cache)
        second_outcome, second = run_sweep(tiny_spec(), cache=cache)
        assert all(t.cache == "miss" for t in first.tasks)
        assert all(t.cache == "hit" for t in second.tasks)
        assert all(t.fingerprint_kind == "slice" for t in second.tasks)
        assert [c.metrics for c in second_outcome.configs] == [
            c.metrics for c in first_outcome.configs
        ]

    def test_configs_collapse_across_sweeps(self, tmp_path):
        # A differently-named sweep whose grid overlaps reuses the
        # cached results of the shared configurations.
        cache = ResultCache(tmp_path / "cache")
        run_sweep(tiny_spec(), cache=cache)
        overlapping = tiny_spec(
            name="other",
            axes={"line_bytes": [256, 512, 1024], "num_banks": [4]},
        )
        _, metrics = run_sweep(overlapping, cache=cache)
        by_shard = {t.shard: t.cache for t in metrics.tasks}
        assert by_shard["line_bytes=256,num_banks=4"] == "hit"
        assert by_shard["line_bytes=512,num_banks=4"] == "hit"
        assert by_shard["line_bytes=1024,num_banks=4"] == "miss"

    def test_quarantined_config_is_excluded_from_pareto(self):
        faults = FaultPlan.parse(
            ["sweep:figure7/line_bytes=256*=raise"]
        )
        policy = SupervisionPolicy(max_retries=0)
        outcome, metrics = run_sweep(
            tiny_spec(), faults=faults, policy=policy,
        )
        assert outcome.failed == ["line_bytes=256,num_banks=4"]
        assert [c.label for c in outcome.configs] == [
            "line_bytes=512,num_banks=4"]
        # The lone survivor is trivially the whole frontier.
        assert outcome.frontier == ["line_bytes=512,num_banks=4"]
        assert metrics.quarantined == 1

    def test_deterministic_across_runs(self):
        first, _ = run_sweep(tiny_spec())
        second, _ = run_sweep(tiny_spec())
        assert [c.metrics for c in first.configs] == [
            c.metrics for c in second.configs
        ]


class TestSpans:
    def test_sweep_stages_are_traced(self):
        from repro import obs

        obs.enable()
        try:
            before = obs.mark()
            run_sweep(tiny_spec())
            names = {record.name for record in obs.since(before)}
        finally:
            obs.disable()
        assert {"sweep/compile", "sweep/run", "sweep/reduce"} <= names
