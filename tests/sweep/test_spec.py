"""Sweep-spec validation: every named rule, plus expansion semantics."""

import json

import pytest

from repro.sweep.spec import (
    SPEC_RULES,
    SweepSpecError,
    load_spec,
    parse_spec,
    resolve_spec,
)


def good_table(**overrides):
    table = {
        "name": "demo",
        "base": "figure7",
        "axes": {"line_bytes": [256, 512], "num_banks": [4, 8]},
        "fixed": {"benchmark": "126.gcc", "trace_len": 4000},
    }
    table.update(overrides)
    return table


def rule_of(table) -> str:
    with pytest.raises(SweepSpecError) as excinfo:
        parse_spec(table)
    assert excinfo.value.rule in SPEC_RULES
    return excinfo.value.rule


class TestValidation:
    def test_good_spec_parses(self):
        spec = parse_spec(good_table())
        assert spec.name == "demo"
        assert spec.base == "figure7"
        assert spec.axis_names == ("line_bytes", "num_banks")

    def test_missing_name(self):
        table = good_table()
        del table["name"]
        assert rule_of(table) == "missing-field"

    def test_missing_axes(self):
        table = good_table()
        del table["axes"]
        assert rule_of(table) == "missing-field"

    def test_unknown_field(self):
        assert rule_of(good_table(extra=1)) == "unknown-field"

    def test_bad_name_characters(self):
        assert rule_of(good_table(name="no spaces!")) == "bad-name"

    def test_unknown_base(self):
        assert rule_of(good_table(base="figure99")) == "unknown-base"

    def test_bad_mode(self):
        assert rule_of(good_table(mode="zipper")) == "bad-mode"

    def test_unknown_axis_name(self):
        assert rule_of(
            good_table(axes={"cache_color": [1, 2]})
        ) == "unknown-axis"

    def test_axis_not_accepted_by_base(self):
        # victim_entries is a real axis, but figure7 (I-cache side)
        # does not take it.
        assert rule_of(
            good_table(axes={"victim_entries": [8, 16]})
        ) == "unknown-axis"

    def test_empty_axis(self):
        assert rule_of(good_table(axes={"line_bytes": []})) == "empty-axis"

    def test_empty_grid_no_axes(self):
        assert rule_of(good_table(axes={})) == "empty-grid"

    def test_bad_axis_value_type(self):
        assert rule_of(
            good_table(axes={"line_bytes": ["wide"]})
        ) == "bad-value"

    def test_bad_axis_value_geometry(self):
        # 384 is positive but not a power of two; the device constructor
        # rejects it, and the spec layer surfaces that before any worker
        # would have crashed mid-sweep.
        assert rule_of(good_table(axes={"line_bytes": [384]})) == "bad-value"

    def test_bad_latency_profile(self):
        assert rule_of(
            good_table(axes={"line_bytes": [256],
                             "latency_profile": ["sram-0ns"]})
        ) == "bad-value"

    def test_list_mode_length_mismatch(self):
        assert rule_of(good_table(
            mode="list",
            axes={"line_bytes": [256, 512], "num_banks": [4, 8, 16]},
        )) == "length-mismatch"

    def test_repeated_axis_value_is_duplicate(self):
        assert rule_of(
            good_table(axes={"line_bytes": [256, 256]})
        ) == "duplicate-configuration"

    def test_list_mode_duplicate_rows(self):
        assert rule_of(good_table(
            mode="list",
            axes={"line_bytes": [256, 256], "num_banks": [4, 4]},
        )) == "duplicate-configuration"

    def test_fixed_knob_unknown(self):
        assert rule_of(
            good_table(fixed={"warp_speed": 9})
        ) == "unknown-fixed"

    def test_fixed_knob_shadowing_axis(self):
        assert rule_of(good_table(
            fixed={"line_bytes": 256, "benchmark": "126.gcc"}
        )) == "unknown-fixed"

    def test_fixed_axis_value_validated(self):
        # Pinning an axis as a fixed knob is allowed, but its value
        # still has to be legal for that axis.
        assert rule_of(good_table(
            axes={"line_bytes": [256, 512]},
            fixed={"num_banks": 3},
        )) == "bad-value"

    def test_unknown_objective_metric(self):
        assert rule_of(good_table(
            objectives=[{"metric": "latency_p99"}]
        )) == "unknown-metric"

    def test_bad_objective_goal(self):
        assert rule_of(good_table(
            objectives=[{"metric": "cpi", "goal": "minimise"}]
        )) == "bad-goal"

    def test_duplicate_objective(self):
        assert rule_of(good_table(objectives=[
            {"metric": "cpi"}, {"metric": "cpi", "goal": "max"},
        ])) == "duplicate-objective"

    def test_objectives_default_from_base(self):
        spec = parse_spec(good_table())
        assert [(o.metric, o.goal) for o in spec.objectives] == [
            ("miss_rate", "min"), ("cpi", "min"), ("bank_utilization", "min"),
        ]


class TestExpansion:
    def test_grid_is_row_major_in_declaration_order(self):
        spec = parse_spec(good_table())
        labels = [c.label for c in spec.configs()]
        assert labels == [
            "line_bytes=256,num_banks=4",
            "line_bytes=256,num_banks=8",
            "line_bytes=512,num_banks=4",
            "line_bytes=512,num_banks=8",
        ]

    def test_list_mode_zips_rows(self):
        spec = parse_spec(good_table(
            mode="list",
            axes={"line_bytes": [256, 512], "num_banks": [4, 8]},
        ))
        assert [c.label for c in spec.configs()] == [
            "line_bytes=256,num_banks=4",
            "line_bytes=512,num_banks=8",
        ]

    def test_params_merge_fixed_and_axes(self):
        spec = parse_spec(good_table())
        config = spec.configs()[0]
        assert config.params == {
            "benchmark": "126.gcc", "trace_len": 4000,
            "line_bytes": 256, "num_banks": 4,
        }

    def test_expansion_is_deterministic(self):
        spec = parse_spec(good_table())
        assert spec.configs() == spec.configs()


class TestFiles:
    def test_load_toml(self, tmp_path):
        path = tmp_path / "demo.toml"
        path.write_text(
            'name = "demo"\nbase = "figure7"\n'
            '[axes]\nline_bytes = [256, 512]\n'
        )
        spec = load_spec(path)
        assert spec.name == "demo"

    def test_load_json(self, tmp_path):
        path = tmp_path / "demo.json"
        path.write_text(json.dumps(good_table()))
        assert load_spec(path).base == "figure7"

    def test_filename_must_match_sweep_name(self, tmp_path):
        path = tmp_path / "other.toml"
        path.write_text(
            'name = "demo"\nbase = "figure7"\n[axes]\nline_bytes = [256]\n'
        )
        with pytest.raises(SweepSpecError) as excinfo:
            load_spec(path)
        assert excinfo.value.rule == "bad-name"

    def test_invalid_toml_is_bad_spec(self, tmp_path):
        path = tmp_path / "demo.toml"
        path.write_text("name = [unclosed\n")
        with pytest.raises(SweepSpecError) as excinfo:
            load_spec(path)
        assert excinfo.value.rule == "bad-spec"

    def test_resolve_checked_in_name(self, tmp_path):
        (tmp_path / "demo.toml").write_text("")
        assert resolve_spec("demo", tmp_path) == tmp_path / "demo.toml"

    def test_resolve_unknown_name_raises(self, tmp_path):
        with pytest.raises(SweepSpecError) as excinfo:
            resolve_spec("ghost", tmp_path)
        assert excinfo.value.rule == "bad-spec"

    def test_checked_in_specs_are_valid(self):
        # The repo's own sweeps must parse under the current validator.
        from repro.sweep.spec import discover_specs

        specs = discover_specs()
        assert {p.stem for p in specs} >= {"micro", "fig7-line-bank"}
        for path in specs:
            spec = load_spec(path)
            assert spec.configs()
