"""The `python -m repro sweep` verbs, end to end on tiny grids."""

import json

import pytest

from repro.sweep.cli import main as sweep_main

SPEC = """\
name = "clidemo"
base = "figure7"
description = "CLI test sweep"

[axes]
line_bytes = [256, 512]

[fixed]
benchmark = "126.gcc"
trace_len = 1500
instructions = 400
"""


@pytest.fixture()
def spec_path(tmp_path):
    path = tmp_path / "clidemo.toml"
    path.write_text(SPEC)
    return path


class TestRun:
    def test_run_writes_report_and_metrics(self, spec_path, tmp_path,
                                           capsys):
        report = tmp_path / "report.json"
        metrics = tmp_path / "metrics.json"
        status = sweep_main([
            "run", str(spec_path),
            "--no-cache",
            "--report-out", str(report),
            "--metrics-out", str(metrics),
        ])
        assert status == 0
        artifact = json.loads(report.read_text())
        assert artifact["kind"] == "sweep"
        assert artifact["name"] == "clidemo"
        assert len(artifact["configs"]) == 2
        run_metrics = json.loads(metrics.read_text())
        assert len(run_metrics["tasks"]) == 2
        out = capsys.readouterr().out
        assert "frontier" in out

    def test_second_run_hits_cache(self, spec_path, tmp_path):
        cache = tmp_path / "cache"
        args = ["run", str(spec_path), "--cache-dir", str(cache),
                "--no-report"]
        assert sweep_main(args) == 0
        metrics = tmp_path / "metrics.json"
        assert sweep_main(args + ["--metrics-out", str(metrics)]) == 0
        data = json.loads(metrics.read_text())
        assert all(t["cache"] == "hit" for t in data["tasks"])
        assert all(t["fingerprint_kind"] == "slice" for t in data["tasks"])

    def test_invalid_spec_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text('name = "bad"\nbase = "figure99"\n'
                       '[axes]\nline_bytes = [256]\n')
        assert sweep_main(["run", str(bad), "--no-cache"]) == 2
        err = capsys.readouterr().err
        assert "unknown-base" in err

    def test_missing_spec_is_usage_error(self, capsys):
        assert sweep_main(["run", "no-such-sweep", "--no-cache"]) == 2

    def test_quarantine_exits_nonzero(self, spec_path, capsys):
        status = sweep_main([
            "run", str(spec_path), "--no-cache", "--no-report",
            "--max-retries", "0",
            "--inject", "sweep:figure7/line_bytes=256*=raise",
        ])
        assert status == 1
        out = capsys.readouterr().out
        assert "quarantined" in out

    def test_resume_without_cache_is_usage_error(self, spec_path, capsys):
        assert sweep_main([
            "run", str(spec_path), "--no-cache", "--resume",
        ]) == 2


class TestReportAndList:
    def test_report_regenerates_doc(self, tmp_path, monkeypatch,
                                    spec_path):
        monkeypatch.chdir(tmp_path)
        # No artifacts at all: still writes a (placeholder) document.
        out = tmp_path / "SWEEPS.md"
        assert sweep_main(["report", "--out", str(out)]) == 0
        assert "No sweep reports" in out.read_text()

    def test_list_names_checked_in_sweeps(self, capsys):
        assert sweep_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "micro" in out
        assert "fig7-line-bank" in out
