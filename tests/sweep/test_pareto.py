"""Pareto classification on hand-built frontiers."""

import pytest

from repro.sweep.pareto import (
    ParetoError,
    frontier_labels,
    pareto_classify,
)
from repro.sweep.spec import Objective

MIN_BOTH = (Objective("cost", "min"), Objective("delay", "min"))


def classify(points, objectives=MIN_BOTH):
    return pareto_classify(points, objectives)


class TestClassification:
    def test_textbook_frontier(self):
        # c is beaten by a (cheaper AND faster); a and b trade off.
        verdicts = classify([
            ("a", {"cost": 1.0, "delay": 5.0}),
            ("b", {"cost": 3.0, "delay": 2.0}),
            ("c", {"cost": 2.0, "delay": 6.0}),
        ])
        assert frontier_labels(verdicts) == ["a", "b"]
        c = verdicts[2]
        assert c.dominated and c.dominated_by == "a"

    def test_degenerate_all_dominated_by_one(self):
        # One point beats every other on both objectives: the frontier
        # collapses to a single configuration.
        verdicts = classify([
            ("worst", {"cost": 9.0, "delay": 9.0}),
            ("bad", {"cost": 5.0, "delay": 5.0}),
            ("best", {"cost": 1.0, "delay": 1.0}),
        ])
        assert frontier_labels(verdicts) == ["best"]
        assert all(v.dominated_by is not None
                   for v in verdicts if v.label != "best")

    def test_ties_stay_on_frontier(self):
        # Identical objective vectors dominate nothing; both survive.
        verdicts = classify([
            ("twin1", {"cost": 2.0, "delay": 2.0}),
            ("twin2", {"cost": 2.0, "delay": 2.0}),
        ])
        assert frontier_labels(verdicts) == ["twin1", "twin2"]

    def test_first_dominator_in_input_order_is_recorded(self):
        verdicts = classify([
            ("d1", {"cost": 1.0, "delay": 1.0}),
            ("d2", {"cost": 2.0, "delay": 2.0}),
            ("loser", {"cost": 3.0, "delay": 3.0}),
        ])
        assert verdicts[2].dominated_by == "d1"

    def test_max_goal_flips_orientation(self):
        verdicts = pareto_classify(
            [
                ("small", {"throughput": 10.0}),
                ("big", {"throughput": 20.0}),
            ],
            [Objective("throughput", "max")],
        )
        assert frontier_labels(verdicts) == ["big"]
        assert verdicts[0].dominated_by == "big"

    def test_mixed_goals(self):
        # Minimize cost, maximize throughput: b strictly better.
        verdicts = pareto_classify(
            [
                ("a", {"cost": 2.0, "throughput": 10.0}),
                ("b", {"cost": 1.0, "throughput": 20.0}),
            ],
            [Objective("cost", "min"), Objective("throughput", "max")],
        )
        assert frontier_labels(verdicts) == ["b"]

    def test_single_objective_degenerates_to_minimum(self):
        verdicts = pareto_classify(
            [("x", {"cost": 3.0}), ("y", {"cost": 1.0}), ("z", {"cost": 2.0})],
            [Objective("cost", "min")],
        )
        assert frontier_labels(verdicts) == ["y"]

    def test_empty_points(self):
        assert classify([]) == []

    def test_single_point_is_frontier(self):
        verdicts = classify([("only", {"cost": 1.0, "delay": 1.0})])
        assert not verdicts[0].dominated

    def test_verdict_order_matches_input_order(self):
        points = [
            ("p3", {"cost": 3.0, "delay": 3.0}),
            ("p1", {"cost": 1.0, "delay": 1.0}),
            ("p2", {"cost": 2.0, "delay": 2.0}),
        ]
        assert [v.label for v in classify(points)] == ["p3", "p1", "p2"]


class TestErrors:
    def test_missing_metric_raises(self):
        with pytest.raises(ParetoError, match="has no metric 'delay'"):
            classify([("a", {"cost": 1.0})])

    def test_non_finite_metric_raises(self):
        with pytest.raises(ParetoError, match="not a finite number"):
            classify([("a", {"cost": float("nan"), "delay": 1.0})])

    def test_no_objectives_raises(self):
        with pytest.raises(ParetoError, match="no objectives"):
            pareto_classify([("a", {"cost": 1.0})], [])
