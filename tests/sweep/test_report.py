"""Sweep artifacts, SWEEPS.md generation, and the drift check (tier-1)."""

from pathlib import Path

import pytest

from repro.sweep.engine import ConfigResult, SweepOutcome
from repro.sweep.report import (
    SWEEP_SCHEMA_VERSION,
    build_sweep_artifact,
    check_sweeps_drift,
    generate_sweeps_md,
    load_sweep_artifact,
    spec_digest,
    write_sweep_artifact,
)
from repro.sweep.spec import parse_spec

REPO_ROOT = Path(__file__).resolve().parents[2]


def _spec(**overrides):
    table = {
        "name": "demo",
        "base": "figure7",
        "axes": {"line_bytes": [256, 512]},
        "fixed": {"benchmark": "126.gcc"},
    }
    table.update(overrides)
    return parse_spec(table)


def _outcome(spec=None):
    spec = spec or _spec()
    return SweepOutcome(
        spec=spec,
        configs=[
            ConfigResult(
                label="line_bytes=256",
                params={"benchmark": "126.gcc", "line_bytes": 256},
                metrics={"miss_rate": 0.02, "cpi": 1.4,
                         "bank_utilization": 0.10},
                dominated=True,
                dominated_by="line_bytes=512",
            ),
            ConfigResult(
                label="line_bytes=512",
                params={"benchmark": "126.gcc", "line_bytes": 512},
                metrics={"miss_rate": 0.01, "cpi": 1.2,
                         "bank_utilization": 0.05},
            ),
        ],
        failed=[],
    )


class TestArtifact:
    def test_schema_and_shape(self):
        artifact = build_sweep_artifact(_outcome())
        assert artifact["schema"] == SWEEP_SCHEMA_VERSION
        assert artifact["kind"] == "sweep"
        assert artifact["name"] == "demo"
        assert artifact["frontier"] == ["line_bytes=512"]
        assert artifact["configs"][0]["dominated_by"] == "line_bytes=512"

    def test_roundtrip(self, tmp_path):
        artifact = build_sweep_artifact(_outcome())
        path = tmp_path / "demo.json"
        write_sweep_artifact(path, artifact)
        assert load_sweep_artifact(path) == artifact

    def test_deterministic(self):
        assert build_sweep_artifact(_outcome()) == \
            build_sweep_artifact(_outcome())

    def test_no_code_fingerprint(self):
        # The artifact is a pure function of the spec, so SWEEPS.md
        # only churns when swept results change — never on unrelated
        # source edits.  A code fingerprint would break that.
        artifact = build_sweep_artifact(_outcome())
        assert "fingerprint" not in artifact

    def test_spec_digest_tracks_spec_content(self):
        assert spec_digest(_spec()) == spec_digest(_spec())
        assert spec_digest(_spec()) != spec_digest(
            _spec(axes={"line_bytes": [256, 1024]})
        )


class TestRendering:
    def test_deterministic(self):
        artifacts = [build_sweep_artifact(_outcome())]
        assert generate_sweeps_md(artifacts) == generate_sweeps_md(artifacts)

    def test_contains_verdicts_and_summary(self):
        text = generate_sweeps_md([build_sweep_artifact(_outcome())])
        assert text.startswith("# SWEEPS — design-space exploration")
        assert "## `demo` — base `figure7`" in text
        assert "dominated by `line_bytes=512`" in text
        assert "**frontier**" in text
        assert "Frontier: 1 of 2 configurations; 1 dominated." in text

    def test_no_timestamps(self):
        text = generate_sweeps_md([build_sweep_artifact(_outcome())])
        for fragment in ("202", "19:", "UTC"):
            assert fragment not in text

    def test_empty_registry_renders_placeholder(self):
        text = generate_sweeps_md([])
        assert "No sweep reports are checked in yet" in text

    def test_quarantined_configs_are_listed(self):
        outcome = _outcome()
        outcome.failed = ["line_bytes=1024"]
        text = generate_sweeps_md([build_sweep_artifact(outcome)])
        assert "Quarantined configurations" in text
        assert "`line_bytes=1024`" in text


class TestDrift:
    def test_checked_in_docs_are_in_sync(self):
        """The committed SWEEPS.md regenerates byte-identically from the
        committed sweep artifacts (scripts/check_docs.py runs this same
        check)."""
        if not (REPO_ROOT / "SWEEPS.md").exists():
            pytest.skip("SWEEPS.md not generated yet")
        assert check_sweeps_drift(REPO_ROOT) == []

    def _write_tree(self, root, artifact, doc_text):
        sweeps = root / "artifacts" / "sweeps"
        sweeps.mkdir(parents=True)
        write_sweep_artifact(sweeps / "demo.json", artifact)
        (root / "SWEEPS.md").write_text(doc_text)

    def test_in_sync_roundtrip(self, tmp_path):
        artifact = build_sweep_artifact(_outcome())
        self._write_tree(tmp_path, artifact, generate_sweeps_md([artifact]))
        assert check_sweeps_drift(tmp_path) == []

    def test_manual_edit_is_detected(self, tmp_path):
        artifact = build_sweep_artifact(_outcome())
        self._write_tree(
            tmp_path, artifact,
            generate_sweeps_md([artifact]) + "manual edit\n",
        )
        drift = check_sweeps_drift(tmp_path)
        assert drift and any("manual edit" in line for line in drift)

    def test_stale_spec_is_detected(self, tmp_path):
        # Editing the spec without rerunning the sweep must fail the
        # check even though SWEEPS.md still matches the old artifact.
        artifact = build_sweep_artifact(_outcome())
        self._write_tree(tmp_path, artifact, generate_sweeps_md([artifact]))
        (tmp_path / "artifacts" / "sweeps" / "demo.toml").write_text(
            'name = "demo"\nbase = "figure7"\n'
            '[axes]\nline_bytes = [256, 1024]\n'
            '[fixed]\nbenchmark = "126.gcc"\n'
        )
        drift = check_sweeps_drift(tmp_path)
        assert drift and any("edited after" in line for line in drift)

    def test_missing_doc_is_drift(self, tmp_path):
        sweeps = tmp_path / "artifacts" / "sweeps"
        sweeps.mkdir(parents=True)
        write_sweep_artifact(
            sweeps / "demo.json", build_sweep_artifact(_outcome())
        )
        assert check_sweeps_drift(tmp_path) != []
