import pytest

from repro.common.errors import SimulationError
from repro.isa.assembler import Assembler
from repro.isa.cpu import CPU
from repro.isa.programs import (
    fill_array,
    list_traversal,
    matmul,
    stride_walk,
    vector_sum,
)


def run(src, **kw):
    return CPU(Assembler().assemble(src), **kw).run()


class TestArithmetic:
    def test_add_sub(self):
        res = run("li r1, 7\nli r2, 5\nadd r3, r1, r2\nsub r4, r1, r2\nhalt")
        assert res.registers[3] == 12
        assert res.registers[4] == 2

    def test_mul_div(self):
        res = run("li r1, 6\nli r2, 7\nmul r3, r1, r2\ndiv r4, r3, r2\nhalt")
        assert res.registers[3] == 42
        assert res.registers[4] == 6

    def test_div_by_zero_raises(self):
        with pytest.raises(SimulationError):
            run("li r1, 1\ndiv r2, r1, r0\nhalt")

    def test_slt_signed(self):
        res = run("li r1, -1\nli r2, 1\nslt r3, r1, r2\nslt r4, r2, r1\nhalt")
        assert res.registers[3] == 1
        assert res.registers[4] == 0

    def test_shifts(self):
        res = run("li r1, 3\nslli r2, r1, 4\nsrli r3, r2, 2\nhalt")
        assert res.registers[2] == 48
        assert res.registers[3] == 12

    def test_r0_is_hardwired_zero(self):
        res = run("addi r0, r0, 99\nhalt")
        assert res.registers[0] == 0

    def test_wraparound_arithmetic(self):
        res = run("li r1, 0xFFFFFFFF\naddi r2, r1, 1\nhalt")
        assert res.registers[2] == 0


class TestMemory:
    def test_store_then_load(self):
        res = run(".data\nbuf: .space 16\n.text\nla r1, buf\nli r2, 42\n"
                  "st r2, 4(r1)\nld r3, 4(r1)\nhalt")
        assert res.registers[3] == 42

    def test_uninitialized_memory_reads_zero(self):
        res = run(".data\nbuf: .space 8\n.text\nla r1, buf\nld r2, 0(r1)\nhalt")
        assert res.registers[2] == 0

    def test_unaligned_access_raises(self):
        with pytest.raises(SimulationError):
            run("li r1, 0x100001\nld r2, 0(r1)\nhalt")

    def test_data_trace_records_loads_and_stores(self):
        res = run(".data\nbuf: .space 8\n.text\nla r1, buf\nli r2, 1\n"
                  "st r2, 0(r1)\nld r3, 0(r1)\nhalt")
        assert res.data_trace.is_write.tolist() == [True, False]

    def test_instruction_trace_matches_count(self):
        res = run("nop\nnop\nhalt")
        assert len(res.instruction_trace) == res.instructions_executed == 3


class TestControlFlow:
    def test_loop_executes_n_times(self):
        res = run("li r1, 5\nloop: addi r2, r2, 10\naddi r1, r1, -1\n"
                  "bne r1, r0, loop\nhalt")
        assert res.registers[2] == 50

    def test_call_and_return(self):
        res = run("jal r31, func\nli r2, 2\nhalt\nfunc: li r1, 1\nret")
        assert res.registers[1] == 1
        assert res.registers[2] == 2

    def test_runaway_budget(self):
        with pytest.raises(SimulationError):
            run("loop: j loop", max_instructions=1000)

    def test_fall_off_end_raises(self):
        with pytest.raises(SimulationError):
            run("nop")


class TestKernels:
    def test_vector_sum_checksum(self):
        res = run(vector_sum(64))
        # Array is zero-initialized, so the checksum stored past it is 0,
        # and the loop executed 64 iterations.
        assert res.load_word(0x100000 + 4 * 64) == 0
        assert len(res.data_trace) == 65  # 64 loads + 1 store

    def test_fill_array_writes_value(self):
        res = run(fill_array(32, value=9))
        assert all(res.load_word(0x100000 + 4 * i) == 9 for i in range(32))

    def test_matmul_identity(self):
        n = 5
        res = run(matmul(n))
        a, c = 0x100000, 0x100000 + 8 * n * n
        for i in range(n * n):
            assert res.load_word(a + 4 * i) == res.load_word(c + 4 * i)

    def test_list_traversal_checksum(self):
        nodes, laps = 32, 3
        res = run(list_traversal(nodes, laps=laps))
        expected = laps * nodes * (nodes + 1) // 2
        assert res.load_word(0x100000 + 8) == expected

    def test_stride_walk_reference_count(self):
        res = run(stride_walk(4096, 64, passes=2))
        assert len(res.data_trace) == 2 * 4096 // 64
