"""Tests for the saxpy and binary-search kernels."""

import pytest

from repro.caches import DirectMappedCache, proposed_dcache, proposed_icache
from repro.isa import Assembler, CPU, CacheMemoryModel, PipelineTimer
from repro.isa.programs import KERNELS, binary_search, saxpy


def run(src):
    return CPU(Assembler().assemble(src), keep_instruction_objects=True).run()


class TestSaxpy:
    def test_result_on_zero_vectors(self):
        result = run(saxpy(32, a=5))
        # x and y start zeroed, so y stays zero.
        assert all(result.load_word(0x100000 + 4 * (32 + i)) == 0
                   for i in range(32))

    def test_store_per_iteration(self):
        result = run(saxpy(100))
        assert int(result.data_trace.is_write.sum()) == 100

    def test_streaming_favors_long_lines(self):
        result = run(saxpy(2048))
        timer = PipelineTimer()
        long_lines = timer.run(
            run(saxpy(2048)),
            CacheMemoryModel(proposed_icache(), proposed_dcache(), miss_cycles=6),
        )
        short_lines = timer.run(
            result,
            CacheMemoryModel(
                DirectMappedCache(8192, 32),
                DirectMappedCache(16384, 32),
                miss_cycles=6,
            ),
        )
        assert long_lines.data_stall_cycles < short_lines.data_stall_cycles / 3


class TestBinarySearch:
    def test_checksum_matches_reference_model(self):
        elements, probes = 256, 16
        result = run(binary_search(elements, probes))
        state, expected = 17, 0
        for _ in range(probes):
            state = (state * 13 + 7) & (elements - 1)
            expected += state
        assert result.load_word(0x100000 + 4 * elements) == expected

    def test_log_depth_access_pattern(self):
        """Binary search touches ~log2(n) elements per probe."""
        result = run(binary_search(1024, probes=8))
        searches = result.data_trace.addresses
        # Fill writes 1024; each probe loads <= log2(1024)+1 = 11 words.
        loads = int((~result.data_trace.is_write).sum())
        assert loads <= 8 * 11

    def test_registered_in_kernel_table(self):
        assert "saxpy" in KERNELS
        assert "binary_search" in KERNELS
