import pytest

from repro.caches import DirectMappedCache, proposed_dcache, proposed_icache
from repro.isa.assembler import Assembler
from repro.isa.cpu import CPU
from repro.isa.pipeline import CacheMemoryModel, FlatMemory, PipelineTimer
from repro.isa.programs import vector_sum


def run_timed(src, memory=None):
    result = CPU(Assembler().assemble(src), keep_instruction_objects=True).run()
    return PipelineTimer().run(result, memory or FlatMemory())


class TestIdealTiming:
    def test_straightline_code_is_cpi_one(self):
        timing = run_timed("nop\nnop\nnop\nnop\nhalt")
        assert timing.cpi == pytest.approx(1.0)

    def test_requires_instruction_objects(self):
        result = CPU(Assembler().assemble("halt")).run()
        with pytest.raises(ValueError):
            PipelineTimer().run(result, FlatMemory())

    def test_load_use_interlock(self):
        smooth = run_timed(
            ".data\nb: .word 1\n.text\nla r1, b\nld r2, 0(r1)\nnop\n"
            "add r3, r2, r2\nhalt"
        )
        stalled = run_timed(
            ".data\nb: .word 1\n.text\nla r1, b\nld r2, 0(r1)\n"
            "add r3, r2, r2\nnop\nhalt"
        )
        assert stalled.interlock_cycles == smooth.interlock_cycles + 1

    def test_taken_branch_bubble(self):
        taken = run_timed("li r1, 1\nbeq r1, r1, skip\nnop\nskip: halt")
        untaken = run_timed("li r1, 1\nbne r1, r1, skip\nnop\nskip: halt")
        assert taken.branch_bubble_cycles == 1
        assert untaken.branch_bubble_cycles == 0

    def test_store_does_not_stall(self):
        # Stores retire through the store buffer: flat memory and a missing
        # cache give the same cycle count for a store-only kernel.
        src = ".data\nb: .space 64\n.text\nla r1, b\nli r2, 5\nst r2, 0(r1)\nhalt"
        flat = run_timed(src)
        cached = run_timed(
            src,
            CacheMemoryModel(
                DirectMappedCache(8192, 512),
                DirectMappedCache(16384, 512),
                miss_cycles=6,
            ),
        )
        assert cached.data_stall_cycles == flat.data_stall_cycles == 0


class TestCacheTiming:
    def test_load_misses_cost_latency(self):
        src = (".data\nb: .space 64\n.text\nla r1, b\nld r2, 0(r1)\n"
               "ld r3, 0(r1)\nhalt")
        timing = run_timed(
            src,
            CacheMemoryModel(
                DirectMappedCache(8192, 512),
                DirectMappedCache(16384, 512),
                miss_cycles=6,
            ),
        )
        # First load misses (5 extra cycles), second hits.
        assert timing.data_stall_cycles == 5

    def test_long_lines_reduce_streaming_stalls(self):
        src = vector_sum(512)
        long_lines = run_timed(
            src,
            CacheMemoryModel(proposed_icache(), proposed_dcache(), miss_cycles=6),
        )
        short_lines = run_timed(
            src,
            CacheMemoryModel(
                DirectMappedCache(8192, 32),
                DirectMappedCache(16384, 32),
                miss_cycles=6,
            ),
        )
        assert long_lines.data_stall_cycles < short_lines.data_stall_cycles / 4

    def test_cpi_decomposition_sums(self):
        timing = run_timed(
            vector_sum(128),
            CacheMemoryModel(proposed_icache(), proposed_dcache(), miss_cycles=6),
        )
        overhead = (
            timing.ifetch_stall_cycles
            + timing.data_stall_cycles
            + timing.interlock_cycles
            + timing.branch_bubble_cycles
        )
        assert timing.cycles == timing.instructions + overhead
