import pytest

from repro.common.errors import AssemblyError
from repro.isa.assembler import DEFAULT_TEXT_ORG, Assembler
from repro.isa.instructions import Instruction, Opcode


def assemble(src):
    return Assembler().assemble(src)


class TestBasicForms:
    def test_reg_reg(self):
        prog = assemble("add r3, r1, r2\nhalt")
        instr = prog.instructions[DEFAULT_TEXT_ORG]
        assert instr == Instruction(Opcode.ADD, rd=3, rs1=1, rs2=2)

    def test_reg_imm_negative(self):
        prog = assemble("addi r3, r1, -4\nhalt")
        assert prog.instructions[DEFAULT_TEXT_ORG].imm == -4

    def test_load_store_operands(self):
        prog = assemble("ld r5, 8(r2)\nst r5, 12(r2)\nhalt")
        load = prog.instructions[DEFAULT_TEXT_ORG]
        store = prog.instructions[DEFAULT_TEXT_ORG + 4]
        assert load.rd == 5 and load.rs1 == 2 and load.imm == 8
        assert store.rs2 == 5 and store.rs1 == 2 and store.imm == 12

    def test_hex_immediates(self):
        prog = assemble("addi r1, r0, 0x10\nhalt")
        assert prog.instructions[DEFAULT_TEXT_ORG].imm == 16


class TestLabelsAndBranches:
    def test_backward_branch_offset(self):
        prog = assemble("loop: addi r1, r1, 1\nbne r1, r2, loop\nhalt")
        branch = prog.instructions[DEFAULT_TEXT_ORG + 4]
        assert branch.imm == -4

    def test_forward_branch_offset(self):
        prog = assemble("beq r1, r2, done\naddi r1, r1, 1\ndone: halt")
        branch = prog.instructions[DEFAULT_TEXT_ORG]
        assert branch.imm == 8

    def test_jal_absolute_target(self):
        prog = assemble("jal r31, func\nhalt\nfunc: halt")
        assert prog.instructions[DEFAULT_TEXT_ORG].imm == DEFAULT_TEXT_ORG + 8

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("a: nop\na: nop\nhalt")

    def test_label_on_same_line_as_instruction(self):
        prog = assemble("start: addi r1, r0, 1\nhalt")
        assert prog.labels["start"] == DEFAULT_TEXT_ORG


class TestPseudoInstructions:
    def test_li_expands_to_lui_ori(self):
        prog = assemble("li r4, 0x12345678\nhalt")
        lui = prog.instructions[DEFAULT_TEXT_ORG]
        ori = prog.instructions[DEFAULT_TEXT_ORG + 4]
        assert lui.opcode is Opcode.LUI and lui.imm == 0x1234
        assert ori.opcode is Opcode.ORI and ori.imm == 0x5678

    def test_la_loads_label_address(self):
        prog = assemble(".data\nbuf: .word 1\n.text\nla r4, buf\nhalt")
        lui = prog.instructions[DEFAULT_TEXT_ORG]
        ori = prog.instructions[DEFAULT_TEXT_ORG + 4]
        assert (lui.imm << 16) | ori.imm == prog.labels["buf"]

    def test_mv_and_j_and_ret(self):
        prog = assemble("top: mv r4, r5\nj top\nret\nhalt")
        assert prog.instructions[DEFAULT_TEXT_ORG].opcode is Opcode.ADDI
        assert prog.instructions[DEFAULT_TEXT_ORG + 4].opcode is Opcode.JAL
        assert prog.instructions[DEFAULT_TEXT_ORG + 8].opcode is Opcode.JALR


class TestDataSection:
    def test_word_directive(self):
        prog = assemble(".data\nvals: .word 1, 2, 3\n.text\nhalt")
        base = prog.labels["vals"]
        assert [prog.memory[base + 4 * i] for i in range(3)] == [1, 2, 3]

    def test_space_reserves_without_initializing(self):
        prog = assemble(".data\nbuf: .space 64\nafter: .word 9\n.text\nhalt")
        assert prog.labels["after"] == prog.labels["buf"] + 64

    def test_org_directive(self):
        prog = assemble(".data\n.org 0x200000\nx: .word 5\n.text\nhalt")
        assert prog.labels["x"] == 0x200000

    def test_word_accepts_label_values(self):
        prog = assemble(".data\na: .word 0\nptr: .word a\n.text\nhalt")
        assert prog.memory[prog.labels["ptr"]] == prog.labels["a"]


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            assemble("frobnicate r1, r2, r3")

    def test_bad_register(self):
        with pytest.raises(AssemblyError):
            assemble("add r32, r1, r2")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblyError):
            assemble("ld r1, r2")

    def test_code_in_data_section(self):
        with pytest.raises(AssemblyError):
            assemble(".data\nadd r1, r2, r3")

    def test_bad_integer(self):
        with pytest.raises(AssemblyError):
            assemble("addi r1, r0, banana")


class TestDisassembly:
    def test_roundtrip_through_disassemble(self):
        src = "add r3, r1, r2\nld r5, 8(r2)\nst r5, 0(r2)\nbeq r1, r2, 8\nhalt"
        prog = assemble(src)
        texts = [
            prog.instructions[DEFAULT_TEXT_ORG + 4 * i].disassemble()
            for i in range(5)
        ]
        assert texts[0] == "add r3, r1, r2"
        assert texts[1] == "ld r5, 8(r2)"
        assert texts[2] == "st r5, 0(r2)"
        assert texts[4] == "halt"


class TestListing:
    def test_listing_contains_labels_and_addresses(self):
        prog = assemble("main: addi r1, r0, 5\nloop: addi r1, r1, -1\n"
                        "bne r1, r0, loop\nhalt")
        listing = prog.listing()
        assert "main:" in listing
        assert "loop:" in listing
        assert "0x010000" in listing
        assert "addi r1, r0, 5" in listing

    def test_listing_line_count(self):
        prog = assemble("a: nop\nnop\nhalt")
        # 3 instructions + 1 label line.
        assert len(prog.listing().splitlines()) == 4
