import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.fast import (
    _column_buffer_exact,
    column_buffer_fast,
    column_buffer_fast_supported,
    direct_mapped_miss_flags,
    direct_mapped_miss_rate,
    set_assoc_miss_flags,
    set_assoc_miss_rate,
    simulate_column_buffer,
    simulate_two_level,
    two_level_fast,
    two_way_lru_miss_flags,
)
from repro.caches.hierarchy import TwoLevelHierarchy
from repro.caches.set_assoc import FullyAssociativeCache, SetAssociativeCache
from repro.common.params import CacheGeometry, VictimCacheParams
from repro.common.units import KB
from repro.trace.stream import ReferenceTrace


def _reference_flags(addresses, geometry):
    cache = SetAssociativeCache(geometry)
    return [not cache.access(addr) for addr in addresses]


class TestDirectMappedFast:
    def test_empty_trace(self):
        geom = CacheGeometry(8 * KB, 32, 1)
        assert direct_mapped_miss_flags(np.zeros(0, dtype=np.int64), geom).size == 0
        assert direct_mapped_miss_rate(np.zeros(0, dtype=np.int64), geom) == 0.0

    def test_simple_conflict(self):
        geom = CacheGeometry(8 * KB, 32, 1)
        addrs = np.array([0, 8 * KB, 0], dtype=np.int64)
        assert direct_mapped_miss_flags(addrs, geom).tolist() == [True, True, True]

    def test_rejects_wrong_associativity(self):
        with pytest.raises(ValueError):
            direct_mapped_miss_flags(
                np.array([0], dtype=np.int64), CacheGeometry(8 * KB, 32, 2)
            )

    @settings(max_examples=60, deadline=None)
    @given(addrs=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=400))
    def test_matches_reference_simulator(self, addrs):
        geom = CacheGeometry(2 * KB, 32, 1)
        arr = np.asarray(addrs, dtype=np.int64)
        fast = direct_mapped_miss_flags(arr, geom).tolist()
        assert fast == _reference_flags(addrs, geom)


class TestTwoWayFast:
    def test_two_aliases_coexist(self):
        geom = CacheGeometry(16 * KB, 512, 2)
        addrs = np.array([0, 8 * KB, 0, 8 * KB], dtype=np.int64)
        assert two_way_lru_miss_flags(addrs, geom).tolist() == [
            True,
            True,
            False,
            False,
        ]

    def test_rejects_wrong_associativity(self):
        with pytest.raises(ValueError):
            two_way_lru_miss_flags(
                np.array([0], dtype=np.int64), CacheGeometry(8 * KB, 32, 1)
            )

    @settings(max_examples=60, deadline=None)
    @given(addrs=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=400))
    def test_matches_reference_simulator(self, addrs):
        geom = CacheGeometry(4 * KB, 32, 2)
        arr = np.asarray(addrs, dtype=np.int64)
        fast = two_way_lru_miss_flags(arr, geom).tolist()
        assert fast == _reference_flags(addrs, geom)


class TestDispatch:
    @settings(max_examples=20, deadline=None)
    @given(addrs=st.lists(st.integers(0, 1 << 14), min_size=1, max_size=200))
    def test_four_way_fallback_matches_reference(self, addrs):
        geom = CacheGeometry(4 * KB, 32, 4)
        rate = set_assoc_miss_rate(np.asarray(addrs, dtype=np.int64), geom)
        flags = _reference_flags(addrs, geom)
        assert rate == pytest.approx(sum(flags) / len(flags))


class TestSetAssocFlags:
    def test_empty_trace(self):
        geom = CacheGeometry(4 * KB, 32, 4)
        assert set_assoc_miss_flags(np.zeros(0, dtype=np.int64), geom).size == 0

    @settings(max_examples=40, deadline=None)
    @given(addrs=st.lists(st.integers(0, 1 << 15), min_size=1, max_size=300))
    def test_four_way_matches_reference(self, addrs):
        geom = CacheGeometry(2 * KB, 32, 4)
        flags = set_assoc_miss_flags(np.asarray(addrs, dtype=np.int64), geom)
        assert flags.tolist() == _reference_flags(addrs, geom)

    @settings(max_examples=40, deadline=None)
    @given(addrs=st.lists(st.integers(0, 1 << 13), min_size=1, max_size=300))
    def test_fully_associative_matches_reference(self, addrs):
        geom = CacheGeometry(512, 32, 0)  # 16-entry fully associative
        arr = np.asarray(addrs, dtype=np.int64)
        flags = set_assoc_miss_flags(arr, geom)
        cache = FullyAssociativeCache(512, 32)
        assert flags.tolist() == [not cache.access(a) for a in addrs]


# Strategies for the column-buffer differential: mixes of sequential
# bursts (runs collapse) and aliasing hot spots (victim feedback).
_cb_refs = st.lists(
    st.tuples(st.integers(0, 1 << 15), st.booleans()), min_size=1, max_size=250
)
_cb_geoms = st.sampled_from(
    [
        CacheGeometry(2 * 512, 512, 1),
        CacheGeometry(8 * 512, 512, 1),
        CacheGeometry(8 * 512, 512, 2),
        CacheGeometry(16 * 512, 512, 4),
        CacheGeometry(4 * 128, 128, 2),
    ]
)
_cb_victims = st.sampled_from(
    [
        None,
        VictimCacheParams(entries=1),
        VictimCacheParams(entries=2),
        VictimCacheParams(entries=16),
        VictimCacheParams(entries=4, line_bytes=64),
    ]
)


def _assert_results_identical(fast, exact):
    assert fast.miss_flags.tolist() == exact.miss_flags.tolist()
    assert fast.victim_hit_flags.tolist() == exact.victim_hit_flags.tolist()
    assert fast.stats == exact.stats
    assert fast.main_hits == exact.main_hits
    assert fast.victim_hits == exact.victim_hits
    assert fast.victim_probes == exact.victim_probes
    assert fast.victim_inserts == exact.victim_inserts
    assert fast.victim_writebacks == exact.victim_writebacks


class TestColumnBufferDifferential:
    """The vectorized engine against the object-oriented oracle, field
    by field: miss flags, victim-hit flags, the full CacheStats, the
    main/victim hit split and all victim counters."""

    @settings(max_examples=60, deadline=None)
    @given(refs=_cb_refs, geometry=_cb_geoms, victim=_cb_victims)
    def test_matches_oracle(self, refs, geometry, victim):
        addrs = np.asarray([a for a, _ in refs], dtype=np.int64)
        writes = np.asarray([w for _, w in refs], dtype=bool)
        fast = column_buffer_fast(addrs, writes, geometry, victim)
        exact = _column_buffer_exact(addrs, writes, geometry, victim, 32)
        _assert_results_identical(fast, exact)

    def test_empty_trace(self):
        geom = CacheGeometry(8 * 512, 512, 1)
        result = column_buffer_fast(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=bool), geom
        )
        assert result.miss_flags.size == 0
        assert result.stats.accesses == 0

    def test_thrash_with_victim_feedback(self):
        # The canonical feedback case: aliasing hot words are absorbed
        # by the victim buffer, so the column is never refilled and the
        # main cache's contents depend on victim state.
        geom = CacheGeometry(8 * 512, 512, 1)
        addrs = np.asarray([0, 4096, 0, 4096] * 25, dtype=np.int64)
        writes = np.zeros(addrs.size, dtype=bool)
        victim = VictimCacheParams()
        fast = column_buffer_fast(addrs, writes, geom, victim)
        exact = _column_buffer_exact(addrs, writes, geom, victim, 32)
        _assert_results_identical(fast, exact)
        # Every repeat of the displaced hot word is served victim-side.
        assert fast.victim_hits == 49

    @settings(max_examples=30, deadline=None)
    @given(refs=_cb_refs)
    def test_run_collapse_handles_write_splits(self, refs):
        # Load/store hit split within collapsed runs (prefix-sum path).
        geom = CacheGeometry(2 * 512, 512, 2)
        addrs = np.asarray([a % 2048 for a, _ in refs], dtype=np.int64)
        writes = np.asarray([w for _, w in refs], dtype=bool)
        fast = column_buffer_fast(addrs, writes, geom, None)
        exact = _column_buffer_exact(addrs, writes, geom, None, 32)
        _assert_results_identical(fast, exact)


class TestSimulateColumnBuffer:
    def _trace(self):
        return ReferenceTrace.reads([0, 4096, 0, 512, 4096])

    def test_engines_agree(self):
        geom = CacheGeometry(8 * 512, 512, 1)
        victim = VictimCacheParams()
        auto = simulate_column_buffer(self._trace(), geom, victim)
        exact = simulate_column_buffer(self._trace(), geom, victim, engine="exact")
        _assert_results_identical(auto, exact)

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            simulate_column_buffer(
                self._trace(), CacheGeometry(8 * 512, 512, 1), engine="turbo"
            )

    def test_fast_engine_rejects_unsupported_config(self):
        with pytest.raises(ValueError):
            simulate_column_buffer(
                self._trace(),
                CacheGeometry(8 * 512, 512, 1),
                sub_block_bytes=48,
                engine="fast",
            )

    def test_supported_predicate(self):
        geom = CacheGeometry(8 * 512, 512, 1)
        assert column_buffer_fast_supported(geom)
        assert column_buffer_fast_supported(geom, VictimCacheParams())
        assert not column_buffer_fast_supported(geom, sub_block_bytes=48)
        assert not column_buffer_fast_supported(geom, sub_block_bytes=1024)


class TestTwoLevelDifferential:
    @settings(max_examples=40, deadline=None)
    @given(
        refs=st.lists(
            st.tuples(st.integers(0, 1 << 16), st.booleans()),
            min_size=1,
            max_size=300,
        )
    )
    def test_matches_hierarchy(self, refs):
        l1 = CacheGeometry(2 * KB, 32, 2)
        l2 = CacheGeometry(8 * KB, 64, 4)
        trace = ReferenceTrace.from_pairs(refs)
        fast_stats = simulate_two_level(trace, l1, l2)
        exact_stats = simulate_two_level(trace, l1, l2, engine="exact")
        assert fast_stats == exact_stats

    def test_l2_stream_is_l1_miss_stream(self):
        l1 = CacheGeometry(1 * KB, 32, 1)
        l2 = CacheGeometry(4 * KB, 32, 2)
        addrs = np.asarray([0, 32, 0, 1024, 0, 1024], dtype=np.int64)
        result = two_level_fast(addrs, l1, l2)
        assert result.l2_miss_flags.size == int(result.l1_miss_flags.sum())

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            simulate_two_level(
                ReferenceTrace.reads([0]),
                CacheGeometry(1 * KB, 32, 1),
                CacheGeometry(4 * KB, 32, 2),
                engine="turbo",
            )
