import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.fast import (
    direct_mapped_miss_flags,
    direct_mapped_miss_rate,
    set_assoc_miss_rate,
    two_way_lru_miss_flags,
)
from repro.caches.set_assoc import SetAssociativeCache
from repro.common.params import CacheGeometry
from repro.common.units import KB


def _reference_flags(addresses, geometry):
    cache = SetAssociativeCache(geometry)
    return [not cache.access(addr) for addr in addresses]


class TestDirectMappedFast:
    def test_empty_trace(self):
        geom = CacheGeometry(8 * KB, 32, 1)
        assert direct_mapped_miss_flags(np.zeros(0, dtype=np.int64), geom).size == 0
        assert direct_mapped_miss_rate(np.zeros(0, dtype=np.int64), geom) == 0.0

    def test_simple_conflict(self):
        geom = CacheGeometry(8 * KB, 32, 1)
        addrs = np.array([0, 8 * KB, 0], dtype=np.int64)
        assert direct_mapped_miss_flags(addrs, geom).tolist() == [True, True, True]

    def test_rejects_wrong_associativity(self):
        with pytest.raises(ValueError):
            direct_mapped_miss_flags(
                np.array([0], dtype=np.int64), CacheGeometry(8 * KB, 32, 2)
            )

    @settings(max_examples=60, deadline=None)
    @given(addrs=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=400))
    def test_matches_reference_simulator(self, addrs):
        geom = CacheGeometry(2 * KB, 32, 1)
        arr = np.asarray(addrs, dtype=np.int64)
        fast = direct_mapped_miss_flags(arr, geom).tolist()
        assert fast == _reference_flags(addrs, geom)


class TestTwoWayFast:
    def test_two_aliases_coexist(self):
        geom = CacheGeometry(16 * KB, 512, 2)
        addrs = np.array([0, 8 * KB, 0, 8 * KB], dtype=np.int64)
        assert two_way_lru_miss_flags(addrs, geom).tolist() == [
            True,
            True,
            False,
            False,
        ]

    def test_rejects_wrong_associativity(self):
        with pytest.raises(ValueError):
            two_way_lru_miss_flags(
                np.array([0], dtype=np.int64), CacheGeometry(8 * KB, 32, 1)
            )

    @settings(max_examples=60, deadline=None)
    @given(addrs=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=400))
    def test_matches_reference_simulator(self, addrs):
        geom = CacheGeometry(4 * KB, 32, 2)
        arr = np.asarray(addrs, dtype=np.int64)
        fast = two_way_lru_miss_flags(arr, geom).tolist()
        assert fast == _reference_flags(addrs, geom)


class TestDispatch:
    @settings(max_examples=20, deadline=None)
    @given(addrs=st.lists(st.integers(0, 1 << 14), min_size=1, max_size=200))
    def test_four_way_fallback_matches_reference(self, addrs):
        geom = CacheGeometry(4 * KB, 32, 4)
        rate = set_assoc_miss_rate(np.asarray(addrs, dtype=np.int64), geom)
        flags = _reference_flags(addrs, geom)
        assert rate == pytest.approx(sum(flags) / len(flags))
