import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.column_buffer import (
    ColumnBufferCache,
    proposed_dcache,
    proposed_icache,
)
from repro.caches.victim import VictimCache
from repro.common.address import set_index, tag_of
from repro.common.errors import ConfigError
from repro.common.params import CacheGeometry
from repro.common.units import KB
from repro.trace.stream import ReferenceTrace


class TestGeometry:
    def test_proposed_icache_shape(self):
        cache = proposed_icache()
        assert cache.geometry.size_bytes == 8 * KB
        assert cache.geometry.line_bytes == 512
        assert cache.geometry.ways == 1

    def test_proposed_dcache_shape(self):
        cache = proposed_dcache()
        assert cache.geometry.size_bytes == 16 * KB
        assert cache.geometry.ways == 2
        assert cache.victim is not None

    def test_dcache_without_victim(self):
        assert proposed_dcache(with_victim=False).victim is None


class TestLongLinePrefetch:
    def test_one_miss_covers_whole_column(self):
        cache = proposed_icache()
        assert not cache.access(0)
        # All 128 remaining words of the 512 B line hit.
        for offset in range(4, 512, 4):
            assert cache.access(offset)
        assert cache.stats.misses == 1

    def test_sequential_code_miss_rate_is_one_per_line(self):
        cache = proposed_icache()
        trace = ReferenceTrace.reads(range(0, 8 * KB, 4))
        stats = cache.run(trace)
        assert stats.misses == 16  # one per 512 B line
        assert stats.miss_rate == pytest.approx(16 / 2048)


class TestVictimCoupling:
    def test_eviction_captures_last_accessed_subblock(self):
        victim = VictimCache()
        cache = ColumnBufferCache(CacheGeometry(8 * KB, 512, 1), victim=victim)
        cache.access(0x000)
        cache.access(0x0A4)  # last accessed sub-block is 0x0A0
        cache.access(0x000 + 8 * KB)  # evicts line 0
        assert victim.contains(0x0A0)
        assert not victim.contains(0x000)

    def test_victim_hit_counts_as_hit_without_refill(self):
        victim = VictimCache()
        cache = ColumnBufferCache(CacheGeometry(8 * KB, 512, 1), victim=victim)
        cache.access(0)
        cache.access(8 * KB)  # evict line 0, victim holds block 0
        hit = cache.access(0)  # served by victim
        assert hit
        assert cache.victim_hits == 1
        assert not cache.contains(0)  # not reloaded into a column buffer

    def test_victim_miss_still_loads_column(self):
        victim = VictimCache()
        cache = ColumnBufferCache(CacheGeometry(8 * KB, 512, 1), victim=victim)
        cache.access(0)
        cache.access(8 * KB)
        cache.access(0x40)  # block 0x40 not in victim (only block 0 is)
        assert cache.contains(0x40)

    def test_conflict_pattern_absorbed_by_victim(self):
        """Two aliasing hot words thrash a direct-mapped column cache but
        hit in the victim cache (the Section 5.4 effect)."""
        plain = ColumnBufferCache(CacheGeometry(8 * KB, 512, 1))
        with_victim = ColumnBufferCache(
            CacheGeometry(8 * KB, 512, 1), victim=VictimCache()
        )
        for _ in range(50):
            for addr in (0, 8 * KB):
                plain.access(addr)
                with_victim.access(addr)
        assert plain.stats.miss_rate > 0.9
        assert with_victim.stats.miss_rate < 0.1


class TestStatsAndReset:
    def test_main_plus_victim_plus_miss_partition(self):
        cache = proposed_dcache()
        trace = ReferenceTrace.reads([0, 8 * KB, 16 * KB, 0, 512, 8 * KB])
        cache.run(trace)
        assert cache.main_hits + cache.victim_hits + cache.stats.misses == len(trace)

    def test_reset_clears_victim_too(self):
        cache = proposed_dcache()
        cache.access(0)
        cache.access(8 * KB)
        cache.access(16 * KB)
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.victim.probes == 0
        assert not cache.contains(0)

    def test_resident_lines_report_addresses(self):
        cache = proposed_icache()
        cache.access(0x200)
        assert cache.resident_lines() == [0x200]

    def test_reset_clears_victim_hit_flag(self):
        # Regression: reset() used to leave last_hit_was_victim stale,
        # which the MP node's hit-level classification reads before the
        # first post-reset access.
        cache = proposed_dcache()
        cache.access(0)
        cache.access(16 * KB)  # evict line 0 into the victim buffer
        cache.access(32 * KB)
        assert cache.access(0)  # served by the victim
        assert cache.last_hit_was_victim
        cache.reset()
        assert not cache.last_hit_was_victim


class TestConstructorValidation:
    def test_rejects_non_power_of_two_sub_block(self):
        with pytest.raises(ConfigError):
            ColumnBufferCache(CacheGeometry(8 * KB, 512, 1), sub_block_bytes=48)

    def test_rejects_sub_block_larger_than_line(self):
        with pytest.raises(ConfigError):
            ColumnBufferCache(CacheGeometry(8 * KB, 512, 1), sub_block_bytes=1024)

    def test_accepts_sub_block_equal_to_line(self):
        cache = ColumnBufferCache(CacheGeometry(8 * KB, 512, 1), sub_block_bytes=512)
        cache.access(0x123)
        assert cache.resident_lines() == [0]


class TestVictimWriteDirtiness:
    """A write served from the victim buffer modifies the only copy of
    the data (the column is not refilled), so the dirtiness must stick
    victim-side and surface as a victim writeback on departure."""

    def _thrashed_dcache(self):
        victim = VictimCache()
        cache = ColumnBufferCache(CacheGeometry(8 * KB, 512, 1), victim=victim)
        cache.access(0)
        cache.access(8 * KB)  # evict line 0; victim holds block 0
        return cache, victim

    def test_victim_write_hit_marks_block_dirty(self):
        cache, victim = self._thrashed_dcache()
        assert cache.access(0x10, write=True)
        assert cache.last_hit_was_victim
        assert victim.is_dirty(0)

    def test_dirty_victim_block_writes_back_on_departure(self):
        cache, victim = self._thrashed_dcache()
        cache.access(0x10, write=True)
        victim.invalidate(0)
        assert victim.writebacks == 1
        assert cache.total_writebacks == 1  # no column writebacks yet

    def test_victim_read_hit_stays_clean(self):
        cache, victim = self._thrashed_dcache()
        cache.access(0x10, write=False)
        assert not victim.is_dirty(0)
        victim.invalidate(0)
        assert victim.writebacks == 0

    def test_total_writebacks_sums_column_and_victim(self):
        cache, victim = self._thrashed_dcache()
        cache.access(0x10, write=True)  # dirty block 0 in the victim
        cache.access(512, write=True)  # dirty column in set 1
        cache.access(512 + 8 * KB)  # evict it: one column writeback
        # Fill the victim until dirty block 0 falls off the LRU end.
        for i in range(victim.params.entries):
            cache.access(16 * KB + i * 512)
            cache.access(24 * KB + i * 512)
        assert cache.stats.writebacks >= 1
        assert victim.writebacks >= 1
        assert cache.total_writebacks == cache.stats.writebacks + victim.writebacks


@settings(max_examples=40, deadline=None)
@given(
    addrs=st.lists(st.integers(0, 1 << 18), min_size=1, max_size=120),
    ways=st.sampled_from([1, 2, 4]),
    line=st.sampled_from([128, 512]),
    num_sets=st.sampled_from([1, 2, 4, 16]),
)
def test_resident_lines_roundtrip(addrs, ways, line, num_sets):
    """resident_lines() reconstructs byte addresses by inverting
    set_index/tag_of with bit shifts — exact because CacheGeometry
    rejects non-power-of-two line sizes and set counts."""
    geometry = CacheGeometry(line * num_sets * ways, line, ways)
    assert geometry.num_sets == num_sets
    cache = ColumnBufferCache(geometry)
    for addr in addrs:
        cache.access(addr)
    accessed_lines = {addr // line * line for addr in addrs}
    for resident in cache.resident_lines():
        assert resident % line == 0
        assert resident in accessed_lines
        # Reconstructed address decomposes back to the slot it came from.
        index = set_index(resident, line, num_sets)
        tag = tag_of(resident, line, num_sets)
        assert any(
            entry.tag == tag for entry in cache._sets[index]
        ), "reconstructed address must map back to its own set"
