import pytest

from repro.caches.column_buffer import (
    ColumnBufferCache,
    proposed_dcache,
    proposed_icache,
)
from repro.caches.victim import VictimCache
from repro.common.params import CacheGeometry
from repro.common.units import KB
from repro.trace.stream import ReferenceTrace


class TestGeometry:
    def test_proposed_icache_shape(self):
        cache = proposed_icache()
        assert cache.geometry.size_bytes == 8 * KB
        assert cache.geometry.line_bytes == 512
        assert cache.geometry.ways == 1

    def test_proposed_dcache_shape(self):
        cache = proposed_dcache()
        assert cache.geometry.size_bytes == 16 * KB
        assert cache.geometry.ways == 2
        assert cache.victim is not None

    def test_dcache_without_victim(self):
        assert proposed_dcache(with_victim=False).victim is None


class TestLongLinePrefetch:
    def test_one_miss_covers_whole_column(self):
        cache = proposed_icache()
        assert not cache.access(0)
        # All 128 remaining words of the 512 B line hit.
        for offset in range(4, 512, 4):
            assert cache.access(offset)
        assert cache.stats.misses == 1

    def test_sequential_code_miss_rate_is_one_per_line(self):
        cache = proposed_icache()
        trace = ReferenceTrace.reads(range(0, 8 * KB, 4))
        stats = cache.run(trace)
        assert stats.misses == 16  # one per 512 B line
        assert stats.miss_rate == pytest.approx(16 / 2048)


class TestVictimCoupling:
    def test_eviction_captures_last_accessed_subblock(self):
        victim = VictimCache()
        cache = ColumnBufferCache(CacheGeometry(8 * KB, 512, 1), victim=victim)
        cache.access(0x000)
        cache.access(0x0A4)  # last accessed sub-block is 0x0A0
        cache.access(0x000 + 8 * KB)  # evicts line 0
        assert victim.contains(0x0A0)
        assert not victim.contains(0x000)

    def test_victim_hit_counts_as_hit_without_refill(self):
        victim = VictimCache()
        cache = ColumnBufferCache(CacheGeometry(8 * KB, 512, 1), victim=victim)
        cache.access(0)
        cache.access(8 * KB)  # evict line 0, victim holds block 0
        hit = cache.access(0)  # served by victim
        assert hit
        assert cache.victim_hits == 1
        assert not cache.contains(0)  # not reloaded into a column buffer

    def test_victim_miss_still_loads_column(self):
        victim = VictimCache()
        cache = ColumnBufferCache(CacheGeometry(8 * KB, 512, 1), victim=victim)
        cache.access(0)
        cache.access(8 * KB)
        cache.access(0x40)  # block 0x40 not in victim (only block 0 is)
        assert cache.contains(0x40)

    def test_conflict_pattern_absorbed_by_victim(self):
        """Two aliasing hot words thrash a direct-mapped column cache but
        hit in the victim cache (the Section 5.4 effect)."""
        plain = ColumnBufferCache(CacheGeometry(8 * KB, 512, 1))
        with_victim = ColumnBufferCache(
            CacheGeometry(8 * KB, 512, 1), victim=VictimCache()
        )
        for _ in range(50):
            for addr in (0, 8 * KB):
                plain.access(addr)
                with_victim.access(addr)
        assert plain.stats.miss_rate > 0.9
        assert with_victim.stats.miss_rate < 0.1


class TestStatsAndReset:
    def test_main_plus_victim_plus_miss_partition(self):
        cache = proposed_dcache()
        trace = ReferenceTrace.reads([0, 8 * KB, 16 * KB, 0, 512, 8 * KB])
        cache.run(trace)
        assert cache.main_hits + cache.victim_hits + cache.stats.misses == len(trace)

    def test_reset_clears_victim_too(self):
        cache = proposed_dcache()
        cache.access(0)
        cache.access(8 * KB)
        cache.access(16 * KB)
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.victim.probes == 0
        assert not cache.contains(0)

    def test_resident_lines_report_addresses(self):
        cache = proposed_icache()
        cache.access(0x200)
        assert cache.resident_lines() == [0x200]
