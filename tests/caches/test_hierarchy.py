import pytest

from repro.caches.hierarchy import (
    ServiceLevel,
    TwoLevelHierarchy,
    conventional_hierarchies,
)
from repro.common.params import CacheGeometry, ConventionalSystemParams
from repro.common.units import KB
from repro.trace.stream import ReferenceTrace


class TestTwoLevel:
    def test_requires_exactly_one_l2_spec(self):
        geom = CacheGeometry(8 * KB, 32, 1)
        with pytest.raises(ValueError):
            TwoLevelHierarchy(geom)  # neither

    def test_cold_miss_goes_to_memory(self):
        hier = TwoLevelHierarchy(
            CacheGeometry(8 * KB, 32, 1), CacheGeometry(256 * KB, 32, 1)
        )
        assert hier.access(0x100) == ServiceLevel.MEMORY

    def test_l1_hit_after_fill(self):
        hier = TwoLevelHierarchy(
            CacheGeometry(8 * KB, 32, 1), CacheGeometry(256 * KB, 32, 1)
        )
        hier.access(0x100)
        assert hier.access(0x100) == ServiceLevel.L1

    def test_l1_conflict_served_by_l2(self):
        hier = TwoLevelHierarchy(
            CacheGeometry(8 * KB, 32, 1), CacheGeometry(256 * KB, 32, 1)
        )
        hier.access(0)
        hier.access(8 * KB)  # L1 conflict, fills L2
        assert hier.access(0) == ServiceLevel.L2

    def test_service_fractions_sum_to_one(self):
        hier = TwoLevelHierarchy(
            CacheGeometry(8 * KB, 32, 1), CacheGeometry(256 * KB, 32, 1)
        )
        trace = ReferenceTrace.reads([i * 32 for i in range(100)] * 3)
        hier.run(trace)
        fractions = hier.stats.service_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_reset(self):
        hier = TwoLevelHierarchy(
            CacheGeometry(8 * KB, 32, 1), CacheGeometry(256 * KB, 32, 1)
        )
        hier.access(0)
        hier.reset()
        assert hier.stats.accesses == 0
        assert hier.access(0) == ServiceLevel.MEMORY


class TestConventionalPair:
    def test_shares_one_l2(self):
        ihier, dhier = conventional_hierarchies()
        assert ihier.l2 is dhier.l2

    def test_instruction_fill_visible_to_data_side(self):
        ihier, dhier = conventional_hierarchies(ConventionalSystemParams())
        ihier.access(0x4000)
        dhier.l1.reset()  # ensure D-L1 cold
        assert dhier.access(0x4000) == ServiceLevel.L2
