from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.victim import VictimCache
from repro.common.params import VictimCacheParams


class TestVictimCache:
    def test_probe_miss_on_empty(self):
        victim = VictimCache()
        assert not victim.probe(0x100)
        assert victim.probes == 1
        assert victim.hits == 0

    def test_insert_then_probe_hits_whole_block(self):
        victim = VictimCache()
        victim.insert(0x47)  # block 0x40..0x5F
        assert victim.probe(0x5F)
        assert not victim.probe(0x60)

    def test_capacity_is_sixteen_blocks(self):
        victim = VictimCache()
        for i in range(17):
            victim.insert(i * 32)
        assert not victim.contains(0)  # block 0 was LRU
        assert victim.contains(16 * 32)
        assert len(victim.resident_blocks()) == 16

    def test_probe_hit_promotes(self):
        victim = VictimCache(VictimCacheParams(entries=2))
        victim.insert(0)
        victim.insert(32)
        victim.probe(0)  # promote block 0
        victim.insert(64)  # evicts 32
        assert victim.contains(0)
        assert not victim.contains(32)

    def test_reinsert_does_not_duplicate(self):
        victim = VictimCache()
        victim.insert(0)
        victim.insert(0)
        assert victim.resident_blocks().count(0) == 1

    def test_hit_rate(self):
        victim = VictimCache()
        victim.insert(0)
        victim.probe(0)
        victim.probe(32)
        assert victim.hit_rate == 0.5

    def test_reset(self):
        victim = VictimCache()
        victim.insert(0)
        victim.probe(0)
        victim.reset()
        assert victim.probes == 0
        assert not victim.contains(0)


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(st.tuples(st.booleans(), st.integers(0, 1 << 12)), max_size=200))
def test_never_exceeds_capacity(ops):
    victim = VictimCache()
    for is_insert, addr in ops:
        if is_insert:
            victim.insert(addr)
        else:
            victim.probe(addr)
        assert len(victim.resident_blocks()) <= victim.params.entries


@settings(max_examples=50, deadline=None)
@given(addrs=st.lists(st.integers(0, 1 << 12), min_size=1, max_size=100))
def test_blocks_are_aligned(addrs):
    victim = VictimCache()
    for addr in addrs:
        victim.insert(addr)
    assert all(block % 32 == 0 for block in victim.resident_blocks())
