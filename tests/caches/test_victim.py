from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.victim import VictimCache
from repro.common.params import VictimCacheParams


class TestVictimCache:
    def test_probe_miss_on_empty(self):
        victim = VictimCache()
        assert not victim.probe(0x100)
        assert victim.probes == 1
        assert victim.hits == 0

    def test_insert_then_probe_hits_whole_block(self):
        victim = VictimCache()
        victim.insert(0x47)  # block 0x40..0x5F
        assert victim.probe(0x5F)
        assert not victim.probe(0x60)

    def test_capacity_is_sixteen_blocks(self):
        victim = VictimCache()
        for i in range(17):
            victim.insert(i * 32)
        assert not victim.contains(0)  # block 0 was LRU
        assert victim.contains(16 * 32)
        assert len(victim.resident_blocks()) == 16

    def test_probe_hit_promotes(self):
        victim = VictimCache(VictimCacheParams(entries=2))
        victim.insert(0)
        victim.insert(32)
        victim.probe(0)  # promote block 0
        victim.insert(64)  # evicts 32
        assert victim.contains(0)
        assert not victim.contains(32)

    def test_reinsert_does_not_duplicate(self):
        victim = VictimCache()
        victim.insert(0)
        victim.insert(0)
        assert victim.resident_blocks().count(0) == 1

    def test_hit_rate(self):
        victim = VictimCache()
        victim.insert(0)
        victim.probe(0)
        victim.probe(32)
        assert victim.hit_rate == 0.5

    def test_reset(self):
        victim = VictimCache()
        victim.insert(0)
        victim.probe(0)
        victim.reset()
        assert victim.probes == 0
        assert not victim.contains(0)


class TestVictimEdgeCases:
    """The Section 5.4 buffer's corner behaviour, pinned reference by
    reference — these are the cases the fast path must reproduce."""

    def test_insert_of_resident_block_does_not_evict(self):
        victim = VictimCache(VictimCacheParams(entries=2))
        victim.insert(0)
        victim.insert(32)
        victim.insert(0)  # refresh in place: 32 must survive
        assert victim.contains(0)
        assert victim.contains(32)
        assert len(victim.resident_blocks()) == 2

    def test_insert_of_resident_block_promotes_to_mru(self):
        victim = VictimCache(VictimCacheParams(entries=2))
        victim.insert(0)
        victim.insert(32)
        victim.insert(0)  # 0 becomes MRU, 32 becomes LRU
        victim.insert(64)  # evicts 32
        assert victim.contains(0)
        assert not victim.contains(32)

    def test_probe_promotion_reorders_lru(self):
        victim = VictimCache(VictimCacheParams(entries=3))
        for addr in (0, 32, 64):
            victim.insert(addr)
        victim.probe(0)  # LRU order is now 32, 64, 0
        assert victim.resident_blocks() == [32, 64, 0]
        victim.insert(96)  # evicts 32
        assert victim.resident_blocks() == [64, 0, 96]

    def test_failed_probe_does_not_reorder(self):
        victim = VictimCache(VictimCacheParams(entries=2))
        victim.insert(0)
        victim.insert(32)
        victim.probe(1024)  # miss: order untouched
        assert victim.resident_blocks() == [0, 32]

    def test_invalidate_drops_block(self):
        victim = VictimCache()
        victim.insert(0)
        victim.insert(32)
        victim.invalidate(0x1F)  # any address inside block 0
        assert not victim.contains(0)
        assert victim.contains(32)

    def test_invalidate_absent_block_is_noop(self):
        victim = VictimCache()
        victim.insert(0)
        victim.invalidate(4096)
        assert victim.contains(0)
        assert victim.writebacks == 0


class TestDirtyAccounting:
    """A write served from the buffer modifies the only copy of the data
    (victim contents are never reloaded into the main cache), so the
    dirty copy must be written back when it leaves the buffer."""

    def test_write_probe_marks_dirty(self):
        victim = VictimCache()
        victim.insert(0)
        assert not victim.is_dirty(0)
        victim.probe(4, write=True)
        assert victim.is_dirty(0)  # whole 32 B block

    def test_read_probe_leaves_clean(self):
        victim = VictimCache()
        victim.insert(0)
        victim.probe(4, write=False)
        assert not victim.is_dirty(0)

    def test_lru_eviction_of_dirty_block_counts_writeback(self):
        victim = VictimCache(VictimCacheParams(entries=1))
        victim.insert(0)
        victim.probe(0, write=True)
        victim.insert(32)  # evicts dirty block 0
        assert victim.writebacks == 1
        assert not victim.contains(0)

    def test_lru_eviction_of_clean_block_is_free(self):
        victim = VictimCache(VictimCacheParams(entries=1))
        victim.insert(0)
        victim.insert(32)
        assert victim.writebacks == 0

    def test_invalidate_of_dirty_block_counts_writeback(self):
        victim = VictimCache()
        victim.insert(0)
        victim.probe(0, write=True)
        victim.invalidate(0)
        assert victim.writebacks == 1

    def test_reinsert_supersedes_dirty_copy(self):
        # A fresh capture of the same block rides the evicted column's
        # own writeback, so the superseded modified copy merges out
        # (one victim writeback) and the new copy starts clean.
        victim = VictimCache()
        victim.insert(0)
        victim.probe(0, write=True)
        victim.insert(0)
        assert victim.writebacks == 1
        assert not victim.is_dirty(0)

    def test_dirty_block_still_resident_is_not_counted(self):
        victim = VictimCache()
        victim.insert(0)
        victim.probe(0, write=True)
        assert victim.writebacks == 0  # counted only on departure

    def test_reset_clears_dirty_state(self):
        victim = VictimCache()
        victim.insert(0)
        victim.probe(0, write=True)
        victim.reset()
        assert victim.writebacks == 0
        victim.insert(0)
        victim.invalidate(0)  # the pre-reset dirty bit must not survive
        assert victim.writebacks == 0


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["insert", "read", "write"]),
                  st.integers(0, 1 << 10)),
        max_size=200,
    )
)
def test_writebacks_bounded_by_write_hits(ops):
    """Only a write hit can dirty a block, and each dirty copy is written
    back at most once, so writebacks never exceed write hits."""
    victim = VictimCache(VictimCacheParams(entries=4))
    write_hits = 0
    for op, addr in ops:
        if op == "insert":
            victim.insert(addr)
        else:
            if victim.probe(addr, write=(op == "write")) and op == "write":
                write_hits += 1
        assert victim.writebacks <= write_hits


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(st.tuples(st.booleans(), st.integers(0, 1 << 12)), max_size=200))
def test_never_exceeds_capacity(ops):
    victim = VictimCache()
    for is_insert, addr in ops:
        if is_insert:
            victim.insert(addr)
        else:
            victim.probe(addr)
        assert len(victim.resident_blocks()) <= victim.params.entries


@settings(max_examples=50, deadline=None)
@given(addrs=st.lists(st.integers(0, 1 << 12), min_size=1, max_size=100))
def test_blocks_are_aligned(addrs):
    victim = VictimCache()
    for addr in addrs:
        victim.insert(addr)
    assert all(block % 32 == 0 for block in victim.resident_blocks())
