import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.set_assoc import (
    DirectMappedCache,
    FullyAssociativeCache,
    SetAssociativeCache,
)
from repro.common.params import CacheGeometry
from repro.common.units import KB


class TestDirectMapped:
    def test_cold_miss_then_hit(self):
        cache = DirectMappedCache(8 * KB, 32)
        assert not cache.access(0x100)
        assert cache.access(0x100)
        assert cache.access(0x11C)  # same 32 B line

    def test_conflict_eviction(self):
        cache = DirectMappedCache(8 * KB, 32)
        cache.access(0)
        cache.access(8 * KB)  # aliases to set 0, evicts
        assert not cache.access(0)

    def test_distinct_sets_do_not_conflict(self):
        cache = DirectMappedCache(8 * KB, 32)
        cache.access(0)
        cache.access(32)
        assert cache.access(0)
        assert cache.access(32)

    def test_stats_split_loads_and_stores(self):
        cache = DirectMappedCache(8 * KB, 32)
        cache.access(0, write=False)  # load miss
        cache.access(0, write=True)  # store hit
        cache.access(64, write=True)  # store miss
        assert cache.stats.loads.misses == 1
        assert cache.stats.stores.hits == 1
        assert cache.stats.stores.misses == 1
        assert cache.stats.miss_rate == pytest.approx(2 / 3)

    def test_eviction_callback_receives_line_address(self):
        evicted = []
        cache = DirectMappedCache(8 * KB, 32, on_evict=evicted.append)
        cache.access(0x123)
        cache.access(0x123 + 8 * KB)
        assert evicted == [0x120]


class TestTwoWay:
    def test_two_aliases_coexist(self):
        cache = SetAssociativeCache(CacheGeometry(16 * KB, 512, 2))
        cache.access(0)
        cache.access(8 * KB)  # same set, second way
        assert cache.access(0)
        assert cache.access(8 * KB)

    def test_lru_evicts_least_recent(self):
        cache = SetAssociativeCache(CacheGeometry(16 * KB, 512, 2))
        cache.access(0)  # way A
        cache.access(8 * KB)  # way B
        cache.access(0)  # A is now MRU
        cache.access(16 * KB)  # evicts B
        assert cache.access(0)
        assert not cache.access(8 * KB)

    def test_reset_clears_contents_and_stats(self):
        cache = SetAssociativeCache(CacheGeometry(16 * KB, 512, 2))
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
        assert not cache.access(0)


class TestFullyAssociative:
    def test_capacity_lru(self):
        cache = FullyAssociativeCache(4 * 32, 32)  # 4 lines
        for addr in (0, 32, 64, 96):
            cache.access(addr)
        cache.access(0)  # refresh line 0
        cache.access(128)  # evicts 32 (LRU)
        assert cache.access(0)
        assert not cache.access(32)


def _oracle_lru(addresses, num_sets, ways, line_bytes):
    """Reference LRU model using dicts of recency-stamped tags."""
    sets = [dict() for _ in range(num_sets)]
    clock = 0
    hits = []
    for addr in addresses:
        clock += 1
        index = (addr // line_bytes) % num_sets
        tag = addr // (line_bytes * num_sets)
        tags = sets[index]
        if tag in tags:
            hits.append(True)
        else:
            hits.append(False)
            if len(tags) >= ways:
                victim = min(tags, key=tags.get)
                del tags[victim]
        tags[tag] = clock
    return hits


@settings(max_examples=60, deadline=None)
@given(
    addresses=st.lists(st.integers(0, 1 << 14), min_size=1, max_size=300),
    ways=st.sampled_from([1, 2, 4]),
)
def test_lru_matches_oracle(addresses, ways):
    """SetAssociativeCache agrees with an independent timestamp-LRU oracle."""
    line = 32
    num_sets = 8
    cache = SetAssociativeCache(CacheGeometry(num_sets * ways * line, line, ways))
    got = [cache.access(addr) for addr in addresses]
    assert got == _oracle_lru(addresses, num_sets, ways, line)


@settings(max_examples=40, deadline=None)
@given(addresses=st.lists(st.integers(0, 1 << 13), min_size=1, max_size=200))
def test_more_ways_same_sets_is_inclusive(addresses):
    """With the same set mapping, each set is an LRU stack, so a k-way
    cache's hits are a subset of a 2k-way cache's hits (per-set stack
    inclusion)."""
    line = 32
    num_sets = 8
    narrow = SetAssociativeCache(CacheGeometry(num_sets * 2 * line, line, 2))
    wide = SetAssociativeCache(CacheGeometry(num_sets * 4 * line, line, 4))
    for addr in addresses:
        narrow_hit = narrow.access(addr)
        wide_hit = wide.access(addr)
        assert not (narrow_hit and not wide_hit)


@settings(max_examples=40, deadline=None)
@given(addresses=st.lists(st.integers(0, 1 << 15), min_size=1, max_size=200))
def test_fully_associative_inclusion_with_size(addresses):
    """LRU is a stack algorithm: a bigger fully-associative cache hits on a
    superset of the references a smaller one hits on."""
    line = 32
    small = SetAssociativeCache(CacheGeometry(4 * line, line, 0))
    big = SetAssociativeCache(CacheGeometry(16 * line, line, 0))
    for addr in addresses:
        small_hit = small.access(addr)
        big_hit = big.access(addr)
        assert not (small_hit and not big_hit)
