import numpy as np
import pytest

from repro.caches.base import Cache, CacheStats, iter_trace
from repro.caches.set_assoc import DirectMappedCache
from repro.common.stats import RatioStat
from repro.trace.stream import ReferenceTrace


class TestCacheStats:
    def test_partition_of_accesses(self):
        stats = CacheStats()
        stats.record(hit=True, write=False)
        stats.record(hit=False, write=True)
        stats.record(hit=True, write=True)
        assert stats.accesses == 3
        assert stats.hits == 2
        assert stats.misses == 1
        assert stats.miss_rate == pytest.approx(1 / 3)

    def test_load_store_stacking_matches_figure8_convention(self):
        # Figure 8 stacks load and store miss fractions of ALL accesses.
        stats = CacheStats()
        stats.record(hit=False, write=False)
        stats.record(hit=False, write=True)
        stats.record(hit=True, write=False)
        stats.record(hit=True, write=False)
        assert stats.load_miss_rate == pytest.approx(0.25)
        assert stats.store_miss_rate == pytest.approx(0.25)
        assert stats.load_miss_rate + stats.store_miss_rate == pytest.approx(
            stats.miss_rate
        )

    def test_merged(self):
        a = CacheStats(loads=RatioStat(2, 4), stores=RatioStat(1, 2),
                       evictions=3, writebacks=1)
        b = CacheStats(loads=RatioStat(1, 1), stores=RatioStat(0, 1),
                       evictions=2, writebacks=2)
        merged = a.merged(b)
        assert merged.loads.total == 5
        assert merged.stores.hits == 1
        assert merged.evictions == 5
        assert merged.writebacks == 3

    def test_empty_rates_are_zero(self):
        stats = CacheStats()
        assert stats.miss_rate == 0.0
        assert stats.load_miss_rate == 0.0


class TestIterTrace:
    def test_accepts_reference_trace(self):
        trace = ReferenceTrace(
            np.array([0, 4], dtype=np.int64), np.array([False, True])
        )
        assert list(iter_trace(trace)) == [(0, False), (4, True)]

    def test_accepts_plain_pairs(self):
        pairs = [(8, True), (16, False)]
        assert list(iter_trace(pairs)) == pairs

    def test_run_consumes_either_form(self):
        cache_a = DirectMappedCache(1024, 32)
        cache_b = DirectMappedCache(1024, 32)
        trace = ReferenceTrace.reads([0, 32, 0])
        cache_a.run(trace)
        cache_b.run(list(trace))
        assert cache_a.stats.misses == cache_b.stats.misses == 2


class TestCacheBaseClass:
    def test_lookup_hook_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Cache().access(0)
