"""Cross-model equivalence properties between cache implementations."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.column_buffer import ColumnBufferCache
from repro.caches.fast import column_buffer_fast, set_assoc_miss_flags
from repro.caches.set_assoc import SetAssociativeCache
from repro.common.params import CacheGeometry


@settings(max_examples=40, deadline=None)
@given(
    refs=st.lists(
        st.tuples(st.integers(0, 1 << 16), st.booleans()),
        min_size=1,
        max_size=300,
    ),
    ways=st.sampled_from([1, 2]),
)
def test_column_cache_without_victim_equals_set_assoc(refs, ways):
    """A ColumnBufferCache with no victim cache is behaviourally identical
    to a plain set-associative cache of the same geometry — the victim
    coupling and sub-block tracking are the only differences."""
    geometry = CacheGeometry(8 * ways * 512, 512, ways)
    column = ColumnBufferCache(geometry)
    plain = SetAssociativeCache(geometry)
    for addr, write in refs:
        assert column.access(addr, write) == plain.access(addr, write)
    assert column.stats.misses == plain.stats.misses
    assert column.stats.evictions == plain.stats.evictions
    assert column.stats.writebacks == plain.stats.writebacks
    assert sorted(column.resident_lines()) == sorted(plain.resident_lines())


@settings(max_examples=40, deadline=None)
@given(
    refs=st.lists(
        st.tuples(st.integers(0, 1 << 15), st.booleans()),
        min_size=1,
        max_size=300,
    )
)
def test_victim_cache_never_increases_misses(refs):
    """Adding the victim cache can only convert misses into hits."""
    geometry = CacheGeometry(16 * 512, 512, 2)
    from repro.caches.victim import VictimCache

    plain = ColumnBufferCache(geometry)
    with_victim = ColumnBufferCache(geometry, victim=VictimCache())
    for addr, write in refs:
        plain.access(addr, write)
        with_victim.access(addr, write)
    assert with_victim.stats.misses <= plain.stats.misses


@settings(max_examples=40, deadline=None)
@given(
    refs=st.lists(
        st.tuples(st.integers(0, 1 << 15), st.booleans()),
        min_size=1,
        max_size=200,
    )
)
def test_writebacks_bounded_by_write_misses_plus_evictions(refs):
    """A line only becomes dirty through a write, so writebacks can never
    exceed the number of writes, nor the number of evictions."""
    cache = SetAssociativeCache(CacheGeometry(4 * 512, 512, 2))
    writes = 0
    for addr, write in refs:
        cache.access(addr, write)
        writes += int(write)
    assert cache.stats.writebacks <= writes
    assert cache.stats.writebacks <= cache.stats.evictions


@settings(max_examples=40, deadline=None)
@given(
    refs=st.lists(
        st.tuples(st.integers(0, 1 << 16), st.booleans()),
        min_size=1,
        max_size=300,
    ),
    ways=st.sampled_from([1, 2, 4]),
)
def test_fast_column_buffer_without_victim_equals_set_assoc_flags(refs, ways):
    """Without the victim coupling the column-buffer fast path reduces to
    plain set-associative LRU, so three independent implementations —
    the vectorized run-collapse engine, the per-set flag replay and the
    object-oriented simulator — must produce the same miss flags."""
    geometry = CacheGeometry(8 * ways * 512, 512, ways)
    addrs = np.asarray([a for a, _ in refs], dtype=np.int64)
    writes = np.asarray([w for _, w in refs], dtype=bool)
    fast = column_buffer_fast(addrs, writes, geometry)
    flags = set_assoc_miss_flags(addrs, geometry)
    cache = SetAssociativeCache(geometry)
    oracle = [not cache.access(a, w) for a, w in refs]
    assert fast.miss_flags.tolist() == oracle
    assert flags.tolist() == oracle
    assert fast.stats.evictions == cache.stats.evictions
    assert fast.stats.writebacks == cache.stats.writebacks
