import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import make_rng
from repro.trace.stream import ReferenceTrace, expand_runs, interleave_blocks


class TestReferenceTrace:
    def test_reads_constructor(self):
        trace = ReferenceTrace.reads([0, 4, 8])
        assert len(trace) == 3
        assert not trace.is_write.any()

    def test_from_pairs_roundtrip(self):
        pairs = [(0, False), (4, True), (8, False)]
        trace = ReferenceTrace.from_pairs(pairs)
        assert list(trace) == pairs

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError):
            ReferenceTrace(np.zeros(3, dtype=np.int64), np.zeros(2, dtype=bool))

    def test_slice_returns_trace(self):
        trace = ReferenceTrace.reads(range(10))
        assert len(trace[2:5]) == 3
        with pytest.raises(TypeError):
            trace[0]

    def test_concat(self):
        a = ReferenceTrace.reads([0, 4])
        b = ReferenceTrace.reads([8])
        assert len(ReferenceTrace.concat([a, b])) == 3
        assert len(ReferenceTrace.concat([])) == 0

    def test_take_cycles_short_traces(self):
        trace = ReferenceTrace.reads([0, 4])
        extended = trace.take(5)
        assert extended.addresses.tolist() == [0, 4, 0, 4, 0]

    def test_take_rejects_empty(self):
        with pytest.raises(ValueError):
            ReferenceTrace.empty().take(3)

    def test_offset(self):
        trace = ReferenceTrace.reads([0, 4]).offset(0x1000)
        assert trace.addresses.tolist() == [0x1000, 0x1004]

    def test_store_fraction(self):
        trace = ReferenceTrace.from_pairs([(0, True), (4, False)])
        assert trace.store_fraction == 0.5
        assert ReferenceTrace.empty().store_fraction == 0.0


class TestExpandRuns:
    def test_single_run(self):
        out = expand_runs(np.array([100]), np.array([3]), step=4)
        assert out.tolist() == [100, 104, 108]

    def test_multiple_runs(self):
        out = expand_runs(np.array([0, 1000]), np.array([2, 2]), step=8)
        assert out.tolist() == [0, 8, 1000, 1008]

    def test_zero_length_runs(self):
        out = expand_runs(np.array([0, 100, 200]), np.array([1, 0, 1]))
        assert out.tolist() == [0, 200]

    def test_rejects_negative_lengths(self):
        with pytest.raises(ValueError):
            expand_runs(np.array([0]), np.array([-1]))

    @settings(max_examples=30, deadline=None)
    @given(
        runs=st.lists(
            st.tuples(st.integers(0, 1 << 20), st.integers(0, 20)),
            min_size=1,
            max_size=20,
        )
    )
    def test_matches_python_loop(self, runs):
        starts = np.array([r[0] for r in runs], dtype=np.int64)
        lengths = np.array([r[1] for r in runs], dtype=np.int64)
        expected = [start + 4 * i for start, n in runs for i in range(n)]
        assert expand_runs(starts, lengths).tolist() == expected


class TestInterleaveBlocks:
    def test_exact_length(self):
        a = ReferenceTrace.reads(range(0, 400, 4))
        b = ReferenceTrace.reads(range(1 << 20, (1 << 20) + 400, 4))
        mixed = interleave_blocks([a, b], [1, 1], block=10, length=77, rng=make_rng(3))
        assert len(mixed) == 77

    def test_only_one_source_when_weight_zero(self):
        a = ReferenceTrace.reads(range(0, 400, 4))
        b = ReferenceTrace.reads(range(1 << 20, (1 << 20) + 400, 4))
        mixed = interleave_blocks([a, b], [1, 0], block=8, length=64, rng=make_rng(3))
        assert mixed.addresses.max() < 1 << 20

    def test_rejects_bad_weights(self):
        a = ReferenceTrace.reads([0])
        with pytest.raises(ValueError):
            interleave_blocks([a], [0], block=4, length=4, rng=make_rng(0))
        with pytest.raises(ValueError):
            interleave_blocks([a], [1, 2], block=4, length=4, rng=make_rng(0))

    def test_preserves_block_locality(self):
        a = ReferenceTrace.reads(range(0, 4000, 4))
        mixed = interleave_blocks([a], [1.0], block=16, length=64, rng=make_rng(1))
        diffs = np.diff(mixed.addresses)
        # Within blocks the stride is preserved.
        assert (diffs == 4).sum() >= 48
