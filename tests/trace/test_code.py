import pytest

from repro.caches.column_buffer import proposed_icache
from repro.caches.set_assoc import DirectMappedCache
from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.common.units import KB
from repro.trace.code import AliasedCallPair, CodeProfile, CodeWalker


class TestCodeProfileValidation:
    def test_rejects_hot_bigger_than_code(self):
        with pytest.raises(ConfigError):
            CodeProfile(code_bytes=4096, hot_bytes=8192)

    def test_rejects_bad_fractions(self):
        with pytest.raises(ConfigError):
            CodeProfile(code_bytes=8192, hot_bytes=4096, hot_fraction=1.5)

    def test_rejects_zero_sizes(self):
        with pytest.raises(ConfigError):
            CodeProfile(code_bytes=0, hot_bytes=0)


class TestCodeWalker:
    def test_exact_length(self):
        walker = CodeWalker(CodeProfile(code_bytes=64 * KB, hot_bytes=8 * KB))
        trace = walker.generate(10_000, make_rng(0))
        assert len(trace) == 10_000

    def test_addresses_are_instruction_aligned(self):
        walker = CodeWalker(CodeProfile(code_bytes=64 * KB, hot_bytes=8 * KB))
        trace = walker.generate(5_000, make_rng(0))
        assert (trace.addresses % 4 == 0).all()

    def test_stays_in_code_footprint(self):
        profile = CodeProfile(code_bytes=32 * KB, hot_bytes=8 * KB)
        walker = CodeWalker(profile, base=0x10000)
        trace = walker.generate(20_000, make_rng(1))
        assert trace.addresses.min() >= 0x10000
        # Episodes may run past their start but stay near the footprint.
        assert trace.addresses.max() < 0x10000 + profile.code_bytes + 64 * KB

    def test_instruction_stream_is_read_only(self):
        walker = CodeWalker(CodeProfile(code_bytes=16 * KB, hot_bytes=8 * KB))
        trace = walker.generate(1_000, make_rng(0))
        assert not trace.is_write.any()

    def test_reproducible(self):
        walker = CodeWalker(CodeProfile(code_bytes=64 * KB, hot_bytes=8 * KB))
        a = walker.generate(5_000, make_rng(9))
        b = walker.generate(5_000, make_rng(9))
        assert a.addresses.tolist() == b.addresses.tolist()


class TestEmergentCacheBehaviour:
    """The code walker must reproduce the qualitative Figure 7 phenomena."""

    def test_tight_loops_fit_8kb_cache(self):
        profile = CodeProfile(
            code_bytes=16 * KB, hot_bytes=4 * KB, hot_fraction=1.0, mean_trips=100
        )
        trace = CodeWalker(profile).generate(100_000, make_rng(2))
        cache = proposed_icache()
        stats = cache.run(trace)
        assert stats.miss_rate < 0.002

    def test_long_lines_beat_short_lines_on_straightline_code(self):
        """fpppp-style giant straight-line code: 512 B lines give far fewer
        misses than 32 B lines at the same 8 KB capacity."""
        profile = CodeProfile(
            code_bytes=48 * KB,
            hot_bytes=48 * KB,
            loop_fraction=0.1,
            run_bytes=12 * KB,
            mean_trips=4,
        )
        trace = CodeWalker(profile).generate(150_000, make_rng(3))
        long_line = proposed_icache()
        short_line = DirectMappedCache(8 * KB, 32)
        long_stats = long_line.run(trace)
        short_stats = DirectMappedCache(8 * KB, 32).run(trace)
        assert long_stats.miss_rate < short_stats.miss_rate / 4

    def test_aliased_call_pair_hurts_long_lines(self):
        """turb3d's pathology: loop and callee share a 512 B line slot but
        occupy distinct 32 B lines, so only the long-line cache thrashes."""
        # Callee bytes 8 KB above the loop body, adjacent mod-8KB ranges:
        # distinct 32 B lines, same 512 B line.
        alias = AliasedCallPair(
            loop_addr=0, callee_addr=8 * KB + 256, loop_bytes=192, callee_bytes=192,
            fraction=0.9,
        )
        profile = CodeProfile(
            code_bytes=64 * KB, hot_bytes=8 * KB, aliased=alias, mean_trips=50
        )
        trace = CodeWalker(profile).generate(120_000, make_rng(4))
        long_line = proposed_icache()
        long_stats = long_line.run(trace)
        short_stats = DirectMappedCache(8 * KB, 32).run(trace)
        assert long_stats.miss_rate > short_stats.miss_rate * 2
