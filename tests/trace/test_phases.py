import pytest

from repro.common.errors import ConfigError
from repro.trace.phases import Phase, PhaseSchedule, phased_trace
from repro.trace.stream import ReferenceTrace


def _trace(values):
    return ReferenceTrace.reads(values)


class TestPhase:
    def test_rejects_empty_trace(self):
        with pytest.raises(ConfigError):
            Phase(ReferenceTrace.empty())

    def test_rejects_zero_repeats(self):
        with pytest.raises(ConfigError):
            Phase(_trace([0]), repeats=0)


class TestPhaseSchedule:
    def test_cycle_length(self):
        schedule = PhaseSchedule((
            Phase(_trace([0, 4]), repeats=2),
            Phase(_trace([8]), repeats=1),
        ))
        assert schedule.cycle_length == 5

    def test_generate_exact_length(self):
        schedule = PhaseSchedule((Phase(_trace([0, 4, 8]), 1),))
        assert len(schedule.generate(7)) == 7

    def test_order_preserved(self):
        trace = phased_trace([(_trace([0]), 2), (_trace([100]), 1)], 6)
        assert trace.addresses.tolist() == [0, 0, 100, 0, 0, 100]

    def test_rejects_empty_schedule(self):
        with pytest.raises(ConfigError):
            PhaseSchedule(())

    def test_rejects_zero_length(self):
        schedule = PhaseSchedule((Phase(_trace([0]), 1),))
        with pytest.raises(ConfigError):
            schedule.generate(0)


class TestCacheBehaviourAcrossPhases:
    def test_phase_change_causes_miss_burst(self):
        """Switching working sets produces cold misses at each boundary —
        the effect single-pattern traces cannot show."""
        from repro.caches import DirectMappedCache

        phase_a = _trace(range(0, 4096, 32))  # 4 KB working set
        phase_b = _trace(range(16384, 16384 + 4096, 32))  # disjoint 4 KB
        steady = DirectMappedCache(16 * 1024, 32)
        steady.run(phase_a.take(1024))
        steady_rate = steady.stats.miss_rate

        phased = DirectMappedCache(2 * 1024, 32)  # too small for both
        phased.run(phased_trace([(phase_a, 1), (phase_b, 1)], 1024))
        assert phased.stats.miss_rate > steady_rate
