import numpy as np
import pytest

from repro.common.rng import make_rng
from repro.trace.generators import (
    blocked_sweep,
    hot_cold_mix,
    pointer_chase,
    random_refs,
    record_walk,
    strided_sweep,
)


class TestStridedSweep:
    def test_unit_stride(self):
        trace = strided_sweep(0x1000, 8, 4, 8)
        assert trace.addresses.tolist() == [0x1000, 0x1008, 0x1010, 0x1018]

    def test_sweeps_repeat(self):
        trace = strided_sweep(0, 4, 3, 4, sweeps=2)
        assert trace.addresses.tolist() == [0, 4, 8, 0, 4, 8]

    def test_store_fraction_deterministic(self):
        trace = strided_sweep(0, 4, 100, 4, store_fraction=0.25)
        assert trace.store_fraction == pytest.approx(0.25, abs=0.02)

    def test_empty(self):
        assert len(strided_sweep(0, 4, 0, 4)) == 0


class TestBlockedSweep:
    def test_visits_every_element_once_per_sweep(self):
        trace = blocked_sweep(0, rows=4, cols=4, elem_bytes=8, block=2)
        assert len(trace) == 16
        assert len(set(trace.addresses.tolist())) == 16

    def test_tile_locality(self):
        trace = blocked_sweep(0, rows=8, cols=8, elem_bytes=8, block=4)
        # First tile covers rows 0-3, cols 0-3 only.
        first_tile = trace.addresses[:16]
        assert first_tile.max() < 4 * 8 * 8  # stays in first 4 rows

    def test_empty(self):
        assert len(blocked_sweep(0, 0, 4, 8, 2)) == 0


class TestRandomRefs:
    def test_within_working_set(self):
        trace = random_refs(make_rng(0), 0x1000, 4096, 500)
        assert trace.addresses.min() >= 0x1000
        assert trace.addresses.max() < 0x1000 + 4096

    def test_reproducible(self):
        a = random_refs(make_rng(5), 0, 4096, 100)
        b = random_refs(make_rng(5), 0, 4096, 100)
        assert a.addresses.tolist() == b.addresses.tolist()


class TestPointerChase:
    def test_intra_node_locality(self):
        trace = pointer_chase(make_rng(0), 0, 64, 256, 100, fields_per_visit=4)
        diffs = np.diff(trace.addresses)
        assert (diffs == 4).sum() >= len(trace) // 2

    def test_respects_node_alignment(self):
        trace = pointer_chase(make_rng(0), 0, 16, 128, 64, fields_per_visit=2)
        starts = trace.addresses[::2]
        assert all(start % 128 == 0 for start in starts.tolist())

    def test_empty(self):
        assert len(pointer_chase(make_rng(0), 0, 0, 64, 10)) == 0


class TestHotColdMix:
    def test_hot_fraction_dominates(self):
        trace = hot_cold_mix(
            make_rng(0), 0, 4096, 1 << 20, 1 << 22, 2000, hot_fraction=0.9
        )
        hot = (trace.addresses < 4096 + 256).mean()
        assert hot > 0.75

    def test_all_cold(self):
        trace = hot_cold_mix(make_rng(0), 0, 4096, 1 << 20, 1 << 22, 500, hot_fraction=0.0)
        assert trace.addresses.min() >= 1 << 20


class TestRecordWalk:
    def test_touches_record_heads_only(self):
        trace = record_walk(make_rng(0), 0, 32, 600, 64, 320)
        offsets = trace.addresses % 600
        assert offsets.max() < 64

    def test_sequential_mode_walks_in_order(self):
        trace = record_walk(
            make_rng(0), 0, 8, 600, 8, 64, sequential_fraction=1.0
        )
        record_ids = (trace.addresses // 600)[::2]
        assert record_ids.tolist()[:8] == [0, 1, 2, 3, 4, 5, 6, 7]
