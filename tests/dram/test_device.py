import pytest

from repro.common.params import IntegratedDeviceParams
from repro.dram.device import DRAMDevice


class TestAddressMapping:
    def test_consecutive_columns_hit_consecutive_banks(self):
        device = DRAMDevice()
        assert [device.bank_index(i * 512) for i in range(17)] == list(range(16)) + [0]

    def test_row_within_bank(self):
        device = DRAMDevice()
        # Addresses one full bank-stripe apart map to the same bank, next row.
        stripe = 512 * 16
        assert device.bank_index(0) == device.bank_index(stripe)
        assert device.row_of(stripe) == device.row_of(0) + 1


class TestDeviceAccess:
    def test_parallel_banks_do_not_contend(self):
        device = DRAMDevice()
        first = device.access(cycle=0, addr=0)
        second = device.access(cycle=0, addr=512)  # different bank
        assert first.queued_cycles == 0
        assert second.queued_cycles == 0

    def test_same_bank_contends(self):
        device = DRAMDevice()
        device.access(cycle=0, addr=0)
        result = device.access(cycle=0, addr=512 * 16)  # same bank, next row
        assert result.queued_cycles > 0
        assert device.stats.mean_queue_cycles > 0

    def test_fewer_banks_increase_contention(self):
        refs = [(i % 32) * 512 for i in range(64)]
        queued = {}
        for banks in (4, 16):
            device = DRAMDevice(IntegratedDeviceParams(num_banks=banks))
            cycle = 0
            for addr in refs:
                result = device.access(cycle, addr)
                cycle += 2
            queued[banks] = device.stats.total_queued_cycles
        assert queued[4] > queued[16]


class TestSpeculativeWriteback:
    def test_idle_bank_absorbs_writeback(self):
        device = DRAMDevice()
        assert device.try_speculative_writeback(cycle=0, addr=0)
        assert device.stats.speculative_writebacks == 1

    def test_busy_bank_blocks_writeback(self):
        device = DRAMDevice()
        device.access(cycle=0, addr=0)
        assert not device.try_speculative_writeback(cycle=1, addr=512 * 16)
        assert device.stats.blocked_writebacks == 1

    def test_utilizations_and_reset(self):
        device = DRAMDevice()
        device.access(cycle=0, addr=0)
        utils = device.utilizations(100)
        assert len(utils) == 16
        assert utils[0] > 0.0
        assert sum(utils[1:]) == 0.0
        device.reset()
        assert device.stats.accesses == 0
        assert sum(device.utilizations(100)) == 0.0
