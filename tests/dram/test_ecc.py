import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.ecc import (
    SECDED,
    check_bits_for,
    directory_bits_per_block,
    ecc_overhead_fraction,
)


class TestCheckBits:
    def test_64_bit_words_need_8_check_bits(self):
        assert check_bits_for(64) == 8

    def test_128_bit_words_need_9_check_bits(self):
        assert check_bits_for(128) == 9

    def test_rejects_zero_width(self):
        with pytest.raises(Exception):
            check_bits_for(0)


class TestPaperStorageClaims:
    def test_ecc_overhead_is_about_12_percent(self):
        # The paper: "this incurs a 12% memory-size increase if ECC is
        # computed on 64 bit words".
        assert ecc_overhead_fraction(64) == pytest.approx(0.125)

    def test_directory_gets_14_bits_per_32_byte_block(self):
        # Figure 5: widening from 1-in-64 to 1-in-128 correction frees
        # exactly the 14 bits the directory needs.
        assert directory_bits_per_block(32) == 14


class TestSECDEDRoundtrip:
    @settings(max_examples=50, deadline=None)
    @given(data=st.integers(0, (1 << 64) - 1))
    def test_clean_roundtrip_64(self, data):
        code = SECDED(64)
        result = code.decode(code.encode(data))
        assert result.data == data
        assert not result.corrected
        assert not result.uncorrectable

    @settings(max_examples=30, deadline=None)
    @given(
        data=st.integers(0, (1 << 64) - 1),
        bit=st.integers(0, 71),  # codeword positions 0..71 (64 data + 8 check)
    )
    def test_single_bit_error_corrected(self, data, bit):
        code = SECDED(64)
        word = code.encode(data) ^ (1 << bit)
        result = code.decode(word)
        assert result.data == data
        assert result.corrected
        assert not result.uncorrectable

    @settings(max_examples=30, deadline=None)
    @given(
        data=st.integers(0, (1 << 64) - 1),
        bits=st.sets(st.integers(0, 71), min_size=2, max_size=2),
    )
    def test_double_bit_error_detected_not_miscorrected(self, data, bits):
        code = SECDED(64)
        word = code.encode(data)
        for bit in bits:
            word ^= 1 << bit
        result = code.decode(word)
        assert result.uncorrectable
        assert not result.corrected

    @settings(max_examples=20, deadline=None)
    @given(data=st.integers(0, (1 << 128) - 1))
    def test_clean_roundtrip_128(self, data):
        code = SECDED(128)
        result = code.decode(code.encode(data))
        assert result.data == data

    def test_encode_rejects_oversized_data(self):
        with pytest.raises(ValueError):
            SECDED(64).encode(1 << 64)
