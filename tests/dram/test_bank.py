import pytest

from repro.common.errors import SimulationError
from repro.common.params import DRAMTiming
from repro.dram.bank import DRAMBank


class TestBankTiming:
    def test_idle_access_takes_access_cycles(self):
        bank = DRAMBank(DRAMTiming(access_cycles=6, precharge_cycles=4))
        result = bank.access(cycle=10, row=3)
        assert result.start_cycle == 10
        assert result.data_ready_cycle == 16
        assert result.bank_free_cycle == 20
        assert result.queued_cycles == 0

    def test_back_to_back_accesses_queue_behind_precharge(self):
        bank = DRAMBank(DRAMTiming(access_cycles=6, precharge_cycles=4))
        bank.access(cycle=0, row=0)
        result = bank.access(cycle=2, row=1)
        assert result.start_cycle == 10  # waits for precharge to finish
        assert result.queued_cycles == 8

    def test_rejects_negative_cycle(self):
        with pytest.raises(SimulationError):
            DRAMBank().access(cycle=-1, row=0)

    def test_open_row_tracking(self):
        bank = DRAMBank()
        bank.access(cycle=0, row=7, buffer_slot=1)
        assert bank.row_in_buffer(7)
        assert not bank.row_in_buffer(8)
        bank.access(cycle=100, row=8, buffer_slot=1)
        assert not bank.row_in_buffer(7)  # slot 1 was replaced

    def test_utilization(self):
        bank = DRAMBank(DRAMTiming(access_cycles=6, precharge_cycles=4))
        bank.access(cycle=0, row=0)
        assert bank.utilization(100) == pytest.approx(0.1)
        assert bank.utilization(0) == 0.0

    def test_reset(self):
        bank = DRAMBank()
        bank.access(cycle=0, row=0)
        bank.reset()
        assert bank.busy_until == 0
        assert bank.accesses == 0
        assert not bank.row_in_buffer(0)
