import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.dram.directory import (
    BROADCAST_POINTER,
    MAX_NODE_ID,
    DirectoryEntry,
    DirectoryStore,
    DirState,
)


class TestEncoding:
    def test_fits_in_14_bits(self):
        entry = DirectoryEntry(DirState.SHARED_BROADCAST, BROADCAST_POINTER)
        assert entry.encode() < (1 << 14)

    @settings(max_examples=50, deadline=None)
    @given(
        state=st.sampled_from(list(DirState)),
        pointer=st.integers(0, BROADCAST_POINTER),
    )
    def test_roundtrip(self, state, pointer):
        entry = DirectoryEntry(state, pointer)
        assert DirectoryEntry.decode(entry.encode()) == entry

    def test_rejects_oversized_pointer(self):
        with pytest.raises(ConfigError):
            DirectoryEntry(DirState.SHARED, BROADCAST_POINTER + 1)

    def test_decode_rejects_oversized_bits(self):
        with pytest.raises(ConfigError):
            DirectoryEntry.decode(1 << 14)

    def test_node_id_space_supports_thousands_of_nodes(self):
        # 12 pointer bits address 4094 nodes plus the broadcast marker.
        assert MAX_NODE_ID == 4094


class TestDirectoryStore:
    def test_default_is_unowned(self):
        store = DirectoryStore()
        assert store.lookup(0x1000).state is DirState.UNOWNED

    def test_update_and_lookup_by_block(self):
        store = DirectoryStore(block_bytes=32)
        store.update(0x100, DirectoryEntry(DirState.EXCLUSIVE, 5))
        # Any address in the same 32 B block sees the same entry.
        assert store.lookup(0x11F).pointer == 5
        assert store.lookup(0x120).state is DirState.UNOWNED

    def test_reset_to_unowned_frees_entry(self):
        store = DirectoryStore()
        store.update(0, DirectoryEntry(DirState.SHARED, 1))
        assert len(store) == 1
        store.update(0, DirectoryEntry())
        assert len(store) == 0

    def test_zero_storage_overhead(self):
        assert DirectoryStore().storage_overhead_bits() == 0
