"""Speculative-writeback study tests (Section 4.1)."""

import numpy as np
import pytest

from repro.dram.writeback import writeback_study
from repro.trace.stream import ReferenceTrace


def _dirty_thrash_trace(lines: int = 200, reps: int = 10) -> ReferenceTrace:
    """Writes that alias in the column cache, forcing dirty evictions."""
    addrs = []
    writes = []
    for rep in range(reps):
        for i in range(lines):
            # Three-way aliasing in the 16-set 2-way cache: 8 KB steps.
            addrs.append((i % 3) * 8192 + (i % 16) * 512)
            writes.append(True)
    return ReferenceTrace(np.asarray(addrs, dtype=np.int64),
                          np.asarray(writes, dtype=bool))


class TestWritebackStudy:
    def test_policies_agree_on_miss_counts(self):
        trace = _dirty_thrash_trace()
        conv = writeback_study(trace, speculative=False, with_victim=False)
        spec = writeback_study(trace, speculative=True, with_victim=False)
        assert conv.misses == spec.misses
        assert conv.dirty_evictions == spec.dirty_evictions > 0

    def test_speculative_never_slower(self):
        trace = _dirty_thrash_trace()
        conv = writeback_study(trace, speculative=False, with_victim=False)
        spec = writeback_study(trace, speculative=True, with_victim=False)
        assert spec.mean_miss_cycles <= conv.mean_miss_cycles

    def test_conventional_pays_serialized_writebacks(self):
        trace = _dirty_thrash_trace()
        conv = writeback_study(trace, speculative=False, with_victim=False)
        assert conv.serialized_writebacks == conv.dirty_evictions
        assert conv.hidden_fraction == 0.0

    def test_speculative_hides_most_writebacks(self):
        trace = _dirty_thrash_trace()
        spec = writeback_study(trace, speculative=True, with_victim=False)
        assert spec.hidden_fraction > 0.8

    def test_clean_trace_has_no_writebacks(self):
        trace = ReferenceTrace.reads([i * 512 for i in range(64)])
        result = writeback_study(trace, speculative=False, with_victim=False)
        assert result.dirty_evictions == 0
        assert result.mean_miss_cycles > 0
