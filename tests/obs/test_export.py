"""Span exporters: Chrome trace-event JSON and the perf summary."""

import json

from repro.obs.export import (
    EVENT_COUNTERS,
    PERF_SUMMARY_SCHEMA_VERSION,
    chrome_trace,
    default_bench_path,
    perf_summary,
    write_chrome_trace,
    write_perf_summary,
)
from repro.obs.spans import SpanRecord, aggregate_stages


def _records():
    return [
        SpanRecord("task/figure9", 1_000_000, 4_000_000, 42, 0,
                   {"gspn_firings": 800}),
        SpanRecord("gspn/run/membank", 1_500_000, 3_000_000, 42, 1,
                   {"gspn_firings": 800}),
        SpanRecord("cache/run/SetAssociativeCache", 9_000_000, 1_000_000,
                   43, 0, {"cache_refs": 5000}),
    ]


class TestChromeTrace:
    def test_event_structure(self):
        doc = chrome_trace(_records())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert len(events) == 3
        for event in events:
            assert event["ph"] == "X"
            assert set(event) >= {"name", "cat", "ts", "dur", "pid", "tid"}
        by_name = {e["name"]: e for e in events}
        gspn = by_name["gspn/run/membank"]
        assert gspn["cat"] == "gspn"
        assert gspn["ts"] == 1500.0  # ns -> microseconds
        assert gspn["dur"] == 3000.0
        assert gspn["pid"] == gspn["tid"] == 42
        assert gspn["args"] == {"gspn_firings": 800}

    def test_sorted_by_pid_then_time(self):
        doc = chrome_trace(list(reversed(_records())))
        keys = [(e["pid"], e["ts"]) for e in doc["traceEvents"]]
        assert keys == sorted(keys)

    def test_write_roundtrip(self, tmp_path):
        out = tmp_path / "deep" / "trace.json"
        write_chrome_trace(out, _records())
        loaded = json.loads(out.read_text())
        assert len(loaded["traceEvents"]) == 3


class TestAggregateStages:
    def test_groups_by_name_and_sums(self):
        records = _records() + [
            SpanRecord("gspn/run/membank", 20_000_000, 1_000_000, 43, 0,
                       {"gspn_firings": 200}),
        ]
        stages = aggregate_stages(records)
        membank = stages["gspn/run/membank"]
        assert membank["count"] == 2
        assert membank["wall_s"] == (3_000_000 + 1_000_000) / 1e9
        assert membank["counters"]["gspn_firings"] == 1000
        assert membank["per_sec"]["gspn_firings"] == 1000 / 0.004

    def test_zero_duration_stage_has_zero_rate(self):
        stages = aggregate_stages(
            [SpanRecord("instant", 0, 0, 1, 0, {"cache_refs": 5})]
        )
        assert stages["instant"]["per_sec"]["cache_refs"] == 0.0


class TestPerfSummary:
    def test_counts_depth_zero_events_only(self):
        # The nested gspn span re-reports its parent task span's tally
        # delta; counting every depth would double it.
        summary = perf_summary(
            _records(), fingerprint="cafe" * 10, jobs=2, wall_s=2.0
        )
        assert summary["schema"] == PERF_SUMMARY_SCHEMA_VERSION
        assert summary["kind"] == "bench"
        assert summary["events"] == 800 + 5000
        assert summary["events_per_sec"] == (800 + 5000) / 2.0
        assert summary["spans"] == 3
        assert "gspn/run/membank" in summary["stages"]

    def test_event_counters_cover_all_layers(self):
        assert set(EVENT_COUNTERS) == {
            "gspn_firings", "mp_ops", "cache_refs", "trace_refs"
        }

    def test_default_bench_path_uses_fingerprint_prefix(self, tmp_path):
        path = default_bench_path("abcdef0123456789", root=tmp_path)
        assert path == tmp_path / "BENCH_abcdef012345.json"

    def test_write_roundtrip(self, tmp_path):
        summary = perf_summary(_records(), fingerprint="f" * 40, jobs=1,
                               wall_s=1.0)
        out = tmp_path / "bench" / "BENCH_x.json"
        write_perf_summary(out, summary)
        assert json.loads(out.read_text())["events"] == 5800
