"""The span tracer: no-op fast path, nesting, tally capture, transport."""

import os
import time

import pytest

from repro import obs
from repro.common import tally


@pytest.fixture(autouse=True)
def clean_tracer():
    """Every test starts disabled with an empty record list."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestDisabledPath:
    def test_disabled_span_is_shared_noop(self):
        # No allocation on the disabled path: span() hands back one
        # shared singleton regardless of arguments.
        assert obs.span("a") is obs.span("b", refs=3)

    def test_disabled_span_records_nothing(self):
        with obs.span("quiet", refs=1) as sp:
            sp.add("more", 2)
            obs.add("ambient", 3)
        assert obs.records() == []

    def test_disabled_overhead_is_negligible(self):
        # The acceptance bar is <2% on a real run; here we bound the
        # absolute cost instead (timing a relative margin that small is
        # flaky under CI noise).  A million disabled spans should take
        # well under two seconds on any machine — ~100ns each is typical.
        started = time.perf_counter()
        for _ in range(1_000_000):
            with obs.span("hot"):
                pass
        elapsed = time.perf_counter() - started
        assert elapsed < 2.0

    def test_enable_disable_roundtrip_sets_env(self):
        obs.enable()
        assert obs.enabled()
        assert os.environ.get(obs.ENV_FLAG) == "1"
        obs.disable()
        assert not obs.enabled()
        assert obs.ENV_FLAG not in os.environ


class TestRecording:
    def test_nesting_depth_and_close_order(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("middle"):
                with obs.span("inner"):
                    pass
        names = [r.name for r in obs.records()]
        depths = [r.depth for r in obs.records()]
        # Spans are appended as they *close*: innermost first.
        assert names == ["inner", "middle", "outer"]
        assert depths == [2, 1, 0]

    def test_timestamps_are_monotonic_and_nested(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        inner, outer = obs.records()
        assert inner.start_ns >= outer.start_ns
        assert inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns
        assert inner.dur_ns >= 0 and outer.dur_ns >= 0

    def test_counters_from_kwargs_add_and_ambient(self):
        obs.enable()
        with obs.span("work", refs=10) as sp:
            sp.add("refs", 5)
            obs.add("extra", 2)  # lands on the innermost open span
        (record,) = obs.records()
        assert record.counters == {"refs": 15, "extra": 2}

    def test_tally_deltas_are_captured(self):
        obs.enable()
        with obs.span("sim"):
            tally.add("gspn_firings", 1234)
        (record,) = obs.records()
        assert record.counters["gspn_firings"] == 1234

    def test_nested_spans_each_see_the_tally(self):
        # Both the inner span and its parent report the same delta —
        # which is why exporters sum event counters at depth 0 only.
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                tally.add("mp_ops", 7)
        inner, outer = obs.records()
        assert inner.counters["mp_ops"] == 7
        assert outer.counters["mp_ops"] == 7

    def test_span_survives_exception(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("doomed"):
                raise ValueError("boom")
        (record,) = obs.records()
        assert record.name == "doomed"
        from repro.obs import spans

        assert not spans._stack  # the stack unwound cleanly


class TestTransport:
    def test_mark_since_rollback(self):
        obs.enable()
        with obs.span("keep"):
            pass
        position = obs.mark()
        with obs.span("drop"):
            pass
        assert [r.name for r in obs.since(position)] == ["drop"]
        obs.rollback(position)
        assert [r.name for r in obs.records()] == ["keep"]

    def test_absorb_merges_foreign_records(self):
        obs.enable()
        foreign = obs.SpanRecord(
            name="task/far", start_ns=10, dur_ns=5, pid=99999, depth=0,
            counters={"cache_refs": 3},
        )
        obs.absorb([foreign])
        assert obs.records() == [foreign]
