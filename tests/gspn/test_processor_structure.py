"""Structural tests of the Figure 10 processor net."""

import pytest

from repro.common.rng import make_rng
from repro.gspn.models import (
    ISSUE_TRANSITION,
    MemoryPathProbs,
    ProcessorNetParams,
    build_processor_net,
)
from repro.gspn.net import TransitionKind
from repro.gspn.sim import GSPNSimulator


def _params(**kw):
    defaults = dict(
        ifetch=MemoryPathProbs(0.99),
        load=MemoryPathProbs(0.95),
        store=MemoryPathProbs(0.95),
    )
    defaults.update(kw)
    return ProcessorNetParams(**defaults)


class TestNetShape:
    def test_integrated_has_no_l2_places(self):
        net = build_processor_net(_params(has_l2=False))
        assert "l2_port" not in net.initial_marking

    def test_conventional_has_l2_mutex(self):
        net = build_processor_net(
            _params(
                has_l2=True,
                ifetch=MemoryPathProbs(0.97, 0.02),
                load=MemoryPathProbs(0.9, 0.08),
                store=MemoryPathProbs(0.9, 0.08),
            )
        )
        assert net.initial_marking["l2_port"] == 1

    def test_bank_array_size_follows_parameter(self):
        for banks in (4, 16):
            net = build_processor_net(_params(num_banks=banks))
            ready = [p for p in net.places if p.endswith("_ready")]
            assert len(ready) == banks

    def test_issue_blocked_by_waiting_memory_ops(self):
        net = build_processor_net(_params())
        issue = net.transitions[ISSUE_TRANSITION]
        assert issue.inhibitors == {"is_load": 1, "is_store": 1}
        assert issue.kind is TransitionKind.DETERMINISTIC
        assert issue.param == 1.0

    def test_scoreboard_kind_follows_parameter(self):
        exp_net = build_processor_net(_params(scoreboard_rate=1.0))
        assert exp_net.transitions["T23_stall"].kind is TransitionKind.EXPONENTIAL
        imm_net = build_processor_net(_params(scoreboard_rate=None))
        assert imm_net.transitions["T23_stall"].kind is TransitionKind.IMMEDIATE

    def test_single_lsu_token(self):
        net = build_processor_net(_params())
        assert net.initial_marking["lsu"] == 1


class TestNetBehaviour:
    def test_instruction_count_conserved(self):
        """Every issued instruction is classified exactly once."""
        net = build_processor_net(_params())
        sim = GSPNSimulator(net, make_rng(0))
        result = sim.run(stop_transition=ISSUE_TRANSITION, stop_count=5_000)
        issued = result.firings[ISSUE_TRANSITION]
        classified = sum(
            result.firings.get(name, 0)
            for name in ("T_class_other", "T_class_load", "T_class_store")
        )
        # The last instruction may still be in flight when the run stops.
        assert issued - 2 <= classified <= issued

    def test_class_mix_matches_probabilities(self):
        net = build_processor_net(_params(p_load=0.3, p_store=0.1))
        sim = GSPNSimulator(net, make_rng(3))
        result = sim.run(stop_transition=ISSUE_TRANSITION, stop_count=20_000)
        loads = result.firings.get("T_class_load", 0)
        total = result.firings[ISSUE_TRANSITION]
        assert loads / total == pytest.approx(0.3, abs=0.02)

    def test_memory_requests_balance_completions(self):
        net = build_processor_net(_params(load=MemoryPathProbs(0.5)))
        sim = GSPNSimulator(net, make_rng(1))
        result = sim.run(stop_transition=ISSUE_TRANSITION, stop_count=5_000)
        routed = sum(
            count
            for name, count in result.firings.items()
            if name.startswith("T_route_l_bank")
        )
        served = sum(
            count
            for name, count in result.firings.items()
            if name.startswith("T_bank") and name.endswith("_l_access")
        )
        assert abs(routed - served) <= 1  # at most one in flight

    def test_lsu_backpressure_raises_cpi(self):
        """Store-heavy mixes queue on the single load/store unit."""
        light = _params(p_load=0.05, p_store=0.05,
                        load=MemoryPathProbs(0.7), store=MemoryPathProbs(0.7))
        heavy = _params(p_load=0.25, p_store=0.25,
                        load=MemoryPathProbs(0.7), store=MemoryPathProbs(0.7))
        cpis = []
        for params in (light, heavy):
            sim = GSPNSimulator(build_processor_net(params), make_rng(2))
            result = sim.run(stop_transition=ISSUE_TRANSITION, stop_count=6_000)
            cpis.append(result.time / result.firings[ISSUE_TRANSITION])
        assert cpis[1] > cpis[0] * 1.3
