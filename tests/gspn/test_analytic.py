"""Analytic (M/D/1) vs Monte-Carlo cross-validation of the bank model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.gspn.analytic import bank_contention_estimate, membank_prediction
from repro.gspn.models import build_membank_net
from repro.gspn.sim import GSPNSimulator


class TestClosedForms:
    def test_utilization(self):
        pred = membank_prediction(6, 4, 0.02, 0.02)
        assert pred.utilization == pytest.approx(0.4)

    def test_mean_wait_formula(self):
        # rho=0.4, D=10: W = 0.4*10 / (2*0.6) = 3.333...
        pred = membank_prediction(6, 4, 0.02, 0.02)
        assert pred.mean_wait_cycles == pytest.approx(10.0 / 3.0)

    def test_unstable_queue_rejected(self):
        with pytest.raises(ConfigError):
            membank_prediction(6, 4, 0.06, 0.06)  # rho = 1.2

    def test_bank_contention_scales_inversely_with_banks(self):
        two = bank_contention_estimate(0.02, num_banks=2)
        sixteen = bank_contention_estimate(0.02, num_banks=16)
        assert two.utilization == pytest.approx(8 * sixteen.utilization)

    def test_paper_like_utilizations_are_tiny(self):
        # gcc-class miss traffic: the per-bank load explains why Section
        # 5.6 finds bank count irrelevant to CPI.
        sixteen = bank_contention_estimate(0.004, num_banks=16)
        assert sixteen.utilization < 0.01
        assert sixteen.mean_wait_cycles < 0.05


class TestMonteCarloAgreement:
    @settings(max_examples=6, deadline=None)
    @given(
        rates=st.tuples(
            st.sampled_from([0.01, 0.02, 0.03]),
            st.sampled_from([0.01, 0.02, 0.03]),
        )
    )
    def test_throughput_matches(self, rates):
        ifetch_rate, data_rate = rates
        net = build_membank_net(6, 4, ifetch_rate, data_rate)
        sim = GSPNSimulator(net, make_rng(42))
        result = sim.run(max_time=60_000)
        served = result.firings.get("T1_iaccess", 0) + result.firings.get(
            "T3_daccess", 0
        )
        predicted = membank_prediction(6, 4, ifetch_rate, data_rate)
        assert served / result.time == pytest.approx(
            predicted.throughput, rel=0.08
        )

    def test_busy_fraction_matches_analytic_utilization(self):
        # The simulator's own busy_fraction for the bank's server place
        # must agree with the M/D/1 utilization rho = lambda * D — this is
        # the field the Section 5.6 sweep reports, not a hand-computed
        # firing-count reconstruction.
        pred = membank_prediction(6, 4, 0.025, 0.025)
        net = build_membank_net(6, 4, 0.025, 0.025)
        sim = GSPNSimulator(net, make_rng(7), track_places=("ready",))
        result = sim.run(max_time=80_000)
        assert result.busy_fraction["ready"] == pytest.approx(
            pred.utilization, rel=0.08
        )

    def test_warmup_then_measure_reports_window_statistics(self):
        # A second run() call (warmup-then-measure) must report statistics
        # for the measurement window only.  After a warmup long enough to
        # reach steady state, the window's busy fraction must still match
        # the analytic utilization — the historical bug divided the
        # lifetime marking area by the lifetime clock, dragging the
        # cold-start transient into every subsequent window.
        pred = membank_prediction(6, 4, 0.025, 0.025)
        net = build_membank_net(6, 4, 0.025, 0.025)
        sim = GSPNSimulator(net, make_rng(11), track_places=("ready",))
        sim.run(max_time=20_000)  # warmup
        measured = sim.run(max_time=100_000)  # measurement window
        assert measured.busy_fraction["ready"] == pytest.approx(
            pred.utilization, rel=0.08
        )
        # Lifetime totals still accumulate across calls.
        assert measured.time == pytest.approx(100_000, abs=20)
