import pytest

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.gspn.models import (
    ISSUE_TRANSITION,
    MemoryPathProbs,
    ProcessorNetParams,
    bank_ready_place,
    build_membank_net,
    build_processor_net,
)
from repro.gspn.sim import GSPNSimulator


def _cpi(params: ProcessorNetParams, instructions: int = 8000, seed: int = 0) -> float:
    net = build_processor_net(params)
    sim = GSPNSimulator(net, make_rng(seed))
    result = sim.run(stop_transition=ISSUE_TRANSITION, stop_count=instructions)
    return result.time / result.firings[ISSUE_TRANSITION]


ALL_HIT = ProcessorNetParams(
    ifetch=MemoryPathProbs(1.0),
    load=MemoryPathProbs(1.0),
    store=MemoryPathProbs(1.0),
)


class TestMemoryPathProbs:
    def test_mem_is_remainder(self):
        probs = MemoryPathProbs(0.9, 0.06)
        assert probs.mem == pytest.approx(0.04)

    def test_rejects_sum_over_one(self):
        with pytest.raises(ConfigError):
            MemoryPathProbs(0.9, 0.2)

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigError):
            MemoryPathProbs(-0.1)


class TestParamValidation:
    def test_rejects_l2_probs_without_l2(self):
        with pytest.raises(ConfigError):
            ProcessorNetParams(ifetch=MemoryPathProbs(0.9, 0.1), has_l2=False)

    def test_rejects_bad_mix(self):
        with pytest.raises(ConfigError):
            ProcessorNetParams(p_load=0.7, p_store=0.5)

    def test_rejects_zero_banks(self):
        with pytest.raises(ConfigError):
            ProcessorNetParams(num_banks=0)

    def test_rejects_negative_scoreboard_rate(self):
        with pytest.raises(ConfigError):
            ProcessorNetParams(scoreboard_rate=0.0)


class TestProcessorModel:
    def test_all_hit_cpi_is_one(self):
        assert _cpi(ALL_HIT, instructions=3000) == pytest.approx(1.0)

    def test_misses_raise_cpi(self):
        missing = ProcessorNetParams(
            ifetch=MemoryPathProbs(0.99),
            load=MemoryPathProbs(0.90),
            store=MemoryPathProbs(0.90),
        )
        assert _cpi(missing) > 1.05

    def test_cpi_increases_with_memory_latency(self):
        base = dict(
            ifetch=MemoryPathProbs(0.99),
            load=MemoryPathProbs(0.92),
            store=MemoryPathProbs(0.92),
        )
        fast = _cpi(ProcessorNetParams(mem_access=6, **base))
        slow = _cpi(ProcessorNetParams(mem_access=30, **base))
        assert slow > fast * 1.2

    def test_scoreboard_hides_part_of_the_latency(self):
        base = dict(
            ifetch=MemoryPathProbs(1.0),
            load=MemoryPathProbs(0.85),
            store=MemoryPathProbs(1.0),
        )
        with_sb = _cpi(ProcessorNetParams(scoreboard_rate=1.0, **base), seed=3)
        without_sb = _cpi(ProcessorNetParams(scoreboard_rate=None, **base), seed=3)
        assert with_sb < without_sb

    def test_conventional_l2_path_cheaper_than_memory(self):
        l2_heavy = ProcessorNetParams(
            has_l2=True,
            num_banks=2,
            mem_access=24,
            ifetch=MemoryPathProbs(0.99, 0.01),
            load=MemoryPathProbs(0.90, 0.10),
            store=MemoryPathProbs(0.90, 0.10),
        )
        mem_heavy = ProcessorNetParams(
            has_l2=True,
            num_banks=2,
            mem_access=24,
            ifetch=MemoryPathProbs(0.99, 0.01),
            load=MemoryPathProbs(0.90, 0.0),
            store=MemoryPathProbs(0.90, 0.0),
        )
        assert _cpi(l2_heavy) < _cpi(mem_heavy)

    def test_pure_compute_mix(self):
        compute_only = ProcessorNetParams(
            p_load=0.0,
            p_store=0.0,
            ifetch=MemoryPathProbs(1.0),
            load=MemoryPathProbs(1.0),
            store=MemoryPathProbs(1.0),
        )
        assert _cpi(compute_only, instructions=2000) == pytest.approx(1.0)

    def test_more_banks_do_not_hurt(self):
        base = dict(
            ifetch=MemoryPathProbs(0.97),
            load=MemoryPathProbs(0.90),
            store=MemoryPathProbs(0.90),
        )
        few = _cpi(ProcessorNetParams(num_banks=4, **base), instructions=6000)
        many = _cpi(ProcessorNetParams(num_banks=16, **base), instructions=6000)
        # Section 5.6: differences are small; many banks never slower by much.
        assert many <= few * 1.05


class TestMembankModel:
    def test_net_builds_and_runs(self):
        net = build_membank_net(access=6, precharge=4, ifetch_rate=0.02, data_rate=0.02)
        sim = GSPNSimulator(net, make_rng(0), track_places=("precharge",))
        result = sim.run(max_time=20_000)
        served = result.firings.get("T1_iaccess", 0) + result.firings.get(
            "T3_daccess", 0
        )
        assert served > 0
        # Precharge occupancy = arrival rate x precharge time = 0.04 x 4.
        assert result.mean_marking["precharge"] == pytest.approx(0.16, abs=0.04)
        # Whole-bank utilization from firing counts: rate x (access+precharge).
        busy = served * 10 / result.time
        assert busy == pytest.approx(0.4, abs=0.05)

    def test_bank_serves_one_at_a_time(self):
        net = build_membank_net(access=6, precharge=4, ifetch_rate=0.2, data_rate=0.2)
        sim = GSPNSimulator(net, make_rng(1))
        result = sim.run(max_time=5_000)
        served = result.firings.get("T1_iaccess", 0) + result.firings.get(
            "T3_daccess", 0
        )
        # Saturated bank: one service per access+precharge window at most.
        assert served <= 5_000 / 10 + 1

    def test_bank_ready_place_name(self):
        assert bank_ready_place(3) == "bank3_ready"
