"""Monte-Carlo replication fan-out: determinism across worker counts."""

from repro.common.rng import make_rng, split_rng
from repro.gspn.models import (
    ISSUE_TRANSITION,
    MemoryPathProbs,
    ProcessorNetParams,
    build_processor_net,
)
from repro.gspn.sim import GSPNSimulator, run_replications

PARAMS = ProcessorNetParams(
    p_load=0.2, p_store=0.1,
    ifetch=MemoryPathProbs(0.99),
    load=MemoryPathProbs(0.95),
    store=MemoryPathProbs(0.98),
    num_banks=4,
)


def _make_sim(seed: int) -> GSPNSimulator:
    net = build_processor_net(PARAMS)
    return GSPNSimulator(net, split_rng(make_rng(seed), "replication"))


def _key(result):
    return (result.time, result.events, tuple(sorted(result.firings.items())))


class TestRunReplications:
    def test_seeds_give_independent_runs(self):
        results = run_replications(
            _make_sim, [1, 2, 3],
            stop_transition=ISSUE_TRANSITION, stop_count=300,
        )
        assert len(results) == 3
        assert len({_key(r) for r in results}) == 3

    def test_same_seed_reproduces(self):
        first, second = run_replications(
            _make_sim, [7, 7],
            stop_transition=ISSUE_TRANSITION, stop_count=300,
        )
        assert _key(first) == _key(second)

    def test_parallel_equals_serial(self):
        serial = run_replications(
            _make_sim, [1, 2, 3, 4],
            stop_transition=ISSUE_TRANSITION, stop_count=300,
        )
        parallel = run_replications(
            _make_sim, [1, 2, 3, 4], jobs=2,
            stop_transition=ISSUE_TRANSITION, stop_count=300,
        )
        assert [_key(r) for r in serial] == [_key(r) for r in parallel]
