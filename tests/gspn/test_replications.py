"""Monte-Carlo replication fan-out: determinism across worker counts,
and failure handling through the supervised executor."""

import pytest

from repro.common.errors import SimulationError
from repro.common.rng import make_rng, split_rng
from repro.faults import FaultPlan
from repro.runner import SupervisionPolicy
from repro.gspn.models import (
    ISSUE_TRANSITION,
    MemoryPathProbs,
    ProcessorNetParams,
    build_processor_net,
)
from repro.gspn.sim import GSPNSimulator, run_replications

PARAMS = ProcessorNetParams(
    p_load=0.2, p_store=0.1,
    ifetch=MemoryPathProbs(0.99),
    load=MemoryPathProbs(0.95),
    store=MemoryPathProbs(0.98),
    num_banks=4,
)


def _make_sim(seed: int) -> GSPNSimulator:
    net = build_processor_net(PARAMS)
    return GSPNSimulator(net, split_rng(make_rng(seed), "replication"))


def _key(result):
    return (result.time, result.events, tuple(sorted(result.firings.items())))


class TestRunReplications:
    def test_seeds_give_independent_runs(self):
        results = run_replications(
            _make_sim, [1, 2, 3],
            stop_transition=ISSUE_TRANSITION, stop_count=300,
        )
        assert len(results) == 3
        assert len({_key(r) for r in results}) == 3

    def test_same_seed_reproduces(self):
        first, second = run_replications(
            _make_sim, [7, 7],
            stop_transition=ISSUE_TRANSITION, stop_count=300,
        )
        assert _key(first) == _key(second)

    def test_parallel_equals_serial(self):
        serial = run_replications(
            _make_sim, [1, 2, 3, 4],
            stop_transition=ISSUE_TRANSITION, stop_count=300,
        )
        parallel = run_replications(
            _make_sim, [1, 2, 3, 4], jobs=2,
            stop_transition=ISSUE_TRANSITION, stop_count=300,
        )
        assert [_key(r) for r in serial] == [_key(r) for r in parallel]


def _bad_sim(seed: int) -> GSPNSimulator:
    if seed == 3:
        raise ValueError("seed 3 cannot build its net")
    return _make_sim(seed)


class TestReplicationFailures:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_error_names_the_offending_seed(self, jobs):
        # One bad seed must not produce an opaque pool traceback: the
        # error says which replication failed and why.
        with pytest.raises(SimulationError, match=r"seed=3.*ValueError"):
            run_replications(
                _bad_sim, [1, 2, 3], jobs=jobs,
                policy=SupervisionPolicy(max_retries=0),
                stop_transition=ISSUE_TRANSITION, stop_count=100,
            )

    def test_crashed_worker_names_the_seed(self):
        faults = FaultPlan.parse(["replication/seed=2=crash"])
        with pytest.raises(SimulationError, match=r"seed=2.*crash"):
            run_replications(
                _make_sim, [1, 2, 3], jobs=2, faults=faults,
                policy=SupervisionPolicy(max_retries=0),
                stop_transition=ISSUE_TRANSITION, stop_count=100,
            )

    def test_transient_fault_is_retried_and_results_unchanged(self):
        clean = run_replications(
            _make_sim, [1, 2, 3],
            stop_transition=ISSUE_TRANSITION, stop_count=300,
        )
        faults = FaultPlan.parse(["replication/seed=2=crash:1"])
        retried = run_replications(
            _make_sim, [1, 2, 3], jobs=2, faults=faults,
            policy=SupervisionPolicy(max_retries=1),
            stop_transition=ISSUE_TRANSITION, stop_count=300,
        )
        assert [_key(r) for r in clean] == [_key(r) for r in retried]
