import pytest

from repro.common.errors import ConfigError
from repro.gspn.net import PetriNet, Transition, TransitionKind


class TestConstruction:
    def test_duplicate_place_rejected(self):
        net = PetriNet("t")
        net.place("p")
        with pytest.raises(ConfigError):
            net.place("p")

    def test_negative_marking_rejected(self):
        with pytest.raises(ConfigError):
            PetriNet("t").place("p", tokens=-1)

    def test_duplicate_transition_rejected(self):
        net = PetriNet("t")
        net.place("a")
        net.immediate("T", {"a": 1})
        with pytest.raises(ConfigError):
            net.immediate("T", {"a": 1})

    def test_unknown_place_rejected(self):
        net = PetriNet("t")
        net.place("a")
        with pytest.raises(ConfigError):
            net.immediate("T", {"missing": 1})

    def test_zero_weight_rejected(self):
        net = PetriNet("t")
        net.place("a")
        with pytest.raises(ConfigError):
            net.immediate("T", {"a": 1}, weight=0.0)

    def test_zero_arc_multiplicity_rejected(self):
        with pytest.raises(ConfigError):
            Transition("T", TransitionKind.IMMEDIATE, 1.0, {"a": 0})

    def test_negative_rate_rejected(self):
        net = PetriNet("t")
        net.place("a")
        with pytest.raises(ConfigError):
            net.exponential("T", {"a": 1}, rate=-1.0)


class TestValidate:
    def test_empty_net_rejected(self):
        with pytest.raises(ConfigError):
            PetriNet("t").validate()

    def test_source_transition_rejected(self):
        net = PetriNet("t")
        net.place("a")
        with pytest.raises(ConfigError):
            net._add(Transition("T", TransitionKind.IMMEDIATE, 1.0, {}, {"a": 1}))
            net.validate()

    def test_valid_net_passes(self):
        net = PetriNet("t")
        net.place("a", 1)
        net.place("b")
        net.deterministic("T", {"a": 1}, {"b": 1}, delay=2.0)
        net.validate()


class TestIntrospection:
    def test_token_count(self):
        net = PetriNet("t")
        net.place("a", 2)
        net.place("b", 3)
        assert net.token_count() == 5

    def test_conservative_net(self):
        net = PetriNet("t")
        net.place("a", 1)
        net.place("b")
        net.deterministic("T", {"a": 1}, {"b": 1})
        assert net.is_conservative()

    def test_non_conservative_net(self):
        net = PetriNet("t")
        net.place("a", 1)
        net.immediate("T_sink", {"a": 1}, {})
        assert not net.is_conservative()
