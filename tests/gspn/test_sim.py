import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.common.rng import make_rng
from repro.gspn.net import PetriNet
from repro.gspn.sim import GSPNSimulator


def _ring_net(places: int = 3, delay: float = 2.0) -> PetriNet:
    """A token circulating through deterministic transitions."""
    net = PetriNet("ring")
    for i in range(places):
        net.place(f"p{i}", tokens=1 if i == 0 else 0)
    for i in range(places):
        net.deterministic(
            f"t{i}", {f"p{i}": 1}, {f"p{(i + 1) % places}": 1}, delay=delay
        )
    return net


class TestDeterministicTiming:
    def test_ring_period(self):
        sim = GSPNSimulator(_ring_net(3, delay=2.0), make_rng(0))
        result = sim.run(stop_transition="t0", stop_count=10)
        # Each lap takes 3 transitions x 2 cycles; t0 fires at 2, 8, 14, ...
        assert result.firings["t0"] == 10
        assert result.time == pytest.approx(2.0 + 9 * 6.0)

    def test_single_shot_deadlocks(self):
        net = PetriNet("once")
        net.place("a", 1)
        net.place("b")
        net.deterministic("T", {"a": 1}, {"b": 1}, delay=5.0)
        result = GSPNSimulator(net, make_rng(0)).run(max_time=100)
        assert result.deadlocked
        assert result.time == 5.0
        assert result.firings["T"] == 1

    def test_max_time_stops_run(self):
        sim = GSPNSimulator(_ring_net(3, delay=1.0), make_rng(0))
        result = sim.run(max_time=10.0)
        assert result.time >= 10.0
        assert result.firings["t0"] <= 5

    def test_unknown_stop_transition_rejected(self):
        sim = GSPNSimulator(_ring_net(), make_rng(0))
        with pytest.raises(SimulationError):
            sim.run(stop_transition="nope", stop_count=1)

    def test_stop_count_zero_rejected(self):
        # The default stop_count=0 with a stop_transition used to return
        # immediately (0 firings >= 0 is already true) and masquerade as a
        # completed run; it is now a hard error.
        sim = GSPNSimulator(_ring_net(), make_rng(0))
        with pytest.raises(SimulationError, match="stop_count"):
            sim.run(stop_transition="t0")

    def test_stop_count_negative_rejected(self):
        sim = GSPNSimulator(_ring_net(), make_rng(0))
        with pytest.raises(SimulationError, match="stop_count"):
            sim.run(stop_transition="t0", stop_count=-3)


class TestImmediateSemantics:
    def test_immediates_fire_in_zero_time(self):
        net = PetriNet("imm")
        net.place("a", 1)
        net.place("b")
        net.place("c")
        net.immediate("T_ab", {"a": 1}, {"b": 1})
        net.deterministic("T_bc", {"b": 1}, {"c": 1}, delay=3.0)
        result = GSPNSimulator(net, make_rng(0)).run(max_time=100)
        assert result.time == 3.0

    def test_priority_beats_weight(self):
        net = PetriNet("prio")
        net.place("a", 1)
        net.place("low")
        net.place("high")
        net.immediate("T_low", {"a": 1}, {"low": 1}, weight=1000.0, priority=0)
        net.immediate("T_high", {"a": 1}, {"high": 1}, weight=0.001, priority=1)
        result = GSPNSimulator(net, make_rng(0)).run(max_time=1)
        assert result.firings.get("T_high") == 1
        assert "T_low" not in result.firings

    def test_weighted_conflict_resolution(self):
        net = PetriNet("weights")
        net.place("src", 1)
        net.place("gen")
        net.place("left")
        net.place("right")
        net.deterministic("T_gen", {"src": 1}, {"src": 1, "gen": 1}, delay=1.0)
        net.immediate("T_left", {"gen": 1}, {"left": 1}, weight=3.0)
        net.immediate("T_right", {"gen": 1}, {"right": 1}, weight=1.0)
        sim = GSPNSimulator(net, make_rng(7))
        result = sim.run(stop_transition="T_gen", stop_count=4000)
        ratio = result.firings["T_left"] / result.firings["T_right"]
        assert ratio == pytest.approx(3.0, rel=0.15)

    def test_immediate_livelock_detected(self):
        net = PetriNet("livelock")
        net.place("a", 1)
        net.place("b")
        net.immediate("T_ab", {"a": 1}, {"b": 1})
        net.immediate("T_ba", {"b": 1}, {"a": 1})
        with pytest.raises(SimulationError):
            GSPNSimulator(net, make_rng(0)).run(max_time=1)


class TestInhibitors:
    def test_inhibitor_blocks_transition(self):
        net = PetriNet("inh")
        net.place("a", 1)
        net.place("blocker", 1)
        net.place("out")
        net.deterministic("T", {"a": 1}, {"out": 1}, delay=1.0,
                          inhibitors={"blocker": 1})
        result = GSPNSimulator(net, make_rng(0)).run(max_time=10)
        assert "T" not in result.firings

    def test_inhibitor_releases_when_cleared(self):
        net = PetriNet("inh2")
        net.place("a", 1)
        net.place("blocker", 1)
        net.place("out")
        net.place("sink")
        net.deterministic("T_clear", {"blocker": 1}, {"sink": 1}, delay=5.0)
        net.deterministic("T", {"a": 1}, {"out": 1}, delay=1.0,
                          inhibitors={"blocker": 1})
        result = GSPNSimulator(net, make_rng(0)).run(max_time=100)
        assert result.firings["T"] == 1
        assert result.time == pytest.approx(6.0)  # restarts after the clear


class TestExponential:
    def test_mean_interfiring_time(self):
        net = PetriNet("exp")
        net.place("src", 1)
        net.place("count")
        net.exponential("T", {"src": 1}, {"src": 1, "count": 1}, rate=0.5)
        result = GSPNSimulator(net, make_rng(3)).run(
            stop_transition="T", stop_count=5000
        )
        mean = result.time / result.firings["T"]
        assert mean == pytest.approx(2.0, rel=0.1)

    def test_reproducible_with_seed(self):
        net = _ring_net(2, delay=1.0)
        a = GSPNSimulator(net, make_rng(5)).run(max_time=100)
        b = GSPNSimulator(net, make_rng(5)).run(max_time=100)
        assert a.firings == b.firings
        assert a.time == b.time


class TestStatsAndInvariants:
    def test_mean_marking_of_busy_server(self):
        # M/D/1-ish: always-on source, single server with utilization 0.5.
        net = PetriNet("util")
        net.place("src", 1)
        net.place("queue")
        net.place("server", 1)
        net.place("busy")
        net.place("done")
        net.exponential("T_arrive", {"src": 1}, {"src": 1, "queue": 1}, rate=0.1)
        net.immediate("T_seize", {"queue": 1, "server": 1}, {"busy": 1})
        net.deterministic("T_serve", {"busy": 1}, {"server": 1, "done": 1}, delay=5.0)
        net.immediate("T_sink", {"done": 1}, {})
        sim = GSPNSimulator(net, make_rng(11), track_places=("server",))
        result = sim.run(max_time=50_000)
        # Utilization = arrival rate x service time = 0.5.
        assert result.mean_marking["server"] == pytest.approx(0.5, abs=0.05)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_closed_conservative_net_preserves_tokens(self, seed):
        net = _ring_net(4, delay=1.5)
        sim = GSPNSimulator(net, make_rng(seed))
        sim.run(max_time=200)
        assert sum(sim.marking) == net.token_count()

    def test_throughput_helper(self):
        sim = GSPNSimulator(_ring_net(2, delay=1.0), make_rng(0))
        result = sim.run(stop_transition="t0", stop_count=50)
        assert result.throughput("t0") == pytest.approx(0.5, rel=0.05)

    def test_second_run_reports_window_not_lifetime_means(self):
        # Deterministic two-place cycle: A -(5)-> B -(15)-> A, tracking B.
        # T_ab fires at t=5 (token enters B), T_ba at t=20 (leaves B),
        # T_ab again at t=25.  First run stops after the first T_ab, so
        # its window [0, 5] never sees a token in B (mean 0).  The second
        # run's window [5, 25] has B occupied on [5, 20): exactly 15 of
        # 20 cycles, mean 0.75.  The historical bug divided the lifetime
        # area by the lifetime clock and would report 15/25 = 0.6 here.
        net = PetriNet("cycle")
        net.place("A", 1)
        net.place("B")
        net.deterministic("T_ab", {"A": 1}, {"B": 1}, delay=5.0)
        net.deterministic("T_ba", {"B": 1}, {"A": 1}, delay=15.0)
        sim = GSPNSimulator(net, make_rng(0), track_places=("B",))
        first = sim.run(stop_transition="T_ab", stop_count=1)
        assert first.time == pytest.approx(5.0)
        assert first.mean_marking["B"] == pytest.approx(0.0)
        second = sim.run(stop_transition="T_ab", stop_count=2)
        assert second.time == pytest.approx(25.0)
        assert second.mean_marking["B"] == pytest.approx(0.75)
        # Lifetime firing counts keep accumulating across calls.
        assert second.firings["T_ab"] == 2
