"""repro: a reproduction of "Missing the Memory Wall: The Case for
Processor/Memory Integration" (Saulsbury, Pong & Nowatzyk, ISCA 1996).

The package implements the paper's proposed integrated processor/DRAM
device together with every substrate its evaluation depends on:

- :mod:`repro.caches` - trace-driven cache simulators, including the DRAM
  column-buffer caches and the victim cache.
- :mod:`repro.dram` - the 16-bank 256 Mbit DRAM device model with ECC and
  the directory-in-ECC encoding.
- :mod:`repro.gspn` - a generalized stochastic Petri net engine and the
  paper's memory-bank and processor models (Figures 9 and 10).
- :mod:`repro.isa` - a mini-RISC ISA with assembler and pipeline timing,
  used as an execution-driven trace source.
- :mod:`repro.trace` / :mod:`repro.workloads` - reference-stream
  generators, the SPEC'95 workload proxy models, and executable
  SPLASH-like parallel kernels.
- :mod:`repro.coherence`, :mod:`repro.interconnect`, :mod:`repro.mp` -
  the directory-based shared-memory multiprocessor.
- :mod:`repro.uniproc`, :mod:`repro.machines`, :mod:`repro.analysis` -
  the performance pipeline and the per-table/per-figure experiments.
- :mod:`repro.obs` - low-overhead hierarchical span tracing across all
  of the above, with Chrome trace-event and perf-summary exporters
  (the CLI's ``--trace`` / ``--perf-summary``).

Quickstart::

    from repro.workloads.spec import get_proxy
    from repro.caches import ColumnBufferCache
    from repro.common import IntegratedDeviceParams

    device = IntegratedDeviceParams()
    proxy = get_proxy("126.gcc")
    trace = proxy.data_trace(length=200_000, seed=1)
    cache = ColumnBufferCache(device.dcache_geometry)
    stats = cache.run(trace)
    print(stats.miss_rate)
"""

__version__ = "1.0.0"
