"""Data-reference pattern generators.

Each generator returns a :class:`~repro.trace.stream.ReferenceTrace`.
They are the building blocks from which the SPEC'95 workload proxies
compose their data streams: strided array sweeps, blocked loop nests,
pointer chasing, uniform random access and hot/cold working-set mixes.
"""

from __future__ import annotations

import numpy as np

from repro.trace.stream import ReferenceTrace, expand_runs


def _store_flags(
    count: int, store_fraction: float, rng: np.random.Generator | None
) -> np.ndarray:
    if store_fraction <= 0.0:
        return np.zeros(count, dtype=bool)
    if store_fraction >= 1.0:
        return np.ones(count, dtype=bool)
    if rng is None:
        # Deterministic pattern: every k-th reference is a store.
        period = max(1, round(1.0 / store_fraction))
        flags = np.zeros(count, dtype=bool)
        flags[period - 1 :: period] = True
        return flags
    return rng.random(count) < store_fraction


def strided_sweep(
    base: int,
    elem_bytes: int,
    elem_count: int,
    stride_bytes: int,
    sweeps: int = 1,
    store_fraction: float = 0.0,
    rng: np.random.Generator | None = None,
) -> ReferenceTrace:
    """Repeated walks over an array at a fixed stride.

    With ``stride_bytes == elem_bytes`` this is a unit-stride vector sweep
    (tomcatv/swim-like); large strides model column walks that defeat
    short-line caches and conflict badly with long lines.
    """
    if elem_count <= 0 or sweeps <= 0:
        return ReferenceTrace.empty()
    one = base + np.arange(elem_count, dtype=np.int64) * stride_bytes
    addrs = np.tile(one, sweeps)
    return ReferenceTrace(addrs, _store_flags(addrs.size, store_fraction, rng))


def blocked_sweep(
    base: int,
    rows: int,
    cols: int,
    elem_bytes: int,
    block: int,
    sweeps: int = 1,
    store_fraction: float = 0.0,
    rng: np.random.Generator | None = None,
) -> ReferenceTrace:
    """Blocked traversal of a ``rows x cols`` row-major matrix.

    Visits ``block x block`` tiles, row-major within each tile — the
    access pattern of tiled linear algebra (mgrid/applu-like).
    """
    if rows <= 0 or cols <= 0 or sweeps <= 0:
        return ReferenceTrace.empty()
    row_stride = cols * elem_bytes
    tiles = []
    for tile_r in range(0, rows, block):
        for tile_c in range(0, cols, block):
            r_count = min(block, rows - tile_r)
            c_count = min(block, cols - tile_c)
            starts = (
                base
                + (tile_r + np.arange(r_count, dtype=np.int64)) * row_stride
                + tile_c * elem_bytes
            )
            lengths = np.full(r_count, c_count, dtype=np.int64)
            tiles.append(expand_runs(starts, lengths, step=elem_bytes))
    one = np.concatenate(tiles)
    addrs = np.tile(one, sweeps)
    return ReferenceTrace(addrs, _store_flags(addrs.size, store_fraction, rng))


def random_refs(
    rng: np.random.Generator,
    base: int,
    working_set_bytes: int,
    count: int,
    granule_bytes: int = 4,
    store_fraction: float = 0.0,
) -> ReferenceTrace:
    """Uniformly random references over a working set (go/vortex-like)."""
    if count <= 0:
        return ReferenceTrace.empty()
    granules = max(1, working_set_bytes // granule_bytes)
    picks = rng.integers(0, granules, size=count, dtype=np.int64)
    addrs = base + picks * granule_bytes
    return ReferenceTrace(addrs, _store_flags(count, store_fraction, rng))


def pointer_chase(
    rng: np.random.Generator,
    base: int,
    node_count: int,
    node_bytes: int,
    count: int,
    fields_per_visit: int = 2,
    store_fraction: float = 0.0,
) -> ReferenceTrace:
    """Linked-structure traversal (li/perl-like heaps).

    Nodes are visited along a fixed random permutation cycle (the shape of
    a scrambled linked list); each visit touches ``fields_per_visit``
    consecutive words at the node head, giving intra-node spatial locality
    but no inter-node locality.
    """
    if count <= 0 or node_count <= 0:
        return ReferenceTrace.empty()
    order = rng.permutation(node_count).astype(np.int64)
    visits = -(-count // fields_per_visit)
    node_seq = np.tile(order, -(-visits // node_count))[:visits]
    starts = base + node_seq * node_bytes
    lengths = np.full(visits, fields_per_visit, dtype=np.int64)
    addrs = expand_runs(starts, lengths, step=4)[:count]
    return ReferenceTrace(addrs, _store_flags(addrs.size, store_fraction, rng))


def hot_cold_mix(
    rng: np.random.Generator,
    hot_base: int,
    hot_bytes: int,
    cold_base: int,
    cold_bytes: int,
    count: int,
    hot_fraction: float = 0.9,
    run_length: int = 8,
    granule_bytes: int = 4,
    store_fraction: float = 0.0,
) -> ReferenceTrace:
    """Alternating runs over a small hot set and a large cold set.

    Models compiler/interpreter workloads: most references hit a compact
    hot region (stack, symbol tables) with excursions into a large cold
    heap.  Runs of ``run_length`` consecutive words give each excursion
    realistic spatial locality.
    """
    if count <= 0:
        return ReferenceTrace.empty()
    runs = -(-count // run_length)
    is_hot = rng.random(runs) < hot_fraction
    hot_granules = max(1, hot_bytes // granule_bytes - run_length)
    cold_granules = max(1, cold_bytes // granule_bytes - run_length)
    starts = np.where(
        is_hot,
        hot_base + rng.integers(0, hot_granules, size=runs) * granule_bytes,
        cold_base + rng.integers(0, cold_granules, size=runs) * granule_bytes,
    ).astype(np.int64)
    lengths = np.full(runs, run_length, dtype=np.int64)
    addrs = expand_runs(starts, lengths, step=granule_bytes)[:count]
    return ReferenceTrace(addrs, _store_flags(addrs.size, store_fraction, rng))


def stencil_sweep(
    base: int,
    elem_count: int,
    elem_bytes: int,
    neighbor_offsets: tuple[int, ...] = (-1, 0, 1),
    sweeps: int = 1,
    store_fraction: float = 0.0,
    rng: np.random.Generator | None = None,
) -> ReferenceTrace:
    """Unit-stride sweep touching each element's stencil neighbours.

    For every i the trace visits ``a[i + k]`` for each ``k`` in
    ``neighbor_offsets`` — the access pattern of finite-difference codes
    (mgrid, hydro2d).  Each memory line is touched ``len(offsets)`` times
    per sweep, giving the reuse that separates streaming codes from pure
    copy loops.  Offsets may include plane strides (e.g. +/-N for 2-D).
    """
    if elem_count <= 0 or sweeps <= 0:
        return ReferenceTrace.empty()
    lo = -min(neighbor_offsets)
    hi = max(neighbor_offsets)
    centers = np.arange(lo, elem_count - hi, dtype=np.int64)
    if centers.size == 0:
        return ReferenceTrace.empty()
    taps = np.asarray(neighbor_offsets, dtype=np.int64)
    indices = (centers[:, None] + taps[None, :]).reshape(-1)
    one = base + indices * elem_bytes
    addrs = np.tile(one, sweeps)
    return ReferenceTrace(addrs, _store_flags(addrs.size, store_fraction, rng))


def scattered_blocks(
    rng: np.random.Generator,
    base: int,
    block_count: int,
    spread_bytes: int,
    count: int,
    block_bytes: int = 32,
    words_per_visit: int = 2,
    zipf_exponent: float = 1.2,
    store_fraction: float = 0.0,
) -> ReferenceTrace:
    """Zipf-popular accesses to small blocks scattered over a large region.

    Models the boundary rows, pivots and lookup tables of vector codes:
    a few hundred 32-byte blocks spread across megabytes.  A cache with
    many short lines keeps them all; a 32-line column-buffer cache cannot,
    whatever its capacity — this is the placement-slot shortage that makes
    tomcatv/su2cor/swim punish the proposed design (Section 5.3).
    """
    if count <= 0 or block_count <= 0:
        return ReferenceTrace.empty()
    granules = max(1, spread_bytes // block_bytes)
    blocks = base + rng.choice(granules, size=block_count, replace=False).astype(
        np.int64
    ) * block_bytes
    # Zipf-like popularity over the block population.
    ranks = np.arange(1, block_count + 1, dtype=float)
    probs = ranks**-zipf_exponent
    probs /= probs.sum()
    visits = -(-count // words_per_visit)
    picks = rng.choice(block_count, size=visits, p=probs)
    starts = blocks[picks]
    lengths = np.full(visits, words_per_visit, dtype=np.int64)
    addrs = expand_runs(starts, lengths, step=4)[:count]
    return ReferenceTrace(addrs, _store_flags(addrs.size, store_fraction, rng))


def record_walk(
    rng: np.random.Generator,
    base: int,
    record_count: int,
    record_bytes: int,
    touched_bytes: int,
    count: int,
    sequential_fraction: float = 0.0,
    store_fraction: float = 0.0,
) -> ReferenceTrace:
    """Partial accesses to large records (Water's ~600 B molecules).

    Each visit picks a record (sequentially with the given probability,
    randomly otherwise) and touches the first ``touched_bytes`` of it.
    Large, partially-used records defeat long-line prefetching, which is
    exactly why WATER punishes the column-buffer cache (Section 6.2).
    """
    if count <= 0 or record_count <= 0:
        return ReferenceTrace.empty()
    words_per_visit = max(1, touched_bytes // 4)
    visits = -(-count // words_per_visit)
    seq = np.arange(visits, dtype=np.int64) % record_count
    rand = rng.integers(0, record_count, size=visits, dtype=np.int64)
    use_seq = rng.random(visits) < sequential_fraction
    records = np.where(use_seq, seq, rand)
    starts = base + records * record_bytes
    lengths = np.full(visits, words_per_visit, dtype=np.int64)
    addrs = expand_runs(starts, lengths, step=4)[:count]
    return ReferenceTrace(addrs, _store_flags(addrs.size, store_fraction, rng))
