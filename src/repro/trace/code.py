"""Instruction-stream generation: the code walker.

The SPEC'95 I-cache results (Figure 7) are driven entirely by the shape of
each benchmark's dynamic instruction stream: how big the code footprint
is, how long the straight-line runs are, how tight the loops are, and
whether distinct code regions alias in a small cache.  The
:class:`CodeWalker` generates such streams from a handful of parameters.

Execution is modelled as a sequence of *episodes*:

- a **loop episode** re-executes a body of ``body_bytes`` for a geometric
  number of trips;
- a **sequential episode** executes a straight-line run of ``run_bytes``
  (fpppp-style basic-block chains).

Episode start addresses are drawn from a Zipf-like distribution over
function slots so a configurable fraction of dynamic instructions stays
within a hot subset of the footprint.  An optional *aliased call pair*
reproduces turb3d's pathology: a loop whose body calls a function that
maps to the same line(s) of an 8 KB, 512 B-line cache.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigError
from repro.trace.stream import ReferenceTrace, expand_runs

INSTRUCTION_BYTES = 4


@dataclass(frozen=True)
class AliasedCallPair:
    """A loop at ``loop_addr`` calling ``callee_addr`` every iteration.

    When the two addresses fall into the same line of a direct-mapped
    cache, every iteration misses twice.  ``fraction`` is the share of
    dynamic instructions spent in this construct.
    """

    loop_addr: int
    callee_addr: int
    loop_bytes: int = 192
    callee_bytes: int = 224
    fraction: float = 0.35


@dataclass(frozen=True)
class CodeProfile:
    """Parameters describing a benchmark's dynamic code behaviour."""

    code_bytes: int  # total static code footprint
    hot_bytes: int  # size of the hot region most episodes start in
    hot_fraction: float = 0.95  # dynamic share of episodes in the hot region
    loop_fraction: float = 0.7  # share of episodes that are loops
    body_bytes: int = 160  # mean loop body size
    mean_trips: float = 20.0  # mean loop trip count (geometric)
    run_bytes: int = 512  # mean straight-line run length
    aliased: AliasedCallPair | None = None

    def __post_init__(self) -> None:
        if self.code_bytes <= 0 or self.hot_bytes <= 0:
            raise ConfigError("code footprint sizes must be positive")
        if self.hot_bytes > self.code_bytes:
            raise ConfigError("hot region cannot exceed the code footprint")
        for name in ("hot_fraction", "loop_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1]")
        if self.body_bytes <= 0 or self.run_bytes <= 0 or self.mean_trips < 1:
            raise ConfigError("episode sizes must be positive")


class CodeWalker:
    """Generates instruction-fetch address streams from a profile."""

    def __init__(self, profile: CodeProfile, base: int = 0x1_0000) -> None:
        self.profile = profile
        self.base = base

    def _episode_start(self, rng: np.random.Generator, span: int) -> int:
        """A 4-byte-aligned start address inside a region of ``span`` bytes,
        biased toward the region's front (Zipf-like reuse of early slots)."""
        slots = max(1, span // 64)
        # Squaring a uniform variate concentrates mass near zero, giving a
        # heavy-tailed reuse distribution without scipy.
        slot = int(rng.random() ** 2 * slots)
        return min(slot, slots - 1) * 64

    def generate(self, length: int, rng: np.random.Generator) -> ReferenceTrace:
        """An instruction trace of approximately ``length`` references."""
        profile = self.profile
        starts: list[int] = []
        counts: list[int] = []
        produced = 0
        alias = profile.aliased

        def emit(addr: int, nbytes: int) -> None:
            nonlocal produced
            n = max(1, nbytes // INSTRUCTION_BYTES)
            starts.append(self.base + addr)
            counts.append(n)
            produced += n

        while produced < length:
            roll = rng.random()
            if alias is not None and roll < alias.fraction:
                trips = 1 + rng.geometric(1.0 / profile.mean_trips)
                for _ in range(min(trips, length)):
                    emit(alias.loop_addr, alias.loop_bytes // 2)
                    emit(alias.callee_addr, alias.callee_bytes)
                    emit(alias.loop_addr + alias.loop_bytes // 2, alias.loop_bytes // 2)
                    if produced >= length:
                        break
                continue
            hot = rng.random() < profile.hot_fraction
            span = profile.hot_bytes if hot else profile.code_bytes
            start = self._episode_start(rng, span)
            room = profile.code_bytes - start  # episodes stay in the footprint
            if rng.random() < profile.loop_fraction:
                body = max(
                    INSTRUCTION_BYTES,
                    min(int(rng.exponential(profile.body_bytes)), room),
                )
                trips = 1 + rng.geometric(1.0 / profile.mean_trips)
                for _ in range(min(trips, max(1, (length - produced) * 4 // body))):
                    emit(start, body)
            else:
                run = max(
                    INSTRUCTION_BYTES,
                    min(int(rng.exponential(profile.run_bytes)), room),
                )
                emit(start, run)
        addrs = expand_runs(
            np.asarray(starts, dtype=np.int64),
            np.asarray(counts, dtype=np.int64),
            step=INSTRUCTION_BYTES,
        )[:length]
        return ReferenceTrace.reads(addrs)
