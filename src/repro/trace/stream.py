"""Memory-reference traces.

A :class:`ReferenceTrace` is a pair of parallel numpy arrays — byte
addresses and write flags — plus helpers to build, combine and interleave
them.  All trace generators in this package produce these, and all cache
simulators consume them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np


@dataclass(frozen=True)
class ReferenceTrace:
    """An ordered stream of memory references."""

    addresses: np.ndarray  # int64 byte addresses
    is_write: np.ndarray  # bool flags, parallel to addresses

    def __post_init__(self) -> None:
        addrs = np.ascontiguousarray(self.addresses, dtype=np.int64)
        writes = np.ascontiguousarray(self.is_write, dtype=bool)
        if addrs.shape != writes.shape or addrs.ndim != 1:
            raise ValueError("addresses and is_write must be parallel 1-D arrays")
        object.__setattr__(self, "addresses", addrs)
        object.__setattr__(self, "is_write", writes)

    def __len__(self) -> int:
        return int(self.addresses.size)

    def __iter__(self) -> Iterator[tuple[int, bool]]:
        return zip(self.addresses.tolist(), self.is_write.tolist())

    def __getitem__(self, item: slice) -> "ReferenceTrace":
        if not isinstance(item, slice):
            raise TypeError("traces slice to traces; use .addresses for scalars")
        return ReferenceTrace(self.addresses[item], self.is_write[item])

    @property
    def store_fraction(self) -> float:
        return float(self.is_write.mean()) if len(self) else 0.0

    @staticmethod
    def reads(addresses: np.ndarray | Sequence[int]) -> "ReferenceTrace":
        """A read-only trace over the given addresses."""
        addrs = np.asarray(addresses, dtype=np.int64)
        return ReferenceTrace(addrs, np.zeros(addrs.size, dtype=bool))

    @staticmethod
    def from_pairs(pairs: Iterable[tuple[int, bool]]) -> "ReferenceTrace":
        items = list(pairs)
        if not items:
            return ReferenceTrace.empty()
        addrs, writes = zip(*items)
        return ReferenceTrace(
            np.asarray(addrs, dtype=np.int64), np.asarray(writes, dtype=bool)
        )

    @staticmethod
    def empty() -> "ReferenceTrace":
        return ReferenceTrace(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=bool))

    @staticmethod
    def concat(traces: Sequence["ReferenceTrace"]) -> "ReferenceTrace":
        if not traces:
            return ReferenceTrace.empty()
        return ReferenceTrace(
            np.concatenate([t.addresses for t in traces]),
            np.concatenate([t.is_write for t in traces]),
        )

    def take(self, length: int) -> "ReferenceTrace":
        """First ``length`` references, cycling if the trace is shorter."""
        if length <= len(self):
            return self[:length]
        if len(self) == 0:
            raise ValueError("cannot extend an empty trace")
        reps = -(-length // len(self))
        return ReferenceTrace(
            np.tile(self.addresses, reps)[:length],
            np.tile(self.is_write, reps)[:length],
        )

    def offset(self, delta: int) -> "ReferenceTrace":
        """Shift all addresses by ``delta`` bytes."""
        return ReferenceTrace(self.addresses + delta, self.is_write)


def interleave_blocks(
    traces: Sequence[ReferenceTrace],
    weights: Sequence[float],
    block: int,
    length: int,
    rng: np.random.Generator,
) -> ReferenceTrace:
    """Mix several traces by drawing blocks of ``block`` references.

    Each block is taken from one source trace (chosen with the given
    weights), consuming that trace sequentially and cycling when a source
    runs out.  This models phase-interleaved access patterns without
    destroying each pattern's internal locality.
    """
    if len(traces) != len(weights):
        raise ValueError("need one weight per trace")
    weights_arr = np.asarray(weights, dtype=float)
    if weights_arr.sum() <= 0:
        raise ValueError("weights must sum to a positive value")
    probs = weights_arr / weights_arr.sum()
    positions = [0] * len(traces)
    pieces: list[ReferenceTrace] = []
    produced = 0
    num_blocks = -(-length // block)
    choices = rng.choice(len(traces), size=num_blocks, p=probs)
    for choice in choices:
        source = traces[choice]
        if len(source) == 0:
            continue
        start = positions[choice] % len(source)
        end = min(start + block, len(source))
        pieces.append(source[start:end])
        positions[choice] = end % len(source)
        produced += end - start
        if produced >= length:
            break
    mixed = ReferenceTrace.concat(pieces)
    return mixed.take(length) if len(mixed) >= 1 else ReferenceTrace.empty()


def interleave_round_robin(traces: Sequence[ReferenceTrace]) -> ReferenceTrace:
    """Merge traces element-by-element: a0, b0, c0, a1, b1, c1, ...

    This is the access pattern of vector loops like ``a[i] = b[i] + c[i]``:
    several concurrent streams advancing in lock-step.  Traces are
    truncated to the shortest length.
    """
    traces = [t for t in traces if len(t)]
    if not traces:
        return ReferenceTrace.empty()
    shortest = min(len(t) for t in traces)
    addr_matrix = np.stack([t.addresses[:shortest] for t in traces], axis=1)
    write_matrix = np.stack([t.is_write[:shortest] for t in traces], axis=1)
    return ReferenceTrace(addr_matrix.reshape(-1), write_matrix.reshape(-1))


def expand_runs(starts: np.ndarray, lengths: np.ndarray, step: int = 4) -> np.ndarray:
    """Expand (start, length) runs into a flat address array.

    Run *i* contributes ``starts[i], starts[i]+step, ...`` for
    ``lengths[i]`` elements.  This is the vectorized backbone of the
    instruction-stream and strided-data generators.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if starts.shape != lengths.shape:
        raise ValueError("starts and lengths must be parallel")
    if np.any(lengths < 0):
        raise ValueError("run lengths must be non-negative")
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    base = np.repeat(starts, lengths)
    offsets = np.arange(total, dtype=np.int64)
    run_starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    offsets -= np.repeat(run_starts, lengths)
    return base + offsets * step
