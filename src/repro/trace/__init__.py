"""Memory-reference traces and synthetic access-pattern generators."""

from repro.trace.code import AliasedCallPair, CodeProfile, CodeWalker
from repro.trace.phases import Phase, PhaseSchedule, phased_trace
from repro.trace.generators import (
    blocked_sweep,
    scattered_blocks,
    stencil_sweep,
    hot_cold_mix,
    pointer_chase,
    random_refs,
    record_walk,
    strided_sweep,
)
from repro.trace.stream import (
    ReferenceTrace,
    expand_runs,
    interleave_blocks,
    interleave_round_robin,
)

__all__ = [
    "AliasedCallPair",
    "CodeProfile",
    "CodeWalker",
    "Phase",
    "PhaseSchedule",
    "phased_trace",
    "ReferenceTrace",
    "blocked_sweep",
    "expand_runs",
    "hot_cold_mix",
    "interleave_blocks",
    "interleave_round_robin",
    "pointer_chase",
    "random_refs",
    "record_walk",
    "scattered_blocks",
    "stencil_sweep",
    "strided_sweep",
]
