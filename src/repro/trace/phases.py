"""Phase-structured reference streams.

Real programs run in *phases* — initialization, compute loops, output —
each with its own access pattern; miss rates measured across a phase
change differ from any single pattern's.  ``phased_trace`` concatenates
sub-traces with optional per-phase repetition, and ``PhaseSchedule``
describes a cyclic schedule (useful for iterative solvers that alternate
sweep directions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.trace.stream import ReferenceTrace


@dataclass(frozen=True)
class Phase:
    """One phase: a trace and how many times it repeats before moving on."""

    trace: ReferenceTrace
    repeats: int = 1

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ConfigError("phase must repeat at least once")
        if len(self.trace) == 0:
            raise ConfigError("phase trace must be non-empty")


@dataclass(frozen=True)
class PhaseSchedule:
    """A cyclic sequence of phases."""

    phases: tuple[Phase, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigError("schedule needs at least one phase")

    @property
    def cycle_length(self) -> int:
        return sum(len(p.trace) * p.repeats for p in self.phases)

    def generate(self, length: int) -> ReferenceTrace:
        """A trace of exactly ``length`` references cycling the schedule."""
        if length <= 0:
            raise ConfigError("length must be positive")
        pieces: list[ReferenceTrace] = []
        produced = 0
        while produced < length:
            for phase in self.phases:
                for _ in range(phase.repeats):
                    pieces.append(phase.trace)
                    produced += len(phase.trace)
                    if produced >= length:
                        break
                if produced >= length:
                    break
        return ReferenceTrace.concat(pieces)[:length]


def phased_trace(phases: list[tuple[ReferenceTrace, int]], length: int) -> ReferenceTrace:
    """Convenience wrapper: build a schedule and generate in one call."""
    schedule = PhaseSchedule(tuple(Phase(trace, reps) for trace, reps in phases))
    return schedule.generate(length)
