"""The full uniprocessor performance pipeline (Section 5.5).

``integrated_cpi`` and ``conventional_cpi`` reproduce the paper's
methodology end-to-end: trace-driven miss rates are dialed into the
Figure 10 GSPN, the Monte-Carlo CPI gives the *memory* component
(anything above the net's ideal CPI of 1), and the benchmark's base CPI
from the functional-unit model supplies the *cpu* component — the
``cpu + memory`` split of Table 3.  Spec-ratios follow via the
per-benchmark conversion constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.paperdata import PAPER_TABLE4, spec_ratio_constant
from repro.common.rng import make_rng, split_rng
from repro.gspn.models import (
    ISSUE_TRANSITION,
    ProcessorNetParams,
    build_processor_net,
)
from repro.gspn.sim import GSPNSimulator
from repro.uniproc.measurement import MissRates, measure_conventional, measure_integrated
from repro.workloads.spec.model import SpecProxy


@dataclass(frozen=True)
class CPIEstimate:
    """One benchmark's estimated performance."""

    name: str
    cpu_cpi: float
    memory_cpi: float

    @property
    def total_cpi(self) -> float:
        return self.cpu_cpi + self.memory_cpi

    @property
    def spec_ratio(self) -> float | None:
        """Spec-ratio estimate; None for non-SPEC benchmarks (Synopsys)."""
        if self.name not in PAPER_TABLE4:
            return None
        return spec_ratio_constant(self.name) / self.total_cpi


def _gspn_memory_cpi(
    proxy: SpecProxy,
    rates: MissRates,
    instructions: int,
    seed: int,
    **net_overrides,
) -> float:
    params = ProcessorNetParams(
        p_load=proxy.mix.p_load,
        p_store=proxy.mix.p_store,
        ifetch=rates.ifetch,
        load=rates.load,
        store=rates.store,
        **net_overrides,
    )
    net = build_processor_net(params)
    rng = split_rng(make_rng(seed), proxy.name, "gspn")
    sim = GSPNSimulator(net, rng)
    result = sim.run(stop_transition=ISSUE_TRANSITION, stop_count=instructions)
    cpi = result.time / result.firings[ISSUE_TRANSITION]
    return max(0.0, cpi - 1.0)


def integrated_cpi(
    proxy: SpecProxy,
    with_victim: bool = True,
    trace_len: int = 150_000,
    instructions: int = 20_000,
    seed: int = 0,
    mem_access: float = 6.0,
    num_banks: int = 16,
    scoreboard_rate: float | None = 1.0,
) -> CPIEstimate:
    """CPI of the proposed integrated device for one benchmark."""
    rates = measure_integrated(proxy, trace_len, seed, with_victim)
    memory = _gspn_memory_cpi(
        proxy,
        rates,
        instructions,
        seed,
        mem_access=mem_access,
        num_banks=num_banks,
        scoreboard_rate=scoreboard_rate,
        has_l2=False,
    )
    return CPIEstimate(proxy.name, proxy.base_cpi(), memory)


def conventional_cpi(
    proxy: SpecProxy,
    l2_latency: float = 6.0,
    mem_latency: float = 24.0,
    trace_len: int = 150_000,
    instructions: int = 20_000,
    seed: int = 0,
    num_banks: int = 2,
    scoreboard_rate: float | None = 1.0,
) -> CPIEstimate:
    """CPI of the conventional reference system (Figure 11's subject)."""
    rates = measure_conventional(proxy, trace_len, seed)
    memory = _gspn_memory_cpi(
        proxy,
        rates,
        instructions,
        seed,
        mem_access=mem_latency,
        l2_latency=l2_latency,
        num_banks=num_banks,
        scoreboard_rate=scoreboard_rate,
        has_l2=True,
    )
    return CPIEstimate(proxy.name, proxy.base_cpi(), memory)
