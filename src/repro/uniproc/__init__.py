"""Uniprocessor performance pipeline: miss rates -> GSPN -> CPI -> Spec."""

from repro.uniproc.measurement import (
    MissRates,
    measure_conventional,
    measure_integrated,
)
from repro.uniproc.pipeline import CPIEstimate, conventional_cpi, integrated_cpi

__all__ = [
    "CPIEstimate",
    "MissRates",
    "conventional_cpi",
    "integrated_cpi",
    "measure_conventional",
    "measure_integrated",
]
