"""Miss-rate measurement: from workload proxy traces to GSPN inputs.

The paper "dials" hit/miss ratios measured by trace-driven simulation
directly into the Petri-net models (Section 5.5).  This module runs a
proxy's instruction and data traces through the proposed column-buffer
caches or a conventional two-level hierarchy and packages the resulting
service-level fractions as :class:`~repro.gspn.models.MemoryPathProbs`.

Instruction and data references interleave in blocks sized by the
proxy's instruction mix, so a shared second-level cache sees a realistic
mixed stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caches.column_buffer import proposed_dcache, proposed_icache
from repro.caches.hierarchy import conventional_hierarchies
from repro.common.params import ConventionalSystemParams, IntegratedDeviceParams
from repro.gspn.models import MemoryPathProbs
from repro.workloads.spec.model import SpecProxy

_INTERLEAVE_BLOCK = 64


@dataclass(frozen=True)
class MissRates:
    """Service-level fractions ready to dial into the processor GSPN."""

    ifetch: MemoryPathProbs
    load: MemoryPathProbs
    store: MemoryPathProbs
    icache_miss_rate: float
    dcache_miss_rate: float


def _interleaved(proxy: SpecProxy, trace_len: int, seed: int):
    """Pairs of (instruction block, data block) in mix proportion."""
    mix = proxy.mix
    data_per_instr = mix.p_load + mix.p_store
    itrace = proxy.instruction_trace(trace_len, seed)
    dtrace = proxy.data_trace(max(1, int(trace_len * data_per_instr)), seed)
    d_block = max(1, int(_INTERLEAVE_BLOCK * data_per_instr))
    i_pos = d_pos = 0
    while i_pos < len(itrace):
        yield (
            itrace[i_pos : i_pos + _INTERLEAVE_BLOCK],
            dtrace[d_pos : d_pos + d_block],
        )
        i_pos += _INTERLEAVE_BLOCK
        d_pos += d_block
        if d_pos >= len(dtrace):
            d_pos = 0


def measure_integrated(
    proxy: SpecProxy,
    trace_len: int = 150_000,
    seed: int = 0,
    with_victim: bool = True,
    params: IntegratedDeviceParams | None = None,
) -> MissRates:
    """Miss rates on the proposed device's column-buffer caches."""
    icache = proposed_icache(params)
    dcache = proposed_dcache(params, with_victim=with_victim)
    for i_block, d_block in _interleaved(proxy, trace_len, seed):
        icache.run(i_block)
        dcache.run(d_block)
    istats, dstats = icache.stats, dcache.stats
    return MissRates(
        ifetch=MemoryPathProbs(hit=istats.loads.hit_rate),
        load=MemoryPathProbs(hit=dstats.loads.hit_rate),
        store=MemoryPathProbs(hit=dstats.stores.hit_rate if dstats.stores.total
                              else dstats.loads.hit_rate),
        icache_miss_rate=istats.miss_rate,
        dcache_miss_rate=dstats.miss_rate,
    )


def measure_conventional(
    proxy: SpecProxy,
    trace_len: int = 150_000,
    seed: int = 0,
    params: ConventionalSystemParams | None = None,
) -> MissRates:
    """Miss rates on the conventional split-L1 + shared-L2 reference."""
    ihier, dhier = conventional_hierarchies(params)
    for i_block, d_block in _interleaved(proxy, trace_len, seed):
        ihier.run(i_block)
        dhier.run(d_block)

    def probs(l1_hit: float, l2_among_misses: float) -> MemoryPathProbs:
        l2 = (1.0 - l1_hit) * l2_among_misses
        return MemoryPathProbs(hit=l1_hit, l2=min(l2, 1.0 - l1_hit))

    i_l2 = ihier.stats.l2_local_hit_rate
    d_l2 = dhier.stats.l2_local_hit_rate
    return MissRates(
        ifetch=probs(ihier.stats.l1_hit_rate, i_l2),
        load=probs(
            dhier.stats.l1_loads.hit_rate if dhier.stats.l1_loads.total else 1.0,
            d_l2,
        ),
        store=probs(
            dhier.stats.l1_stores.hit_rate if dhier.stats.l1_stores.total else 1.0,
            d_l2,
        ),
        icache_miss_rate=ihier.stats.l1_miss_rate,
        dcache_miss_rate=dhier.stats.l1_miss_rate,
    )
