"""Miss-rate measurement: from workload proxy traces to GSPN inputs.

The paper "dials" hit/miss ratios measured by trace-driven simulation
directly into the Petri-net models (Section 5.5).  This module runs a
proxy's instruction and data traces through the proposed column-buffer
caches or a conventional two-level hierarchy and packages the resulting
service-level fractions as :class:`~repro.gspn.models.MemoryPathProbs`.

Instruction and data references interleave in blocks sized by the
proxy's instruction mix, so a shared second-level cache sees a realistic
mixed stream.

Both measurements dispatch onto the vectorized fast paths of
:mod:`repro.caches.fast` when the cache configuration qualifies (every
default configuration does): the integrated device's I- and D-caches
are private, so each runs its full (wrap-reconstructed) stream through
:func:`~repro.caches.fast.simulate_column_buffer` in one shot, and the
conventional system computes both L1 miss-flag vectors first, then
merges the two miss streams *in interleave order* into the single
shared-L2 reference stream.  Block-by-block interleaving and whole-
stream simulation are equivalent for the private caches because each
cache simply sees its own references in time order; the shared L2 is
the only point where the interleave matters, and the merge preserves
it exactly.  ``engine="exact"`` forces the object-oriented simulators —
the differential tests assert both engines produce identical
:class:`MissRates`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.common import tally
from repro.caches.column_buffer import proposed_dcache, proposed_icache
from repro.caches.fast import (
    ratio_from_flags,
    column_buffer_fast,
    column_buffer_fast_supported,
    set_assoc_miss_flags,
)
from repro.caches.hierarchy import HierarchyStats, conventional_hierarchies
from repro.common.params import ConventionalSystemParams, IntegratedDeviceParams
from repro.gspn.models import MemoryPathProbs
from repro.workloads.spec.model import SpecProxy

_INTERLEAVE_BLOCK = 64


@dataclass(frozen=True)
class MissRates:
    """Service-level fractions ready to dial into the processor GSPN."""

    ifetch: MemoryPathProbs
    load: MemoryPathProbs
    store: MemoryPathProbs
    icache_miss_rate: float
    dcache_miss_rate: float


def _interleaved(proxy: SpecProxy, trace_len: int, seed: int):
    """Pairs of (instruction block, data block) in mix proportion."""
    mix = proxy.mix
    data_per_instr = mix.p_load + mix.p_store
    itrace = proxy.instruction_trace(trace_len, seed)
    dtrace = proxy.data_trace(max(1, int(trace_len * data_per_instr)), seed)
    d_block = max(1, int(_INTERLEAVE_BLOCK * data_per_instr))
    i_pos = d_pos = 0
    while i_pos < len(itrace):
        yield (
            itrace[i_pos : i_pos + _INTERLEAVE_BLOCK],
            dtrace[d_pos : d_pos + d_block],
        )
        i_pos += _INTERLEAVE_BLOCK
        d_pos += d_block
        if d_pos >= len(dtrace):
            d_pos = 0


def _concat_blocks(blocks):
    """The interleaved blocks flattened back into per-cache streams.

    Returns ``(i_addrs, i_writes, d_addrs, d_writes)``.  The instruction
    stream is the original trace; the data stream reproduces the
    wrap-around replay of :func:`_interleaved` exactly (the generator
    restarts the data trace whenever it runs dry), so a private cache
    consuming the concatenation sees the same references in the same
    order as one consuming the blocks one by one.
    """
    i_addrs = np.concatenate([b.addresses for b, _ in blocks])
    i_writes = np.concatenate([b.is_write for b, _ in blocks])
    d_addrs = np.concatenate([d.addresses for _, d in blocks])
    d_writes = np.concatenate([d.is_write for _, d in blocks])
    return i_addrs, i_writes, d_addrs, d_writes


def measure_integrated(
    proxy: SpecProxy,
    trace_len: int = 150_000,
    seed: int = 0,
    with_victim: bool = True,
    params: IntegratedDeviceParams | None = None,
    engine: str = "auto",
) -> MissRates:
    """Miss rates on the proposed device's column-buffer caches."""
    params = params or IntegratedDeviceParams()
    victim = params.victim if with_victim else None
    blocks = list(_interleaved(proxy, trace_len, seed))
    fast_ok = (
        blocks
        and column_buffer_fast_supported(params.icache_geometry)
        and column_buffer_fast_supported(params.dcache_geometry, victim)
    )
    if engine != "exact" and fast_ok:
        i_addrs, i_writes, d_addrs, d_writes = _concat_blocks(blocks)
        with obs.span("cache/fast/column-buffer"):
            ires = column_buffer_fast(i_addrs, i_writes, params.icache_geometry)
            dres = column_buffer_fast(
                d_addrs, d_writes, params.dcache_geometry, victim
            )
            tally.add("cache_refs", int(i_addrs.size + d_addrs.size))
        istats, dstats = ires.stats, dres.stats
    else:
        icache = proposed_icache(params)
        dcache = proposed_dcache(params, with_victim=with_victim)
        for i_block, d_block in blocks:
            icache.run(i_block)
            dcache.run(d_block)
        istats, dstats = icache.stats, dcache.stats
    return MissRates(
        ifetch=MemoryPathProbs(hit=istats.loads.hit_rate),
        load=MemoryPathProbs(hit=dstats.loads.hit_rate),
        store=MemoryPathProbs(hit=dstats.stores.hit_rate if dstats.stores.total
                              else dstats.loads.hit_rate),
        icache_miss_rate=istats.miss_rate,
        dcache_miss_rate=dstats.miss_rate,
    )


def _conventional_fast(
    blocks, params: ConventionalSystemParams
) -> tuple[HierarchyStats, HierarchyStats]:
    """Both hierarchies' stats via one vectorized pass per cache.

    The L1s are private, so their miss flags come from whole-stream
    passes; the shared L2 sees the two L1 miss streams merged block by
    block in the exact order the object-oriented hierarchies would
    issue them (instruction block first, then its data block).
    """
    i_addrs, i_writes, d_addrs, d_writes = _concat_blocks(blocks)
    with obs.span("cache/fast/two-level"):
        i_flags = set_assoc_miss_flags(i_addrs, params.l1i)
        d_flags = set_assoc_miss_flags(d_addrs, params.l1d)
        l2_parts: list[np.ndarray] = []
        from_i: list[bool] = []
        i_pos = d_pos = 0
        for i_block, d_block in blocks:
            n_i, n_d = len(i_block), len(d_block)
            l2_parts.append(
                i_addrs[i_pos : i_pos + n_i][i_flags[i_pos : i_pos + n_i]]
            )
            from_i.append(True)
            l2_parts.append(
                d_addrs[d_pos : d_pos + n_d][d_flags[d_pos : d_pos + n_d]]
            )
            from_i.append(False)
            i_pos += n_i
            d_pos += n_d
        l2_addrs = np.concatenate(l2_parts)
        l2_src_i = np.concatenate(
            [np.full(part.size, src, dtype=bool)
             for part, src in zip(l2_parts, from_i)]
        )
        l2_flags = set_assoc_miss_flags(l2_addrs, params.l2)
        istats = HierarchyStats(
            l1_loads=ratio_from_flags(i_flags[~i_writes]),
            l1_stores=ratio_from_flags(i_flags[i_writes]),
            l2=ratio_from_flags(l2_flags[l2_src_i]),
        )
        dstats = HierarchyStats(
            l1_loads=ratio_from_flags(d_flags[~d_writes]),
            l1_stores=ratio_from_flags(d_flags[d_writes]),
            l2=ratio_from_flags(l2_flags[~l2_src_i]),
        )
        tally.add("cache_refs", int(i_addrs.size + d_addrs.size))
    return istats, dstats


def measure_conventional(
    proxy: SpecProxy,
    trace_len: int = 150_000,
    seed: int = 0,
    params: ConventionalSystemParams | None = None,
    engine: str = "auto",
) -> MissRates:
    """Miss rates on the conventional split-L1 + shared-L2 reference."""
    params = params or ConventionalSystemParams()
    blocks = list(_interleaved(proxy, trace_len, seed))
    if engine != "exact" and blocks:
        istats, dstats = _conventional_fast(blocks, params)
    else:
        ihier, dhier = conventional_hierarchies(params)
        for i_block, d_block in blocks:
            ihier.run(i_block)
            dhier.run(d_block)
        istats, dstats = ihier.stats, dhier.stats

    def probs(l1_hit: float, l2_among_misses: float) -> MemoryPathProbs:
        l2 = (1.0 - l1_hit) * l2_among_misses
        return MemoryPathProbs(hit=l1_hit, l2=min(l2, 1.0 - l1_hit))

    i_l2 = istats.l2_local_hit_rate
    d_l2 = dstats.l2_local_hit_rate
    return MissRates(
        ifetch=probs(istats.l1_hit_rate, i_l2),
        load=probs(
            dstats.l1_loads.hit_rate if dstats.l1_loads.total else 1.0,
            d_l2,
        ),
        store=probs(
            dstats.l1_stores.hit_rate if dstats.l1_stores.total else 1.0,
            d_l2,
        ),
        icache_miss_rate=istats.l1_miss_rate,
        dcache_miss_rate=dstats.l1_miss_rate,
    )
