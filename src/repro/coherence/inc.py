"""The Inter-Node Cache (Figure 6).

Imported (remote) data is cached in a reserved fraction of local DRAM.
Seven 32-byte lines live in each 256-byte half-column alongside a
32-byte tag block, making the cache 7-way set-associative; every access
pays the local-memory latency plus one tag-check cycle (Table 6).
"""

from __future__ import annotations

from repro.common.address import set_index, tag_of
from repro.common.errors import ConfigError
from repro.common.params import COHERENCE_UNIT_BYTES, INC_WAYS
from repro.common.units import MB, is_power_of_two


class InterNodeCache:
    """7-way set-associative LRU cache of imported 32 B blocks.

    ``probe`` looks a block up (updating LRU and hit statistics),
    ``install`` allocates after a remote fill, ``invalidate`` drops a
    block on a coherence invalidation, and ``on_evict`` (if given) is
    called with the address of every block displaced by ``install`` so
    the directory can retire the copy.
    """

    def __init__(self, reserved_bytes: int = 1 * MB, on_evict=None) -> None:
        sets = reserved_bytes // (8 * COHERENCE_UNIT_BYTES)
        if sets < 1 or not is_power_of_two(sets):
            raise ConfigError("INC reservation must give a power-of-two set count")
        self.reserved_bytes = reserved_bytes
        self.ways = INC_WAYS
        self.line_bytes = COHERENCE_UNIT_BYTES
        self.num_sets = sets
        self._on_evict = on_evict
        self._sets: list[list[int]] = [[] for _ in range(sets)]  # tags, MRU last
        self.probes = 0
        self.hits = 0
        self.installs = 0
        self.evictions = 0

    @property
    def data_capacity_bytes(self) -> int:
        return self.num_sets * self.ways * self.line_bytes

    def _locate(self, addr: int) -> tuple[list[int], int]:
        index = set_index(addr, self.line_bytes, self.num_sets)
        tag = tag_of(addr, self.line_bytes, self.num_sets)
        return self._sets[index], tag

    def probe(self, addr: int) -> bool:
        self.probes += 1
        tags, tag = self._locate(addr)
        if tag in tags:
            self.hits += 1
            if tags[-1] != tag:
                tags.remove(tag)
                tags.append(tag)
            return True
        return False

    def install(self, addr: int) -> None:
        tags, tag = self._locate(addr)
        if tag in tags:
            tags.remove(tag)
            tags.append(tag)
            return
        if len(tags) >= self.ways:
            victim_tag = tags.pop(0)
            self.evictions += 1
            if self._on_evict is not None:
                index = set_index(addr, self.line_bytes, self.num_sets)
                bits_line = (self.line_bytes - 1).bit_length()
                bits_set = (self.num_sets - 1).bit_length()
                victim_addr = (victim_tag << (bits_line + bits_set)) | (
                    index << bits_line
                )
                self._on_evict(victim_addr)
        tags.append(tag)
        self.installs += 1

    def invalidate(self, addr: int) -> None:
        tags, tag = self._locate(addr)
        if tag in tags:
            tags.remove(tag)

    def contains(self, addr: int) -> bool:
        tags, tag = self._locate(addr)
        return tag in tags

    @property
    def hit_rate(self) -> float:
        return self.hits / self.probes if self.probes else 0.0

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]
        self.probes = 0
        self.hits = 0
        self.installs = 0
        self.evictions = 0
