"""Directory-based write-invalidate coherence (Sections 4.2, 6.1).

Coherence is maintained on 32-byte blocks by a directory co-located with
each block's home memory (stored in the spare ECC bits — the bit-level
encoding is proved out in :mod:`repro.dram.directory`; here the protocol
keeps full sharer sets for simulation).

States follow MSI as seen from the home:

- ``UNOWNED``: memory holds the only copy;
- ``SHARED``: one or more nodes hold read-only copies;
- ``EXCLUSIVE``: exactly one node holds a writable (possibly dirty) copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.common.errors import ConfigError, ProtocolError
from repro.common.params import COHERENCE_UNIT_BYTES


class BlockState(Enum):
    UNOWNED = "unowned"
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


def _at(addr: int | None) -> str:
    return f" at block 0x{addr:x}" if addr is not None else ""


@dataclass
class BlockEntry:
    state: BlockState = BlockState.UNOWNED
    sharers: set[int] = field(default_factory=set)
    owner: int | None = None

    def check(self, num_nodes: int | None = None, addr: int | None = None) -> None:
        """Protocol invariants (exercised heavily by the test suite).

        ``num_nodes`` additionally bounds every owner/sharer id to the
        configured machine size; ``addr`` names the offending block in the
        :class:`ProtocolError` message.
        """
        if self.state is BlockState.UNOWNED and (self.sharers or self.owner is not None):
            raise ProtocolError(f"UNOWNED block has copies{_at(addr)}")
        if self.state is BlockState.SHARED and (not self.sharers or self.owner is not None):
            raise ProtocolError(f"SHARED block inconsistent{_at(addr)}")
        if self.state is BlockState.EXCLUSIVE and (
            self.owner is None or self.sharers
        ):
            raise ProtocolError(f"EXCLUSIVE block inconsistent{_at(addr)}")
        ids = set(self.sharers)
        if self.owner is not None:
            ids.add(self.owner)
        negative = sorted(i for i in ids if i < 0)
        if negative:
            raise ProtocolError(f"negative node id(s) {negative}{_at(addr)}")
        if num_nodes is not None:
            out_of_range = sorted(i for i in ids if i >= num_nodes)
            if out_of_range:
                raise ProtocolError(
                    f"node id(s) {out_of_range} out of range for a "
                    f"{num_nodes}-node system{_at(addr)}"
                )


@dataclass
class ProtocolStats:
    read_local: int = 0
    read_remote: int = 0
    write_local: int = 0
    write_remote: int = 0
    invalidations_sent: int = 0
    recalls: int = 0
    writebacks: int = 0


class Directory:
    """All directory entries, keyed by block address.

    ``num_nodes``, when given, makes every runtime invariant check also
    validate node ids (requester, home, owner, sharers) against the
    configured machine size instead of accepting arbitrary ints.
    """

    def __init__(
        self,
        block_bytes: int = COHERENCE_UNIT_BYTES,
        num_nodes: int | None = None,
    ) -> None:
        if num_nodes is not None and num_nodes < 1:
            raise ConfigError("num_nodes must be positive when given")
        self.block_bytes = block_bytes
        self.num_nodes = num_nodes
        self._entries: dict[int, BlockEntry] = {}
        self.stats = ProtocolStats()

    def block_of(self, addr: int) -> int:
        return addr - (addr % self.block_bytes)

    def _check_node(self, node: int, role: str, addr: int) -> None:
        if node < 0 or (self.num_nodes is not None and node >= self.num_nodes):
            bound = self.num_nodes if self.num_nodes is not None else "?"
            raise ProtocolError(
                f"{role} {node} out of range for a {bound}-node "
                f"system{_at(self.block_of(addr))}"
            )

    def entry(self, addr: int) -> BlockEntry:
        block = self.block_of(addr)
        found = self._entries.get(block)
        if found is None:
            found = BlockEntry()
            self._entries[block] = found
        return found

    def copies_to_invalidate(self, addr: int, requester: int) -> set[int]:
        """Nodes (other than the requester) holding copies of ``addr``."""
        entry = self.entry(addr)
        if entry.state is BlockState.SHARED:
            return entry.sharers - {requester}
        if entry.state is BlockState.EXCLUSIVE and entry.owner != requester:
            return {entry.owner}
        return set()

    # -- state transitions --------------------------------------------------
    # Each returns the set of nodes whose cached copies must be dropped.

    def record_read(self, addr: int, requester: int, home: int) -> set[int]:
        """A read by ``requester`` reaches the home directory."""
        self._check_node(requester, "requester", addr)
        self._check_node(home, "home", addr)
        entry = self.entry(addr)
        entry.check(self.num_nodes, self.block_of(addr))
        demoted: set[int] = set()
        if entry.state is BlockState.EXCLUSIVE and entry.owner != requester:
            # Owner writes back; both keep shared copies (or home memory
            # regains ownership if the reader is the home itself).
            self.stats.recalls += 1
            self.stats.writebacks += 1
            previous_owner = entry.owner
            entry.state = BlockState.SHARED
            entry.sharers = {previous_owner}
            entry.owner = None
        if requester != home:
            if entry.state is BlockState.EXCLUSIVE:
                pass  # requester already owns it
            else:
                entry.sharers.add(requester)
                entry.state = BlockState.SHARED
        elif entry.state is BlockState.SHARED and not entry.sharers:
            entry.state = BlockState.UNOWNED
        entry.check(self.num_nodes, self.block_of(addr))
        return demoted

    def record_write(self, addr: int, requester: int, home: int) -> set[int]:
        """A write by ``requester``: invalidate every other copy."""
        self._check_node(requester, "requester", addr)
        self._check_node(home, "home", addr)
        entry = self.entry(addr)
        entry.check(self.num_nodes, self.block_of(addr))
        victims = self.copies_to_invalidate(addr, requester)
        if victims:
            self.stats.invalidations_sent += len(victims)
            if entry.state is BlockState.EXCLUSIVE:
                self.stats.writebacks += 1
        if requester == home:
            # Home writes its own memory: memory is the owner again.
            entry.state = BlockState.UNOWNED
            entry.sharers = set()
            entry.owner = None
        else:
            entry.state = BlockState.EXCLUSIVE
            entry.sharers = set()
            entry.owner = requester
        entry.check(self.num_nodes, self.block_of(addr))
        return victims

    def record_eviction(self, addr: int, node: int) -> None:
        """``node`` dropped its copy (cache replacement)."""
        self._check_node(node, "evicting node", addr)
        entry = self.entry(addr)
        if entry.state is BlockState.EXCLUSIVE and entry.owner == node:
            self.stats.writebacks += 1
            entry.state = BlockState.UNOWNED
            entry.owner = None
        else:
            entry.sharers.discard(node)
            if entry.state is BlockState.SHARED and not entry.sharers:
                entry.state = BlockState.UNOWNED
        entry.check(self.num_nodes, self.block_of(addr))

    def is_remote_exclusive(self, addr: int, node: int) -> bool:
        entry = self.entry(addr)
        return entry.state is BlockState.EXCLUSIVE and entry.owner != node

    def is_owner(self, addr: int, node: int) -> bool:
        entry = self.entry(addr)
        return entry.state is BlockState.EXCLUSIVE and entry.owner == node
