"""Directory-based write-invalidate coherence and the Inter-Node Cache."""

from repro.coherence.engines import EngineReport, engine_report
from repro.coherence.inc import InterNodeCache
from repro.coherence.protocol import (
    BlockEntry,
    BlockState,
    Directory,
    ProtocolStats,
)

__all__ = [
    "BlockEntry",
    "EngineReport",
    "engine_report",
    "BlockState",
    "Directory",
    "InterNodeCache",
    "ProtocolStats",
]
