"""Protocol-engine occupancy model (Section 4.2, [19]).

The device carries two microcoded protocol engines — one for requests
the local processor sends out, one for requests arriving from the
network — in ~60 K gates freed by the serial-link interface.  The MP
latencies of Table 6 presume the engines are never the bottleneck; this
model checks that assumption: given the message traffic of a run, it
reports each engine's occupancy and the onset of queueing.

Engine service times follow the S3.mp protocol engine description:
a handful of microcode dispatch cycles per message plus data movement
for block-carrying messages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.interconnect.fabric import FabricStats, MessageType

DEFAULT_SERVICE_CYCLES: dict[MessageType, int] = {
    MessageType.READ_REQUEST: 12,
    MessageType.READ_REPLY: 16,  # includes 32 B data movement
    MessageType.WRITE_REQUEST: 14,
    MessageType.INVALIDATE: 10,
    MessageType.ACK: 6,
    MessageType.WRITEBACK: 16,
}


@dataclass(frozen=True)
class EngineReport:
    """Occupancy of the two protocol engines over one run."""

    outbound_busy_cycles: int  # local requests + their replies
    inbound_busy_cycles: int  # remote requests served + invalidations
    elapsed_cycles: int
    num_nodes: int

    @property
    def outbound_occupancy(self) -> float:
        return self._occ(self.outbound_busy_cycles)

    @property
    def inbound_occupancy(self) -> float:
        return self._occ(self.inbound_busy_cycles)

    def _occ(self, busy: int) -> float:
        denom = self.elapsed_cycles * self.num_nodes
        return min(1.0, busy / denom) if denom else 0.0

    @property
    def saturated(self) -> bool:
        """Queueing becomes significant beyond ~70 % occupancy."""
        return max(self.outbound_occupancy, self.inbound_occupancy) > 0.7


# Which engine handles each message class (mirrored request/reply pairs:
# the outbound engine issues requests and absorbs replies; the inbound
# engine serves requests from other nodes and sends their replies).
_OUTBOUND = {MessageType.READ_REQUEST, MessageType.WRITE_REQUEST, MessageType.ACK}
_INBOUND = {MessageType.READ_REPLY, MessageType.INVALIDATE, MessageType.WRITEBACK}


def engine_report(
    fabric_stats: FabricStats,
    elapsed_cycles: int,
    num_nodes: int,
    service_cycles: dict[MessageType, int] | None = None,
) -> EngineReport:
    """Occupancy of the protocol engines given one run's message counts.

    Each message occupies one engine on its sender and one on its
    receiver; occupancy is averaged over nodes, so the report describes
    the *mean* engine — hotspot analysis would need per-node counts.
    """
    if elapsed_cycles <= 0 or num_nodes <= 0:
        raise ConfigError("elapsed cycles and node count must be positive")
    service = service_cycles or DEFAULT_SERVICE_CYCLES
    outbound = 0
    inbound = 0
    for kind, count in fabric_stats.messages.items():
        cost = count * service[kind]
        if kind in _OUTBOUND:
            outbound += cost
            inbound += cost  # the peer's engine also handles it
        else:
            inbound += cost
            outbound += cost
    # Each side's engine sees roughly half of the combined handling.
    return EngineReport(
        outbound_busy_cycles=outbound // 2,
        inbound_busy_cycles=inbound // 2,
        elapsed_cycles=elapsed_cycles,
        num_nodes=num_nodes,
    )
