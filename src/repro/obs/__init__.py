"""Observability: hierarchical span tracing and its exporters.

The package-wide tracing layer behind ``python -m repro <experiment>
--trace out.json`` and ``--perf-summary``:

- :mod:`repro.obs.spans` — the tracer itself: ``span()`` context
  managers with monotonic timing, nesting, counter attachment, and
  automatic :mod:`repro.common.tally` delta capture.  Off by default;
  the disabled path is a shared no-op object, cheap enough to leave in
  every hot entry point.
- :mod:`repro.obs.export` — the Chrome trace-event JSON exporter
  (loadable in Perfetto) and the per-run ``BENCH_<fingerprint>.json``
  perf summary.

All four modeling layers are instrumented at their run() granularity:
trace generation (``trace/gen/*``), trace-driven cache sweeps
(``cache/*``), the GSPN event loop (``gspn/run/*``), the MP engine
(``mp/run``), and the supervised runner (``task/<experiment>/<shard>``).
Spans recorded inside pool workers ride back on the supervised
executor's verified result messages and are absorbed by the parent, so
``--jobs N`` traces are as complete as inline ones.
"""

from repro.obs.export import (
    DEFAULT_BENCH_DIR,
    EVENT_COUNTERS,
    PERF_SUMMARY_SCHEMA_VERSION,
    aggregate_stages,
    chrome_trace,
    default_bench_path,
    perf_summary,
    write_chrome_trace,
    write_perf_summary,
)
from repro.obs.spans import (
    ENV_FLAG,
    SpanRecord,
    absorb,
    add,
    disable,
    enable,
    enabled,
    mark,
    records,
    reset,
    rollback,
    since,
    span,
)

__all__ = [
    "DEFAULT_BENCH_DIR",
    "ENV_FLAG",
    "EVENT_COUNTERS",
    "PERF_SUMMARY_SCHEMA_VERSION",
    "SpanRecord",
    "absorb",
    "add",
    "aggregate_stages",
    "chrome_trace",
    "default_bench_path",
    "disable",
    "enable",
    "enabled",
    "mark",
    "perf_summary",
    "records",
    "reset",
    "rollback",
    "since",
    "span",
    "write_chrome_trace",
    "write_perf_summary",
]
