"""Observability: hierarchical span tracing and its exporters.

The package-wide tracing layer behind ``python -m repro <experiment>
--trace out.json`` and ``--perf-summary``:

- :mod:`repro.obs.spans` — the tracer itself: ``span()`` context
  managers with monotonic timing, nesting, counter attachment,
  automatic :mod:`repro.common.tally` delta capture, and the in-memory
  :func:`aggregate_stages` rollup the run metrics embed.  Off by
  default; the disabled path is a shared no-op object, cheap enough to
  leave in every hot entry point.
- :mod:`repro.obs.export` — the Chrome trace-event JSON exporter
  (loadable in Perfetto) and the per-run ``BENCH_<fingerprint>.json``
  perf summary.  **Not re-exported here**: this ``__init__`` executes
  inside every simulator import (``from repro import obs`` in the hot
  paths), so it stays inside every experiment's fingerprint slice —
  re-exporting the file writers would put ``export.py`` in every slice
  too and an exporter tweak would invalidate every cached result.  The
  CLI and tests import :mod:`repro.obs.export` directly.

All four modeling layers are instrumented at their run() granularity:
trace generation (``trace/gen/*``), trace-driven cache sweeps
(``cache/*``), the GSPN event loop (``gspn/run/*``), the MP engine
(``mp/run``), and the supervised runner (``task/<experiment>/<shard>``).
Spans recorded inside pool workers ride back on the supervised
executor's verified result messages and are absorbed by the parent, so
``--jobs N`` traces are as complete as inline ones.
"""

from repro.obs.spans import (
    ENV_FLAG,
    SpanRecord,
    absorb,
    add,
    aggregate_stages,
    disable,
    enable,
    enabled,
    mark,
    records,
    reset,
    rollback,
    since,
    span,
)

__all__ = [
    "ENV_FLAG",
    "SpanRecord",
    "absorb",
    "add",
    "aggregate_stages",
    "disable",
    "enable",
    "enabled",
    "mark",
    "records",
    "reset",
    "rollback",
    "since",
    "span",
]
