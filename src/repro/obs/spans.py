"""Hierarchical span tracing with a near-zero-cost disabled path.

A *span* is a named, timed slice of one process's work::

    from repro import obs

    with obs.span("gspn/run/membank") as sp:
        ...            # the event loop
        sp.add("events", simulated_events)

Spans nest (the ``with`` statement guarantees well-nestedness), carry
monotonic start/duration timestamps, and capture the
:mod:`repro.common.tally` deltas accumulated while they were open, so a
``gspn/run/*`` span automatically reports how many firings it covered.

Tracing is **off by default** and :func:`span` then returns a shared
no-op context manager — one function call, one branch, no allocation —
so instrumented hot paths cost nothing measurable when nobody is
looking.  It is enabled explicitly (:func:`enable`, or the
``REPRO_TRACE`` environment variable) by the CLI's ``--trace`` /
``--perf-summary`` flags.

Records are **per-process**, mirroring the snapshot/since pattern of
:mod:`repro.common.tally`: a pool worker accumulates its own records,
ships the ones a successful attempt produced back over the supervised
executor's result pipe (see :mod:`repro.runner.resilience`), and the
supervisor :func:`absorb`\\ s them.  A failed attempt's records are
rolled back (inline) or die with the worker (pooled), so retries never
double-count.

The tracer is intentionally not thread-safe: the simulators are
single-threaded per process, and keeping the enabled fast path free of
locks is the point.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.common import tally

ENV_FLAG = "REPRO_TRACE"

_enabled: bool = os.environ.get(ENV_FLAG, "") not in ("", "0")
_records: list["SpanRecord"] = []
_stack: list["_LiveSpan"] = []


@dataclass
class SpanRecord:
    """One closed span.

    ``start_ns`` comes from ``time.perf_counter_ns`` (CLOCK_MONOTONIC),
    which shares its epoch across processes on Linux, so spans from
    pool workers line up with the supervisor's on a common timeline.
    """

    name: str  # hierarchical path, e.g. "task/figure7/126.gcc"
    start_ns: int
    dur_ns: int
    pid: int
    depth: int  # nesting depth at entry (0 = top level in its process)
    counters: dict[str, float] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "start_ns": self.start_ns,
            "dur_ns": self.dur_ns,
            "pid": self.pid,
            "depth": self.depth,
            "counters": dict(self.counters),
        }


class _NoopSpan:
    """The disabled-path singleton: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def add(self, name: str, value: float) -> None:
        pass


_NOOP = _NoopSpan()


class _LiveSpan:
    """An open span; closing it appends a :class:`SpanRecord`."""

    __slots__ = ("name", "counters", "start_ns", "depth", "_tally_before")

    def __init__(self, name: str, counters: dict[str, float]) -> None:
        self.name = name
        self.counters = counters

    def __enter__(self) -> "_LiveSpan":
        self.depth = len(_stack)
        _stack.append(self)
        self._tally_before = tally.snapshot()
        self.start_ns = time.perf_counter_ns()  # repro: allow(wall-clock) — observability timestamps, not simulated time
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_ns = time.perf_counter_ns()  # repro: allow(wall-clock) — observability timestamps, not simulated time
        if _stack and _stack[-1] is self:
            _stack.pop()
        counters = dict(self.counters)
        for name, delta in tally.since(self._tally_before).items():
            counters[name] = counters.get(name, 0) + delta
        _records.append(SpanRecord(
            name=self.name,
            start_ns=self.start_ns,
            dur_ns=end_ns - self.start_ns,
            pid=os.getpid(),
            depth=self.depth,
            counters=counters,
        ))
        return False

    def add(self, name: str, value: float) -> None:
        """Attach (or accumulate) a counter on this span."""
        self.counters[name] = self.counters.get(name, 0) + value


def span(name: str, **counters: float):
    """Open a span named ``name``; a no-op while tracing is disabled."""
    if not _enabled:
        return _NOOP
    return _LiveSpan(name, dict(counters))


def add(name: str, value: float) -> None:
    """Attach a counter to the innermost open span (no-op otherwise)."""
    if _enabled and _stack:
        _stack[-1].add(name, value)


def enabled() -> bool:
    return _enabled


def enable() -> None:
    """Turn tracing on, for this process and (via the environment) for
    any worker process it spawns."""
    global _enabled
    _enabled = True
    os.environ[ENV_FLAG] = "1"


def disable() -> None:
    global _enabled
    _enabled = False
    os.environ.pop(ENV_FLAG, None)


def mark() -> int:
    """A position in this process's record list, for :func:`since`."""
    return len(_records)


def since(position: int) -> list[SpanRecord]:
    """Records appended after ``position`` was taken (a copy)."""
    return list(_records[position:])


def rollback(position: int) -> None:
    """Drop every record appended after ``position`` — used to erase the
    spans of a failed inline attempt so a retry cannot double-count."""
    del _records[position:]  # repro: allow(race-unguarded) — the tracer is single-threaded by contract (module docstring); serve threads never reach rollback with tracing enabled, so this truncation only runs in the one-threaded runner


def absorb(records: list[SpanRecord]) -> None:
    """Merge records collected in another process into this one's list."""
    _records.extend(records)  # repro: allow(race-unguarded) — single atomic append under the GIL; concurrent absorbers interleave whole batches, which the rollup tolerates (records carry their own timestamps)


def records() -> list[SpanRecord]:
    """Every record this process has collected or absorbed (a copy)."""
    return list(_records)


def reset() -> None:
    """Clear all records and any (leaked) open-span state."""
    _records.clear()
    _stack.clear()


def aggregate_stages(records: list[SpanRecord]) -> dict[str, dict]:
    """Per-stage rollup: spans grouped by name.

    Each stage reports how many spans it covered, their total wall
    seconds, the summed counters, and per-second rates for every
    counter (0 when the stage took no measurable time).  Lives here —
    not with the exporters — because the runner folds it into the run
    metrics whether or not anything is written to disk.
    """
    stages: dict[str, dict] = {}
    for record in records:
        stage = stages.setdefault(record.name, {
            "count": 0, "wall_s": 0.0, "counters": {},
        })
        stage["count"] += 1
        stage["wall_s"] += record.dur_ns / 1e9
        for name, value in record.counters.items():
            stage["counters"][name] = stage["counters"].get(name, 0) + value
    for stage in stages.values():
        wall = stage["wall_s"]
        stage["per_sec"] = {
            name: (value / wall if wall > 0 else 0.0)
            for name, value in sorted(stage["counters"].items())
        }
    return stages
