"""Span exporters: Chrome trace-event JSON and the perf summary.

Two consumers of the same :class:`~repro.obs.spans.SpanRecord` stream:

- :func:`chrome_trace` / :func:`write_chrome_trace` — the Trace Event
  Format (complete ``"ph": "X"`` events) that ``chrome://tracing`` and
  Perfetto load directly.  Each process becomes one pid/tid track;
  nesting falls out of the timestamps.
- :func:`perf_summary` / :func:`write_perf_summary` — a per-run
  ``BENCH_<fingerprint>.json``: wall time, simulated events/sec, and a
  per-stage breakdown (span count, total seconds, summed counters, and
  counter-per-second rates such as cache-sim refs/sec).  One file per
  code fingerprint seeds the bench trajectory under
  ``artifacts/bench/``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.spans import SpanRecord, aggregate_stages

PERF_SUMMARY_SCHEMA_VERSION = 1

DEFAULT_BENCH_DIR = Path("artifacts") / "bench"

# Counters that count simulated work; their depth-0 totals make the
# headline events/sec figure (nested spans re-report their parents'
# tally deltas, so deeper depths would double-count).
EVENT_COUNTERS = ("gspn_firings", "mp_ops", "cache_refs", "trace_refs")


def chrome_trace(records: list[SpanRecord]) -> dict:
    """The records as a Trace Event Format document (JSON-ready dict)."""
    events = []
    for record in sorted(records, key=lambda r: (r.pid, r.start_ns)):
        events.append({
            "name": record.name,
            "cat": record.name.split("/", 1)[0],
            "ph": "X",
            "ts": record.start_ns / 1000.0,  # microseconds
            "dur": record.dur_ns / 1000.0,
            "pid": record.pid,
            "tid": record.pid,
            "args": {name: record.counters[name]
                     for name in sorted(record.counters)},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: Path | str, records: list[SpanRecord]) -> None:
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(records), indent=1) + "\n")


def perf_summary(
    records: list[SpanRecord],
    *,
    fingerprint: str,
    jobs: int,
    wall_s: float,
) -> dict:
    """The ``BENCH_*.json`` payload for one run."""
    events = sum(
        value
        for record in records if record.depth == 0
        for name, value in record.counters.items()
        if name in EVENT_COUNTERS
    )
    return {
        "schema": PERF_SUMMARY_SCHEMA_VERSION,
        "kind": "bench",
        "fingerprint": fingerprint,
        "jobs": jobs,
        "wall_s": wall_s,
        "events": events,
        "events_per_sec": events / wall_s if wall_s > 0 else 0.0,
        "spans": len(records),
        "stages": aggregate_stages(records),
    }


def default_bench_path(fingerprint: str, root: Path | str | None = None) -> Path:
    """``artifacts/bench/BENCH_<fingerprint prefix>.json``."""
    base = Path(root) if root is not None else DEFAULT_BENCH_DIR
    return base / f"BENCH_{fingerprint[:12]}.json"


def write_perf_summary(path: Path | str, summary: dict) -> None:
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
