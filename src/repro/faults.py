"""Deterministic fault injection for the supervised runner.

A :class:`FaultPlan` maps task labels (``experiment/shard``) to one of
four fault kinds, injected at the moment the supervised executor runs
the task:

- ``crash``   — the worker process exits without reporting a result
  (inline execution raises :class:`InjectedCrash` instead, since the
  supervisor and the task share a process there);
- ``hang``    — the worker sleeps until the watchdog kills it (inline
  execution fails immediately with a timeout-kind failure);
- ``raise``   — the task raises :class:`InjectedFault`;
- ``corrupt`` — the task completes but its result payload is flipped
  after the integrity digest is computed, so the supervisor's checksum
  verification must catch it.

Plans are parsed from repeated ``--inject label=kind[:times]`` CLI
flags or the ``REPRO_INJECT`` environment variable (comma-separated
entries of the same form).  ``times`` bounds how many attempts fail
(``label=crash:1`` crashes the first attempt only, so a retry
succeeds); without it every attempt fails.  Labels are matched with
:func:`fnmatch.fnmatchcase`, so ``figure7/*=crash`` faults every shard
of an experiment.

Everything here is a pure function of (label, attempt number): no
randomness, no clocks, so every test that injects a fault reproduces
exactly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from fnmatch import fnmatchcase

FAULT_KINDS: tuple[str, ...] = ("crash", "hang", "raise", "corrupt")

ENV_INJECT = "REPRO_INJECT"


class InjectedFault(RuntimeError):
    """Raised by a ``raise``-kind injection (and as the inline stand-in
    for kinds that need a worker process to express)."""


class InjectedCrash(InjectedFault):
    """Inline stand-in for a worker crash: the supervisor treats it as a
    crash-kind failure, not an ordinary exception."""


class FaultPlanError(ValueError):
    """A fault-injection entry could not be parsed."""


@dataclass(frozen=True)
class FaultSpec:
    """One injection: tasks matching ``pattern`` fail with ``kind``.

    ``times`` is the number of leading attempts that fail; ``None``
    means every attempt (the task can never succeed).
    """

    pattern: str
    kind: str
    times: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r} for {self.pattern!r} "
                f"(known: {', '.join(FAULT_KINDS)})"
            )
        if not self.pattern:
            raise FaultPlanError("fault pattern must be non-empty")
        if self.times is not None and self.times < 1:
            raise FaultPlanError(
                f"fault times must be >= 1, got {self.times} "
                f"for {self.pattern!r}"
            )

    def applies(self, label: str, attempt: int) -> bool:
        """Does this spec fault ``label``'s ``attempt`` (1-based)?"""
        if not fnmatchcase(label, self.pattern):
            return False
        return self.times is None or attempt <= self.times


def parse_fault_entry(entry: str) -> FaultSpec:
    """``"label=kind[:times]"`` -> :class:`FaultSpec`.

    The *last* ``=`` separates label from kind, because labels may
    themselves contain ``=`` (``replication/seed=3=crash``).
    """
    pattern, sep, rest = entry.rpartition("=")
    if not sep or not rest:
        raise FaultPlanError(
            f"bad --inject entry {entry!r}; expected label=kind[:times]"
        )
    kind, sep, times_text = rest.partition(":")
    times: int | None = None
    if sep:
        try:
            times = int(times_text)
        except ValueError:
            raise FaultPlanError(
                f"bad attempt count {times_text!r} in {entry!r}"
            ) from None
    return FaultSpec(pattern.strip(), kind.strip(), times)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of :class:`FaultSpec`; first match wins."""

    specs: tuple[FaultSpec, ...] = ()

    @classmethod
    def parse(cls, entries: "list[str] | tuple[str, ...]") -> "FaultPlan":
        return cls(tuple(parse_fault_entry(e) for e in entries if e.strip()))

    @classmethod
    def from_env(cls, environ: "dict[str, str] | None" = None) -> "FaultPlan":
        """Plan from ``$REPRO_INJECT`` (empty plan when unset)."""
        env = os.environ if environ is None else environ
        raw = env.get(ENV_INJECT, "")
        return cls.parse([part for part in raw.split(",") if part.strip()])

    def __bool__(self) -> bool:
        return bool(self.specs)

    def fault_for(self, label: str, attempt: int) -> str | None:
        """The fault kind to inject into ``label``'s ``attempt``
        (1-based), or ``None`` to run it healthy."""
        for spec in self.specs:
            if spec.applies(label, attempt):
                return spec.kind
        return None


def corrupt_payload(payload: bytes) -> bytes:
    """Deterministically damage a result payload (for ``corrupt``
    injections): flip every bit of the first byte."""
    if not payload:
        return b"\xff"
    return bytes([payload[0] ^ 0xFF]) + payload[1:]
