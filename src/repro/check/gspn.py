"""Structural analysis of the paper's GSPNs (Figures 9-12, Section 5.6).

The Monte-Carlo evaluator (:mod:`repro.gspn.sim`) can only visit the
markings its random runs reach; this pass checks net *structure*, which
holds for every possible run:

- **incidence matrix** ``C[p][t] = O(p,t) - I(p,t)`` over all places and
  transitions;
- **P-invariants** (place semiflows): minimal nonnegative integer
  vectors ``y`` with ``y C = 0``, computed by the Farkas elimination
  algorithm in exact integer arithmetic.  Each semiflow certifies a
  conserved token sum ``y · M = y · M0``;
- **resource coverage**: every initially marked place (a pipeline slot,
  load/store unit, bank-ready token, L2 port ...) must lie in the
  support of some P-invariant — otherwise the "resource" can leak or
  duplicate, which invalidates the CPI readings taken from the net;
- **possibly-unbounded places** (warning): places covered by no
  P-invariant, e.g. the open request queues of the Figure 9 membank net;
- **structurally dead transitions**: transitions that can never fire in
  the token-flow over-approximation (a transitively unmarkable input
  place);
- **T-invariants** (transition semiflows, reported as coverage info):
  firing-count vectors that reproduce a marking — steady-state cycles;
- **immediate-conflict sanity**: every set of immediate transitions
  competing for one place at equal priority must carry finite, positive,
  non-NaN weights, or the simulator's weighted conflict resolution is
  undefined.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from math import gcd

from repro.check.report import Finding, PassResult
from repro.gspn.net import PetriNet, TransitionKind

# Abort Farkas elimination if the intermediate row set explodes; the
# shipped nets stay in the hundreds.
_MAX_ROWS = 20_000

# Enumerating minimal T-semiflows is exponential in the number of
# alternative routings (16 banks x 3 request kinds); above this many
# transitions only the invariant-space dimension is computed.
_MAX_T_ENUMERATION = 50


def incidence_matrix(net: PetriNet) -> tuple[list[str], list[str], list[list[int]]]:
    """``(places, transitions, C)`` with ``C[p][t] = outputs - inputs``."""
    places = list(net.initial_marking)
    index = {name: i for i, name in enumerate(places)}
    transitions = list(net.transitions)
    matrix = [[0] * len(transitions) for _ in places]
    for t, name in enumerate(transitions):
        transition = net.transitions[name]
        for place, mult in transition.inputs.items():
            matrix[index[place]][t] -= mult
        for place, mult in transition.outputs.items():
            matrix[index[place]][t] += mult
    return places, transitions, matrix


def _normalize(row: list[int]) -> tuple[int, ...]:
    divisor = 0
    for value in row:
        divisor = gcd(divisor, value)
    if divisor > 1:
        return tuple(value // divisor for value in row)
    return tuple(row)


def semiflows(matrix: list[list[int]]) -> list[tuple[int, ...]]:
    """Minimal nonnegative integer solutions of ``y M = 0`` (Farkas).

    ``matrix`` has one row per dimension of ``y``; the result vectors are
    indexed the same way.  For P-semiflows pass the incidence matrix
    (rows = places); for T-semiflows pass its transpose.
    """
    if not matrix:
        return []
    columns = len(matrix[0])
    # Each working row is (remaining columns of y·M, the y vector itself).
    rows: list[tuple[tuple[int, ...], tuple[int, ...]]] = [
        (tuple(matrix[i]),
         tuple(1 if j == i else 0 for j in range(len(matrix))))
        for i in range(len(matrix))
    ]
    for col in range(columns):
        positive = [r for r in rows if r[0][col] > 0]
        negative = [r for r in rows if r[0][col] < 0]
        combined = [r for r in rows if r[0][col] == 0]
        for coeffs_p, y_p in positive:
            for coeffs_n, y_n in negative:
                a = -coeffs_n[col]
                b = coeffs_p[col]
                coeffs = [a * x + b * z for x, z in zip(coeffs_p, coeffs_n)]
                y = [a * x + b * z for x, z in zip(y_p, y_n)]
                divisor = 0
                for value in coeffs + y:
                    divisor = gcd(divisor, value)
                if divisor > 1:
                    coeffs = [value // divisor for value in coeffs]
                    y = [value // divisor for value in y]
                combined.append((tuple(coeffs), tuple(y)))
        # Keep only minimal-support rows (Farkas minimality condition).
        supports = [frozenset(i for i, v in enumerate(y) if v)
                    for _, y in combined]
        keep: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
        seen: set[tuple[int, ...]] = set()
        for i, row in enumerate(combined):
            if row[1] in seen:
                continue
            if any(supports[j] < supports[i] for j in range(len(combined))):
                continue
            seen.add(row[1])
            keep.append(row)
        rows = keep
        if len(rows) > _MAX_ROWS:
            raise OverflowError(
                f"semiflow computation exceeded {_MAX_ROWS} rows"
            )
    return [y for _, y in rows]


def null_space_dimension(matrix: list[list[int]]) -> int:
    """dim{x : M x = 0} by exact rational Gaussian elimination."""
    if not matrix:
        return 0
    rows = [[Fraction(v) for v in row] for row in matrix]
    columns = len(rows[0])
    rank = 0
    for col in range(columns):
        pivot = next(
            (r for r in range(rank, len(rows)) if rows[r][col] != 0), None
        )
        if pivot is None:
            continue
        rows[rank], rows[pivot] = rows[pivot], rows[rank]
        lead = rows[rank][col]
        rows[rank] = [v / lead for v in rows[rank]]
        for r in range(len(rows)):
            if r != rank and rows[r][col] != 0:
                factor = rows[r][col]
                rows[r] = [v - factor * w for v, w in zip(rows[r], rows[rank])]
        rank += 1
        if rank == len(rows):
            break
    return columns - rank


def potentially_fireable(net: PetriNet) -> set[str]:
    """Transitions fireable in the token-flow over-approximation.

    Ignores multiplicities and inhibitor arcs, so anything *outside* the
    result is structurally dead — it can never fire in any run.
    """
    markable = {p for p, tokens in net.initial_marking.items() if tokens}
    fireable: set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, transition in net.transitions.items():
            if name in fireable:
                continue
            if set(transition.inputs) <= markable:
                fireable.add(name)
                new_places = set(transition.outputs) - markable
                if new_places:
                    markable |= new_places
                changed = True
    return fireable


@dataclass
class NetAnalysis:
    """Everything the structural pass derives from one net."""

    name: str
    places: list[str]
    transitions: list[str]
    p_semiflows: list[dict[str, int]] = field(default_factory=list)
    t_semiflows: list[dict[str, int]] = field(default_factory=list)
    t_invariant_dimension: int = 0
    conserved_sums: list[int] = field(default_factory=list)
    uncovered_places: list[str] = field(default_factory=list)
    dead_transitions: list[str] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)


def _conflict_findings(net: PetriNet, location: str) -> list[Finding]:
    """Weight sanity for immediate transitions competing for a place."""
    findings: list[Finding] = []
    by_place: dict[tuple[str, int], list[str]] = {}
    for name, transition in net.transitions.items():
        if transition.kind is not TransitionKind.IMMEDIATE:
            continue
        for place in transition.inputs:
            by_place.setdefault((place, transition.priority), []).append(name)
    flagged: set[str] = set()
    for (place, priority), names in sorted(by_place.items()):
        for name in names:
            weight = net.transitions[name].param
            if name in flagged:
                continue
            if math.isnan(weight) or math.isinf(weight) or weight <= 0:
                flagged.add(name)
                rivals = [n for n in names if n != name]
                findings.append(Finding(
                    "gspn", "conflict-weights", "error", location,
                    f"immediate transition {name} (input {place}, "
                    f"priority {priority}) has weight {weight!r}; "
                    f"weighted conflict resolution against "
                    f"{rivals or 'itself'} is undefined",
                ))
    return findings


def analyze_net(net: PetriNet, name: str | None = None) -> NetAnalysis:
    """Full structural analysis of one net."""
    label = name or net.name
    location = f"net {label}"
    places, transitions, matrix = incidence_matrix(net)
    analysis = NetAnalysis(label, places, transitions)

    try:
        p_flows = semiflows(matrix)
    except OverflowError as exc:
        analysis.findings.append(Finding(
            "gspn", "p-invariants", "warning", location,
            f"P-invariant computation aborted: {exc}",
        ))
        p_flows = []
    # T-invariants: the dimension of {x : C x = 0} is always computed
    # exactly; enumerating minimal T-semiflows is exponential in the
    # bank-routing alternatives, so it is gated on net size.
    analysis.t_invariant_dimension = null_space_dimension(matrix)
    t_flows: list[tuple[int, ...]] = []
    if len(transitions) <= _MAX_T_ENUMERATION:
        transpose = [[matrix[p][t] for p in range(len(places))]
                     for t in range(len(transitions))]
        try:
            t_flows = semiflows(transpose)
        except OverflowError as exc:
            analysis.findings.append(Finding(
                "gspn", "t-invariants", "warning", location,
                f"T-semiflow enumeration aborted: {exc}",
            ))

    analysis.p_semiflows = [
        {places[i]: v for i, v in enumerate(y) if v} for y in p_flows
    ]
    analysis.t_semiflows = [
        {transitions[i]: v for i, v in enumerate(x) if v} for x in t_flows
    ]
    analysis.conserved_sums = [
        sum(weight * net.initial_marking[place]
            for place, weight in flow.items())
        for flow in analysis.p_semiflows
    ]

    covered = {place for flow in analysis.p_semiflows for place in flow}
    analysis.uncovered_places = [p for p in places if p not in covered]
    for place in analysis.uncovered_places:
        if net.initial_marking[place] > 0:
            analysis.findings.append(Finding(
                "gspn", "p-invariant-coverage", "error", location,
                f"resource place {place} (initially "
                f"{net.initial_marking[place]} token(s)) is covered by no "
                f"P-invariant: its tokens can leak or duplicate",
            ))
    unbounded = [p for p in analysis.uncovered_places
                 if net.initial_marking[p] == 0]
    if unbounded:
        analysis.findings.append(Finding(
            "gspn", "possibly-unbounded", "warning", location,
            f"{len(unbounded)} place(s) covered by no P-invariant and "
            f"possibly unbounded: {', '.join(unbounded)}",
        ))

    fireable = potentially_fireable(net)
    analysis.dead_transitions = [t for t in transitions if t not in fireable]
    for transition in analysis.dead_transitions:
        analysis.findings.append(Finding(
            "gspn", "dead-transition", "error", location,
            f"transition {transition} is structurally dead: some input "
            f"place can never be marked",
        ))

    analysis.findings.extend(_conflict_findings(net, location))
    return analysis


def check_gspn_models(
    nets: dict[str, PetriNet] | None = None,
) -> PassResult:
    """Analyze every registered evaluation net; one PassResult."""
    if nets is None:
        from repro.gspn.models import registered_nets

        nets = registered_nets()
    result = PassResult("gspn")
    invariants = 0
    for name, net in nets.items():
        analysis = analyze_net(net, name)
        invariants += len(analysis.p_semiflows)
        result.findings.extend(analysis.findings)
    result.info = {"nets": len(nets), "p_invariants": invariants}
    return result
