"""Finding/report types shared by the three ``repro.check`` passes.

A :class:`Finding` is one diagnostic: which pass produced it, the rule
it violates, where, and — for the protocol model checker — the
counterexample trace that reaches the bad state.  ``error`` findings
fail the build (non-zero exit); ``warning`` findings are reported but
do not.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One diagnostic from one pass."""

    pass_name: str  # "protocol" | "gspn" | "lints" | "deps" | "units"
    rule: str  # kebab-case rule id, e.g. "single-writer"
    severity: str  # "error" | "warning"
    location: str  # config, net name, or file:line
    message: str
    trace: tuple[str, ...] = ()  # counterexample steps, oldest first

    def to_dict(self) -> dict:
        payload = {
            "pass": self.pass_name,
            "rule": self.rule,
            "severity": self.severity,
            "location": self.location,
            "message": self.message,
        }
        if self.trace:
            payload["trace"] = list(self.trace)
        return payload

    def render(self) -> str:
        lines = [f"{self.severity}[{self.pass_name}/{self.rule}] "
                 f"{self.location}: {self.message}"]
        if self.trace:
            lines.append("  counterexample trace:")
            lines.extend(f"    {i + 1}. {step}"
                         for i, step in enumerate(self.trace))
        return "\n".join(lines)


@dataclass
class PassResult:
    """One pass's findings plus its coverage statistics."""

    name: str
    findings: list[Finding] = field(default_factory=list)
    info: dict[str, object] = field(default_factory=dict)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warning"]


@dataclass
class CheckReport:
    """The whole run: every executed pass, in execution order."""

    passes: list[PassResult] = field(default_factory=list)

    @property
    def findings(self) -> list[Finding]:
        return [f for p in self.passes for f in p.findings]

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0

    def to_json(self) -> str:
        return json.dumps(
            {
                "passes": [
                    {
                        "name": p.name,
                        "info": p.info,
                        "findings": [f.to_dict() for f in p.findings],
                    }
                    for p in self.passes
                ],
                "summary": {
                    "errors": len(self.errors),
                    "warnings": sum(len(p.warnings) for p in self.passes),
                    "ok": not self.errors,
                },
            },
            indent=2,
            sort_keys=True,
        )

    def render_text(self) -> str:
        lines: list[str] = []
        for result in self.passes:
            stats = ", ".join(f"{k}={v}" for k, v in result.info.items())
            verdict = ("ok" if not result.errors
                       else f"{len(result.errors)} error(s)")
            suffix = f" ({stats})" if stats else ""
            lines.append(f"[{result.name}] {verdict}{suffix}")
            for finding in result.findings:
                lines.append(finding.render())
        total_err = len(self.errors)
        total_warn = sum(len(p.warnings) for p in self.passes)
        lines.append(
            f"check: {len(self.passes)} pass(es), "
            f"{total_err} error(s), {total_warn} warning(s)"
        )
        return "\n".join(lines)
