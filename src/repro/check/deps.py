"""``deps`` pass: whole-program seed-flow and dependency verification.

The ``lints`` pass (:mod:`repro.check.lints`) is syntactic and
per-module: it can reject ``np.random.rand()`` on the line where it
appears, but it cannot see a ``numpy.random.Generator`` constructed at
module scope in one file and *used* three calls deep in another — the
classic way "pure function of (code, parameters, seed)" quietly breaks
while every individual module lints clean.  This pass closes that hole
with the interprocedural graph of :mod:`repro.check.callgraph`:

- **seed flow** — every stochastic call site (``.integers()``,
  ``.normal()``, ...) must draw from a generator that is a function
  parameter or a local created by ``repro.common.rng``'s
  ``make_rng``/``split_rng``; a receiver that traces to a module-level
  binding is an error (``module-rng`` for the binding,
  ``unthreaded-rng`` for the use), reported with the call chain from a
  registered experiment entry point as witness — the same
  counterexample-trace discipline as the protocol model checker.
- **state and inputs** — module-level mutable containers mutated by
  functions reachable from an entry point (``mutable-global``) and
  reachable reads of ``os.environ`` or of files (``untracked-input``)
  are warnings: each is a value that can change an experiment's output
  without changing its cache key.
- **fingerprint slices** — for every registered experiment the pass
  audits the module slice that
  :func:`repro.runner.fingerprint.slice_fingerprint` would hash; any
  static-analysis escape inside the slice (dynamic import, unresolved
  intra-package import) is reported (``unresolvable-edge``) because it
  forces that experiment back onto the whole-tree fingerprint.
- **seed hygiene** — a parameter named ``seed``/``*_seed`` that the
  function never reads is a seed dropped on the floor (``seed-drop``):
  two call sites passing different seeds get identical — and
  identically cached — results.

Findings are suppressed by the same inline ``# repro: allow(<rule>)``
comments the lint pass uses, placed on the reported line.
"""

from __future__ import annotations

from pathlib import Path

from repro.check.callgraph import (
    MODULE_BODY,
    RNG_FACTORIES,
    CallGraph,
    FunctionInfo,
    ModuleInfo,
    build_callgraph,
    canonicalize,
)
from repro.check.report import Finding, PassResult

DEPS_RULES: tuple[str, ...] = (
    "module-rng",
    "unthreaded-rng",
    "seed-drop",
    "mutable-global",
    "untracked-input",
    "unresolvable-edge",
    "entry-point",
)

# How many witness steps / hole listings to include before truncating.
_MAX_HOLES_SHOWN = 4


def _location(graph: CallGraph, module: ModuleInfo, lineno: int) -> str:
    path = module.path
    try:
        path = path.relative_to(graph.root.parent)
    except ValueError:
        pass
    return f"{path}:{lineno}"


def _resolve_module_name(graph: CallGraph, module: ModuleInfo,
                         dotted: str) -> str | None:
    """Canonical target of a bare/dotted name read inside ``module``."""
    head, _, rest = dotted.partition(".")
    if head in module.reexports:
        base = module.reexports[head]
    elif head in module.assigns or head in module.functions \
            or head in module.classes:
        base = f"{module.name}.{head}"
    else:
        return None
    return f"{base}.{rest}" if rest else base


def _module_generators(module: ModuleInfo) -> dict[str, int]:
    """Module-scope names bound to a fresh Generator -> lineno."""
    return {
        assign.name: assign.lineno
        for assign in module.assigns.values()
        if any(call in RNG_FACTORIES for call in assign.value_calls)
    }


class _DepsAnalysis:
    def __init__(self, graph: CallGraph,
                 entry_points: dict[str, str]) -> None:
        self.graph = graph
        self.entry_points = entry_points
        self.result = PassResult("deps")
        self._suppressions: dict[str, dict[int, set[str]]] = {}
        # experiment name -> resolved entry FunctionInfo
        self.entries: dict[str, FunctionInfo] = {}
        for experiment, target in sorted(entry_points.items()):
            fn = graph.function_for(canonicalize(graph, target))
            if fn is None:
                self._find("entry-point", "warning", target,
                           f"experiment '{experiment}' declares entry point "
                           f"{target}, which the call graph cannot resolve; "
                           f"its findings have no witness and its "
                           f"fingerprint degrades to the whole tree")
            else:
                self.entries[experiment] = fn
        self.parents = graph.reachable([fn.name for fn in self.entries.values()])

    # -- plumbing ----------------------------------------------------------

    def _allowed(self, module: ModuleInfo, lineno: int, rule: str) -> bool:
        if module.name not in self._suppressions:
            from repro.check.lints import _suppressions

            try:
                source = module.path.read_text()
            except OSError:
                source = ""
            self._suppressions[module.name] = _suppressions(source)
        return rule in self._suppressions[module.name].get(lineno, ())

    def _find(self, rule: str, severity: str, location: str, message: str,
              trace: tuple[str, ...] = ()) -> None:
        self.result.findings.append(
            Finding("deps", rule, severity, location, message, trace))

    def _witness(self, fn: FunctionInfo, leaf: str) -> tuple[str, ...]:
        """Entry-point call chain to ``fn`` plus a final ``leaf`` step."""
        chain = self.graph.witness(self.parents, fn.name)
        if not chain:
            return ()
        return (*chain, leaf)

    def _reachable(self, fn: FunctionInfo) -> bool:
        return fn.name in self.parents

    # -- rules -------------------------------------------------------------

    def check_module_generators(self) -> None:
        """module-rng: a Generator bound at module scope is shared state."""
        for module in self.graph.modules.values():
            for name, lineno in sorted(_module_generators(module).items()):
                if self._allowed(module, lineno, "module-rng"):
                    continue
                trace: tuple[str, ...] = ()
                for fn in module.functions.values():
                    if fn.qualname != MODULE_BODY \
                            and name in fn.global_reads \
                            and self._reachable(fn):
                        trace = self._witness(
                            fn,
                            f"{fn.name} reads module-level generator "
                            f"'{name}' (defined at "
                            f"{_location(self.graph, module, lineno)})")
                        break
                reach = ("; reachable from a registered experiment "
                         "entry point — see trace" if trace else
                         "; not reachable from any registered entry "
                         "point, but still shared process state")
                self._find(
                    "module-rng", "error",
                    _location(self.graph, module, lineno),
                    f"module-level numpy Generator '{name}' is shared "
                    f"across every experiment in the process; thread a "
                    f"Generator from repro.common.rng.make_rng/split_rng "
                    f"through call parameters instead{reach}",
                    trace)

    def check_stochastic_receivers(self) -> None:
        """unthreaded-rng: sampling from anything but a threaded local."""
        for module in self.graph.modules.values():
            generators = _module_generators(module)
            for fn in module.functions.values():
                for site in fn.stochastic:
                    head = site.receiver.split(".")[0]
                    if head == "self":
                        continue  # instance state: threaded at construction
                    if head in fn.params or head in fn.locals:
                        continue  # parameter or locally created generator
                    canonical = _resolve_module_name(
                        self.graph, module, site.receiver)
                    offender = None
                    if site.receiver in generators or head in generators:
                        offender = f"{module.name}.{head}"
                    elif canonical is not None:
                        owner_mod, _, attr = canonical.rpartition(".")
                        owner = self.graph.modules.get(owner_mod)
                        if owner is not None and attr in _module_generators(owner):
                            offender = canonical
                    if offender is None:
                        continue
                    if self._allowed(module, site.lineno, "unthreaded-rng"):
                        continue
                    trace = self._witness(
                        fn,
                        f"{fn.name} samples .{site.method}() from "
                        f"module-level generator {offender} at "
                        f"{_location(self.graph, module, site.lineno)}") \
                        if self._reachable(fn) else ()
                    self._find(
                        "unthreaded-rng", "error",
                        _location(self.graph, module, site.lineno),
                        f"stochastic call {site.receiver}.{site.method}() "
                        f"draws from module-level generator {offender} "
                        f"instead of an explicitly threaded parameter; "
                        f"seed isolation between experiments is broken",
                        trace)

    def check_seed_drops(self) -> None:
        """seed-drop: a seed parameter the function never reads."""
        for module in self.graph.modules.values():
            for fn in module.functions.values():
                if fn.qualname == MODULE_BODY:
                    continue
                for param in fn.params:
                    if param != "seed" and not param.endswith("_seed"):
                        continue
                    if param in fn.reads:
                        continue
                    if self._allowed(module, fn.lineno, "seed-drop"):
                        continue
                    self._find(
                        "seed-drop", "warning",
                        _location(self.graph, module, fn.lineno),
                        f"{fn.name}() accepts '{param}' but never reads "
                        f"it — callers passing different seeds get "
                        f"identical (and identically cached) results",
                        self._witness(fn, f"{fn.name} drops '{param}'"))

    def check_mutable_globals(self) -> None:
        """mutable-global: module state mutated on an experiment path."""
        for module in self.graph.modules.values():
            for assign in module.assigns.values():
                if not assign.mutable_literal:
                    continue
                canonical_target = f"{module.name}.{assign.name}"
                witness: tuple[str, ...] = ()
                for other in self.graph.modules.values():
                    for fn in other.functions.values():
                        if fn.qualname == MODULE_BODY or not self._reachable(fn):
                            continue
                        for name, lineno in fn.mutations:
                            head = name.split(".")[0]
                            if head in fn.params or head == "self":
                                continue
                            if head in fn.locals and other.name != module.name:
                                continue
                            resolved = _resolve_module_name(self.graph, other, name)
                            if resolved != canonical_target:
                                continue
                            if self._allowed(other, lineno, "mutable-global"):
                                continue
                            witness = self._witness(
                                fn,
                                f"{fn.name} mutates {canonical_target} at "
                                f"{_location(self.graph, other, lineno)}")
                            break
                        if witness:
                            break
                    if witness:
                        break
                if not witness:
                    continue
                if self._allowed(module, assign.lineno, "mutable-global"):
                    continue
                self._find(
                    "mutable-global", "warning",
                    _location(self.graph, module, assign.lineno),
                    f"module-level mutable '{assign.name}' is mutated by "
                    f"code reachable from an experiment entry point; "
                    f"state carried across tasks escapes the (code, "
                    f"parameters, seed) contract unless it is a pure "
                    f"cache keyed by those same inputs",
                    witness)

    def check_untracked_inputs(self) -> None:
        """untracked-input: env/file reads on an experiment path."""
        for module in self.graph.modules.values():
            for fn in module.functions.values():
                if fn.qualname == MODULE_BODY or not self._reachable(fn):
                    continue
                # One site may register several times (``os.environ.get``
                # is an attribute chain AND a call); report each line once.
                sites = sorted(
                    {(n, "reads os.environ") for n in fn.env_reads}
                    | {(n, "reads a file") for n in fn.file_reads})
                for lineno, what in sites:
                    if self._allowed(module, lineno, "untracked-input"):
                        continue
                    self._find(
                        "untracked-input", "warning",
                        _location(self.graph, module, lineno),
                        f"{fn.name} {what} on a path reachable from an "
                        f"experiment entry point; the value influences "
                        f"results but is invisible to the cache key",
                        self._witness(fn, f"{fn.name} {what} at "
                                      f"{_location(self.graph, module, lineno)}"))

    def check_slices(self) -> None:
        """unresolvable-edge: holes that degrade a slice to the tree hash."""
        degraded = 0
        sizes: list[int] = []
        for experiment, fn in sorted(self.entries.items()):
            try:
                slice_modules = self.graph.module_slice(fn.module)
            except KeyError:
                continue
            sizes.append(len(slice_modules))
            holes = self.graph.slice_holes(slice_modules)
            if not holes:
                continue
            degraded += 1
            shown = [
                f"{mod}:{line}: {what}"
                for mod, line, what in holes[:_MAX_HOLES_SHOWN]
            ]
            if len(holes) > _MAX_HOLES_SHOWN:
                shown.append(f"... {len(holes) - _MAX_HOLES_SHOWN} more")
            self._find(
                "unresolvable-edge", "warning", f"experiment:{experiment}",
                f"dependency slice of entry point {fn.name} contains "
                f"{len(holes)} statically unresolvable edge(s), so its "
                f"cache fingerprint degrades to the whole-tree hash: "
                + "; ".join(shown))
        if sizes:
            self.result.info["slice_modules"] = (
                f"{min(sizes)}-{max(sizes)}/{len(self.graph.modules)}")
            self.result.info["slices_degraded"] = degraded

    # -- driver ------------------------------------------------------------

    def run(self) -> PassResult:
        self.check_module_generators()
        self.check_stochastic_receivers()
        self.check_seed_drops()
        self.check_mutable_globals()
        self.check_untracked_inputs()
        self.check_slices()
        graph = self.graph
        self.result.info.update({
            "modules": len(graph.modules),
            "functions": len(graph.functions),
            "call_edges": sum(len(e) for e in graph.edges.values()),
            "import_resolution": f"{graph.import_resolution:.1%}",
            "call_resolution": f"{graph.call_resolution:.1%}",
            "entry_points": len(self.entries),
            "reachable_functions": len(self.parents),
        })
        self.result.findings.sort(key=lambda f: (f.rule, f.location))
        return self.result


def registry_entry_points() -> dict[str, str]:
    """All analysis roots, as static names: the registered experiments
    plus the sweep base-point builders.

    Sweeps construct design points through :mod:`repro.sweep.points`
    without going through the experiment registry, so without these
    roots a stochastic call or unit mix on a sweep-only path would sit
    in unreachable code and never earn a witness.  Sweep names are
    prefixed ``sweep:`` — the bases reuse experiment names (``figure7``
    both names an experiment and a base point)."""
    from repro.analysis.registry import entry_points
    from repro.sweep.points import base_entry_points

    roots = entry_points()
    for name, target in base_entry_points().items():
        roots[f"sweep:{name}"] = target
    return roots


def check_deps(root: Path | None = None, package: str | None = None,
               entry_points: dict[str, str] | None = None) -> PassResult:
    """Run the whole-program dependency pass.

    ``root``/``package`` default to the installed ``repro`` package;
    ``entry_points`` defaults to the experiment registry's declarations
    (experiment name -> dotted function name).
    """
    graph = build_callgraph(root, package)
    if entry_points is None:
        entry_points = registry_entry_points() if root is None else {}
    return _DepsAnalysis(graph, entry_points).run()
