"""Simulation-discipline lints: the determinism contract, enforced.

The result cache (PR 1) assumes an experiment's output is a pure
function of (code fingerprint, parameters, seed).  These AST lints
reject the ways that assumption quietly breaks:

- ``global-rng`` — any use of the stdlib ``random`` module or of
  ``numpy.random``'s module-level state (``np.random.seed``,
  ``np.random.rand`` ...).  Only explicit ``numpy.random.Generator``
  objects threaded through :mod:`repro.common.rng` are allowed
  (``default_rng``/``Generator``/``SeedSequence``/``BitGenerator``
  references are therefore exempt).
- ``wall-clock`` — reading real time (``time.time``,
  ``time.perf_counter``, ``datetime.now`` ...) inside simulator code.
  Simulated time must come from the event loop, never the host clock.
- ``float-eq`` — ``==``/``!=`` against a float literal; simulated
  quantities accumulate rounding, so exact comparison is a latent
  heisenbug.  Compare with tolerances or integers instead.
- ``mutable-default`` — a list/dict/set default argument is shared
  across calls and across experiments, leaking state between runs.
- ``broad-except`` — a bare ``except:`` or ``except Exception``/
  ``except BaseException`` handler that swallows the error (no
  ``raise``, no logging/reporting call).  Silently eating failures is
  how a quarantine-worthy fault turns into a wrong number; the
  supervised runner's intentionally-broad catch sites carry reviewed
  ``allow`` annotations.
- ``doc-coverage`` — a public module (no path component starting with
  ``_``) without a module docstring, or a registry-registered entry
  point (experiment registry + sweep bases) without a function
  docstring.  Entry points are the repo's public API surface — the
  sweep compiler, the docs generator and the CLI all advertise them —
  so they carry their contract in-source.  This rule only runs in the
  default whole-tree scan (``lint_paths()`` with no roots); explicit
  roots and :func:`lint_source` skip it unless asked, since fragments
  and fixtures legitimately lack docs.

A finding on a line containing ``# repro: allow(<rule>[, <rule>...])``
is suppressed — the suppression is part of the reviewed source, so every
exemption is deliberate and visible in diffs.  The suppressions are
themselves checked: naming a rule no pass defines (``allow(wall-clok)``
guards nothing) is an ``unknown-suppression`` warning, and a lint-rule
suppression on a line where that rule finds nothing is an
``unused-suppression`` warning, so stale exemptions cannot linger after
the code they excused is gone.  The rule namespace spans this pass, the
``deps`` pass (:data:`repro.check.deps.DEPS_RULES`), the ``units`` pass
(:data:`repro.check.units.UNITS_RULES`) and the ``races`` pass
(:data:`repro.check.races.RACES_RULES`), whose findings honour the same
comments; each pass polices unused suppressions of its own rules.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.check.report import Finding, PassResult

LINT_RULES: tuple[str, ...] = (
    "global-rng",
    "wall-clock",
    "float-eq",
    "mutable-default",
    "broad-except",
    "doc-coverage",
)

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\(([^)]*)\)")

# Diagnostics about the suppression comments themselves.
META_RULES: tuple[str, ...] = ("unknown-suppression", "unused-suppression")


def _known_rules() -> frozenset[str]:
    """Every rule an allow-comment may legitimately name."""
    from repro.check.deps import DEPS_RULES  # deps imports us; keep lazy
    from repro.check.races import RACES_RULES  # races imports us; keep lazy
    from repro.check.units import UNITS_RULES  # units imports us; keep lazy

    return (frozenset(LINT_RULES) | frozenset(DEPS_RULES)
            | frozenset(UNITS_RULES) | frozenset(RACES_RULES)
            | frozenset(META_RULES))

# numpy.random attributes that are *not* module-level state.
_NP_RANDOM_OK = {"Generator", "default_rng", "SeedSequence", "BitGenerator",
                 "PCG64", "RandomState"}  # RandomState as a *type* reference
_WALL_CLOCK_TIME = {"time", "time_ns", "monotonic", "monotonic_ns",
                    "perf_counter", "perf_counter_ns", "process_time",
                    "localtime", "gmtime"}
_WALL_CLOCK_DATETIME = {"now", "utcnow", "today"}

# Broad exception names, and call names that count as "the handler
# reported the error" (so the catch is observable, not a silent eat).
_BROAD_EXCEPTIONS = {"Exception", "BaseException"}
_REPORTING_CALLS = {"log", "debug", "info", "warning", "warn", "error",
                    "exception", "critical", "print", "write",
                    "format_exc", "print_exc"}


_RULE_TOKEN_RE = re.compile(r"[a-z][a-z0-9-]*\Z")


def _suppressions(source: str) -> dict[int, set[str]]:
    """line number -> rules allowed on that line.

    Only well-formed rule tokens (kebab-case identifiers) register, so
    prose *about* the syntax — ``allow(<rule>)`` in a docstring — is
    neither a suppression nor an unknown-suppression warning.
    """
    allowed: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        if match:
            rules = {part.strip() for part in match.group(1).split(",")}
            rules = {rule for rule in rules if _RULE_TOKEN_RE.match(rule)}
            if rules:
                allowed[lineno] = rules
    return allowed


class _Imports(ast.NodeVisitor):
    """Which local names are bound to the modules the rules care about."""

    def __init__(self) -> None:
        self.modules: dict[str, str] = {}  # local name -> module path
        self.members: dict[str, str] = {}  # local name -> module.member

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.modules[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None:
            return
        for alias in node.names:
            local = alias.asname or alias.name
            qualified = f"{node.module}.{alias.name}"
            # `from numpy import random` binds a module, not a member.
            if qualified in ("numpy.random", "datetime.datetime",
                            "datetime.date"):
                self.modules[local] = qualified
            else:
                self.members[local] = qualified


def _dotted(node: ast.AST) -> str | None:
    """`a.b.c` -> "a.b.c" for pure attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, imports: _Imports) -> None:
        self.path = path
        self.imports = imports
        self.findings: list[tuple[int, str, str]] = []  # (line, rule, msg)

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append((node.lineno, rule, message))

    def _resolve(self, dotted: str) -> str | None:
        """Map a local dotted name to its canonical module path."""
        head, _, rest = dotted.partition(".")
        if head in self.imports.modules:
            module = self.imports.modules[head]
            return f"{module}.{rest}" if rest else module
        if head in self.imports.members:
            member = self.imports.members[head]
            return f"{member}.{rest}" if rest else member
        return None

    # -- global-rng / wall-clock ------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        dotted = _dotted(node)
        resolved = self._resolve(dotted) if dotted else None
        if resolved:
            self._check_resolved(node, resolved)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        resolved = self._resolve(node.id)
        if resolved:
            self._check_resolved(node, resolved)

    def _check_resolved(self, node: ast.AST, resolved: str) -> None:
        parts = resolved.split(".")
        if parts[0] == "random" and len(parts) > 1:
            self._flag(node, "global-rng",
                       f"stdlib random ({resolved}) uses hidden global "
                       f"state; thread a repro.common.rng Generator "
                       f"instead")
        if parts[:2] == ["numpy", "random"] and len(parts) > 2 \
                and parts[2] not in _NP_RANDOM_OK:
            self._flag(node, "global-rng",
                       f"{resolved} mutates numpy's module-level RNG "
                       f"state; thread a repro.common.rng Generator "
                       f"instead")
        if parts[0] == "time" and len(parts) == 2 \
                and parts[1] in _WALL_CLOCK_TIME:
            self._flag(node, "wall-clock",
                       f"{resolved} reads the host clock; simulated time "
                       f"must come from the event loop")
        if parts[0] == "datetime" and parts[-1] in _WALL_CLOCK_DATETIME:
            self._flag(node, "wall-clock",
                       f"{resolved} reads the host clock; simulated time "
                       f"must come from the event loop")

    # -- float-eq ----------------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                if isinstance(side, ast.Constant) \
                        and isinstance(side.value, float):
                    self._flag(
                        node, "float-eq",
                        f"exact {'==' if isinstance(op, ast.Eq) else '!='} "
                        f"against float literal {side.value!r}; use a "
                        f"tolerance (math.isclose) or integers",
                    )
                    break
        self.generic_visit(node)

    # -- broad-except ------------------------------------------------------

    @staticmethod
    def _is_broad(handler: ast.ExceptHandler) -> bool:
        """Bare ``except:``/``except Exception``/``except BaseException``
        (alone or inside a tuple of exception types)."""
        kind = handler.type
        if kind is None:
            return True
        types = kind.elts if isinstance(kind, ast.Tuple) else [kind]
        return any(
            isinstance(t, ast.Name) and t.id in _BROAD_EXCEPTIONS
            for t in types
        )

    @staticmethod
    def _handler_reports(handler: ast.ExceptHandler) -> bool:
        """Does the handler body re-raise, or call something that makes
        the swallowed error observable (logging, printing, formatting
        the traceback)?"""
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                func = node.func
                name = None
                if isinstance(func, ast.Attribute):
                    name = func.attr
                elif isinstance(func, ast.Name):
                    name = func.id
                if name in _REPORTING_CALLS:
                    return True
        return False

    def visit_Try(self, node: ast.Try) -> None:
        for handler in node.handlers:
            if self._is_broad(handler) and not self._handler_reports(handler):
                caught = "bare except" if handler.type is None else \
                    f"except {ast.unparse(handler.type)}"
                # Flagged on the handler's own line so the allow-comment
                # sits next to the catch, not the try.
                self.findings.append((
                    handler.lineno, "broad-except",
                    f"{caught} swallows the error without re-raising or "
                    f"reporting it; narrow the exception, re-raise, or "
                    f"log what was caught",
                ))
        self.generic_visit(node)

    # -- mutable-default ---------------------------------------------------

    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        args = node.args
        for default in [*args.defaults, *args.kw_defaults]:
            if default is None:
                continue
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in {"list", "dict", "set", "bytearray"}
            )
            if mutable:
                self._flag(
                    default, "mutable-default",
                    f"mutable default argument in {node.name}() is shared "
                    f"across calls; default to None and construct inside",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)


def _doc_findings(
    tree: ast.Module,
    require_module_doc: bool,
    required_docs: frozenset[str],
) -> list[tuple[int, str, str]]:
    """doc-coverage findings for one parsed module."""
    findings: list[tuple[int, str, str]] = []
    if require_module_doc and ast.get_docstring(tree) is None:
        findings.append((
            1, "doc-coverage",
            "public module has no docstring; state what it models and "
            "which contract it keeps (or rename it _private)",
        ))
    if required_docs:
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.name in required_docs \
                    and ast.get_docstring(node) is None:
                findings.append((
                    node.lineno, "doc-coverage",
                    f"registered entry point {node.name}() has no "
                    f"docstring; it is advertised by the registry/sweep "
                    f"CLI and must carry its contract in-source",
                ))
    return findings


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    require_module_doc: bool = False,
    required_docs: frozenset[str] = frozenset(),
) -> list[Finding]:
    """Lint one module's source text; suppressions already applied.

    ``doc-coverage`` is opt-in: ``require_module_doc`` demands a module
    docstring and ``required_docs`` names the entry-point functions that
    must carry one.  The default whole-tree scan turns both on for
    public modules; fragments and explicit roots stay exempt.
    """
    tree = ast.parse(source, filename=path)
    imports = _Imports()
    imports.visit(tree)
    linter = _Linter(path, imports)
    linter.visit(tree)
    doc_checks_ran = require_module_doc or bool(required_docs)
    linter.findings.extend(
        _doc_findings(tree, require_module_doc, required_docs)
    )
    allowed = _suppressions(source)
    findings = []
    for lineno, rule, message in sorted(linter.findings):
        if rule in allowed.get(lineno, ()):
            continue
        findings.append(
            Finding("lints", rule, "error", f"{path}:{lineno}", message)
        )
    known = _known_rules()
    flagged = {(lineno, rule) for lineno, rule, _ in linter.findings}
    for lineno in sorted(allowed):
        for rule in sorted(allowed[lineno]):
            if rule not in known:
                findings.append(Finding(
                    "lints", "unknown-suppression", "warning",
                    f"{path}:{lineno}",
                    f"allow({rule}) names no known rule — it guards "
                    f"nothing (known rules: "
                    f"{', '.join(sorted(known - set(META_RULES)))})",
                ))
            elif rule == "doc-coverage" and not doc_checks_ran:
                # The rule did not run on this source, so its
                # suppressions cannot be judged unused here.
                continue
            elif rule in LINT_RULES and (lineno, rule) not in flagged:
                # Deps-, units- and races-pass rules are judged by
                # their own passes (they suppress interprocedural
                # findings this linter cannot see), so only lint rules
                # can be called unused here.
                findings.append(Finding(
                    "lints", "unused-suppression", "warning",
                    f"{path}:{lineno}",
                    f"allow({rule}) suppresses nothing on this line; "
                    f"the code it excused is gone — remove the comment",
                ))
    return findings


def _entry_point_docs() -> dict[str, frozenset[str]]:
    """Dotted module -> entry-point function names that must be documented.

    The union of the experiment registry's entry points and the sweep
    bases' — everything a registry-style subsystem advertises by dotted
    name.
    """
    from repro.analysis.registry import entry_points
    from repro.sweep.points import base_entry_points

    # Sweep bases reuse registry names (a base "figure7" rides the same
    # pipeline as the experiment), so chain the dotted names rather than
    # merging the dicts — a key collision must not drop an entry point.
    required: dict[str, set[str]] = {}
    for dotted in (*entry_points().values(), *base_entry_points().values()):
        module, _, fn = dotted.rpartition(".")
        required.setdefault(module, set()).add(fn)
    return {module: frozenset(names) for module, names in required.items()}


def lint_paths(roots: list[Path] | None = None) -> PassResult:
    """Lint every ``*.py`` under the given roots (default: ``repro``).

    The default whole-tree scan additionally enforces ``doc-coverage``:
    public modules need module docstrings and registry/sweep entry
    points need function docstrings.  Explicit roots skip that rule —
    fixtures and scratch files are not public API.
    """
    doc_coverage = roots is None
    package_parent: Path | None = None
    entry_docs: dict[str, frozenset[str]] = {}
    if roots is None:
        import repro

        roots = [Path(repro.__file__).parent]
        package_parent = roots[0].parent
        entry_docs = _entry_point_docs()
    result = PassResult("lints")
    files = 0
    for root in roots:
        paths = (sorted(root.rglob("*.py")) if root.is_dir() else [root])
        for path in paths:
            if "__pycache__" in path.parts:
                continue
            files += 1
            try:
                source = path.read_text()
            except OSError as exc:
                result.findings.append(Finding(
                    "lints", "io", "error", str(path),
                    f"could not read: {exc}",
                ))
                continue
            require_module_doc = False
            required_docs: frozenset[str] = frozenset()
            if doc_coverage and package_parent is not None:
                rel = path.relative_to(package_parent).with_suffix("")
                public = all(
                    not part.startswith("_") for part in rel.parts[:-1]
                ) and (rel.parts[-1] == "__init__"
                       or not rel.parts[-1].startswith("_"))
                require_module_doc = public
                parts = [p for p in rel.parts if p != "__init__"]
                required_docs = entry_docs.get(".".join(parts), frozenset())
            try:
                result.findings.extend(lint_source(
                    source, str(path),
                    require_module_doc=require_module_doc,
                    required_docs=required_docs,
                ))
            except SyntaxError as exc:
                result.findings.append(Finding(
                    "lints", "syntax", "error", f"{path}:{exc.lineno}",
                    f"could not parse: {exc.msg}",
                ))
    result.info = {"files": files, "rules": len(LINT_RULES)}
    return result
