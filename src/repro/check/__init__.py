"""repro.check: static verification of the paper's model layers.

``python -m repro check`` runs six passes, each guarding a different
pillar of the evaluation *before* any simulation happens (and before a
silent model bug can poison the content-addressed result cache):

- ``protocol`` (:mod:`repro.check.protocol`) — exhaustively
  model-checks the directory-based write-invalidate protocol of
  :mod:`repro.coherence.protocol` (Sections 4.2/6.1) for small
  node/block configurations, including in-flight requests and
  invalidations, against safety invariants (single writer,
  directory/cache agreement, ECC-directory encodability) and
  deadlock-freedom.  Violations come with a counterexample trace.
- ``gspn`` (:mod:`repro.check.gspn`) — structural analysis of every
  registered GSPN in :mod:`repro.gspn.models` (Figures 9-12 and the
  Section 5.6 bank sweep): incidence matrix, P-/T-invariants by exact
  rational arithmetic, token-conservation coverage of every resource
  place, structurally dead transitions, immediate-conflict weights.
- ``lints`` (:mod:`repro.check.lints`) — an AST linter over
  ``src/repro`` enforcing the determinism contract the result cache
  depends on: no module-level RNG state, no wall-clock reads in
  simulator cores, no float ``==`` on simulated quantities, no mutable
  default arguments, no silently swallowed exceptions.  Findings can
  be suppressed inline with ``# repro: allow(<rule>)``; unknown or
  unused suppressions are themselves reported.
- ``deps`` (:mod:`repro.check.deps`, on the graph of
  :mod:`repro.check.callgraph`) — whole-program dependency analysis:
  an interprocedural import/call graph over the package, seed-flow
  verification (every stochastic call site reachable from an
  experiment entry point must draw from an explicitly threaded
  ``numpy.random.Generator``), module-level mutable state and
  untracked-input detection with call-chain witnesses, and the
  per-experiment dependency slices behind
  :func:`repro.runner.fingerprint.slice_fingerprint`.
- ``units`` (:mod:`repro.check.units`, also on the call graph) —
  static units-and-dimensions flow analysis: dims seeded from the
  ``*_ns``/``*_bytes``/``*_cycles`` suffix convention and the explicit
  annotation registry of :mod:`repro.check.dimensions` are propagated
  through every function and across call boundaries; mixing units
  (``ns + cycles``, ``bytes < lines``, a ``us`` value into a ``*_ns``
  parameter, a seconds↔cycles boundary missing
  ``cycles_for_time``/``time_for_cycles``) is an error with a
  call-chain witness from a registered entry point.
- ``races`` (:mod:`repro.check.races`, also on the call graph) —
  static race detection over the repo's *own* concurrency (the serve
  subsystem's ThreadingHTTPServer, worker threads, token buckets and
  circuit breaker, and the SIGTERM→journal bridge): thread roots are
  discovered from ``threading.Thread`` targets, ``do_*`` HTTP handler
  methods and ``signal.signal`` handlers; shared attributes get their
  guarding lock inferred as the intersection of locksets at their
  write sites (Eraser-style); unguarded accesses, disjoint guards,
  lock-order inversions and non-reentrant work in signal handlers are
  errors with ``[thread root]``-rooted witnesses.

This ``__init__`` deliberately re-exports nothing: the runner's
fingerprint slicer imports :mod:`repro.check.callgraph`, which executes
this module, so any import added here would join every experiment's
dependency slice and an edit to an unrelated pass would invalidate
every cached result.  Import the pass modules directly
(``from repro.check.lints import lint_paths`` and so on).

See CHECKS.md at the repository root for the full pass-by-pass guide.
"""
