"""repro.check: static verification of the paper's three model layers.

``python -m repro check`` runs three passes, each guarding a different
pillar of the evaluation *before* any simulation happens (and before a
silent model bug can poison the content-addressed result cache):

- ``protocol`` — exhaustively model-checks the directory-based
  write-invalidate protocol of :mod:`repro.coherence.protocol`
  (Sections 4.2/6.1) for small node/block configurations, including
  in-flight requests and invalidations, against safety invariants
  (single writer, directory/cache agreement, ECC-directory
  encodability) and deadlock-freedom.  Violations come with a
  counterexample trace.
- ``gspn`` — structural analysis of every registered GSPN in
  :mod:`repro.gspn.models` (Figures 9-12 and the Section 5.6 bank
  sweep): incidence matrix, P-/T-invariants by exact rational
  arithmetic, token-conservation coverage of every resource place,
  structurally dead transitions, and immediate-conflict weight sanity.
- ``lints`` — an AST linter over ``src/repro`` enforcing the
  determinism contract the result cache depends on: no module-level
  RNG state, no wall-clock reads in simulator cores, no float ``==``
  on simulated quantities, no mutable default arguments.  Findings can
  be suppressed inline with ``# repro: allow(<rule>)``.

See CHECKS.md at the repository root for the full pass-by-pass guide.
"""

from repro.check.gspn import analyze_net, check_gspn_models
from repro.check.lints import LINT_RULES, lint_paths, lint_source
from repro.check.protocol import ProtocolModelChecker, check_protocol
from repro.check.report import CheckReport, Finding, PassResult

__all__ = [
    "CheckReport",
    "Finding",
    "LINT_RULES",
    "PassResult",
    "ProtocolModelChecker",
    "analyze_net",
    "check_gspn_models",
    "check_protocol",
    "lint_paths",
    "lint_source",
]
