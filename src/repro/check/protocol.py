"""Exhaustive model checking of the directory protocol (Sections 4.2/6.1).

The MP simulator (:mod:`repro.mp.system`) applies directory transitions
atomically, so its tests can only witness the states its traces happen
to reach.  This checker instead explores *every* reachable state of a
small configuration — it drives the real :class:`repro.coherence.protocol.
Directory` code, not a re-implementation — under an operational model
with in-flight messages:

- a node issues at most one outstanding read/write; the request travels
  to the block's home as a message;
- the home serializes transactions per block (the standard
  home-blocks-until-done discipline): processing a request applies
  ``record_read``/``record_write`` and yields the set of copies to
  invalidate (write) or demote (read recall), which travel as messages;
- the requester's fill completes only after every invalidation/demotion
  has been delivered;
- evictions are atomic (cache drop + ``record_eviction``), mirroring the
  simulator's synchronous eviction callback.

At every reachable state the checker asserts:

- **single-writer** — a writable copy excludes every other copy;
- **cache-dir-agreement** — every copy-holder is known to the directory
  (as sharer, owner, or target of an in-flight invalidation), an
  EXCLUSIVE directory entry has a matching owner copy or in-flight
  fill, and every recorded sharer corresponds to a copy or fill;
- **entry-invariants** — ``BlockEntry.check(num_nodes, addr)`` holds;
- **ecc-encodable** — the entry fits the 14 spare ECC bits of
  :mod:`repro.dram.directory` (limited pointer + broadcast marker) and
  survives an encode/decode round trip;
- **deadlock** — every non-quiescent state has an enabled action.

Violations carry the BFS action trace from the initial state, so a
protocol regression reads as a message-by-message scenario.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.common.errors import ProtocolError
from repro.common.params import COHERENCE_UNIT_BYTES
from repro.check.report import Finding, PassResult
from repro.coherence.protocol import BlockEntry, BlockState, Directory
from repro.dram.directory import (
    BROADCAST_POINTER,
    MAX_NODE_ID,
    DirState,
    DirectoryEntry,
)

# Cache states as seen from one node, per block.
_I, _S, _E = "I", "S", "E"

# A directory entry in canonical immutable form: (state, owner, sharers).
_UNOWNED = ("U", -1, ())

_DIR_STATE = {"U": BlockState.UNOWNED, "S": BlockState.SHARED,
              "E": BlockState.EXCLUSIVE}
_DIR_CODE = {v: k for k, v in _DIR_STATE.items()}

# Messages (members of the in-flight frozenset):
#   ("req", kind, node, block)             request travelling to the home
#   ("fill", kind, node, block, acks)      granted; completes when acks
#                                          (frozenset of nodes still to
#                                          invalidate/demote) drains
State = tuple  # (dirs, caches, msgs) — kept as plain tuples for speed


@dataclass
class ProtocolCheckResult:
    """Outcome of exhausting one (num_nodes, num_blocks) configuration."""

    num_nodes: int
    num_blocks: int
    states: int = 0
    transitions: int = 0
    findings: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings


class ProtocolModelChecker:
    """BFS over the reachable protocol states of a small configuration.

    ``directory_factory`` lets tests inject a mutated ``Directory``
    subclass (e.g. one that drops invalidations) and watch the checker
    produce a counterexample; it must accept the ``num_nodes`` keyword.
    """

    def __init__(
        self,
        num_nodes: int,
        num_blocks: int,
        directory_factory: Callable[..., Directory] = Directory,
        max_states: int = 400_000,
    ) -> None:
        self.num_nodes = num_nodes
        self.num_blocks = num_blocks
        self._factory = directory_factory
        self.max_states = max_states

    # -- plumbing between tuple states and the real Directory ---------------

    def _addr(self, block: int) -> int:
        return block * COHERENCE_UNIT_BYTES

    def _home(self, block: int) -> int:
        return block % self.num_nodes

    def _directory(self, dirs: tuple) -> Directory:
        directory = self._factory(num_nodes=self.num_nodes)
        for block, (state, owner, sharers) in enumerate(dirs):
            if (state, owner, sharers) == _UNOWNED:
                continue
            directory._entries[self._addr(block)] = BlockEntry(
                state=_DIR_STATE[state],
                sharers=set(sharers),
                owner=owner if owner >= 0 else None,
            )
        return directory

    def _entry_tuple(self, directory: Directory, block: int) -> tuple:
        entry = directory.entry(self._addr(block))
        owner = entry.owner if entry.owner is not None else -1
        return (_DIR_CODE[entry.state], owner, tuple(sorted(entry.sharers)))

    def initial_state(self) -> State:
        dirs = tuple(_UNOWNED for _ in range(self.num_blocks))
        caches = tuple(
            tuple(_I for _ in range(self.num_nodes))
            for _ in range(self.num_blocks)
        )
        return (dirs, caches, frozenset())

    # -- operational semantics ----------------------------------------------

    def successors(self, state: State) -> Iterator[tuple[str, State]]:
        """Every enabled action as ``(human-readable label, next state)``.

        May raise :class:`ProtocolError` out of the real directory code;
        the BFS turns that into a finding with the offending action.
        """
        dirs, caches, msgs = state
        busy = {m[2] for m in msgs}  # nodes with an outstanding operation
        blocks_in_fill = {m[3] for m in msgs if m[0] == "fill"}

        for msg in sorted(msgs):
            if msg[0] == "fill":
                _, kind, node, block, acks = msg
                if acks:
                    word = "demotion" if kind == "read" else "invalidation"
                    for target in sorted(acks):
                        yield (
                            f"{word} for block {block} delivered to node "
                            f"{target}",
                            self._deliver(state, msg, target),
                        )
                else:
                    yield (
                        f"node {node} completes its {kind} of block {block}",
                        self._complete(state, msg),
                    )
            else:
                _, kind, node, block = msg
                if block in blocks_in_fill:
                    continue  # home serializes transactions per block
                yield (
                    f"home {self._home(block)} processes the {kind} of "
                    f"block {block} from node {node}",
                    self._process(state, msg),
                )

        for node in range(self.num_nodes):
            if node in busy:
                continue
            for block in range(self.num_blocks):
                held = caches[block][node]
                if held == _I:
                    yield (
                        f"node {node} issues a read of block {block}",
                        self._issue(state, "read", node, block),
                    )
                if held != _E:
                    yield (
                        f"node {node} issues a write of block {block}",
                        self._issue(state, "write", node, block),
                    )

        for block in range(self.num_blocks):
            for node in range(self.num_nodes):
                if caches[block][node] == _I:
                    continue
                if self._involved(msgs, node, block):
                    continue
                yield (
                    f"node {node} evicts block {block}",
                    self._evict(state, node, block),
                )

    @staticmethod
    def _involved(msgs: frozenset, node: int, block: int) -> bool:
        for msg in msgs:
            if msg[3] != block:
                continue
            if msg[2] == node:
                return True
            if msg[0] == "fill" and node in msg[4]:
                return True
        return False

    def _issue(self, state: State, kind: str, node: int, block: int) -> State:
        dirs, caches, msgs = state
        return (dirs, caches, msgs | {("req", kind, node, block)})

    def _process(self, state: State, msg: tuple) -> State:
        dirs, caches, msgs = state
        _, kind, node, block = msg
        directory = self._directory(dirs)
        addr = self._addr(block)
        home = self._home(block)
        before = dirs[block]
        if kind == "read":
            directory.record_read(addr, node, home)
            # A read recall demotes a remote exclusive owner to a sharer.
            prev_state, prev_owner, _ = before
            acks = (
                frozenset({prev_owner})
                if prev_state == "E" and prev_owner != node
                else frozenset()
            )
        else:
            victims = directory.record_write(addr, node, home)
            acks = frozenset(victims)
        new_dirs = self._with_block(dirs, block,
                                    self._entry_tuple(directory, block))
        new_msgs = (msgs - {msg}) | {("fill", kind, node, block, acks)}
        return (new_dirs, caches, new_msgs)

    def _deliver(self, state: State, msg: tuple, target: int) -> State:
        dirs, caches, msgs = state
        _, kind, node, block, acks = msg
        held = caches[block][target]
        new_cache = _S if (kind == "read" and held == _E) else _I
        new_caches = self._with_cache(caches, block, target, new_cache)
        new_msgs = (msgs - {msg}) | {
            ("fill", kind, node, block, acks - {target})
        }
        return (dirs, new_caches, new_msgs)

    def _complete(self, state: State, msg: tuple) -> State:
        dirs, caches, msgs = state
        _, kind, node, block, _acks = msg
        new_caches = caches
        if node != self._home(block):
            # The home reads/writes its own memory; only remote
            # requesters install a directory-tracked copy.
            new_caches = self._with_cache(
                caches, block, node, _S if kind == "read" else _E
            )
        return (dirs, new_caches, msgs - {msg})

    def _evict(self, state: State, node: int, block: int) -> State:
        dirs, caches, msgs = state
        directory = self._directory(dirs)
        directory.record_eviction(self._addr(block), node)
        new_dirs = self._with_block(dirs, block,
                                    self._entry_tuple(directory, block))
        new_caches = self._with_cache(caches, block, node, _I)
        return (new_dirs, new_caches, msgs)

    @staticmethod
    def _with_block(dirs: tuple, block: int, entry: tuple) -> tuple:
        return dirs[:block] + (entry,) + dirs[block + 1:]

    @staticmethod
    def _with_cache(caches: tuple, block: int, node: int, value: str) -> tuple:
        row = caches[block]
        return (caches[:block]
                + (row[:node] + (value,) + row[node + 1:],)
                + caches[block + 1:])

    # -- invariants -----------------------------------------------------------

    def violations(self, state: State) -> list[tuple[str, str]]:
        """(rule, message) pairs violated by ``state``."""
        dirs, caches, msgs = state
        found: list[tuple[str, str]] = []
        for block in range(self.num_blocks):
            row = caches[block]
            dir_state, owner, sharers = dirs[block]
            home = self._home(block)
            holders = {n for n in range(self.num_nodes) if row[n] != _I}
            writers = {n for n in range(self.num_nodes) if row[n] == _E}
            fills = {m for m in msgs if m[0] == "fill" and m[3] == block}
            fill_requesters = {m[2] for m in fills}
            pending_acks = {t for m in fills for t in m[4]}

            if writers and (len(writers) > 1 or holders - writers):
                found.append((
                    "single-writer",
                    f"block {block}: node {min(writers)} holds a writable "
                    f"copy while nodes {sorted(holders - {min(writers)})} "
                    f"also hold copies",
                ))

            known = set(sharers) | ({owner} if owner >= 0 else set())
            unknown = holders - known - pending_acks
            if unknown:
                found.append((
                    "cache-dir-agreement",
                    f"block {block}: nodes {sorted(unknown)} hold copies "
                    f"the directory does not track "
                    f"(state={dir_state}, owner={owner}, "
                    f"sharers={list(sharers)})",
                ))
            if dir_state == "E" and row[owner] != _E \
                    and owner not in fill_requesters:
                found.append((
                    "cache-dir-agreement",
                    f"block {block}: directory says node {owner} owns it "
                    f"exclusively but that node's copy is "
                    f"'{row[owner]}' with no fill in flight",
                ))
            for sharer in sharers:
                if row[sharer] == _I and sharer not in fill_requesters:
                    found.append((
                        "cache-dir-agreement",
                        f"block {block}: directory lists node {sharer} as a "
                        f"sharer but it holds no copy and no fill is in "
                        f"flight",
                    ))

            try:
                BlockEntry(
                    state=_DIR_STATE[dir_state],
                    sharers=set(sharers),
                    owner=owner if owner >= 0 else None,
                ).check(self.num_nodes, self._addr(block))
            except ProtocolError as exc:
                found.append(("entry-invariants", f"block {block}: {exc}"))

            ecc = self._ecc_violation(block, dir_state, owner, sharers)
            if ecc:
                found.append(("ecc-encodable", ecc))
            del home
        return found

    @staticmethod
    def _ecc_violation(block: int, dir_state: str, owner: int,
                       sharers: tuple) -> str | None:
        """Check the entry fits the Figure 5 spare-ECC-bit encoding."""
        if dir_state == "U":
            entry = DirectoryEntry()
        elif dir_state == "E":
            if owner > MAX_NODE_ID:
                return (f"block {block}: owner {owner} exceeds the "
                        f"{MAX_NODE_ID} limited-pointer maximum")
            entry = DirectoryEntry(DirState.EXCLUSIVE, owner)
        elif len(sharers) == 1:
            pointer = next(iter(sharers))
            if pointer > MAX_NODE_ID:
                return (f"block {block}: sharer {pointer} exceeds the "
                        f"{MAX_NODE_ID} limited-pointer maximum")
            entry = DirectoryEntry(DirState.SHARED, pointer)
        else:
            entry = DirectoryEntry(DirState.SHARED_BROADCAST,
                                   BROADCAST_POINTER)
        if DirectoryEntry.decode(entry.encode()) != entry:
            return f"block {block}: entry does not round-trip the ECC bits"
        return None

    # -- exhaustive exploration ----------------------------------------------

    def check(self) -> ProtocolCheckResult:
        result = ProtocolCheckResult(self.num_nodes, self.num_blocks)
        location = f"nodes={self.num_nodes}, blocks={self.num_blocks}"

        def finding(rule: str, message: str, trace: tuple[str, ...],
                    severity: str = "error") -> Finding:
            return Finding("protocol", rule, severity, location, message,
                           trace)

        start = self.initial_state()
        parents: dict[State, tuple[State, str] | None] = {start: None}
        frontier = deque([start])
        seen_rules: set[tuple[str, str]] = set()
        while frontier:
            state = frontier.popleft()  # BFS: counterexamples are shortest
            result.states += 1
            if result.states > self.max_states:
                result.findings.append(finding(
                    "state-space",
                    f"exceeded {self.max_states} states; exploration is "
                    f"not exhaustive — shrink the configuration",
                    (),
                ))
                return result
            for rule, message in self.violations(state):
                key = (rule, message)
                if key not in seen_rules:
                    seen_rules.add(key)
                    result.findings.append(
                        finding(rule, message, self._trace(parents, state))
                    )
            had_action = False
            try:
                for label, nxt in self.successors(state):
                    had_action = True
                    result.transitions += 1
                    if nxt not in parents:
                        parents[nxt] = (state, label)
                        frontier.append(nxt)
            except ProtocolError as exc:
                result.findings.append(finding(
                    "protocol-error",
                    f"directory raised ProtocolError: {exc}",
                    self._trace(parents, state),
                ))
                continue
            if not had_action and state[2]:
                result.findings.append(finding(
                    "deadlock",
                    "state with in-flight messages has no enabled action",
                    self._trace(parents, state),
                ))
        return result

    @staticmethod
    def _trace(parents: dict, state: State) -> tuple[str, ...]:
        steps: list[str] = []
        cursor = state
        while parents[cursor] is not None:
            cursor, label = parents[cursor]
            steps.append(label)
        steps.reverse()
        return tuple(steps)


#: The configurations the tier-1 suite exhausts (small enough to finish
#: in seconds, large enough for three-party races, broadcast
#: invalidations and two-block interleavings).
DEFAULT_CONFIGS: tuple[tuple[int, int], ...] = ((2, 1), (3, 1), (4, 1), (3, 2))


def check_protocol(
    configs: tuple[tuple[int, int], ...] = DEFAULT_CONFIGS,
    directory_factory: Callable[..., Directory] = Directory,
) -> PassResult:
    """Run the model checker over every configuration; one PassResult."""
    result = PassResult("protocol")
    total_states = 0
    total_transitions = 0
    for num_nodes, num_blocks in configs:
        checker = ProtocolModelChecker(
            num_nodes, num_blocks, directory_factory=directory_factory
        )
        outcome = checker.check()
        total_states += outcome.states
        total_transitions += outcome.transitions
        result.findings.extend(outcome.findings)
    result.info = {
        "configs": len(configs),
        "states": total_states,
        "transitions": total_transitions,
    }
    return result
