"""``python -m repro check`` — run the static verification suite.

    python -m repro check                    # all six passes
    python -m repro check --only protocol
    python -m repro check --only units --format json
    python -m repro check --skip lints --format json

Exit status: 0 if no pass reported an error finding, 1 otherwise, 2 on
usage errors (unknown pass names, empty selection).  Warnings are
reported but never fail the run.
"""

from __future__ import annotations

import argparse
import sys

from repro.check.deps import check_deps
from repro.check.gspn import check_gspn_models
from repro.check.lints import lint_paths
from repro.check.protocol import check_protocol
from repro.check.races import check_races
from repro.check.report import CheckReport
from repro.check.units import check_units

PASS_NAMES: tuple[str, ...] = (
    "protocol", "gspn", "lints", "deps", "units", "races")

_RUNNERS = {
    "protocol": check_protocol,
    "gspn": check_gspn_models,
    "lints": lint_paths,
    "deps": check_deps,
    "units": check_units,
    "races": check_races,
}


def _csv(value: str) -> list[str]:
    return [item.strip() for item in value.split(",") if item.strip()]


def select_passes(
    only: str | None, skip: str | None
) -> tuple[list[str], list[str]]:
    """``(selected, unknown)`` in declaration order, mirroring the runner
    CLI's --only/--skip validation: unknown names are an error, not a
    silent no-op."""
    requested = set(PASS_NAMES)
    if only:
        requested &= set(_csv(only))
    if skip:
        requested -= set(_csv(skip))
    unknown = sorted(
        (set(_csv(only or "")) | set(_csv(skip or ""))) - set(PASS_NAMES)
    )
    return [name for name in PASS_NAMES if name in requested], unknown


def run_check(passes: list[str] | None = None) -> CheckReport:
    """Run the named passes (default: all) and collect one report."""
    report = CheckReport()
    for name in passes if passes is not None else list(PASS_NAMES):
        report.passes.append(_RUNNERS[name]())
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro check",
        description="Static verification: coherence-protocol model "
                    "checking, GSPN structural analysis, "
                    "simulation-discipline lints, whole-program "
                    "dependency/seed-flow analysis, "
                    "units-and-dimensions flow analysis, and "
                    "lockset/thread-root race detection.",
    )
    parser.add_argument(
        "--only",
        default=None,
        metavar="NAMES",
        help=f"comma-separated subset of passes ({', '.join(PASS_NAMES)})",
    )
    parser.add_argument(
        "--skip",
        default=None,
        metavar="NAMES",
        help="comma-separated passes to exclude",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default text)",
    )
    args = parser.parse_args(argv)

    selected, unknown = select_passes(args.only, args.skip)
    if unknown:
        print(f"unknown pass(es): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(PASS_NAMES)}", file=sys.stderr)
        return 2
    if not selected:
        print("selection is empty (check --only/--skip)", file=sys.stderr)
        return 2

    report = run_check(selected)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
    return report.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
