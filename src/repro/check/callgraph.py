"""Whole-program import/call graph over a Python package tree.

The substrate of the ``deps`` verification pass and of the runner's
per-experiment fingerprint slicing: a purely static (AST-level) model of
the package answering two questions the per-module lints cannot —

- *which modules can executing this entry point possibly touch?*
  (:meth:`CallGraph.module_slice` — the transitive import closure, the
  basis of :func:`repro.runner.fingerprint.slice_fingerprint`), and
- *which functions are reachable from this entry point, and through
  which call chain?* (:meth:`CallGraph.reachable` /
  :meth:`CallGraph.witness` — the counterexample chains of the seed-flow
  analysis in :mod:`repro.check.deps`).

It also records the thread-flow facts the ``races`` pass turns into
concurrency entry points: ``threading.Thread(target=...)`` /
``threading.Timer`` callables (:attr:`FunctionInfo.thread_targets`) and
``signal.signal`` handlers (:attr:`FunctionInfo.signal_handlers`).

The import closure is deliberately an **over-approximation of Python's
import semantics**: an import statement anywhere in a module — module
body or function body — counts as an edge, and importing ``a.b.c``
also executes ``a/__init__.py`` and ``a/b/__init__.py``, so ancestor
packages join the slice of every member module.  Over-approximation is
what makes fingerprint slicing *safe*: a module outside the closure
provably cannot run during the entry point's execution.  Anything the
closure cannot bound statically — ``importlib`` / ``__import__`` use,
or an intra-package import that maps to no source file — is recorded on
the module (:attr:`ModuleInfo.dynamic_sites` /
:attr:`ModuleInfo.unresolved_imports`) so consumers can degrade to the
whole-tree view instead of trusting a hole.

The module is self-contained (stdlib only, no ``repro`` imports) so the
runner can load it without pulling in the verification passes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

# Methods that mutate their receiver in place; used to spot functions
# mutating module-level containers.
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "clear", "remove", "discard", "appendleft",
    "extendleft", "sort", "reverse",
})

# numpy.random.Generator sampling methods: a call to one of these is a
# stochastic call site whose receiver must be an explicitly threaded
# generator.
STOCHASTIC_METHODS = frozenset({
    "random", "integers", "normal", "standard_normal", "uniform",
    "choice", "shuffle", "permutation", "exponential", "poisson",
    "geometric", "binomial", "lognormal", "gamma", "beta", "bytes",
    "standard_exponential", "multinomial",
})

MODULE_BODY = "<module>"


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function (or the module body)."""

    raw: str  # the call target as written, e.g. "split_rng" or "np.random.default_rng"
    resolved: str | None  # canonical dotted target, e.g. "repro.common.rng.split_rng"
    lineno: int


@dataclass(frozen=True)
class StochasticSite:
    """A ``<receiver>.<method>()`` call where ``method`` samples randomness."""

    receiver: str  # dotted receiver as written, e.g. "rng" or "self.rng"
    method: str
    lineno: int


@dataclass
class FunctionInfo:
    """Static facts about one function (or one module body)."""

    module: str
    qualname: str  # "" + name path within the module; MODULE_BODY for the body
    lineno: int
    params: tuple[str, ...] = ()
    calls: list[CallSite] = field(default_factory=list)
    stochastic: list[StochasticSite] = field(default_factory=list)
    locals: set[str] = field(default_factory=set)  # names bound in this scope
    reads: set[str] = field(default_factory=set)  # Name loads (incl. locals)
    mutations: list[tuple[str, int]] = field(default_factory=list)  # (name, line)
    env_reads: list[int] = field(default_factory=list)
    file_reads: list[int] = field(default_factory=list)
    rng_locals: set[str] = field(default_factory=set)  # names bound to a fresh Generator
    # Thread-flow facts for the races pass: callables handed to
    # threading.Thread(target=...)/Timer, and signal.signal handlers,
    # each as written at the call site ("<dynamic>" for non-name exprs).
    thread_targets: list[tuple[str, int]] = field(default_factory=list)
    signal_handlers: list[tuple[str, int]] = field(default_factory=list)

    @property
    def name(self) -> str:
        """Global key: ``module.qualname`` (just module for the body)."""
        if self.qualname == MODULE_BODY:
            return self.module
        return f"{self.module}.{self.qualname}"

    @property
    def global_reads(self) -> set[str]:
        return self.reads - self.locals - set(self.params)


@dataclass
class ModuleAssign:
    """One module-scope binding: ``name = <expr>`` at the top level."""

    name: str
    lineno: int
    value_calls: tuple[str, ...]  # resolved call targets inside the value
    mutable_literal: bool  # list/dict/set literal or constructor call


@dataclass
class ModuleInfo:
    """Static facts about one module file."""

    name: str
    path: Path
    imports: set[str] = field(default_factory=set)  # intra-package module targets
    external_imports: set[str] = field(default_factory=set)  # top-level ext names
    unresolved_imports: list[tuple[int, str]] = field(default_factory=list)
    dynamic_sites: list[tuple[int, str]] = field(default_factory=list)
    import_names_total: int = 0  # intra-package imported names seen
    import_names_resolved: int = 0  # ... that mapped to a known module/member
    functions: dict[str, FunctionInfo] = field(default_factory=dict)  # by qualname
    assigns: dict[str, ModuleAssign] = field(default_factory=dict)
    classes: dict[str, list[str]] = field(default_factory=dict)  # class -> methods
    # local name -> qualified target; lets callers follow a package
    # __init__'s `from x import f` re-exports to the defining module.
    reexports: dict[str, str] = field(default_factory=dict)

    @property
    def body(self) -> FunctionInfo:
        return self.functions[MODULE_BODY]


class _ImportTable:
    """Local-name resolution for one module: what each name refers to."""

    def __init__(self) -> None:
        self.modules: dict[str, str] = {}  # local name -> module dotted path
        self.members: dict[str, str] = {}  # local name -> module.member

    def resolve(self, dotted: str) -> str | None:
        head, _, rest = dotted.partition(".")
        if head in self.modules:
            base = self.modules[head]
            return f"{base}.{rest}" if rest else base
        if head in self.members:
            base = self.members[head]
            return f"{base}.{rest}" if rest else base
        return None


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` -> "a.b.c" for pure attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _discover_modules(root: Path, package: str) -> dict[str, Path]:
    """Module dotted name -> source path for every ``*.py`` under root."""
    modules: dict[str, Path] = {}
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        rel = path.relative_to(root)
        parts = list(rel.parts)
        if parts[-1] == "__init__.py":
            parts = parts[:-1]
        else:
            parts[-1] = parts[-1][:-3]
        name = ".".join([package, *parts]) if parts else package
        modules[name] = path
    return modules


class _ModuleVisitor(ast.NodeVisitor):
    """Single pass over one module: imports, scopes, calls, assignments."""

    def __init__(self, info: ModuleInfo, package: str,
                 known_modules: dict[str, Path]) -> None:
        self.info = info
        self.package = package
        self.known = known_modules
        self.table = _ImportTable()
        self.scope_stack: list[FunctionInfo] = []
        self.class_stack: list[str] = []
        body = FunctionInfo(info.name, MODULE_BODY, 1)
        info.functions[MODULE_BODY] = body
        self._body = body

    # -- scope helpers -----------------------------------------------------

    @property
    def scope(self) -> FunctionInfo:
        return self.scope_stack[-1] if self.scope_stack else self._body

    def _qualname(self, name: str) -> str:
        parts = [*self.class_stack]
        for fn in self.scope_stack:
            parts.append(fn.qualname.rsplit(".", 1)[-1])
        parts.append(name)
        # Class names already embedded in enclosing function qualnames are
        # handled by building from the stacks in order of nesting.
        return ".".join(parts)

    # -- imports -----------------------------------------------------------

    def _package_of(self) -> str:
        """The package context for relative imports in this module."""
        name = self.info.name
        if self.info.path.name == "__init__.py":
            return name
        return name.rsplit(".", 1)[0] if "." in name else name

    def _note_intra_target(self, target: str, node: ast.stmt,
                          resolved: bool) -> None:
        self.info.import_names_total += 1
        if resolved:
            self.info.import_names_resolved += 1
            self.info.imports.add(target)
        else:
            self.info.unresolved_imports.append(
                (node.lineno, target))

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            target = alias.name
            head = target.split(".")[0]
            if head == self.package:
                self._note_intra_target(target, node, target in self.known)
            else:
                self.info.external_imports.add(head)
            if alias.asname:
                self.table.modules[alias.asname] = target
            else:
                self.table.modules[head] = head
            self.scope.locals.add(alias.asname or head)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            base_parts = self._package_of().split(".")
            if node.level > 1:
                base_parts = base_parts[: len(base_parts) - (node.level - 1)]
            module = ".".join(filter(None, [".".join(base_parts), node.module or ""]))
        else:
            module = node.module or ""
        head = module.split(".")[0] if module else ""
        intra = head == self.package
        for alias in node.names:
            if alias.name == "*":
                if intra:
                    self._note_intra_target(module, node, module in self.known)
                elif head:
                    self.info.external_imports.add(head)
                continue
            local = alias.asname or alias.name
            submodule = f"{module}.{alias.name}" if module else alias.name
            if intra:
                if submodule in self.known:
                    # `from repro.a import b` where b is a module.
                    self._note_intra_target(submodule, node, True)
                    self.table.modules[local] = submodule
                else:
                    self._note_intra_target(module, node, module in self.known)
                    self.table.members[local] = submodule
            else:
                if head:
                    self.info.external_imports.add(head)
                # Known module-valued members of external packages.
                if submodule in ("numpy.random", "os.path", "datetime.datetime"):
                    self.table.modules[local] = submodule
                else:
                    self.table.members[local] = submodule
            self.scope.locals.add(local)
        self.generic_visit(node)

    # -- functions and classes ---------------------------------------------

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        qual = self._qualname(node.name)
        args = node.args
        params = tuple(
            a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
        ) + tuple(a.arg for a in (args.vararg, args.kwarg) if a is not None)
        fn = FunctionInfo(self.info.name, qual, node.lineno, params=params)
        self.scope.locals.add(node.name)
        self.info.functions[qual] = fn
        if self.class_stack:
            self.info.classes.setdefault(
                ".".join(self.class_stack), []).append(node.name)
        self.scope_stack.append(fn)
        for default in [*args.defaults, *args.kw_defaults]:
            if default is not None:
                self.visit(default)
        for stmt in node.body:
            self.visit(stmt)
        self.scope_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.scope.locals.add(node.name)
        self.info.classes.setdefault(self._qualname(node.name), [])
        self.class_stack.append(node.name)
        for base in node.bases:
            self.visit(base)
        for stmt in node.body:
            self.visit(stmt)
        self.class_stack.pop()

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # Treat lambda bodies as part of the enclosing scope but shield
        # their parameters from the read set.
        for a in [*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs]:
            self.scope.locals.add(a.arg)
        self.generic_visit(node)

    # -- assignments ---------------------------------------------------------

    def _value_calls(self, value: ast.AST) -> tuple[str, ...]:
        calls = []
        for sub in ast.walk(value):
            if isinstance(sub, ast.Call):
                dotted = _dotted(sub.func)
                if dotted:
                    calls.append(self.table.resolve(dotted) or dotted)
        return tuple(calls)

    @staticmethod
    def _is_mutable_literal(value: ast.AST) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)):
            return True
        return (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in {"list", "dict", "set", "bytearray",
                                      "defaultdict", "deque", "Counter"})

    def _record_assign(self, target: ast.expr, value: ast.AST | None,
                       lineno: int) -> None:
        if isinstance(target, ast.Name):
            self.scope.locals.add(target.id)
            if not self.scope_stack and not self.class_stack \
                    and value is not None:
                self.info.assigns[target.id] = ModuleAssign(
                    name=target.id,
                    lineno=lineno,
                    value_calls=self._value_calls(value),
                    mutable_literal=self._is_mutable_literal(value),
                )
            if value is not None and self.scope_stack:
                for resolved in self._value_calls(value):
                    if resolved in RNG_FACTORIES:
                        self.scope.rng_locals.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_assign(elt, None, lineno)
        elif isinstance(target, ast.Subscript):
            base = _dotted(target.value)
            if base:
                self.scope.mutations.append((base, lineno))
        elif isinstance(target, ast.Starred):
            self._record_assign(target.value, None, lineno)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        for target in node.targets:
            self._record_assign(target, node.value, node.lineno)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
        self._record_assign(node.target, node.value, node.lineno)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        if isinstance(node.target, ast.Name):
            self.scope.reads.add(node.target.id)
            if node.target.id not in self.scope.locals:
                self.scope.mutations.append((node.target.id, node.lineno))
        else:
            base = _dotted(node.target)
            if base:
                self.scope.mutations.append((base, node.lineno))

    def visit_Global(self, node: ast.Global) -> None:
        for name in node.names:
            self.scope.mutations.append((name, node.lineno))

    def visit_For(self, node: ast.For) -> None:
        self._record_assign(node.target, None, node.lineno)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._record_assign(node.target, None, getattr(node.target, "lineno", 0))
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if item.optional_vars is not None:
                self._record_assign(item.optional_vars, None, node.lineno)
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.name:
            self.scope.locals.add(node.name)
        self.generic_visit(node)

    # -- reads, calls, special sites ----------------------------------------

    @staticmethod
    def _callable_arg(node: ast.Call, *, keyword: str,
                      position: int | None) -> str | None:
        """The callable argument of a Thread/Timer/signal call, as written.

        Returns the dotted expression ("client_loop", "self._worker"),
        ``"<dynamic>"`` for a non-name expression (lambda, subscript), or
        None when the argument is absent or literally None.
        """
        expr: ast.expr | None = None
        for kw in node.keywords:
            if kw.arg == keyword:
                expr = kw.value
                break
        if expr is None and position is not None and len(node.args) > position:
            expr = node.args[position]
        if expr is None:
            return None
        if isinstance(expr, ast.Constant):
            return None  # Thread(target=None), signal.signal(sig, SIG_DFL-ish)
        dotted = _dotted(expr)
        return dotted if dotted is not None else "<dynamic>"

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.scope.reads.add(node.id)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        dotted = _dotted(node)
        if dotted:
            resolved = self.table.resolve(dotted) or dotted
            if resolved == "os.environ" or resolved.startswith("os.environ."):
                self.scope.env_reads.append(node.lineno)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted:
            resolved = self.table.resolve(dotted)
            site = CallSite(raw=dotted, resolved=resolved, lineno=node.lineno)
            self.scope.calls.append(site)
            canonical = resolved or dotted
            if canonical in ("os.getenv", "os.environ.get"):
                self.scope.env_reads.append(node.lineno)
            if canonical == "open" and not self.table.resolve("open"):
                self.scope.file_reads.append(node.lineno)
            if canonical in ("importlib.import_module", "__import__",
                            "importlib.reload"):
                self.info.dynamic_sites.append((node.lineno, canonical))
            if canonical in ("threading.Thread", "threading.Timer"):
                target = self._callable_arg(
                    node, keyword="function" if canonical.endswith("Timer")
                    else "target",
                    position=1 if canonical.endswith("Timer") else None)
                if target is not None:
                    self.scope.thread_targets.append((target, node.lineno))
            if canonical == "signal.signal":
                handler = self._callable_arg(node, keyword="handler",
                                             position=1)
                if handler is not None:
                    self.scope.signal_handlers.append((handler, node.lineno))
        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
            receiver = _dotted(node.func.value)
            if receiver is not None:
                if method in STOCHASTIC_METHODS:
                    self.scope.stochastic.append(
                        StochasticSite(receiver, method, node.lineno))
                if method in _MUTATING_METHODS:
                    self.scope.mutations.append((receiver, node.lineno))
                if method in ("read_text", "read_bytes"):
                    self.scope.file_reads.append(node.lineno)
        self.generic_visit(node)


# Calls that create a fresh numpy Generator.  ``repro.common.rng`` is the
# sanctioned factory pair; direct numpy construction is recognised too so
# a module bypassing the helpers is still caught.
RNG_FACTORIES = frozenset({
    "repro.common.rng.make_rng",
    "repro.common.rng.split_rng",
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.RandomState",
})


@dataclass
class CallGraph:
    """The whole-program model: modules, functions, and resolved edges."""

    package: str
    root: Path
    modules: dict[str, ModuleInfo]
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    # function name -> list of (callee function name, lineno)
    edges: dict[str, list[tuple[str, int]]] = field(default_factory=dict)
    call_sites_total: int = 0
    call_sites_resolved: int = 0

    # -- imports / slicing ---------------------------------------------------

    def _ancestors(self, module: str) -> list[str]:
        parts = module.split(".")
        return [".".join(parts[:i]) for i in range(1, len(parts))]

    def module_slice(self, entry_module: str) -> set[str]:
        """Transitive import closure of ``entry_module``, ancestors included.

        Every module in the returned set can execute when the entry module
        is imported and run; every module outside it provably cannot
        (barring the dynamic-import escapes recorded on the modules
        themselves — check :meth:`slice_holes`).
        """
        if entry_module not in self.modules:
            raise KeyError(entry_module)
        seen: set[str] = set()
        frontier = [entry_module]
        while frontier:
            module = frontier.pop()
            if module in seen or module not in self.modules:
                continue
            seen.add(module)
            for ancestor in self._ancestors(module):
                if ancestor in self.modules and ancestor not in seen:
                    frontier.append(ancestor)
            for target in self.modules[module].imports:
                if target not in seen:
                    frontier.append(target)
        return seen

    def slice_holes(self, slice_modules: set[str]) -> list[tuple[str, int, str]]:
        """Static-analysis escapes inside a slice: ``(module, line, what)``
        for every dynamic-import site and unresolved intra-package import.
        A non-empty result means the slice cannot be trusted as a bound."""
        holes: list[tuple[str, int, str]] = []
        for name in sorted(slice_modules):
            info = self.modules.get(name)
            if info is None:
                continue
            for lineno, what in info.dynamic_sites:
                holes.append((name, lineno, f"dynamic import via {what}"))
            for lineno, target in info.unresolved_imports:
                holes.append((name, lineno, f"unresolved import of {target}"))
        return holes

    @property
    def import_resolution(self) -> float:
        total = sum(m.import_names_total for m in self.modules.values())
        resolved = sum(m.import_names_resolved for m in self.modules.values())
        return resolved / total if total else 1.0

    @property
    def call_resolution(self) -> float:
        if not self.call_sites_total:
            return 1.0
        return self.call_sites_resolved / self.call_sites_total

    # -- call-graph reachability ---------------------------------------------

    def function_for(self, name: str) -> FunctionInfo | None:
        """Look up ``module.qualname``; a class name maps to __init__."""
        if name in self.functions:
            return self.functions[name]
        init = self.functions.get(f"{name}.__init__")
        return init

    def reachable(self, entries: list[str]) -> dict[str, tuple[str, int] | None]:
        """BFS over call edges: reachable function -> (caller, lineno).

        Entry points map to ``None``.  Unknown entries are ignored (the
        caller reports them).
        """
        parents: dict[str, tuple[str, int] | None] = {}
        frontier: list[str] = []
        for entry in entries:
            fn = self.function_for(entry)
            if fn is not None and fn.name not in parents:
                parents[fn.name] = None
                frontier.append(fn.name)
        while frontier:
            current = frontier.pop(0)
            for callee, lineno in self.edges.get(current, ()):
                if callee not in parents:
                    parents[callee] = (current, lineno)
                    frontier.append(callee)
        return parents

    def witness(self, parents: dict[str, tuple[str, int] | None],
                target: str) -> tuple[str, ...]:
        """The call chain from an entry point to ``target``, one human-
        readable step per hop, oldest first — the deps analogue of the
        protocol checker's counterexample traces."""
        if target not in parents:
            return ()
        chain: list[str] = []
        current: str | None = target
        while current is not None:
            parent = parents[current]
            fn = self.functions.get(current)
            where = ""
            if fn is not None:
                rel = self.modules[fn.module].path
                try:
                    rel = rel.relative_to(self.root)
                except ValueError:
                    pass
                where = f" ({rel}:{fn.lineno})"
            if parent is None:
                chain.append(f"{current}{where} [entry point]")
                current = None
            else:
                caller, lineno = parent
                chain.append(f"{current}{where} called from "
                             f"{caller}:{lineno}")
                current = caller
        return tuple(reversed(chain))


def canonicalize(graph: CallGraph, target: str) -> str:
    """Follow package-``__init__`` re-export chains to the defining module.

    ``repro.runner.run_tasks`` resolves through ``runner/__init__.py``'s
    ``from repro.runner.core import run_tasks`` to
    ``repro.runner.core.run_tasks``.  Bounded, so a re-export cycle
    cannot hang the analysis.
    """
    for _ in range(8):
        if target in graph.functions:
            return target
        # Longest known-module prefix, then one attribute step through
        # that module's re-export table.
        parts = target.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in graph.modules:
                attr = parts[cut]
                forwarded = graph.modules[prefix].reexports.get(attr)
                if forwarded is not None and forwarded != target:
                    rest = parts[cut + 1:]
                    target = ".".join([forwarded, *rest])
                    break
                return target
        else:
            return target
    return target


def _resolve_calls(graph: CallGraph) -> None:
    """Second pass: bind every call site to a known function if possible."""
    for module in graph.modules.values():
        for fn in module.functions.values():
            graph.functions[fn.name] = fn
    for module in graph.modules.values():
        for fn in module.functions.values():
            edges = graph.edges.setdefault(fn.name, [])
            for site in fn.calls:
                graph.call_sites_total += 1
                target = _resolve_one_call(graph, module, fn, site)
                if target is not None:
                    graph.call_sites_resolved += 1
                    resolved_fn = graph.function_for(canonicalize(graph, target))
                    if resolved_fn is not None:
                        edges.append((resolved_fn.name, site.lineno))


def _resolve_one_call(graph: CallGraph, module: ModuleInfo,
                      fn: FunctionInfo, site: CallSite) -> str | None:
    """The canonical target of one call site, or None if unresolvable."""
    import builtins

    head, _, rest = site.raw.partition(".")
    # self.method() inside a class body -> the sibling method.
    if head == "self":
        if rest and "." not in rest and "." in fn.qualname:
            owner = fn.qualname.rsplit(".", 1)[0]
            candidate = f"{module.name}.{owner}.{rest}"
            if candidate in graph.functions:
                return candidate
        return None
    if site.resolved is not None:
        return site.resolved
    # A plain name: a sibling definition in this module wins over builtins.
    if not rest:
        if head in module.functions or head in module.classes:
            return f"{module.name}.{head}"
        if head in fn.locals or head in fn.params:
            return None  # a local callable: dynamic dispatch
        if hasattr(builtins, head):
            return f"builtins.{head}"
        return None
    # A dotted call on a local/parameter receiver is dynamic dispatch.
    return None


def build_callgraph(root: Path | None = None,
                    package: str | None = None) -> CallGraph:
    """Parse every module under ``root`` and build the whole-program graph.

    ``root`` defaults to the installed ``repro`` package directory;
    ``package`` defaults to the directory name.  Files that fail to parse
    are recorded as modules with a dynamic-site hole (so slices through
    them degrade) rather than aborting the build.
    """
    if root is None:
        import repro

        root = Path(repro.__file__).parent
    root = root.resolve()
    package = package or root.name
    known = _discover_modules(root, package)
    graph = CallGraph(package=package, root=root, modules={})
    for name, path in known.items():
        info = ModuleInfo(name=name, path=path)
        graph.modules[name] = info
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except (OSError, SyntaxError) as exc:
            info.dynamic_sites.append((getattr(exc, "lineno", 0) or 0,
                                       f"unparseable module: {exc}"))
            info.functions[MODULE_BODY] = FunctionInfo(name, MODULE_BODY, 1)
            continue
        visitor = _ModuleVisitor(info, package, known)
        visitor.visit(tree)
        info.reexports = {**visitor.table.modules, **visitor.table.members}
    _resolve_calls(graph)
    return graph
