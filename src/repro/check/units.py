"""``units`` pass: static units-and-dimensions flow analysis.

The other four passes cannot see the bug class this one exists for: a
silently mixed ns/cycles or bytes/lines value corrupts every downstream
figure while the protocol still model-checks, the nets stay structurally
sound, every module lints clean and the dependency graph is spotless.
The repo encodes dimensions by naming convention
(:func:`repro.check.dimensions.suffix_dim`) plus an explicit annotation
registry (:data:`repro.check.dimensions.ANNOTATIONS` and inline
``# repro: unit(<token>)`` comments); this pass propagates those seeds
through the code and reports where they collide:

- **intraprocedural dataflow** — one forward pass per function over an
  abstract environment mapping names to dims, with the arithmetic rules
  of :mod:`repro.check.dimensions` (``+``/``-``/``%``/comparisons
  require matching units; ``time x freq`` of matching scale is a cycle
  count; ``fraction`` is transparent; powers of ten erase dims);
- **interprocedural propagation** — function return dims are inferred
  bottom-up over the existing call graph
  (:mod:`repro.check.callgraph`), then every call site checks its
  arguments against the callee's declared parameter dims (including
  dataclass constructor fields) and picks up the callee's return dim;
- **call-chain witnesses** — errors inside functions reachable from a
  registered entry point (experiment registry + sweep bases, the same
  roots as the ``deps`` pass) carry the path from the entry point, the
  same counterexample discipline as the protocol model checker.

| rule | severity | rejects |
|---|---|---|
| ``unit-mix`` | error | ``+``/``-``/``%`` over different units (``bytes - lines``), or a mismatched-scale ``time * freq`` product (``latency_ns * clock_hz``) |
| ``unit-compare`` | error | ordering/equality between different units (``size_bytes < num_lines``) |
| ``unit-arg`` | error | an argument whose dim conflicts with the parameter's declared dim (``us`` into a ``*_ns`` parameter) |
| ``unit-return`` | error | a return value whose dim conflicts with the function's declared return dim |
| ``unit-assign`` | error | binding a value to a name whose suffix/annotation declares a different dim |
| ``unit-conversion`` | error | any of the above where the mismatch is seconds-family vs cycles — the fix is ``cycles_for_time``/``time_for_cycles``, not a rename |
| ``unit-unknown-return`` | warning | a public time/cycles/freq-suffixed function whose return dim the analysis cannot infer (an unknown-dimension escape at an API boundary) |
| ``unit-annotation`` | warning | a registry entry or inline ``unit(...)`` comment that names an unknown token or a name the tree no longer has |

Suppressions share the established ``# repro: allow(<rule>)`` namespace
(on the reported line); unit-rule suppressions that suppress nothing are
reported as ``unused-suppression`` by this pass, mirroring the lints'
meta-discipline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.check.callgraph import (
    CallGraph,
    ModuleInfo,
    _dotted,
    build_callgraph,
    canonicalize,
)
from repro.check.dimensions import (
    ANNOTATIONS,
    Dim,
    UNITS,
    combine,
    divide,
    is_conversion_pair,
    is_pow10,
    multiply,
    suffix_dim,
    unit_comments,
)
from repro.check.report import Finding, PassResult

UNITS_RULES: tuple[str, ...] = (
    "unit-mix",
    "unit-compare",
    "unit-arg",
    "unit-return",
    "unit-assign",
    "unit-conversion",
    "unit-unknown-return",
    "unit-annotation",
)

#: Builtins the dataflow sees through: they return (one of) their
#: arguments unchanged in dimension.
_TRANSPARENT_ONE = frozenset({"abs", "round", "int", "float"})
_TRANSPARENT_JOIN = frozenset({"min", "max"})


@dataclass
class _Sig:
    """Declared unit facts about one function (or method)."""

    name: str  # module.qualname, matching CallGraph keys
    lineno: int
    positional: list[tuple[str, Dim | None]] = field(default_factory=list)
    by_name: dict[str, Dim | None] = field(default_factory=dict)
    declared_return: Dim | None = None
    return_explicit: bool = False  # registry/inline (trusted) vs suffix
    has_self: bool = False
    node: ast.FunctionDef | ast.AsyncFunctionDef | None = None
    module: str = ""


class _ModuleUnits:
    """Parsed per-module facts: AST, unit comments, suppressions."""

    def __init__(self, info: ModuleInfo) -> None:
        self.info = info
        self.source = ""
        self.tree: ast.Module | None = None
        try:
            self.source = info.path.read_text()
            self.tree = ast.parse(self.source, filename=str(info.path))
        except (OSError, SyntaxError):
            self.tree = None  # callgraph already records the hole
        self.unit_lines = unit_comments(self.source) if self.source else {}

    def resolve(self, dotted: str) -> str | None:
        """Canonical dotted target of a name read in this module."""
        head, _, rest = dotted.partition(".")
        info = self.info
        if head in info.reexports:
            base = info.reexports[head]
        elif head in info.assigns or head in info.functions \
                or head in info.classes:
            base = f"{info.name}.{head}"
        else:
            return None
        return f"{base}.{rest}" if rest else base


class _UnitsAnalysis:
    """The whole-tree pass: collect signatures, infer, then report."""

    def __init__(self, graph: CallGraph, entry_points: dict[str, str],
                 annotations: dict[str, str]) -> None:
        self.graph = graph
        self.annotations = annotations
        self.result = PassResult("units")
        self.modules: dict[str, _ModuleUnits] = {
            name: _ModuleUnits(info) for name, info in graph.modules.items()
        }
        self.fn_sigs: dict[str, _Sig] = {}
        self.class_fields: dict[str, list[tuple[str, Dim | None]]] = {}
        self.attr_dims: dict[str, Dim | None] = {}
        self.inferred: dict[str, Dim | None] = {}
        self.seeded = 0
        self.explicit = 0
        # Witness plumbing (same discipline as the deps pass).
        entries = []
        for target in sorted(entry_points.values()):
            fn = graph.function_for(canonicalize(graph, target))
            if fn is not None:
                entries.append(fn.name)
        self.entry_count = len(entries)
        self.parents = graph.reachable(entries)
        self._suppressions: dict[str, dict[int, set[str]]] = {}

    # -- annotation / suppression plumbing ---------------------------------

    def _annotation_dim(self, key: str) -> Dim | None:
        token = self.annotations.get(key)
        return UNITS.get(token) if token else None

    def _suppressed(self, module: _ModuleUnits, lineno: int,
                    rule: str) -> bool:
        name = module.info.name
        if name not in self._suppressions:
            from repro.check.lints import _suppressions

            self._suppressions[name] = _suppressions(module.source)
        return rule in self._suppressions[name].get(lineno, ())

    def _location(self, module: _ModuleUnits, lineno: int) -> str:
        path = module.info.path
        try:
            path = path.relative_to(self.graph.root.parent)
        except ValueError:
            pass
        return f"{path}:{lineno}"

    def _line_dim(self, module: _ModuleUnits, lineno: int) -> Dim | None:
        """A valid inline ``# repro: unit(...)`` declaration on a line."""
        token = module.unit_lines.get(lineno)
        return UNITS.get(token) if token else None

    def _witness(self, fn_name: str, leaf: str) -> tuple[str, ...]:
        chain = self.graph.witness(self.parents, fn_name)
        return (*chain, leaf) if chain else ()

    # -- signature collection ----------------------------------------------

    def collect_signatures(self) -> None:
        for module in self.modules.values():
            if module.tree is None:
                continue
            for stmt in module.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._collect_function(module, stmt, qual=stmt.name)
                elif isinstance(stmt, ast.ClassDef):
                    self._collect_class(module, stmt)
        # Attribute dims: explicitly declared fields, conflicts dropped,
        # so `lat.local_memory` resolves anywhere once MPLatencies
        # declares it.  Suffix-conforming names need no entry (the
        # suffix applies at every use site already).
        drop = {name for name, dim in self.attr_dims.items() if dim is None}
        for name in drop:
            del self.attr_dims[name]

    def _collect_class(self, module: _ModuleUnits, node: ast.ClassDef) -> None:
        key = f"{module.info.name}.{node.name}"
        fields: list[tuple[str, Dim | None]] = []
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name):
                fname = stmt.target.id
                dim = (self._line_dim(module, stmt.lineno)
                       or self._annotation_dim(f"{key}.{fname}")
                       or suffix_dim(fname))
                if module.unit_lines.get(stmt.lineno) \
                        or self.annotations.get(f"{key}.{fname}"):
                    self.explicit += 1
                    prior = self.attr_dims.get(fname, dim)
                    self.attr_dims[fname] = dim if prior == dim else None
                if dim is not None:
                    self.seeded += 1
                fields.append((fname, dim))
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_function(module, stmt,
                                       qual=f"{node.name}.{stmt.name}")
        self.class_fields[key] = fields

    def _collect_function(self, module: _ModuleUnits,
                          node: ast.FunctionDef | ast.AsyncFunctionDef,
                          qual: str) -> None:
        key = f"{module.info.name}.{qual}"
        sig = _Sig(name=key, lineno=node.lineno, node=node,
                   module=module.info.name)
        args = node.args
        ordered = [*args.posonlyargs, *args.args]
        sig.has_self = bool(ordered) and ordered[0].arg in ("self", "cls")
        for arg in [*ordered, *args.kwonlyargs,
                    *filter(None, (args.vararg, args.kwarg))]:
            dim = (self._line_dim(module, arg.lineno)
                   or self._annotation_dim(f"{key}.{arg.arg}")
                   or suffix_dim(arg.arg))
            if dim is not None:
                self.seeded += 1
            sig.by_name[arg.arg] = dim
        sig.positional = [(a.arg, sig.by_name[a.arg]) for a in ordered]
        explicit = (self._line_dim(module, node.lineno)
                    or self._annotation_dim(key))
        sig.declared_return = explicit or suffix_dim(node.name)
        sig.return_explicit = explicit is not None
        if explicit is not None:
            self.explicit += 1
            if "." in qual:
                # An explicitly-annotated method return also dims the
                # attribute name: a property read (`stats.miss_rate`)
                # has no call site for the signature to fire at.
                prior = self.attr_dims.get(node.name, explicit)
                self.attr_dims[node.name] = (explicit if prior == explicit
                                             else None)
        self.fn_sigs[key] = sig

    # -- annotation hygiene --------------------------------------------------

    def check_annotations(self) -> None:
        """unit-annotation: registry entries and inline comments that
        guard nothing (unknown token, or a name the tree lost)."""
        package_prefix = f"{self.graph.package}."
        for key, token in sorted(self.annotations.items()):
            if not key.startswith(package_prefix):
                continue
            if token not in UNITS:
                self._find("unit-annotation", "warning", key,
                           f"annotation registry maps {key} to unknown "
                           f"unit '{token}' (known: "
                           f"{', '.join(sorted(UNITS))})")
                continue
            module_name, _, attr = key.rpartition(".")
            known = (
                key in self.fn_sigs
                or key in self.class_fields
                or any(key == f"{cls}.{fname}"
                       for cls, fs in self.class_fields.items()
                       for fname, _ in fs)
                or any(sig.name == module_name and attr in sig.by_name
                       for sig in self.fn_sigs.values())
                or (module_name in self.modules
                    and attr in self.modules[module_name].info.assigns)
            )
            if not known:
                self._find("unit-annotation", "warning", key,
                           f"annotation registry entry {key} names no "
                           f"known function, field, parameter or module "
                           f"constant — remove or update it")
        for module in self.modules.values():
            for lineno, token in sorted(module.unit_lines.items()):
                if token not in UNITS:
                    self._find("unit-annotation", "warning",
                               self._location(module, lineno),
                               f"# repro: unit({token}) names no known "
                               f"unit token (known: "
                               f"{', '.join(sorted(UNITS))})")

    # -- findings ------------------------------------------------------------

    def _find(self, rule: str, severity: str, location: str, message: str,
              trace: tuple[str, ...] = ()) -> None:
        self.result.findings.append(
            Finding("units", rule, severity, location, message, trace))

    # -- driver --------------------------------------------------------------

    def run(self) -> PassResult:
        self.collect_signatures()
        # Two inference rounds propagate return dims through call
        # chains up to two hops deep before any finding is reported;
        # suffix- and annotation-declared returns anchor the fixpoint.
        for _ in range(2):
            for sig in self.fn_sigs.values():
                if sig.node is None:
                    continue
                fn = _FunctionFlow(self, self.modules[sig.module], sig,
                                   collect=False)
                self.inferred[sig.name] = sig.declared_return \
                    or fn.run_and_infer()
        flagged: dict[str, set[tuple[int, str]]] = {}
        for sig in self.fn_sigs.values():
            if sig.node is None:
                continue
            module = self.modules[sig.module]
            flow = _FunctionFlow(self, module, sig, collect=True)
            flow.run_and_infer()
            module_flagged = flagged.setdefault(sig.module, set())
            for lineno, rule, message in flow.findings:
                module_flagged.add((lineno, rule))
                if self._suppressed(module, lineno, rule):
                    continue
                severity = "warning" if rule in (
                    "unit-unknown-return", "unit-annotation") else "error"
                trace = ()
                if severity == "error" and sig.name in self.parents:
                    trace = self._witness(sig.name, message)
                self._find(rule, severity,
                           self._location(module, lineno), message, trace)
        self.check_annotations()
        self._check_unused_suppressions(flagged)
        self.result.findings.sort(key=lambda f: (f.rule, f.location))
        self.result.info.update({
            "modules": len(self.modules),
            "functions": len(self.fn_sigs),
            "seeded_names": self.seeded,
            "explicit_annotations": self.explicit,
            "entry_points": self.entry_count,
            "reachable_functions": len(self.parents),
        })
        return self.result

    def _check_unused_suppressions(
            self, flagged: dict[str, set[tuple[int, str]]]) -> None:
        """A unit-rule allow() on a line this pass never flags is stale
        — the same meta-discipline the lints apply to their own rules."""
        from repro.check.lints import _suppressions

        for name, module in sorted(self.modules.items()):
            hits = flagged.get(name, set())
            for lineno, rules in sorted(_suppressions(module.source).items()):
                for rule in sorted(rules):
                    if rule in UNITS_RULES and (lineno, rule) not in hits:
                        self._find(
                            "unused-suppression", "warning",
                            self._location(module, lineno),
                            f"allow({rule}) suppresses nothing on this "
                            f"line; the code it excused is gone — remove "
                            f"the comment")


class _FunctionFlow:
    """Forward dataflow over one function body.

    The environment maps local names to dims; statements execute in
    source order (branch bodies sequentially — the abstraction is a
    may-analysis over names, not paths).  With ``collect`` the flow
    records findings; without, it only infers the return dim.
    """

    def __init__(self, owner: _UnitsAnalysis, module: _ModuleUnits,
                 sig: _Sig, collect: bool) -> None:
        self.owner = owner
        self.module = module
        self.sig = sig
        self.collect = collect
        self.env: dict[str, Dim | None] = dict(sig.by_name)
        self.findings: list[tuple[int, str, str]] = []
        self.return_dims: list[Dim | None] = []
        self.has_value_return = False

    # -- reporting -----------------------------------------------------------

    def _report(self, lineno: int, rule: str, message: str) -> None:
        if self.collect:
            self.findings.append((lineno, rule, message))

    def _mismatch(self, lineno: int, rule: str, a: Dim, b: Dim,
                  context: str) -> None:
        if is_conversion_pair(a, b):
            rule = "unit-conversion"
            context += (" — convert explicitly with cycles_for_time/"
                        "time_for_cycles (repro.common.units)")
        self._report(lineno, rule,
                     f"{self.sig.name}: {context} ({a} vs {b})")

    # -- driver --------------------------------------------------------------

    def run_and_infer(self) -> Dim | None:
        assert self.sig.node is not None
        self._exec_block(self.sig.node.body)
        if self.sig.declared_return is not None \
                and not self.sig.return_explicit \
                and self.has_value_return \
                and not any(d is not None for d in self.return_dims) \
                and self.sig.declared_return.quantity in (
                    "time", "cycles", "freq") \
                and self._is_public():
            self._report(
                self.sig.lineno, "unit-unknown-return",
                f"public API {self.sig.name}() declares "
                f"'{self.sig.declared_return}' by suffix but the analysis "
                f"cannot infer its return dimension; bless it with an "
                f"annotation registry entry or # repro: unit(...) so the "
                f"contract is explicit")
        known = {d for d in self.return_dims if d is not None}
        return known.pop() if len(known) == 1 else None

    def _is_public(self) -> bool:
        parts = [*self.sig.module.split("."), *self.sig.name.rsplit(
            ".", 1)[-1:]]
        return all(not part.startswith("_") for part in parts)

    # -- statements ----------------------------------------------------------

    def _exec_block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._exec(stmt)

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            dim = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, dim, stmt.value, stmt.lineno)
        elif isinstance(stmt, ast.AnnAssign):
            dim = self._eval(stmt.value) if stmt.value is not None else None
            self._bind(stmt.target, dim, stmt.value, stmt.lineno)
        elif isinstance(stmt, ast.AugAssign):
            right = self._eval(stmt.value)
            left = self._eval(stmt.target)
            dim = self._binop_dim(stmt.op, stmt.target, stmt.value,
                                  left, right, stmt.lineno)
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = dim
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.has_value_return = True
                dim = self._eval(stmt.value)
                self.return_dims.append(dim)
                declared = self.sig.declared_return
                if declared is not None and dim is not None \
                        and dim != declared:
                    self._mismatch(
                        stmt.lineno, "unit-return", dim, declared,
                        f"returns '{dim}' where the function declares "
                        f"'{declared}'")
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_dim = self._eval(stmt.iter)
            self._bind(stmt.target, iter_dim, None, stmt.lineno,
                       check=False)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, None, None,
                               stmt.lineno, check=False)
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                if handler.name:
                    self.env[handler.name] = None
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            self.env[stmt.name] = None  # nested scopes are not analyzed
        elif isinstance(stmt, (ast.Raise, ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)
        # pass/break/continue/global/nonlocal/import: nothing to flow.

    def _bind(self, target: ast.expr, dim: Dim | None,
              value: ast.AST | None, lineno: int, *,
              check: bool = True) -> None:
        if isinstance(target, ast.Name):
            # An inline unit(...) on the assignment is a reviewed *cast*
            # (trusted over inference, like a registry entry); only the
            # suffix convention is conflict-checked.
            cast = self.owner._line_dim(self.module, lineno)
            if cast is not None:
                self.env[target.id] = cast
                return
            declared = suffix_dim(target.id)
            if check and declared is not None and dim is not None \
                    and dim != declared:
                self._mismatch(
                    lineno, "unit-assign", dim, declared,
                    f"assigns a '{dim}' value to '{target.id}', which "
                    f"declares '{declared}'")
            self.env[target.id] = declared or dim
        elif isinstance(target, (ast.Tuple, ast.List)):
            elts = target.elts
            values = (value.elts if isinstance(value, (ast.Tuple, ast.List))
                      and len(value.elts) == len(elts) else None)
            for i, elt in enumerate(elts):
                elt_dim = self._eval(values[i]) if values else None
                self._bind(elt, elt_dim, values[i] if values else None,
                           lineno, check=check)
        elif isinstance(target, ast.Attribute):
            declared = (suffix_dim(target.attr)
                        or self.owner.attr_dims.get(target.attr))
            if check and declared is not None and dim is not None \
                    and dim != declared:
                self._mismatch(
                    lineno, "unit-assign", dim, declared,
                    f"assigns a '{dim}' value to attribute "
                    f"'{target.attr}', which declares '{declared}'")
        elif isinstance(target, ast.Starred):
            self._bind(target.value, None, None, lineno, check=False)
        # Subscript targets: container element writes are untracked.

    # -- expressions ---------------------------------------------------------

    def _eval(self, node: ast.expr | None) -> Dim | None:
        if node is None:
            return None
        if isinstance(node, ast.Constant):
            return None
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            return self._name_dim(node.id)
        if isinstance(node, ast.Attribute):
            return self._attr_dim(node)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left)
            right = self._eval(node.right)
            return self._binop_dim(node.op, node.left, node.right,
                                   left, right, node.lineno)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            dims = [self._eval(o) for o in operands]
            for op, (a, av), (b, bv) in zip(
                    node.ops, zip(dims, operands), zip(dims[1:], operands[1:])):
                if isinstance(op, (ast.Is, ast.IsNot, ast.In, ast.NotIn)):
                    continue
                if a is not None and b is not None and a != b:
                    self._mismatch(
                        node.lineno, "unit-compare", a, b,
                        f"compares '{a}' against '{b}' — the ordering is "
                        f"meaningless across units")
            return None
        if isinstance(node, ast.BoolOp):
            dims = {self._eval(v) for v in node.values}
            dims.discard(None)
            return dims.pop() if len(dims) == 1 else None
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            a = self._eval(node.body)
            b = self._eval(node.orelse)
            return a if a == b else (a if b is None else
                                     (b if a is None else None))
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Subscript):
            self._eval(node.slice)
            return self._eval(node.value)  # container-of-X yields X
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set, ast.Dict,
                             ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp, ast.JoinedStr, ast.Lambda,
                             ast.Await, ast.Yield, ast.YieldFrom)):
            return None
        return None

    def _name_dim(self, name: str) -> Dim | None:
        by_suffix = suffix_dim(name)
        if by_suffix is not None:
            return by_suffix
        canonical = self.module.resolve(name)
        if canonical is not None:
            return self.owner._annotation_dim(canonical)
        return None

    def _attr_dim(self, node: ast.Attribute) -> Dim | None:
        dotted = _dotted(node)
        if dotted is not None:
            canonical = self.module.resolve(dotted)
            if canonical is not None:
                annotated = self.owner._annotation_dim(canonical)
                if annotated is not None:
                    return annotated
        self._eval(node.value)
        return suffix_dim(node.attr) or self.owner.attr_dims.get(node.attr)

    def _binop_dim(self, op: ast.operator, left_node: ast.expr,
                   right_node: ast.expr, left: Dim | None,
                   right: Dim | None, lineno: int) -> Dim | None:
        # A power-of-ten literal is a hand-written scale conversion the
        # lattice cannot follow; the result leaves the analysis.
        for a_node, a_dim, b_dim in ((left_node, left, right),
                                     (right_node, right, left)):
            if isinstance(a_node, ast.Constant) and is_pow10(a_node.value) \
                    and isinstance(op, (ast.Mult, ast.Div)) \
                    and b_dim is not None:
                return None
        if isinstance(op, (ast.Add, ast.Sub, ast.Mod)):
            result, conflict = combine(left, right)
            if conflict:
                assert left is not None and right is not None
                token = {ast.Add: "+", ast.Sub: "-", ast.Mod: "%"}[type(op)]
                self._mismatch(
                    lineno, "unit-mix", left, right,
                    f"applies '{token}' across units")
                return None
            return result
        if isinstance(op, ast.Mult):
            result, conflict = multiply(left, right)
            if conflict:
                assert left is not None and right is not None
                self._mismatch(
                    lineno, "unit-mix", left, right,
                    f"multiplies '{left}' by '{right}' at mismatched "
                    f"scales — the product is neither cycles nor any "
                    f"unit in the lattice")
                return None
            return result
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            return divide(left, right)
        return None

    # -- calls ---------------------------------------------------------------

    def _eval_call(self, node: ast.Call) -> Dim | None:
        arg_dims = [self._eval(arg) for arg in node.args]
        kw_dims = {kw.arg: self._eval(kw.value)
                   for kw in node.keywords if kw.arg is not None}
        for kw in node.keywords:
            if kw.arg is None:
                self._eval(kw.value)
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _TRANSPARENT_ONE and arg_dims:
                return arg_dims[0]
            if func.id in _TRANSPARENT_JOIN:
                known = [d for d in arg_dims if d is not None]
                for a, b in zip(known, known[1:]):
                    if a != b:
                        self._mismatch(
                            node.lineno, "unit-compare", a, b,
                            f"passes mixed units to {func.id}() — the "
                            f"selection compares them")
                return known[0] if known else None
        sig, skip_self = self._resolve_callee(func)
        if sig is not None:
            self._check_args(node, sig, skip_self, arg_dims, kw_dims)
            return (sig.declared_return
                    or self.owner.inferred.get(sig.name))
        fields = self._resolve_constructor(func)
        if fields is not None:
            self._check_fields(node, fields, arg_dims, kw_dims)
            return None
        # Unresolvable receiver: the method *name* may still carry the
        # convention (machine.access_time_ns(...) is ns).
        if isinstance(func, ast.Attribute):
            return suffix_dim(func.attr)
        return None

    def _resolve_callee(self, func: ast.expr) -> tuple[_Sig | None, bool]:
        dotted = _dotted(func)
        if dotted is None:
            return None, False
        head, _, rest = dotted.partition(".")
        if head == "self" and rest and "." not in rest:
            owner = self.sig.name.rsplit(".", 1)[0]  # module.Class
            sig = self.owner.fn_sigs.get(f"{owner}.{rest}")
            if sig is not None:
                return sig, True
            return None, False
        canonical = self.module.resolve(dotted)
        if canonical is None:
            return None, False
        canonical = canonicalize(self.owner.graph, canonical)
        sig = self.owner.fn_sigs.get(canonical)
        if sig is not None:
            return sig, False
        init = self.owner.fn_sigs.get(f"{canonical}.__init__")
        if init is not None and canonical in self.owner.class_fields \
                and not self.owner.class_fields[canonical]:
            return init, True
        return None, False

    def _resolve_constructor(
            self, func: ast.expr) -> list[tuple[str, Dim | None]] | None:
        dotted = _dotted(func)
        if dotted is None:
            return None
        canonical = self.module.resolve(dotted)
        if canonical is None:
            return None
        canonical = canonicalize(self.owner.graph, canonical)
        fields = self.owner.class_fields.get(canonical)
        return fields if fields else None

    def _check_args(self, node: ast.Call, sig: _Sig, skip_self: bool,
                    arg_dims: list[Dim | None],
                    kw_dims: dict[str, Dim | None]) -> None:
        positional = sig.positional[1:] if skip_self else sig.positional
        for (pname, pdim), dim, arg in zip(positional, arg_dims, node.args):
            if isinstance(arg, ast.Starred):
                break
            self._check_one_arg(node.lineno, sig, pname, pdim, dim)
        for kwname, dim in kw_dims.items():
            pdim = sig.by_name.get(kwname)
            self._check_one_arg(node.lineno, sig, kwname, pdim, dim)

    def _check_one_arg(self, lineno: int, sig: _Sig, pname: str,
                       pdim: Dim | None, dim: Dim | None) -> None:
        if pdim is None or dim is None or pdim == dim:
            return
        callee = sig.name.rsplit(".", 1)[-1]
        self._mismatch(
            lineno, "unit-arg", dim, pdim,
            f"passes a '{dim}' value to parameter '{pname}' of "
            f"{callee}(), which declares '{pdim}'")

    def _check_fields(self, node: ast.Call,
                      fields: list[tuple[str, Dim | None]],
                      arg_dims: list[Dim | None],
                      kw_dims: dict[str, Dim | None]) -> None:
        by_name = dict(fields)
        callee = _dotted(node.func) or "<constructor>"
        for (fname, fdim), dim, arg in zip(fields, arg_dims, node.args):
            if isinstance(arg, ast.Starred):
                break
            if fdim is not None and dim is not None and fdim != dim:
                self._mismatch(
                    node.lineno, "unit-arg", dim, fdim,
                    f"passes a '{dim}' value to field '{fname}' of "
                    f"{callee}(), which declares '{fdim}'")
        for kwname, dim in kw_dims.items():
            fdim = by_name.get(kwname)
            if fdim is not None and dim is not None and fdim != dim:
                self._mismatch(
                    node.lineno, "unit-arg", dim, fdim,
                    f"passes a '{dim}' value to field '{kwname}' of "
                    f"{callee}(), which declares '{fdim}'")


def default_entry_points() -> dict[str, str]:
    """The same roots as the ``deps`` pass: registered experiments plus
    the sweep bases."""
    from repro.check.deps import registry_entry_points

    return registry_entry_points()


def check_units(root: Path | None = None, package: str | None = None,
                entry_points: dict[str, str] | None = None,
                annotations: dict[str, str] | None = None) -> PassResult:
    """Run the units-and-dimensions flow pass.

    ``root``/``package`` default to the installed ``repro`` package;
    ``entry_points`` defaults to the experiment registry plus the sweep
    bases (the witness roots); ``annotations`` defaults to the shipped
    registry (:data:`repro.check.dimensions.ANNOTATIONS`).
    """
    graph = build_callgraph(root, package)
    if entry_points is None:
        entry_points = default_entry_points() if root is None else {}
    if annotations is None:
        annotations = ANNOTATIONS
    return _UnitsAnalysis(graph, entry_points, annotations).run()
