"""``races`` pass: static lockset + thread-root race detection.

The ``protocol`` pass model-checks the *simulated* coherence invariant
(one writer, no stale sharers); since the serve subsystem landed, the
repo itself is a concurrent system — a ThreadingHTTPServer, worker
threads, a condition-variable work queue, token buckets, a circuit
breaker, and a SIGTERM bridge — and none of that Python-level sharing
was verified by anything but whichever interleavings the tests happen
to hit.  This pass closes the gap with an Eraser-style static lockset
analysis rooted at *thread roots* rather than the registry alone:

- **thread-root discovery** — every ``threading.Thread(target=...)`` /
  ``threading.Timer`` callable, every ``do_*`` method of a
  ``*HTTPRequestHandler`` subclass (one thread per connection), and
  every ``signal.signal`` handler is a concurrency entry point, next to
  the registry entry points (which all share one sequential ``main``
  root — two experiments never run concurrently in one process).
- **shared-state inference** — an instance or module attribute written
  outside ``__init__`` and reachable from two distinct roots (or from
  one root that can run as multiple threads) is shared.  Fields holding
  ``threading.Event`` / ``queue.Queue`` / lock objects are whitelisted
  (internally synchronized), and accesses through a *fresh* local —
  one every assignment of which is a constructor call — are owned by
  the creating thread until publication and not counted.
- **lockset analysis** — ``with self._lock:`` / ``.acquire()`` scopes
  are tracked through each function and interprocedurally (the held
  set flows into callees; ``threading.Condition(self._lock)`` aliases
  back to the wrapped lock).  The guarding lock of a shared field is
  the intersection of the locksets at its write sites.

| rule | severity | rejects |
|---|---|---|
| ``race-unguarded`` | error | an access to a shared field outside the lock(s) guarding its other sites |
| ``race-guard-mix`` | error | a shared field whose write sites hold disjoint locks (every site locked, no common lock) |
| ``race-lock-order`` | error | two locks acquired in both nesting orders on different paths (deadlock) |
| ``race-signal-unsafe`` | error | lock acquisition or I/O (``print``/``open``/``.write``/``.flush``) reachable from a signal handler |
| ``race-check-then-act`` | warning | ``if key in d: ... d[key]`` on a shared container with no lock held across the window |
| ``race-thread-root`` | warning | a ``Thread`` target / signal handler naming no known function (the thread dies silently at runtime) |

**Precision policy** (documented limits, mirrored in CHECKS.md §6):
``race-unguarded`` / ``race-guard-mix`` fire only for fields with *lock
evidence* — at least one access under some lock, or an access inside a
function that manipulates locks.  A structure that is lock-free by
design (per-thread partitioned tallies merged after ``join()``, the
tracer's atomic-append record list) stays silent apart from
check-then-act warnings; deleting one ``with`` block from otherwise
guarded code still fires, because the remaining guarded sites are the
evidence.  Callables handed to the *process* pool are not thread roots.

Witnesses are call chains from the thread root that reaches the access
(``[thread root: <kind>]`` on the root line), the same counterexample
discipline as the protocol checker.  Suppressions share the inline
``# repro: allow(<rule>)`` namespace; race-rule suppressions that
suppress nothing are reported as ``unused-suppression`` by this pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.check.callgraph import (
    MODULE_BODY,
    CallGraph,
    ModuleInfo,
    _dotted,
    build_callgraph,
    canonicalize,
)
from repro.check.report import Finding, PassResult

RACES_RULES: tuple[str, ...] = (
    "race-unguarded",
    "race-guard-mix",
    "race-lock-order",
    "race-signal-unsafe",
    "race-check-then-act",
    "race-thread-root",
)

#: Constructors whose instances ARE locks (with/acquire targets).
_LOCK_TYPES = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
})

#: Internally synchronized (or synchronization-only) types: a field
#: holding one is safe to share without an external guard.
_SAFE_TYPES = _LOCK_TYPES | frozenset({
    "threading.Event", "threading.Barrier",
    "queue.Queue", "queue.SimpleQueue", "queue.LifoQueue",
    "queue.PriorityQueue",
})

#: Thread-root walk depth bound (recursion through resolved callees).
_MAX_DEPTH = 64


@dataclass(frozen=True)
class _Root:
    """One concurrency entry point of the analysis."""

    id: str  # "main" | "thread:<fn>" | "handler:<fn>" | "signal:<fn>"
    kind: str  # "main" | "thread" | "http-handler" | "signal"
    fns: tuple[str, ...]
    multi: bool  # may run as several threads at once (self-racing)


@dataclass
class _FieldFact:
    """What the class/module scan knows about one attribute."""

    typ: str | None = None  # canonical in-package class of the value
    is_lock: bool = False
    is_safe: bool = False
    alias: str | None = None  # Condition(self.X): guard aliases to X


@dataclass(frozen=True)
class _Access:
    """One recorded read/write of a shared candidate field."""

    kind: str  # "read" | "write"
    module: str
    lineno: int
    fn: str
    root: str
    locks: frozenset[str]


@dataclass
class _FnEntry:
    """Index entry: the AST and ownership of one function."""

    module: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    owner: str | None  # canonical class for methods
    is_property: bool = False


class _Ctx:
    """Per-walk function context: local typing and ownership."""

    __slots__ = ("fn", "mod", "owner", "env", "globals_declared", "init")

    def __init__(self, fn: str, mod: ModuleInfo, owner: str | None,
                 self_owned: bool, params: list[tuple[str, str | None]],
                 init: bool, owned_params: frozenset[str]) -> None:
        self.fn = fn
        self.mod = mod
        self.owner = owner
        self.init = init
        self.globals_declared: set[str] = set()
        # name -> (canonical class | None, owned-by-this-thread)
        self.env: dict[str, tuple[str | None, bool]] = {}
        for name, typ in params:
            self.env[name] = (typ, name in owned_params)
        if owner is not None and params and params[0][0] in ("self", "cls"):
            self.env[params[0][0]] = (owner, self_owned)


class _RacesAnalysis:
    def __init__(self, graph: CallGraph, entry_points: dict[str, str]) -> None:
        self.graph = graph
        self.entry_points = entry_points
        self.result = PassResult("races")
        self._suppression_cache: dict[str, dict[int, set[str]]] = {}
        self._hits: set[tuple[str, int, str]] = set()

        # Indexes built from one AST scan per module.
        self.fn_nodes: dict[str, _FnEntry] = {}
        self.class_nodes: dict[str, tuple[str, ast.ClassDef]] = {}
        self.class_bases: dict[str, list[str]] = {}  # class -> dotted bases
        self.fields: dict[str, dict[str, _FieldFact]] = {}  # class -> attr
        self.properties: dict[tuple[str, str], str | None] = {}
        self.fn_returns: dict[str, str] = {}  # fn -> canonical class
        self.module_locks: dict[str, set[str]] = {}  # module -> lock names
        self.module_safe: dict[str, set[str]] = {}

        # Walk products.
        self.roots: dict[str, _Root] = {}
        self.parents: dict[str, dict[str, tuple[str, int] | None]] = {}
        self.accesses: dict[str, list[_Access]] = {}
        self.lock_users: set[str] = set()  # fns that hold/take some lock
        self.lock_edges: dict[tuple[str, str],
                              tuple[str, int, str, str]] = {}
        self.signal_sites: list[tuple[str, int, str, str, str]] = []
        self.cta_sites: list[tuple[str, str, int, str, str]] = []
        self.locks_seen: set[str] = set()
        self._memo: set[tuple[str, str, frozenset[str], bool]] = set()
        self._acc_seen: set[tuple] = set()
        self._external_targets = 0
        self._dynamic_targets = 0

        self._index_modules()
        self._collect_field_facts()
        self._discover_roots()

    # -- plumbing ----------------------------------------------------------

    def _location(self, module_name: str, lineno: int) -> str:
        info = self.graph.modules.get(module_name)
        if info is None:
            return f"{module_name}:{lineno}"
        path = info.path
        try:
            path = path.relative_to(self.graph.root.parent)
        except ValueError:
            pass
        return f"{path}:{lineno}"

    def _allowed(self, module_name: str, lineno: int, rule: str) -> bool:
        """Is the finding suppressed?  Suppressed findings count as
        hits so their allow() comments are not reported unused."""
        if module_name not in self._suppression_cache:
            from repro.check.lints import _suppressions

            info = self.graph.modules.get(module_name)
            source = ""
            if info is not None:
                try:
                    source = info.path.read_text()
                except OSError:
                    source = ""
            self._suppression_cache[module_name] = _suppressions(source)
        if rule in self._suppression_cache[module_name].get(lineno, ()):
            self._hits.add((module_name, lineno, rule))
            return True
        return False

    def _find(self, rule: str, severity: str, location: str, message: str,
              trace: tuple[str, ...] = ()) -> None:
        self.result.findings.append(
            Finding("races", rule, severity, location, message, trace))

    def _witness(self, root: _Root, fn_name: str, leaf: str) -> tuple[str, ...]:
        parents = self.parents.get(root.id, {})
        if fn_name not in parents:
            return (leaf,)
        chain: list[str] = []
        current: str | None = fn_name
        while current is not None:
            fn = self.graph.functions.get(current)
            where = ""
            if fn is not None:
                where = f" ({self._location(fn.module, fn.lineno)})"
            parent = parents.get(current)
            if parent is None:
                chain.append(f"{current}{where} [thread root: {root.kind}]")
                current = None
            else:
                caller, lineno = parent
                chain.append(f"{current}{where} called from {caller}:{lineno}")
                current = caller
        return (*reversed(chain), leaf)

    # -- module indexing ---------------------------------------------------

    def _index_modules(self) -> None:
        for name in sorted(self.graph.modules):
            info = self.graph.modules[name]
            try:
                tree = ast.parse(info.path.read_text(), filename=str(info.path))
            except (OSError, SyntaxError):
                continue  # the callgraph already records the hole
            self._index_tree(info, tree)
            self.module_locks[name] = {
                a.name for a in info.assigns.values()
                if any(self._canonical_ctor(info, c) in _LOCK_TYPES
                       for c in a.value_calls)
            }
            self.module_safe[name] = {
                a.name for a in info.assigns.values()
                if any(self._canonical_ctor(info, c) in _SAFE_TYPES
                       for c in a.value_calls)
            }

    def _index_tree(self, info: ModuleInfo, tree: ast.Module) -> None:
        analysis = self

        class _Indexer(ast.NodeVisitor):
            def __init__(self) -> None:
                self.class_stack: list[str] = []
                self.fn_stack: list[str] = []

            def _qual(self, name: str) -> str:
                return ".".join([*self.class_stack, *self.fn_stack, name])

            def visit_ClassDef(self, node: ast.ClassDef) -> None:
                qual = self._qual(node.name)
                if not self.fn_stack:  # skip classes defined inside functions
                    canonical = f"{info.name}.{qual}"
                    analysis.class_nodes[canonical] = (info.name, node)
                    analysis.class_bases[canonical] = [
                        d for d in (_dotted(b) for b in node.bases)
                        if d is not None
                    ]
                self.class_stack.append(node.name)
                self.generic_visit(node)
                self.class_stack.pop()

            def _visit_fn(self, node) -> None:
                qual = self._qual(node.name)
                owner = None
                if self.class_stack and not self.fn_stack:
                    owner = f"{info.name}.{'.'.join(self.class_stack)}"
                is_prop = any(
                    isinstance(d, ast.Name) and d.id == "property"
                    for d in node.decorator_list)
                full = f"{info.name}.{qual}"
                analysis.fn_nodes[full] = _FnEntry(
                    info.name, node, owner, is_prop)
                returned = analysis._annotation_class(info, node.returns)
                if returned is not None:
                    analysis.fn_returns[full] = returned
                if is_prop and owner is not None:
                    analysis.properties[(owner, node.name)] = returned
                self.fn_stack.append(node.name)
                self.generic_visit(node)
                self.fn_stack.pop()

            visit_FunctionDef = _visit_fn
            visit_AsyncFunctionDef = _visit_fn

        _Indexer().visit(tree)

    # -- name/type resolution ----------------------------------------------

    def _resolve_name(self, info: ModuleInfo, dotted: str) -> str | None:
        """Canonical target of a name as read inside ``info``."""
        head, _, rest = dotted.partition(".")
        if head in info.reexports:
            base = info.reexports[head]
        elif head in info.assigns or head in info.functions \
                or head in info.classes:
            base = f"{info.name}.{head}"
        else:
            return None
        target = f"{base}.{rest}" if rest else base
        return canonicalize(self.graph, target)

    def _canonical_ctor(self, info: ModuleInfo, call_target: str) -> str:
        """Canonical form of a constructor target recorded on an assign."""
        return self._resolve_name(info, call_target) or call_target

    def _annotation_class(self, info: ModuleInfo,
                          node: ast.expr | None) -> str | None:
        """The single in-package class (or lock/safe stdlib type) an
        annotation names, seeing through ``X | None`` / ``Optional[X]``."""
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            left = self._annotation_class(info, node.left)
            right = self._annotation_class(info, node.right)
            if left is not None and right is not None and left != right:
                return None  # genuinely ambiguous union
            return left or right
        if isinstance(node, ast.Subscript):
            base = _dotted(node.value)
            if base is not None and base.split(".")[-1] == "Optional":
                return self._annotation_class(info, node.slice)
            return None  # dict[...], list[...]: containers stay untyped
        if isinstance(node, ast.Constant) and node.value is None:
            return None
        dotted = _dotted(node)
        if dotted is None or dotted == "None":
            return None
        resolved = self._resolve_name(info, dotted) or dotted
        if resolved in _SAFE_TYPES or resolved in self.class_nodes:
            return resolved
        return None

    # -- field facts --------------------------------------------------------

    def _collect_field_facts(self) -> None:
        for canonical in sorted(self.class_nodes):
            module_name, node = self.class_nodes[canonical]
            info = self.graph.modules[module_name]
            facts = self.fields.setdefault(canonical, {})
            for stmt in node.body:  # class-level (incl. dataclass fields)
                if isinstance(stmt, ast.AnnAssign) \
                        and isinstance(stmt.target, ast.Name):
                    self._classify(facts, info, stmt.target.id,
                                   stmt.value, stmt.annotation, None)
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            self._classify(facts, info, target.id,
                                           stmt.value, None, None)
        # self.X = ... in every method of the class.
        for fn_name in sorted(self.fn_nodes):
            entry = self.fn_nodes[fn_name]
            if entry.owner is None:
                continue
            info = self.graph.modules[entry.module]
            facts = self.fields.setdefault(entry.owner, {})
            params = self._param_types(info, entry.node)
            for stmt in ast.walk(entry.node):
                targets: list[tuple[ast.expr, ast.expr | None,
                                    ast.expr | None]] = []
                if isinstance(stmt, ast.Assign):
                    targets = [(t, stmt.value, None) for t in stmt.targets]
                elif isinstance(stmt, ast.AnnAssign):
                    targets = [(stmt.target, stmt.value, stmt.annotation)]
                for target, value, annotation in targets:
                    if isinstance(target, ast.Attribute) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == "self":
                        self._classify(facts, info, target.attr,
                                       value, annotation, dict(params))

    def _param_types(self, info: ModuleInfo,
                     node: ast.FunctionDef | ast.AsyncFunctionDef
                     ) -> list[tuple[str, str | None]]:
        args = node.args
        out: list[tuple[str, str | None]] = []
        for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            out.append((a.arg, self._annotation_class(info, a.annotation)))
        for a in (args.vararg, args.kwarg):
            if a is not None:
                out.append((a.arg, None))
        return out

    def _classify(self, facts: dict[str, _FieldFact], info: ModuleInfo,
                  attr: str, value: ast.expr | None,
                  annotation: ast.expr | None,
                  params: dict[str, str | None] | None) -> None:
        fact = facts.setdefault(attr, _FieldFact())
        candidates: list[str] = []
        if annotation is not None:
            typ = self._annotation_class(info, annotation)
            if typ is not None:
                candidates.append(typ)
        for call, args in self._value_ctors(value):
            resolved = self._resolve_name(info, call) or call
            candidates.append(resolved)
            if resolved.endswith(".Condition") and resolved in _LOCK_TYPES \
                    and args:
                wrapped = args[0]
                if isinstance(wrapped, ast.Attribute) \
                        and isinstance(wrapped.value, ast.Name) \
                        and wrapped.value.id == "self":
                    fact.alias = wrapped.attr
        if isinstance(value, ast.Name) and params is not None:
            typ = params.get(value.id)
            if typ is not None:
                candidates.append(typ)
        for typ in candidates:
            if typ in _LOCK_TYPES:
                fact.is_lock = True
                fact.is_safe = True
            elif typ in _SAFE_TYPES:
                fact.is_safe = True
            elif fact.typ is None and typ in self.class_nodes:
                fact.typ = typ

    @staticmethod
    def _value_ctors(value: ast.expr | None
                     ) -> list[tuple[str, list[ast.expr]]]:
        """Constructor-shaped calls inside an assigned value: the call
        target as written plus its positional args.  Sees through
        ``a or B()`` and dataclass ``field(default_factory=X)``."""
        if value is None:
            return []
        out: list[tuple[str, list[ast.expr]]] = []
        stack = [value]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.BoolOp):
                stack.extend(node.values)
            elif isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted == "field":
                    for kw in node.keywords:
                        if kw.arg == "default_factory":
                            factory = _dotted(kw.value)
                            if factory is not None:
                                out.append((factory, []))
                elif dotted is not None:
                    out.append((dotted, list(node.args)))
        return out

    # -- thread-root discovery ----------------------------------------------

    def _handler_classes(self) -> set[str]:
        """Classes whose base chain reaches an ``*HTTPRequestHandler``."""
        handlers: set[str] = set()
        changed = True
        while changed:
            changed = False
            for canonical, bases in self.class_bases.items():
                if canonical in handlers:
                    continue
                for base in bases:
                    info = self.graph.modules[self.class_nodes[canonical][0]]
                    resolved = self._resolve_name(info, base) or base
                    if resolved.endswith("HTTPRequestHandler") \
                            or resolved in handlers:
                        handlers.add(canonical)
                        changed = True
                        break
        return handlers

    def _resolve_callable(self, module_name: str, fn_qualname: str,
                          raw: str) -> tuple[str | None, str]:
        """Resolve a Thread-target/signal-handler expression to a known
        function: ``(canonical fn, status)`` where status is one of
        ``ok``/``external``/``local``/``dynamic``/``unresolved``."""
        info = self.graph.modules[module_name]
        if raw == "<dynamic>":
            return None, "dynamic"
        head, _, rest = raw.partition(".")
        if head == "self":
            if rest and "." not in rest and "." in fn_qualname:
                owner = fn_qualname.rsplit(".", 1)[0]
                candidate = f"{module_name}.{owner}.{rest}"
                if candidate in self.fn_nodes:
                    return candidate, "ok"
            return None, "external" if "." in rest else "unresolved"
        if not rest:
            if fn_qualname != MODULE_BODY:
                nested = f"{module_name}.{fn_qualname}.{raw}"
                if nested in self.fn_nodes:
                    return nested, "ok"
            sibling = f"{module_name}.{raw}"
            if sibling in self.fn_nodes:
                return sibling, "ok"
            resolved = self._resolve_name(info, raw)
            if resolved is not None and resolved in self.fn_nodes:
                return resolved, "ok"
            fn = info.functions.get(fn_qualname)
            if fn is not None and (raw in fn.locals or raw in fn.params):
                return None, "local"
            return None, "unresolved"
        resolved = self._resolve_name(info, raw)
        if resolved is not None and resolved in self.fn_nodes:
            return resolved, "ok"
        return None, "external"

    def _discover_roots(self) -> None:
        # The registry roots run sequentially in one main thread: they
        # collapse onto a single root so two experiments sharing module
        # state never spuriously "race".
        mains: list[str] = []
        for _, target in sorted(self.entry_points.items()):
            fn = self.graph.function_for(canonicalize(self.graph, target))
            if fn is not None and fn.name in self.fn_nodes \
                    and fn.name not in mains:
                mains.append(fn.name)
        if mains:
            self.roots["main"] = _Root("main", "main", tuple(mains), False)

        handler_classes = self._handler_classes()
        for canonical in sorted(handler_classes):
            for fn_name in sorted(self.fn_nodes):
                entry = self.fn_nodes[fn_name]
                if entry.owner == canonical \
                        and entry.node.name.startswith("do_"):
                    root_id = f"handler:{fn_name}"
                    self.roots[root_id] = _Root(
                        root_id, "http-handler", (fn_name,), True)

        for module_name in sorted(self.graph.modules):
            info = self.graph.modules[module_name]
            for fn in info.functions.values():
                for raw, lineno in [*fn.thread_targets]:
                    resolved, status = self._resolve_callable(
                        module_name, fn.qualname, raw)
                    if resolved is not None:
                        root_id = f"thread:{resolved}"
                        self.roots.setdefault(root_id, _Root(
                            root_id, "thread", (resolved,), True))
                    else:
                        self._note_unresolved_target(
                            "thread target", raw, status, module_name, lineno)
                for raw, lineno in [*fn.signal_handlers]:
                    resolved, status = self._resolve_callable(
                        module_name, fn.qualname, raw)
                    if resolved is not None:
                        root_id = f"signal:{resolved}"
                        self.roots.setdefault(root_id, _Root(
                            root_id, "signal", (resolved,), True))
                    else:
                        self._note_unresolved_target(
                            "signal handler", raw, status, module_name, lineno)

    def _note_unresolved_target(self, what: str, raw: str, status: str,
                                module_name: str, lineno: int) -> None:
        if status == "external":
            self._external_targets += 1  # server.serve_forever etc.
            return
        if status in ("local", "dynamic"):
            self._dynamic_targets += 1  # restoring a saved handler, lambdas
            return
        if self._allowed(module_name, lineno, "race-thread-root"):
            return
        self._find(
            "race-thread-root", "warning",
            self._location(module_name, lineno),
            f"{what} {raw!r} names no known function; if this is a typo "
            f"the thread/handler dies silently at runtime, and the race "
            f"analysis cannot follow it either way")

    # -- the interprocedural walk -------------------------------------------

    def _canon_lock(self, lock_id: str) -> str:
        """Normalize through Condition-wrapping aliases (bounded)."""
        for _ in range(4):
            cls, _, attr = lock_id.rpartition(".")
            fact = self.fields.get(cls, {}).get(attr)
            if fact is not None and fact.alias is not None:
                lock_id = f"{cls}.{fact.alias}"
            else:
                break
        return lock_id

    def _walk_all(self) -> None:
        for root_id in sorted(self.roots):
            root = self.roots[root_id]
            self.parents[root_id] = {}
            for fn_name in root.fns:
                self.parents[root_id].setdefault(fn_name, None)
                self._visit_fn(root, fn_name, frozenset(), False, 0)

    def _visit_fn(self, root: _Root, fn_name: str, held: frozenset[str],
                  self_owned: bool, depth: int,
                  owned_params: frozenset[str] = frozenset()) -> None:
        key = (root.id, fn_name, held, self_owned, owned_params)
        if key in self._memo or depth > _MAX_DEPTH:
            return
        self._memo.add(key)
        entry = self.fn_nodes.get(fn_name)
        if entry is None:
            return
        if held:
            self.lock_users.add(fn_name)
        info = self.graph.modules[entry.module]
        last = entry.node.name
        init = last in ("__init__", "__post_init__")
        ctx = _Ctx(fn_name, info, entry.owner, self_owned or init,
                   self._param_types(info, entry.node), init, owned_params)
        self._exec_block(entry.node.body, ctx, held, root, depth)

    def _call_into(self, root: _Root, ctx: _Ctx, callee: str, lineno: int,
                   held: frozenset[str], self_owned: bool, depth: int,
                   owned_params: frozenset[str] = frozenset()) -> None:
        parents = self.parents[root.id]
        if callee not in parents:
            parents[callee] = (ctx.fn, lineno)
        self._visit_fn(root, callee, held, self_owned, depth + 1,
                       owned_params)

    def _owned_params(self, node: ast.Call, ctx: _Ctx,
                      callee: str) -> frozenset[str]:
        """Callee parameters bound to locals this walk *owns* (fresh,
        unpublished objects): ownership flows into the call, so a graph
        built and consumed inside one thread never looks shared."""
        entry = self.fn_nodes.get(callee)
        if entry is None:
            return frozenset()
        args = entry.node.args
        names = [a.arg for a in [*args.posonlyargs, *args.args]]
        offset = 1 if entry.owner is not None else 0  # skip self
        owned: set[str] = set()
        for index, arg in enumerate(node.args):
            if isinstance(arg, ast.Name) \
                    and ctx.env.get(arg.id, (None, False))[1] \
                    and index + offset < len(names):
                owned.add(names[index + offset])
        for kw in node.keywords:
            if kw.arg is not None and isinstance(kw.value, ast.Name) \
                    and ctx.env.get(kw.value.id, (None, False))[1]:
                owned.add(kw.arg)
        return frozenset(owned)

    # -- statement execution -------------------------------------------------

    def _exec_block(self, stmts: list[ast.stmt], ctx: _Ctx,
                    held: frozenset[str], root: _Root,
                    depth: int) -> frozenset[str]:
        for stmt in stmts:
            held = self._exec_stmt(stmt, ctx, held, root, depth)
        return held

    def _exec_stmt(self, stmt: ast.stmt, ctx: _Ctx, held: frozenset[str],
                   root: _Root, depth: int) -> frozenset[str]:
        if isinstance(stmt, ast.Expr):
            return self._exec_expr_stmt(stmt, ctx, held, root, depth)
        if isinstance(stmt, ast.Assign):
            typ, owned = self._eval(stmt.value, ctx, held, root, depth)
            for target in stmt.targets:
                self._assign_target(target, typ, owned, ctx, held, root,
                                    depth, stmt.lineno)
            return held
        if isinstance(stmt, ast.AnnAssign):
            typ, owned = (None, False)
            if stmt.value is not None:
                typ, owned = self._eval(stmt.value, ctx, held, root, depth)
            if typ is None:
                info = self.graph.modules[ctx.mod.name]
                typ = self._annotation_class(info, stmt.annotation)
            self._assign_target(stmt.target, typ, owned, ctx, held, root,
                                depth, stmt.lineno)
            return held
        if isinstance(stmt, ast.AugAssign):
            self._eval(stmt.value, ctx, held, root, depth)
            self._record_target(stmt.target, "write", ctx, held, root,
                                depth, stmt.lineno, also_read=True)
            return held
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._record_target(target, "write", ctx, held, root,
                                    depth, stmt.lineno)
            return held
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._exec_with(stmt, ctx, held, root, depth)
        if isinstance(stmt, ast.If):
            self._eval(stmt.test, ctx, held, root, depth)
            if not held:
                self._scan_check_then_act(stmt, ctx, root)
            self._exec_block(stmt.body, ctx, held, root, depth)
            self._exec_block(stmt.orelse, ctx, held, root, depth)
            return held
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._eval(stmt.iter, ctx, held, root, depth)
            if isinstance(stmt.target, ast.Name):
                ctx.env.setdefault(stmt.target.id, (None, False))
            self._exec_block(stmt.body, ctx, held, root, depth)
            self._exec_block(stmt.orelse, ctx, held, root, depth)
            return held
        if isinstance(stmt, ast.While):
            self._eval(stmt.test, ctx, held, root, depth)
            self._exec_block(stmt.body, ctx, held, root, depth)
            self._exec_block(stmt.orelse, ctx, held, root, depth)
            return held
        if isinstance(stmt, ast.Try):
            self._exec_block(stmt.body, ctx, held, root, depth)
            for handler in stmt.handlers:
                if handler.name:
                    ctx.env.setdefault(handler.name, (None, False))
                self._exec_block(handler.body, ctx, held, root, depth)
            self._exec_block(stmt.orelse, ctx, held, root, depth)
            self._exec_block(stmt.finalbody, ctx, held, root, depth)
            return held
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._eval(stmt.value, ctx, held, root, depth)
            return held
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, ctx, held, root, depth)
            return held
        if isinstance(stmt, ast.Global):
            ctx.globals_declared.update(stmt.names)
            return held
        if isinstance(stmt, ast.Assert):
            self._eval(stmt.test, ctx, held, root, depth)
            return held
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Import, ast.ImportFrom,
                             ast.Pass, ast.Break, ast.Continue,
                             ast.Nonlocal)):
            return held  # nested defs walked only if they become roots/callees
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._eval(child, ctx, held, root, depth)
        return held

    def _exec_expr_stmt(self, stmt: ast.Expr, ctx: _Ctx,
                        held: frozenset[str], root: _Root,
                        depth: int) -> frozenset[str]:
        """Expression statements; explicit .acquire()/.release() on a
        lock field adjusts the held set linearly."""
        node = stmt.value
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
                and node.func.attr in ("acquire", "release"):
            lock = self._lock_of(node.func.value, ctx)
            if lock is not None:
                for arg in node.args:
                    self._eval(arg, ctx, held, root, depth)
                if node.func.attr == "acquire":
                    self._note_acquire(lock, held, ctx, root, node.lineno)
                    self.lock_users.add(ctx.fn)
                    return held | {lock}
                return held - {lock}
        self._eval(node, ctx, held, root, depth)
        return held

    def _exec_with(self, stmt: ast.With | ast.AsyncWith, ctx: _Ctx,
                   held: frozenset[str], root: _Root,
                   depth: int) -> frozenset[str]:
        acquired: list[str] = []
        for item in stmt.items:
            lock = self._lock_of(item.context_expr, ctx)
            if lock is not None:
                self._note_acquire(lock, held | frozenset(acquired),
                                   ctx, root, stmt.lineno)
                acquired.append(lock)
            else:
                self._eval(item.context_expr, ctx, held, root, depth)
            if item.optional_vars is not None \
                    and isinstance(item.optional_vars, ast.Name):
                ctx.env.setdefault(item.optional_vars.id, (None, False))
        if acquired:
            self.lock_users.add(ctx.fn)
        self._exec_block(stmt.body, ctx, held | frozenset(acquired),
                         root, depth)
        return held

    def _lock_of(self, expr: ast.expr, ctx: _Ctx) -> str | None:
        if isinstance(expr, ast.Attribute):
            typ, owned = self._type_of(expr.value, ctx)
            if typ is None:
                return None
            fact = self.fields.get(typ, {}).get(expr.attr)
            if fact is not None and fact.is_lock:
                lock = self._canon_lock(f"{typ}.{expr.attr}")
                self.locks_seen.add(lock)
                return lock
            return None
        if isinstance(expr, ast.Name):
            if expr.id in ctx.env:
                return None
            if expr.id in self.module_locks.get(ctx.mod.name, ()):
                lock = f"{ctx.mod.name}.{expr.id}"
                self.locks_seen.add(lock)
                return lock
        return None

    def _note_acquire(self, lock: str, held: frozenset[str], ctx: _Ctx,
                      root: _Root, lineno: int) -> None:
        for h in sorted(held):
            if h != lock:  # reentrant self-acquisition is not an order edge
                self.lock_edges.setdefault(
                    (h, lock), (ctx.mod.name, lineno, ctx.fn, root.id))
        if root.kind == "signal":
            self.signal_sites.append((
                ctx.mod.name, lineno, ctx.fn,
                f"acquires lock {lock} (a thread interrupted while holding "
                f"it deadlocks the handler)", root.id))

    # -- expression evaluation ----------------------------------------------

    def _type_of(self, expr: ast.expr, ctx: _Ctx) -> tuple[str | None, bool]:
        """(canonical class, owned) of a receiver expression — typing
        only, no access recording."""
        if isinstance(expr, ast.Name):
            return ctx.env.get(expr.id, (None, False))
        if isinstance(expr, ast.Attribute):
            typ, owned = self._type_of(expr.value, ctx)
            if typ is None:
                return None, False
            prop = self.properties.get((typ, expr.attr))
            if prop is not None or (typ, expr.attr) in self.properties:
                return prop, owned
            fact = self.fields.get(typ, {}).get(expr.attr)
            if fact is not None:
                return fact.typ, owned
            return None, False
        if isinstance(expr, ast.Call):
            return self._call_type(expr, ctx)
        return None, False

    def _call_type(self, node: ast.Call, ctx: _Ctx) -> tuple[str | None, bool]:
        callee = self._resolve_call(node, ctx)
        if callee is None:
            return None, False
        if callee in self.class_nodes:
            return callee, True  # constructor: a fresh, owned instance
        returned = self.fn_returns.get(callee)
        return returned, False

    def _resolve_call(self, node: ast.Call, ctx: _Ctx) -> str | None:
        """Canonical function/class a call binds to, or None."""
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in ctx.env:
                return None  # local callable: dynamic dispatch
            nested = f"{ctx.fn}.{name}"
            if nested in self.fn_nodes:
                return nested
            sibling = f"{ctx.mod.name}.{name}"
            if sibling in self.fn_nodes or sibling in self.class_nodes:
                return sibling
            resolved = self._resolve_name(ctx.mod, name)
            if resolved is not None and (resolved in self.fn_nodes
                                         or resolved in self.class_nodes):
                return resolved
            return f"builtins.{name}" if name in ("print", "open") else None
        if isinstance(func, ast.Attribute):
            typ, _ = self._type_of(func.value, ctx)
            if typ is not None:
                candidate = f"{typ}.{func.attr}"
                if candidate in self.fn_nodes:
                    return candidate
                return None
            dotted = _dotted(func)
            if dotted is not None:
                resolved = self._resolve_name(ctx.mod, dotted)
                if resolved is not None and (resolved in self.fn_nodes
                                             or resolved in self.class_nodes):
                    return resolved
        return None

    def _record(self, field_id: str, kind: str, ctx: _Ctx, lineno: int,
                held: frozenset[str], root: _Root) -> None:
        key = (field_id, kind, ctx.mod.name, lineno, root.id, held)
        if key in self._acc_seen:
            return
        self._acc_seen.add(key)
        self.accesses.setdefault(field_id, []).append(_Access(
            kind, ctx.mod.name, lineno, ctx.fn, root.id, held))

    def _field_of(self, expr: ast.expr, ctx: _Ctx) -> str | None:
        """Shared-candidate field id for an attribute chain / global name
        (None for owned receivers, locks, safe types, unknown types)."""
        if isinstance(expr, ast.Attribute):
            typ, owned = self._type_of(expr.value, ctx)
            if typ is None or owned:
                return None
            if ctx.init and isinstance(expr.value, ast.Name) \
                    and expr.value.id in ("self", "cls"):
                return None  # pre-publication initialization
            fact = self.fields.get(typ, {}).get(expr.attr)
            if fact is not None and fact.is_safe:
                return None
            if (typ, expr.attr) in self.properties:
                return None
            return f"{typ}.{expr.attr}"
        if isinstance(expr, ast.Name):
            name = expr.id
            if name in ctx.env or name in ctx.mod.functions \
                    or name in ctx.mod.classes:
                return None
            if name in self.module_safe.get(ctx.mod.name, ()) \
                    or name in self.module_locks.get(ctx.mod.name, ()):
                return None
            assign = ctx.mod.assigns.get(name)
            if assign is not None and assign.mutable_literal:
                return f"{ctx.mod.name}.{name}"
            if name in ctx.globals_declared:
                return f"{ctx.mod.name}.{name}"
        return None

    def _assign_target(self, target: ast.expr, typ: str | None, owned: bool,
                       ctx: _Ctx, held: frozenset[str], root: _Root,
                       depth: int, lineno: int) -> None:
        if isinstance(target, ast.Name):
            if target.id in ctx.globals_declared:
                field_id = f"{ctx.mod.name}.{target.id}"
                self._record(field_id, "write", ctx, lineno, held, root)
                return
            prev = ctx.env.get(target.id)
            if prev is None:
                ctx.env[target.id] = (typ, owned)
            else:
                ptyp, powned = prev
                same = typ is None or ptyp is None or typ == ptyp
                ctx.env[target.id] = (typ or ptyp, powned and owned and same)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt, None, False, ctx, held, root,
                                    depth, lineno)
            return
        if isinstance(target, ast.Starred):
            self._assign_target(target.value, None, False, ctx, held, root,
                                depth, lineno)
            return
        self._record_target(target, "write", ctx, held, root, depth, lineno)

    def _record_target(self, target: ast.expr, kind: str, ctx: _Ctx,
                       held: frozenset[str], root: _Root, depth: int,
                       lineno: int, also_read: bool = False) -> None:
        """Record a store through an attribute / subscript target."""
        node = target
        if isinstance(node, ast.Subscript):
            self._eval(node.slice, ctx, held, root, depth)
            node = node.value
        field_id = self._field_of(node, ctx)
        if field_id is not None:
            if also_read:
                self._record(field_id, "read", ctx, lineno, held, root)
            self._record(field_id, kind, ctx, lineno, held, root)
        elif isinstance(node, ast.Attribute):
            self._eval(node.value, ctx, held, root, depth)

    def _eval(self, expr: ast.expr, ctx: _Ctx, held: frozenset[str],
              root: _Root, depth: int) -> tuple[str | None, bool]:
        if isinstance(expr, ast.Name):
            field_id = self._field_of(expr, ctx)
            if field_id is not None:
                self._record(field_id, "read", ctx, expr.lineno, held, root)
            return ctx.env.get(expr.id, (None, False))
        if isinstance(expr, ast.Attribute):
            typ, owned = self._type_of(expr.value, ctx)
            self._eval_children(expr.value, ctx, held, root, depth)
            if typ is None:
                return None, False
            if (typ, expr.attr) in self.properties:
                getter = f"{typ}.{expr.attr}"
                if getter in self.fn_nodes:
                    self._call_into(root, ctx, getter, expr.lineno, held,
                                    owned, depth)
                return self.properties[(typ, expr.attr)], False
            field_id = self._field_of(expr, ctx)
            if field_id is not None:
                self._record(field_id, "read", ctx, expr.lineno, held, root)
            fact = self.fields.get(typ, {}).get(expr.attr)
            return (fact.typ if fact is not None else None), owned
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, ctx, held, root, depth)
        if isinstance(expr, ast.Subscript):
            value_field = self._field_of(expr.value, ctx)
            if value_field is not None:
                self._record(value_field, "read", ctx, expr.lineno, held, root)
            else:
                self._eval(expr.value, ctx, held, root, depth)
            self._eval(expr.slice, ctx, held, root, depth)
            return None, False
        if isinstance(expr, ast.Lambda):
            return None, False  # conservatively opaque
        self._eval_children(expr, ctx, held, root, depth)
        return None, False

    def _eval_children(self, expr: ast.expr, ctx: _Ctx,
                       held: frozenset[str], root: _Root,
                       depth: int) -> None:
        if isinstance(expr, (ast.Name, ast.Attribute, ast.Call,
                             ast.Subscript)):
            self._eval(expr, ctx, held, root, depth)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._eval(child, ctx, held, root, depth)
            elif isinstance(child, ast.comprehension):
                self._eval(child.iter, ctx, held, root, depth)
                if isinstance(child.target, ast.Name):
                    ctx.env.setdefault(child.target.id, (None, False))
                for cond in child.ifs:
                    self._eval(cond, ctx, held, root, depth)
            elif isinstance(child, (ast.keyword, ast.FormattedValue)):
                self._eval(child.value, ctx, held, root, depth)

    # Receiver methods that mutate the receiver in place.
    _MUTATORS = frozenset({
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "clear", "remove", "discard", "appendleft",
        "extendleft", "sort", "reverse",
    })

    def _eval_call(self, node: ast.Call, ctx: _Ctx, held: frozenset[str],
                   root: _Root, depth: int) -> tuple[str | None, bool]:
        func = node.func
        receiver_owned = False
        if isinstance(func, ast.Attribute):
            method = func.attr
            recv_field = self._field_of(func.value, ctx)
            typ, receiver_owned = self._type_of(func.value, ctx)
            if method in self._MUTATORS and recv_field is not None:
                self._record(recv_field, "write", ctx, node.lineno,
                             held, root)
            elif recv_field is not None and method not in (
                    "acquire", "release", "wait", "notify", "notify_all",
                    "set", "is_set"):
                self._record(recv_field, "read", ctx, node.lineno, held, root)
            else:
                self._eval_children(func.value, ctx, held, root, depth)
            if root.kind == "signal" and method in ("write", "flush"):
                self.signal_sites.append((
                    ctx.mod.name, node.lineno, ctx.fn,
                    f".{method}() on an I/O buffer (not async-signal-safe: "
                    f"reentering a buffered stream corrupts it)", root.id))
        for arg in node.args:
            self._eval(arg, ctx, held, root, depth)
        for kw in node.keywords:
            self._eval(kw.value, ctx, held, root, depth)
        callee = self._resolve_call(node, ctx)
        if callee is None:
            return None, False
        if callee in ("builtins.print", "builtins.open"):
            if root.kind == "signal":
                name = callee.rsplit(".", 1)[-1]
                self.signal_sites.append((
                    ctx.mod.name, node.lineno, ctx.fn,
                    f"calls {name}() (buffered I/O is not "
                    f"async-signal-safe)", root.id))
            return None, False
        if callee in self.class_nodes:
            init = f"{callee}.__init__"
            if init in self.fn_nodes:
                self._call_into(root, ctx, init, node.lineno, held,
                                True, depth,
                                self._owned_params(node, ctx, init))
            return callee, True
        if callee in self.fn_nodes:
            self._call_into(root, ctx, callee, node.lineno, held,
                            receiver_owned, depth,
                            self._owned_params(node, ctx, callee))
            return self.fn_returns.get(callee), False
        return None, False

    # -- check-then-act ------------------------------------------------------

    def _scan_check_then_act(self, stmt: ast.If, ctx: _Ctx,
                             root: _Root) -> None:
        checked: str | None = None
        for sub in ast.walk(stmt.test):
            if isinstance(sub, ast.Compare) and any(
                    isinstance(op, (ast.In, ast.NotIn)) for op in sub.ops):
                candidate = self._field_of(sub.comparators[-1], ctx)
                if candidate is not None:
                    checked = candidate
                    break
        if checked is None:
            return
        for sub in ast.walk(stmt):
            if sub is stmt.test or isinstance(sub, ast.expr) \
                    and any(sub is n for n in ast.walk(stmt.test)):
                continue
            hit = False
            if isinstance(sub, ast.Subscript):
                hit = self._field_of(sub.value, ctx) == checked
            elif isinstance(sub, ast.Call) \
                    and isinstance(sub.func, ast.Attribute) \
                    and sub.func.attr in self._MUTATORS:
                hit = self._field_of(sub.func.value, ctx) == checked
            if hit:
                self.cta_sites.append(
                    (checked, ctx.mod.name, stmt.lineno, ctx.fn, root.id))
                return

    # -- verdicts ------------------------------------------------------------

    def _field_roots(self, recs: list[_Access]) -> set[str]:
        return {r.root for r in recs}

    def _is_shared(self, recs: list[_Access]) -> bool:
        writes = [r for r in recs if r.kind == "write"]
        if not writes:
            return False
        roots = self._field_roots(recs)
        if len(roots) >= 2:
            return True
        return any(self.roots[r].multi for r in roots)

    def _has_lock_evidence(self, recs: list[_Access]) -> bool:
        return any(r.locks for r in recs) \
            or any(r.fn in self.lock_users for r in recs)

    def _roots_note(self, recs: list[_Access]) -> str:
        return ", ".join(sorted(self._field_roots(recs)))

    def _judge_fields(self) -> None:
        shared_count = 0
        guarded_count = 0
        for field_id in sorted(self.accesses):
            recs = sorted(self.accesses[field_id],
                          key=lambda r: (r.module, r.lineno, r.kind))
            if not self._is_shared(recs):
                continue
            shared_count += 1
            if not self._has_lock_evidence(recs):
                continue  # lock-free by design: check-then-act only
            writes = [r for r in recs if r.kind == "write"]
            guard = frozenset.intersection(*[r.locks for r in writes])
            if guard:
                guarded_count += 1
                self._judge_reads(field_id, recs, guard)
                continue
            unguarded = [r for r in writes if not r.locks]
            if unguarded:
                locks_elsewhere = sorted(
                    {lock for r in recs for lock in r.locks})
                if locks_elsewhere:
                    hint = (f"other accesses guard it with "
                            f"{', '.join(locks_elsewhere)}")
                else:
                    hint = ("nearby code manages locks yet no site "
                            f"guards {field_id}")
                for rec in unguarded:
                    if self._allowed(rec.module, rec.lineno,
                                     "race-unguarded"):
                        continue
                    self._find(
                        "race-unguarded", "error",
                        self._location(rec.module, rec.lineno),
                        f"write to shared {field_id} holds no lock, but "
                        f"{hint}; reached from "
                        f"roots {{{self._roots_note(recs)}}} — move this "
                        f"write under the guarding lock",
                        self._witness(
                            self.roots[rec.root], rec.fn,
                            f"{rec.fn} writes {field_id} at "
                            f"{self._location(rec.module, rec.lineno)} "
                            f"with lockset {{}}"))
                    break
            else:
                locksets = sorted({tuple(sorted(r.locks)) for r in writes})
                rec = writes[0]
                if not self._allowed(rec.module, rec.lineno,
                                     "race-guard-mix"):
                    rendered = "; ".join(
                        "{" + ", ".join(ls) + "}" for ls in locksets)
                    self._find(
                        "race-guard-mix", "error",
                        self._location(rec.module, rec.lineno),
                        f"shared {field_id} is written under disjoint "
                        f"locksets ({rendered}) — two sites holding "
                        f"different locks do not exclude each other; "
                        f"pick one guarding lock (roots "
                        f"{{{self._roots_note(recs)}}})",
                        self._witness(
                            self.roots[rec.root], rec.fn,
                            f"{rec.fn} writes {field_id} at "
                            f"{self._location(rec.module, rec.lineno)} "
                            f"with lockset {{{', '.join(sorted(rec.locks))}}}"))
        self.result.info["shared_fields"] = shared_count
        self.result.info["guarded_fields"] = guarded_count

    def _judge_reads(self, field_id: str, recs: list[_Access],
                     guard: frozenset[str]) -> None:
        for rec in recs:
            if rec.kind != "read" or guard <= rec.locks:
                continue
            if self._allowed(rec.module, rec.lineno, "race-unguarded"):
                continue
            self._find(
                "race-unguarded", "error",
                self._location(rec.module, rec.lineno),
                f"read of shared {field_id} outside its guarding lock "
                f"{', '.join(sorted(guard))} (every write site holds it); "
                f"reached from roots {{{self._roots_note(recs)}}} — a "
                f"concurrent settle can tear this read",
                self._witness(
                    self.roots[rec.root], rec.fn,
                    f"{rec.fn} reads {field_id} at "
                    f"{self._location(rec.module, rec.lineno)} with "
                    f"lockset {{{', '.join(sorted(rec.locks))}}}"))
            return

    def _judge_lock_order(self) -> None:
        reported: set[frozenset[str]] = set()
        for (a, b), (module, lineno, fn, root_id) in sorted(
                self.lock_edges.items()):
            if (b, a) not in self.lock_edges:
                continue
            pair = frozenset((a, b))
            if pair in reported:
                continue
            reported.add(pair)
            rmodule, rlineno, rfn, rroot = self.lock_edges[(b, a)]
            if self._allowed(module, lineno, "race-lock-order") \
                    or self._allowed(rmodule, rlineno, "race-lock-order"):
                continue
            self._find(
                "race-lock-order", "error",
                self._location(module, lineno),
                f"locks {a} and {b} are acquired in both orders: "
                f"{fn} takes {a} then {b} at "
                f"{self._location(module, lineno)}, while {rfn} takes "
                f"{b} then {a} at {self._location(rmodule, rlineno)} — "
                f"two threads interleaving these paths deadlock",
                (*self._witness(self.roots[root_id], fn,
                                f"{fn} acquires {b} while holding {a} at "
                                f"{self._location(module, lineno)}"),
                 *self._witness(self.roots[rroot], rfn,
                                f"{rfn} acquires {a} while holding {b} at "
                                f"{self._location(rmodule, rlineno)}")))

    def _judge_signal_sites(self) -> None:
        seen: set[tuple[str, int, str]] = set()
        for module, lineno, fn, desc, root_id in sorted(self.signal_sites):
            if (module, lineno, desc) in seen:
                continue
            seen.add((module, lineno, desc))
            if self._allowed(module, lineno, "race-signal-unsafe"):
                continue
            self._find(
                "race-signal-unsafe", "error",
                self._location(module, lineno),
                f"code reachable from a signal handler {desc}; a handler "
                f"must stay at the reentrant-safe minimum (set an Event, "
                f"raise, or write a pre-opened pipe)",
                self._witness(self.roots[root_id], fn,
                              f"{fn} {desc} at "
                              f"{self._location(module, lineno)}"))

    def _judge_check_then_act(self) -> None:
        seen: set[tuple[str, int]] = set()
        for field_id, module, lineno, fn, root_id in sorted(self.cta_sites):
            recs = self.accesses.get(field_id, [])
            if not self._is_shared(recs):
                continue
            if (module, lineno) in seen:
                continue
            seen.add((module, lineno))
            if self._allowed(module, lineno, "race-check-then-act"):
                continue
            self._find(
                "race-check-then-act", "warning",
                self._location(module, lineno),
                f"membership test on shared {field_id} followed by an "
                f"indexed access with no lock held across the window — "
                f"the entry can appear/vanish between check and act "
                f"(roots {{{self._roots_note(recs)}}})",
                self._witness(self.roots[root_id], fn,
                              f"{fn} checks then acts on {field_id} at "
                              f"{self._location(module, lineno)}"))

    def _judge_unused_suppressions(self) -> None:
        from repro.check.lints import _suppressions

        for name in sorted(self.graph.modules):
            info = self.graph.modules[name]
            try:
                source = info.path.read_text()
            except OSError:
                continue
            for lineno, rules in sorted(_suppressions(source).items()):
                for rule in sorted(rules):
                    if rule in RACES_RULES \
                            and (name, lineno, rule) not in self._hits:
                        self._find(
                            "unused-suppression", "warning",
                            self._location(name, lineno),
                            f"allow({rule}) suppresses nothing on this "
                            f"line; the code it excused is gone — remove "
                            f"the comment")

    # -- driver --------------------------------------------------------------

    def run(self) -> PassResult:
        self._walk_all()
        self._judge_fields()
        self._judge_lock_order()
        self._judge_signal_sites()
        self._judge_check_then_act()
        self._judge_unused_suppressions()
        kinds = {"main": 0, "thread": 0, "http-handler": 0, "signal": 0}
        for root in self.roots.values():
            kinds[root.kind] += 1
        walked = {fn for parents in self.parents.values() for fn in parents}
        self.result.info.update({
            "roots": len(self.roots),
            "thread_roots": kinds["thread"],
            "handler_roots": kinds["http-handler"],
            "signal_roots": kinds["signal"],
            "locks": len(self.locks_seen),
            "lock_order_edges": len(self.lock_edges),
            "functions_walked": len(walked),
            "external_targets": self._external_targets,
        })
        self.result.findings.sort(key=lambda f: (f.rule, f.location))
        return self.result


def check_races(root: Path | None = None, package: str | None = None,
                entry_points: dict[str, str] | None = None) -> PassResult:
    """Run the lockset/thread-root race pass.

    ``root``/``package`` default to the installed ``repro`` package;
    ``entry_points`` defaults to the same roots as the ``deps`` pass
    (experiment registry + sweep bases) — they become the sequential
    ``main`` root, while Thread targets, HTTP handler methods, and
    signal handlers are discovered from the tree itself.
    """
    graph = build_callgraph(root, package)
    if entry_points is None:
        from repro.check.deps import registry_entry_points

        entry_points = registry_entry_points() if root is None else {}
    return _RacesAnalysis(graph, entry_points).run()
