"""The dimension lattice and annotation registry of the ``units`` pass.

Every figure in the paper is built out of quantities with physical
dimensions — latencies in nanoseconds vs. processor cycles, sizes in
bytes vs. lines vs. banks, clock rates in hertz — and the repo encodes
them only by *naming convention* (``latency_ns``, ``line_bytes``,
``clock_hz``, bare ``seconds`` per :mod:`repro.common.units`'s header
contract).  This module turns that convention into data the static
analysis in :mod:`repro.check.units` can compute with:

- a :class:`Dim` is ``(quantity, unit)`` — e.g. ``(time, ns)`` or
  ``(size, lines)``.  Two dims *conflict* whenever their units differ:
  unlike physics, the analysis tracks the **scale** too, because
  ``ns + us`` corrupts a figure exactly as silently as ``ns + cycles``;
- the **suffix convention** (:func:`suffix_dim`): ``*_ns``, ``*_us``,
  ``*_bytes``, ``*_cycles``, ``*_hz``, ``*_fraction`` and friends seed
  dims for parameters, locals, attributes and function returns;
- the **annotation registry** (:data:`ANNOTATIONS`): explicit dims for
  names that cannot carry a suffix — ``units.NS``-style scale
  constants, computed properties, non-conforming dataclass fields;
- the **inline declaration** ``# repro: unit(<token>)``: a reviewed
  in-source annotation on the line of a dataclass field, assignment,
  parameter or ``def`` (declaring the return), the file-local half of
  the registry (:func:`unit_comments`).

The arithmetic rules (:func:`multiply`, :func:`divide`,
:func:`combine`) are deliberately conservative: unknown dims stay
unknown, products of two known dims are unknown unless a specific rule
applies (``time × freq`` of matching scale is ``cycles``;
``cycles × time`` is time; ``fraction`` is transparent), and a numeric
literal that is a power of ten *erases* the other operand's dim — it is
almost always a manual scale conversion (``seconds * 1e9``,
``clock_mhz * 1e6``) the analysis cannot validate, and propagating
through it is how false positives are born.
"""

from __future__ import annotations

import io
import math
import re
import tokenize
from dataclasses import dataclass


@dataclass(frozen=True)
class Dim:
    """One inferred/declared dimension: a physical quantity at a scale."""

    quantity: str  # "time" | "cycles" | "freq" | "size" | "fraction" | "cpi"
    unit: str  # the scale token, e.g. "ns", "cycles", "bytes", "lines"

    def __str__(self) -> str:
        return self.unit


def _dims(quantity: str, *units: str) -> dict[str, Dim]:
    return {unit: Dim(quantity, unit) for unit in units}


#: Unit token -> :class:`Dim`.  The tokens are what suffixes, registry
#: entries and inline ``unit(...)`` comments may name.
UNITS: dict[str, Dim] = {
    **_dims("time", "ns", "us", "ms", "s"),
    **_dims("cycles", "cycles"),
    **_dims("freq", "hz", "khz", "mhz", "ghz"),
    **_dims("size", "bytes", "bits", "lines", "words", "banks"),
    **_dims("fraction", "fraction"),
    **_dims("cpi", "cpi"),
}

#: Name suffixes that seed a dim (the repo-wide naming convention).
#: ``latency_ns`` -> time(ns), ``line_bytes`` -> size(bytes), ...
_SUFFIX_UNITS: dict[str, str] = {
    "ns": "ns", "us": "us", "ms": "ms", "seconds": "s",
    "cycles": "cycles",
    "hz": "hz", "khz": "khz", "mhz": "mhz", "ghz": "ghz",
    "bytes": "bytes", "bits": "bits", "lines": "lines", "words": "words",
    "banks": "banks",
    "fraction": "fraction",
}

#: Bare names with a contractual dim (``common/units.py``: "all times
#: are seconds unless a function name says otherwise").
_EXACT_NAMES: dict[str, str] = {
    "seconds": "s",
}

#: time x freq products whose scales cancel into a pure cycle count
#: (s*Hz, us*MHz, ns*GHz, ms*kHz); any *other* time x freq product is a
#: scale error worth flagging.
_MATCHED_TIME_FREQ: frozenset[tuple[str, str]] = frozenset({
    ("s", "hz"), ("ms", "khz"), ("us", "mhz"), ("ns", "ghz"),
})
_FREQ_TO_TIME = {"hz": "s", "khz": "ms", "mhz": "us", "ghz": "ns"}
_TIME_TO_FREQ = {t: f for f, t in _FREQ_TO_TIME.items()}


def suffix_dim(name: str) -> Dim | None:
    """The dim a bare name declares by convention, or None.

    Only the ``*_<unit>`` underscore form counts (plus the few exact
    names like ``seconds``): a variable merely *ending* in ``ns`` —
    ``columns`` — declares nothing.
    """
    if name in _EXACT_NAMES:
        return UNITS[_EXACT_NAMES[name]]
    if "_" in name:
        suffix = name.rsplit("_", 1)[-1]
        unit = _SUFFIX_UNITS.get(suffix)
        if unit is not None:
            return UNITS[unit]
    return None


def is_conversion_pair(a: Dim, b: Dim) -> bool:
    """True for the seconds<->cycles family of mismatches, where the fix
    is :func:`repro.common.units.cycles_for_time` /
    :func:`~repro.common.units.time_for_cycles` rather than a rename."""
    return {a.quantity, b.quantity} == {"time", "cycles"}


def combine(a: Dim | None, b: Dim | None) -> tuple[Dim | None, bool]:
    """Additive combination (``+``/``-``/``%``/comparison operands).

    Returns ``(result, conflict)``: the result dim (the known operand
    when only one side is known — ``offset % line_bytes`` is still
    bytes) and whether two *different* known units met, which is a
    finding at the call site.
    """
    if a is None:
        return b, False
    if b is None:
        return a, False
    if a == b:
        return a, False
    return a, True


def multiply(a: Dim | None, b: Dim | None) -> tuple[Dim | None, bool]:
    """Dim of ``a * b`` plus a conflict flag for mismatched time*freq.

    - ``count * unit`` propagates the unit (``n * line_bytes`` is
      bytes);
    - ``fraction`` is transparent (``miss_fraction * latency_ns`` is
      ns);
    - ``time * freq`` of matched scale is a cycle count; mismatched
      scale (``latency_ns * clock_hz``) is a conflict;
    - ``cycles * time`` is time (cycles times a per-cycle duration);
    - any other known*known product is out of the lattice: unknown.
    """
    if a is None:
        return b, False
    if b is None:
        return a, False
    if a.quantity == "fraction":
        return b, False
    if b.quantity == "fraction":
        return a, False
    pair = {a.quantity, b.quantity}
    if pair == {"time", "freq"}:
        time, freq = (a, b) if a.quantity == "time" else (b, a)
        if (time.unit, freq.unit) in _MATCHED_TIME_FREQ:
            return UNITS["cycles"], False
        return None, True
    if pair == {"cycles", "time"}:
        time = a if a.quantity == "time" else b
        return time, False
    return None, False


def divide(a: Dim | None, b: Dim | None) -> Dim | None:
    """Dim of ``a / b`` (never a conflict: ratios are how conversions
    are legitimately written).

    - ``cycles / freq`` is time at the matching scale (``cycles / hz``
      is seconds — exactly :func:`repro.common.units.time_for_cycles`);
    - ``cycles / time`` is freq at the matching scale;
    - same unit over same unit is a pure ratio: unknown (a count or a
      fraction the caller may re-declare by name);
    - ``unit / unknown`` keeps the unit (``total_ns / n``);
    - everything else is unknown.
    """
    if b is None:
        return a
    if a is None:
        return None
    if a == b:
        return None
    if a.quantity == "cycles" and b.quantity == "freq":
        return UNITS.get(_FREQ_TO_TIME.get(b.unit, ""))
    if a.quantity == "cycles" and b.quantity == "time":
        return UNITS.get(_TIME_TO_FREQ.get(b.unit, ""))
    return None


def is_pow10(value: object) -> bool:
    """True for positive numeric literals that are powers of ten — the
    signature of a hand-written scale conversion (``* 1e9``, ``* 1e6``,
    ``/ 1e3``).  ``1`` is excluded; ``1024`` and friends are not powers
    of ten, so binary size constants keep their dim."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return False
    if value <= 0 or value == 1:
        return False
    log = math.log10(value)
    return abs(log - round(log)) < 1e-12


# ---------------------------------------------------------------------------
# Annotation registry
# ---------------------------------------------------------------------------

#: Dotted name -> unit token, for names that cannot carry the suffix
#: convention.  Three shapes of key:
#:
#: - ``module.CONSTANT`` — a scale constant; the token is the dim of a
#:   quantity *scaled by* the constant (``30 * units.NS`` is a time in
#:   seconds, ``8 * units.KB`` a size in bytes);
#: - ``module.function`` / ``module.Class.method`` — the return dim;
#: - ``module.Class.field`` / ``module.function.param`` — the dim of a
#:   dataclass field or parameter.
#:
#: Every entry is a *reviewed* declaration: the units pass trusts it
#: over inference, and reports any entry that no longer names a known
#: function, field or module constant (``unit-annotation``), so the
#: registry cannot rot.
ANNOTATIONS: dict[str, str] = {
    # common/units.py — the sanctioned conversion helpers and scale
    # constants.  NS/US/MS scale counts into *seconds* (30 * NS is 30ns
    # expressed in s); MHZ/GHZ scale counts into hertz; KB/MB/GB into
    # bytes.
    "repro.common.units.cycles_for_time": "cycles",
    "repro.common.units.time_for_cycles": "s",
    "repro.common.units.bits_for_bytes": "bits",
    "repro.common.units.NS": "s",
    "repro.common.units.US": "s",
    "repro.common.units.MS": "s",
    "repro.common.units.MHZ": "hz",
    "repro.common.units.GHZ": "hz",
    "repro.common.units.KB": "bytes",
    "repro.common.units.MB": "bytes",
    "repro.common.units.GB": "bytes",
}

_UNIT_RE = re.compile(r"#\s*repro:\s*unit\(([^)]*)\)")


def unit_comments(source: str) -> dict[int, str]:
    """``# repro: unit(<token>)`` declarations: line number -> raw token.

    Only real ``#`` comments count — the pattern quoted in a docstring
    or f-string (this repo documents its own conventions) declares
    nothing, so the source is tokenized rather than regex-scanned.
    Tokens are *not* validated here; the units pass reports an unknown
    token as a ``unit-annotation`` warning instead of silently ignoring
    a typo (``unit(nanoseconds)`` guards nothing).
    """
    declared: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _UNIT_RE.search(tok.string)
            if match:
                declared[tok.start[0]] = match.group(1).strip()
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # unparseable files are already reported by the callgraph
    return declared
