"""Declarative design-space exploration over the experiment registry.

A *sweep* is a checked-in TOML/JSON spec (``artifacts/sweeps/``) that
names a base pipeline (:mod:`repro.sweep.points`), the axes to vary,
and the objectives to optimise.  :mod:`repro.sweep.spec` validates and
expands the spec, :mod:`repro.sweep.engine` compiles each configuration
onto the supervised experiment runner (inheriting caching, retries,
fault injection, resume and span tracing), :mod:`repro.sweep.pareto`
reduces the results to a Pareto frontier, and :mod:`repro.sweep.report`
renders the deterministic artifact plus the auto-generated SWEEPS.md.

Drive it from the command line with ``python -m repro sweep run|report|list``.
"""

from repro.sweep.engine import ConfigResult, SweepOutcome, compile_tasks, run_sweep
from repro.sweep.pareto import (
    ParetoError,
    ParetoVerdict,
    frontier_labels,
    pareto_classify,
)
from repro.sweep.points import AXES, BASES, LATENCY_PROFILES, base_entry_points
from repro.sweep.report import (
    SWEEP_SCHEMA_VERSION,
    build_sweep_artifact,
    check_sweeps_drift,
    generate_sweeps_md,
    load_sweep_artifact,
    spec_digest,
    write_sweep_artifact,
)
from repro.sweep.spec import (
    SPEC_RULES,
    Objective,
    SweepConfig,
    SweepSpec,
    SweepSpecError,
    discover_specs,
    load_spec,
    parse_spec,
    resolve_spec,
)

__all__ = [
    "AXES",
    "BASES",
    "LATENCY_PROFILES",
    "SPEC_RULES",
    "SWEEP_SCHEMA_VERSION",
    "ConfigResult",
    "Objective",
    "ParetoError",
    "ParetoVerdict",
    "SweepConfig",
    "SweepOutcome",
    "SweepSpec",
    "SweepSpecError",
    "base_entry_points",
    "build_sweep_artifact",
    "check_sweeps_drift",
    "compile_tasks",
    "discover_specs",
    "frontier_labels",
    "generate_sweeps_md",
    "load_spec",
    "load_sweep_artifact",
    "pareto_classify",
    "parse_spec",
    "resolve_spec",
    "run_sweep",
    "spec_digest",
    "write_sweep_artifact",
]
