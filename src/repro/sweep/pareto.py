"""Pareto-frontier reduction over sweep results.

Given every configuration's metric dict and the sweep's objectives,
classify each point as *frontier* (no other point is at least as good
on every objective and strictly better on one) or *dominated* (some
point is).  Runs in the parent process after the fan-out — workers
only compute metrics; see DESIGN.md §7 for why the reduction never
crosses the worker boundary.

The classification is deterministic: points are compared in their
expansion order, a dominated point records the *first* dominator in
that order, and ties (identical objective vectors) leave both points
on the frontier — equality dominates nothing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.common.errors import ReproError
from repro.sweep.spec import Objective


class ParetoError(ReproError):
    """A point is missing an objective metric or has a non-finite value."""


@dataclass(frozen=True)
class ParetoVerdict:
    """One point's classification against the frontier."""

    label: str
    dominated: bool
    dominated_by: str | None = None  # first dominator in expansion order


def _oriented(metrics: Mapping[str, float], label: str,
              objectives: Sequence[Objective]) -> tuple[float, ...]:
    """The objective vector, sign-flipped so lower is always better."""
    vector = []
    for objective in objectives:
        if objective.metric not in metrics:
            raise ParetoError(
                f"point {label!r} has no metric {objective.metric!r} "
                f"(has: {', '.join(sorted(metrics))})")
        value = metrics[objective.metric]
        if not isinstance(value, (int, float)) or not math.isfinite(value):
            raise ParetoError(
                f"point {label!r} metric {objective.metric!r} is not a "
                f"finite number: {value!r}")
        vector.append(-value if objective.goal == "max" else float(value))
    return tuple(vector)


def _dominates(a: tuple[float, ...], b: tuple[float, ...]) -> bool:
    """True when ``a`` is no worse everywhere and better somewhere."""
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


def pareto_classify(
    points: Sequence[tuple[str, Mapping[str, float]]],
    objectives: Sequence[Objective],
) -> list[ParetoVerdict]:
    """Classify ``(label, metrics)`` points against the objectives.

    Returns one verdict per point, in input order.  With a single
    objective this degenerates to "is it the minimum" (the frontier is
    every point tied for best); with zero points it returns an empty
    list; and when one point dominates every other, the frontier is
    exactly that point — the degenerate all-dominated case.
    """
    if not objectives:
        raise ParetoError("no objectives to reduce over")
    vectors = [
        _oriented(metrics, label, objectives) for label, metrics in points
    ]
    verdicts = []
    for i, (label, _) in enumerate(points):
        dominated_by = next(
            (
                points[j][0]
                for j in range(len(points))
                if j != i and _dominates(vectors[j], vectors[i])
            ),
            None,
        )
        verdicts.append(ParetoVerdict(
            label=label,
            dominated=dominated_by is not None,
            dominated_by=dominated_by,
        ))
    return verdicts


def frontier_labels(verdicts: Sequence[ParetoVerdict]) -> list[str]:
    """Labels of the non-dominated points, in input order."""
    return [v.label for v in verdicts if not v.dominated]
