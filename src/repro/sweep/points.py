"""Sweepable entry points: one function call per design-space point.

A *base* is a registry-style entry point built for parameter sweeps:
a module-level function whose keyword arguments are exactly the
sweepable **axes** (line size, bank count, victim entries, memory
latency, node count, emerging-memory latency profile) plus a few fixed
knobs (benchmark, trace length, seed), and whose return value is a flat
``{metric: float}`` dict.  The sweep compiler
(:mod:`repro.sweep.engine`) materializes one :class:`repro.runner.Task`
per expanded configuration over these functions, so every configuration

- runs through the supervised process pool (retries, fault injection,
  ``--resume``, span transport) exactly like a registered experiment,
  and
- caches under a :func:`repro.runner.fingerprint.slice_fingerprint`
  keyed entry — the functions here are module-level precisely so
  ``Task.entry_point()`` resolves and the dependency slicer can hash
  only the modules each base actually reaches.  Two sweeps sharing a
  configuration therefore collapse onto one cached result.

Returning plain dicts (not experiment result objects) keeps the worker
boundary thin: Pareto reduction and rendering happen in the parent
process (see DESIGN.md §7), workers only ever compute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.common.errors import ConfigError
from repro.common.params import (
    DRAMTiming,
    IntegratedDeviceParams,
    VictimCacheParams,
)
from repro.common.rng import make_rng, split_rng
from repro.gspn.models import (
    ISSUE_TRANSITION,
    ProcessorNetParams,
    bank_ready_place,
    build_processor_net,
)
from repro.gspn.sim import GSPNSimulator
from repro.mp.system import SystemKind
from repro.uniproc.measurement import measure_conventional, measure_integrated
from repro.workloads.spec import get_proxy
from repro.workloads.splash import KERNELS

# ---------------------------------------------------------------------------
# Axes and latency profiles
# ---------------------------------------------------------------------------

#: Memory-technology latency profiles, in 200 MHz CPU cycles.  The
#: paper's on-die DRAM is the 30 ns point (Section 4.1); the slower
#: entries model emerging dense memories (3DXPoint-class persistent
#: memory reads are ~1 order of magnitude slower than DRAM).
LATENCY_PROFILES: dict[str, DRAMTiming] = {
    "dram-30ns": DRAMTiming(access_cycles=6, precharge_cycles=4),
    "dram-60ns": DRAMTiming(access_cycles=12, precharge_cycles=6),
    "edram-45ns": DRAMTiming(access_cycles=9, precharge_cycles=5),
    "xpoint-300ns": DRAMTiming(access_cycles=60, precharge_cycles=0),
}


def _positive_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value > 0


def _positive_number(value: Any) -> bool:
    return (isinstance(value, (int, float)) and not isinstance(value, bool)
            and value > 0)


#: Axis name -> (human description, value validator).  Axis *names* are
#: the keyword arguments of the base functions below; a sweep spec may
#: only sweep axes its base declares (see :class:`SweepBase.axes`).
AXES: dict[str, tuple[str, Callable[[Any], bool]]] = {
    "line_bytes": ("cache line (DRAM column) size in bytes", _positive_int),
    "num_banks": ("DRAM bank count", _positive_int),
    "victim_entries": ("victim-cache entry count", _positive_int),
    "mem_latency": ("main-memory access latency in cycles", _positive_number),
    "node_count": ("processor/node count", _positive_int),
    "latency_profile": (
        "memory-technology timing profile",
        lambda value: isinstance(value, str) and value in LATENCY_PROFILES,
    ),
}


def _gspn_point(
    rates_probs: tuple,
    benchmark: str,
    num_banks: int,
    timing: DRAMTiming,
    instructions: int,
    seed: int,
    *,
    has_l2: bool = False,
    l2_latency: float = 6.0,  # repro: unit(cycles)
) -> tuple[float, float]:
    """``(cpi, mean bank utilization)`` from the Figure 10 processor net."""
    ifetch, load, store, p_load, p_store = rates_probs
    params = ProcessorNetParams(
        p_load=p_load,
        p_store=p_store,
        ifetch=ifetch,
        load=load,
        store=store,
        mem_access=timing.access_cycles,
        precharge=timing.precharge_cycles,
        num_banks=num_banks,
        has_l2=has_l2,
        l2_latency=l2_latency,
    )
    net = build_processor_net(params)
    track = tuple(bank_ready_place(b) for b in range(num_banks))
    sim = GSPNSimulator(
        net,
        split_rng(make_rng(seed), benchmark, f"sweep-banks{num_banks}"),
        track_places=track,
    )
    result = sim.run(stop_transition=ISSUE_TRANSITION, stop_count=instructions)
    cpi = result.time / result.firings[ISSUE_TRANSITION]
    utilization = sum(result.busy_fraction[p] for p in track) / num_banks
    return cpi, utilization


def _integrated_rates(proxy, params: IntegratedDeviceParams, trace_len: int,
                      seed: int, with_victim: bool):
    rates = measure_integrated(proxy, trace_len, seed, with_victim, params)
    probs = (rates.ifetch, rates.load, rates.store,
             proxy.mix.p_load, proxy.mix.p_store)
    return rates, probs


# ---------------------------------------------------------------------------
# Base point functions (module-level: picklable, sliceable, cacheable)
# ---------------------------------------------------------------------------


def icache_point(
    benchmark: str = "126.gcc",
    line_bytes: int = 512,
    num_banks: int = 16,
    latency_profile: str = "dram-30ns",
    trace_len: int = 60_000,
    instructions: int = 8_000,
    seed: int = 0,
) -> dict[str, float]:
    """One Figure 7 pipeline point: I-cache miss rate, CPI, utilization.

    Rebuilds the integrated device with the swept geometry (the I-cache
    is ``num_banks`` direct-mapped columns of ``line_bytes`` each, so
    capacity co-varies with both axes exactly as on the real device),
    measures miss rates trace-driven, then dials them into the
    processor GSPN for CPI and time-averaged bank utilization.
    """
    timing = LATENCY_PROFILES[latency_profile]
    params = IntegratedDeviceParams(
        num_banks=num_banks, column_bytes=line_bytes, dram=timing,
    )
    proxy = get_proxy(benchmark)
    rates, probs = _integrated_rates(proxy, params, trace_len, seed, True)
    cpi, utilization = _gspn_point(
        probs, benchmark, num_banks, timing, instructions, seed,
    )
    return {
        "miss_rate": rates.icache_miss_rate,
        "cpi": proxy.base_cpi() + max(0.0, cpi - 1.0),
        "bank_utilization": utilization,
    }


def dcache_point(
    benchmark: str = "126.gcc",
    line_bytes: int = 512,
    num_banks: int = 16,
    victim_entries: int = 16,
    latency_profile: str = "dram-30ns",
    trace_len: int = 60_000,
    instructions: int = 8_000,
    seed: int = 0,
) -> dict[str, float]:
    """One Figure 8 pipeline point: D-cache miss rate, CPI, utilization.

    Like :func:`icache_point` but reporting the data side, with the
    victim-cache entry count as an extra axis (Section 5.4's 16-entry
    default is one grid point among many).
    """
    timing = LATENCY_PROFILES[latency_profile]
    params = IntegratedDeviceParams(
        num_banks=num_banks,
        column_bytes=line_bytes,
        dram=timing,
        victim=VictimCacheParams(entries=victim_entries),
    )
    proxy = get_proxy(benchmark)
    rates, probs = _integrated_rates(proxy, params, trace_len, seed, True)
    cpi, utilization = _gspn_point(
        probs, benchmark, num_banks, timing, instructions, seed,
    )
    return {
        "miss_rate": rates.dcache_miss_rate,
        "cpi": proxy.base_cpi() + max(0.0, cpi - 1.0),
        "bank_utilization": utilization,
    }


def conventional_point(
    benchmark: str = "126.gcc",
    mem_latency: float = 24.0,  # repro: unit(cycles)
    num_banks: int = 2,
    l2_latency: float = 6.0,  # repro: unit(cycles)
    trace_len: int = 60_000,
    instructions: int = 8_000,
    seed: int = 0,
) -> dict[str, float]:
    """One conventional-system point (the Figure 11 pipeline).

    Miss rates come from the split-L1 + shared-L2 hierarchy; the swept
    main-memory latency and bank count feed the has-L2 variant of the
    processor net.
    """
    proxy = get_proxy(benchmark)
    rates = measure_conventional(proxy, trace_len, seed)
    probs = (rates.ifetch, rates.load, rates.store,
             proxy.mix.p_load, proxy.mix.p_store)
    timing = DRAMTiming(access_cycles=max(1, round(mem_latency)),
                       precharge_cycles=4)
    cpi, utilization = _gspn_point(
        probs, benchmark, num_banks, timing, instructions, seed,
        has_l2=True, l2_latency=l2_latency,
    )
    return {
        "miss_rate": rates.dcache_miss_rate,
        "cpi": proxy.base_cpi() + max(0.0, cpi - 1.0),
        "bank_utilization": utilization,
    }


def splash_point(
    kernel: str = "lu",
    node_count: int = 4,
    system: str = "integrated",
) -> dict[str, float]:
    """One SPLASH multiprocessor point (the Figures 13-17 pipeline).

    ``execution_time`` is the kernel's simulated cycle count on
    ``node_count`` processors; ``cycles_per_proc`` normalizes it so a
    node-count axis can still expose the scaling knee as a Pareto
    trade-off (fewer nodes = less hardware, more cycles).
    """
    kind = SystemKind(system)
    kernel_obj = KERNELS[kernel]()
    result, _ = kernel_obj.run_on(kind, node_count)
    return {
        "execution_time": float(result.execution_time),
        "cycles_per_proc": float(result.execution_time) * node_count,
    }


# ---------------------------------------------------------------------------
# Base registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepBase:
    """One sweepable pipeline: entry point, axes, metrics, defaults."""

    name: str
    fn: Callable[..., dict[str, float]]
    summary: str
    axes: tuple[str, ...]  # axis names the base accepts (sweepable)
    fixed: tuple[str, ...]  # non-axis kwargs a spec may pin
    metrics: tuple[str, ...]  # keys of the returned dict
    #: default Pareto objectives as ``(metric, goal)`` pairs; a spec may
    #: override with its own ``[[objectives]]`` table.
    objectives: tuple[tuple[str, str], ...]

    @property
    def entry_point(self) -> str:
        """Dotted function name, mirroring ``ExperimentSpec.entry_point``."""
        return f"{self.fn.__module__}.{self.fn.__qualname__}"


_UNIPROC_METRICS = ("miss_rate", "cpi", "bank_utilization")
# Lower is better on every default objective: misses and CPI are cost,
# and low bank utilization means the banks retain headroom for refresh,
# speculative writebacks and I/O traffic (Section 5.6 reads it this way).
_UNIPROC_OBJECTIVES = (("miss_rate", "min"), ("cpi", "min"),
                       ("bank_utilization", "min"))

BASES: dict[str, SweepBase] = {  # repro: allow(mutable-global)
    "figure7": SweepBase(
        name="figure7",
        fn=icache_point,
        summary="integrated I-cache pipeline (trace-driven miss rate -> GSPN)",
        axes=("line_bytes", "num_banks", "latency_profile"),
        fixed=("benchmark", "trace_len", "instructions", "seed"),
        metrics=_UNIPROC_METRICS,
        objectives=_UNIPROC_OBJECTIVES,
    ),
    "figure8": SweepBase(
        name="figure8",
        fn=dcache_point,
        summary="integrated D-cache pipeline with victim cache",
        axes=("line_bytes", "num_banks", "victim_entries", "latency_profile"),
        fixed=("benchmark", "trace_len", "instructions", "seed"),
        metrics=_UNIPROC_METRICS,
        objectives=_UNIPROC_OBJECTIVES,
    ),
    "figure11": SweepBase(
        name="figure11",
        fn=conventional_point,
        summary="conventional reference system (split L1 + L2 hierarchy)",
        axes=("mem_latency", "num_banks"),
        fixed=("benchmark", "l2_latency", "trace_len", "instructions", "seed"),
        metrics=_UNIPROC_METRICS,
        objectives=_UNIPROC_OBJECTIVES,
    ),
    "figures13-17": SweepBase(
        name="figures13-17",
        fn=splash_point,
        summary="SPLASH kernels on the multiprocessor systems",
        axes=("node_count",),
        fixed=("kernel", "system"),
        metrics=("execution_time", "cycles_per_proc"),
        objectives=(("execution_time", "min"), ("cycles_per_proc", "min")),
    ),
}


def base_entry_points() -> dict[str, str]:
    """Sweep base name -> dotted entry-point name (doc-coverage, deps)."""
    return {name: base.entry_point for name, base in BASES.items()}


def validate_axis_value(axis: str, value: Any) -> str | None:
    """None if ``value`` is legal for ``axis``, else a short reason."""
    description, validator = AXES[axis]
    if validator(value):
        # Geometry constraints surface early, with the axis named,
        # instead of as a worker-side ConfigError mid-sweep.
        if axis in ("line_bytes", "num_banks"):
            try:
                IntegratedDeviceParams(
                    num_banks=value if axis == "num_banks" else 16,
                    column_bytes=value if axis == "line_bytes" else 512,
                )
            except ConfigError as exc:
                return str(exc)
        return None
    if axis == "latency_profile":
        return (f"expected one of {', '.join(sorted(LATENCY_PROFILES))}, "
                f"got {value!r}")
    return f"expected a positive number for {description}, got {value!r}"
