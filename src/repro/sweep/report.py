"""Sweep reports: machine-readable artifacts and auto-generated SWEEPS.md.

The same artifact -> render -> drift-check pipeline as
:mod:`repro.analysis.docs` runs for EXPERIMENTS.md:

- ``python -m repro sweep run <spec>`` writes the deterministic
  per-sweep artifact ``artifacts/sweeps/<name>.json`` (schema below);
- ``python -m repro sweep report`` regenerates SWEEPS.md from every
  checked-in artifact;
- ``scripts/check_docs.py`` (and its tier-1 wrapper) regenerates
  SWEEPS.md into a buffer and fails on any diff, so the mechanical
  sweep docs can never drift silently.

Unlike ``artifacts/experiments.json``, sweep artifacts embed **no code
fingerprint**: with fixed seeds the metrics are a pure function of the
spec, so the artifact — and therefore SWEEPS.md — only changes when the
swept results actually change, not on every unrelated source edit.
What ties an artifact to its spec is ``spec_digest``, a content hash of
the validated spec, which the drift check uses to flag a report whose
spec was edited after the sweep ran.
"""

from __future__ import annotations

import difflib
import hashlib
import json
from pathlib import Path

from repro.sweep.engine import SweepOutcome
from repro.sweep.spec import DEFAULT_SWEEPS_DIR, SweepSpec, load_spec

SWEEP_SCHEMA_VERSION = 1
DEFAULT_SWEEPS_DOC = Path("SWEEPS.md")

PREAMBLE = """\
Design-space exploration reports over the paper's pipelines: each sweep
below is a checked-in TOML spec under `artifacts/sweeps/` expanded into
a configuration grid, fanned out through the supervised experiment
runner (every configuration cached under its entry point's dependency
slice fingerprint), and reduced to a Pareto frontier over the sweep's
objectives.  `frontier` marks configurations no other point beats on
every objective at once; `dominated by <label>` names the first
configuration that is at least as good everywhere and strictly better
somewhere.

Regenerate with `python -m repro sweep run <name>` (recompute or serve
from cache) followed by `python -m repro sweep report`;
`scripts/check_docs.py` fails CI when this document drifts from the
checked-in sweep artifacts.\
"""


def spec_digest(spec: SweepSpec) -> str:
    """Content hash of a validated spec (axes, fixed knobs, objectives)."""
    payload = json.dumps(
        {
            "name": spec.name,
            "base": spec.base,
            "mode": spec.mode,
            "axes": [[name, list(values)] for name, values in spec.axes],
            "fixed": spec.fixed,
            "objectives": [[o.metric, o.goal] for o in spec.objectives],
        },
        sort_keys=True,
        default=repr,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def build_sweep_artifact(outcome: SweepOutcome) -> dict:
    """The deterministic JSON payload for one sweep run.

    Wall times, cache statuses and worker pids are deliberately absent —
    they live in ``--metrics-out`` — so reruns are byte-stable.
    """
    spec = outcome.spec
    return {
        "schema": SWEEP_SCHEMA_VERSION,
        "kind": "sweep",
        "name": spec.name,
        "base": spec.base,
        "description": spec.description,
        "mode": spec.mode,
        "spec_digest": spec_digest(spec),
        "axes": [
            {"name": name, "values": list(values)}
            for name, values in spec.axes
        ],
        "fixed": dict(spec.fixed),
        "objectives": [
            {"metric": o.metric, "goal": o.goal} for o in spec.objectives
        ],
        "configs": [
            {
                "label": c.label,
                "params": dict(c.params),
                "metrics": dict(c.metrics),
                "dominated": c.dominated,
                "dominated_by": c.dominated_by,
            }
            for c in outcome.configs
        ],
        "frontier": outcome.frontier,
        "failed": list(outcome.failed),
    }


def report_path(name: str,
                sweeps_dir: Path | str = DEFAULT_SWEEPS_DIR) -> Path:
    return Path(sweeps_dir) / f"{name}.json"


def write_sweep_artifact(path: Path | str, artifact: dict) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")


def load_sweep_artifact(path: Path | str) -> dict:
    return json.loads(Path(path).read_text())


def discover_reports(
    sweeps_dir: Path | str = DEFAULT_SWEEPS_DIR,
) -> list[Path]:
    """Checked-in sweep report artifacts, sorted by sweep name."""
    root = Path(sweeps_dir)
    if not root.is_dir():
        return []
    return sorted(
        path for path in root.glob("*.json")
        if load_sweep_artifact(path).get("kind") == "sweep"
    )


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

_PERCENT_METRICS = {"miss_rate", "bank_utilization"}


def _format_metric(metric: str, value: float) -> str:
    if metric in _PERCENT_METRICS:
        return f"{value * 100:.3f} %"
    if float(value).is_integer() and abs(value) >= 1000:
        return f"{int(value):,}"
    return f"{value:.4f}"


def render_sweep_section(artifact: dict) -> str:
    """One sweep's markdown section for SWEEPS.md."""
    lines: list[str] = []
    out = lines.append
    out(f"## `{artifact['name']}` — base `{artifact['base']}`")
    out("")
    if artifact["description"]:
        out(f"{artifact['description']}.")
        out("")
    axes = ", ".join(
        f"`{axis['name']}` ∈ {{{', '.join(str(v) for v in axis['values'])}}}"
        for axis in artifact["axes"]
    )
    out(f"Axes ({artifact['mode']} expansion): {axes}.")
    if artifact["fixed"]:
        fixed = ", ".join(
            f"`{knob}={value}`"
            for knob, value in sorted(artifact["fixed"].items())
        )
        out(f"Fixed: {fixed}.")
    objectives = ", ".join(
        f"{o['metric']} ({o['goal']})" for o in artifact["objectives"]
    )
    out(f"Objectives: {objectives}.  Spec `artifacts/sweeps/"
        f"{artifact['name']}.toml`, digest `{artifact['spec_digest'][:16]}`.")
    out("")
    metrics = [o["metric"] for o in artifact["objectives"]]
    extra = sorted(
        {m for c in artifact["configs"] for m in c["metrics"]} - set(metrics)
    )
    columns = metrics + extra
    out("| configuration | " + " | ".join(columns) + " | verdict |")
    out("|---" * (len(columns) + 2) + "|")
    for config in artifact["configs"]:
        cells = [
            _format_metric(metric, config["metrics"][metric])
            if metric in config["metrics"] else "—"
            for metric in columns
        ]
        verdict = (
            f"dominated by `{config['dominated_by']}`"
            if config["dominated"] else "**frontier**"
        )
        out(f"| `{config['label']}` | " + " | ".join(cells)
            + f" | {verdict} |")
    out("")
    total = len(artifact["configs"])
    out(f"Frontier: {len(artifact['frontier'])} of {total} configurations; "
        f"{total - len(artifact['frontier'])} dominated.")
    if artifact["failed"]:
        out(f"Quarantined configurations (no metrics): "
            + ", ".join(f"`{label}`" for label in artifact["failed"]) + ".")
    return "\n".join(lines)


def generate_sweeps_md(artifacts: list[dict]) -> str:
    """The full SWEEPS.md text for the given sweep artifacts."""
    lines: list[str] = []
    out = lines.append
    out("# SWEEPS — design-space exploration reports")
    out("")
    out("<!-- Auto-generated by `python -m repro sweep report` from the")
    out("     artifacts under artifacts/sweeps/.  Do not edit by hand;")
    out("     scripts/check_docs.py fails when this file drifts. -->")
    out("")
    out(PREAMBLE)
    out("")
    if not artifacts:
        out("No sweep reports are checked in yet.  Author a spec under")
        out("`artifacts/sweeps/<name>.toml` and run "
            "`python -m repro sweep run <name>`.")
        out("")
    for artifact in sorted(artifacts, key=lambda a: a["name"]):
        out(render_sweep_section(artifact))
        out("")
    out("## Provenance")
    out("")
    out("Each sweep's metrics are a deterministic function of its spec")
    out("(fixed seeds, no timestamps); artifacts embed the spec digest,")
    out("not a code fingerprint, so this document only changes when the")
    out("swept results change.  Wall-clock and cache behaviour live in")
    out("the `--metrics-out` JSON of the producing run.")
    out("")
    out(f"- sweeps: {len(artifacts)}, configurations: "
        f"{sum(len(a['configs']) for a in artifacts)}, dominated: "
        f"{sum(len(a['configs']) - len(a['frontier']) for a in artifacts)}")
    out("")
    return "\n".join(lines)


def regenerate_doc(
    sweeps_dir: Path | str = DEFAULT_SWEEPS_DIR,
    doc_path: Path | str = DEFAULT_SWEEPS_DOC,
) -> list[Path]:
    """Rewrite SWEEPS.md from the checked-in artifacts; returns them."""
    reports = discover_reports(sweeps_dir)
    artifacts = [load_sweep_artifact(path) for path in reports]
    Path(doc_path).write_text(generate_sweeps_md(artifacts))
    return reports


def check_sweeps_drift(repo_root: Path | str = ".") -> list[str]:
    """Diff the checked-in SWEEPS.md against a regeneration from the
    checked-in sweep artifacts; also flag reports whose paired spec was
    edited after the sweep ran.  Empty list = in sync."""
    root = Path(repo_root)
    reports = discover_reports(root / DEFAULT_SWEEPS_DIR)
    artifacts = [load_sweep_artifact(path) for path in reports]
    problems: list[str] = []
    for artifact in artifacts:
        spec_path = root / DEFAULT_SWEEPS_DIR / f"{artifact['name']}.toml"
        if not spec_path.exists():
            continue  # spec may legitimately live elsewhere (JSON, ad hoc)
        digest = spec_digest(load_spec(spec_path))
        if digest != artifact["spec_digest"]:
            problems.append(
                f"{spec_path} was edited after its report was generated "
                f"(spec digest {digest[:16]} != report's "
                f"{artifact['spec_digest'][:16]}); rerun "
                f"`python -m repro sweep run {artifact['name']}`"
            )
    expected = generate_sweeps_md(artifacts)
    doc = root / DEFAULT_SWEEPS_DOC
    actual = doc.read_text() if doc.exists() else ""
    if expected != actual:
        problems.extend(difflib.unified_diff(
            actual.splitlines(), expected.splitlines(),
            fromfile="SWEEPS.md (checked in)",
            tofile="SWEEPS.md (regenerated from artifacts/sweeps/)",
            lineterm="",
        ))
    return problems
