"""Sweep execution: compile configurations onto the experiment runner.

``run_sweep`` is the whole lifecycle of one sweep:

1. **compile** — every expanded :class:`~repro.sweep.spec.SweepConfig`
   becomes one :class:`repro.runner.Task` over the base's module-level
   point function.  The task's experiment name is ``sweep:<base>`` (not
   the sweep's own name) and its shard is the configuration label, so
   the cache key depends only on *(base entry point, parameters, slice
   fingerprint)*: two sweeps — or two runs of one sweep — sharing a
   configuration collapse onto a single cached result, and editing code
   outside the base's dependency slice invalidates nothing.
2. **fan out** — the tasks go through :func:`repro.runner.run_tasks`
   unchanged, inheriting the supervised pool: retries, quarantine,
   fault injection, the fingerprint-keyed journal behind ``--resume``,
   and span transport back from workers.
3. **reduce** — surviving metric dicts are Pareto-classified
   (:mod:`repro.sweep.pareto`) in the parent process and assembled into
   the deterministic sweep outcome the report layer renders.

Each stage runs under an ``obs`` span (``sweep/compile``, ``sweep/run``,
``sweep/reduce``) so ``--perf-summary`` breaks a sweep's wall time down
by stage next to the simulator stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro import obs
from repro.runner import ResultCache, RunMetrics, Task, run_tasks
from repro.sweep.pareto import pareto_classify
from repro.sweep.points import BASES
from repro.sweep.spec import SweepConfig, SweepSpec


@dataclass(frozen=True)
class ConfigResult:
    """One configuration's settled outcome."""

    label: str
    params: dict[str, Any] = field(hash=False)
    metrics: dict[str, float] = field(hash=False)  # empty if quarantined
    dominated: bool = False
    dominated_by: str | None = None


@dataclass
class SweepOutcome:
    """Everything one sweep run produced, pre-rendering."""

    spec: SweepSpec
    configs: list[ConfigResult]
    failed: list[str]  # labels of quarantined configurations

    @property
    def frontier(self) -> list[str]:
        return [c.label for c in self.configs if not c.dominated]

    @property
    def dominated(self) -> list[ConfigResult]:
        return [c for c in self.configs if c.dominated]


def compile_tasks(spec: SweepSpec) -> list[Task]:
    """Registry-style tasks, one per expanded configuration."""
    base = BASES[spec.base]
    return [
        Task(
            experiment=f"sweep:{spec.base}",
            shard=config.label,
            fn=base.fn,
            kwargs=dict(config.params),
        )
        for config in spec.configs()
    ]


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    policy: Any = None,
    faults: Any = None,
    journal: Any = None,
    resume: bool = False,
    on_partial: Any = None,
) -> tuple[SweepOutcome, RunMetrics]:
    """Run every configuration of ``spec`` and reduce the results.

    Returns ``(outcome, metrics)``.  Quarantined configurations (the
    supervised pool exhausted their retries) appear in
    ``outcome.failed`` with empty metrics and are excluded from the
    Pareto classification; the per-task failure records live in
    ``metrics`` exactly as for registered experiments.
    """
    with obs.span("sweep/compile") as sp:
        configs = spec.configs()
        tasks = compile_tasks(spec)
        sp.add("configs", len(configs))
    with obs.span("sweep/run"):
        raw, metrics = run_tasks(
            tasks, jobs=jobs, cache=cache, policy=policy, faults=faults,
            journal=journal, resume=resume, on_partial=on_partial,
        )
    with obs.span("sweep/reduce") as sp:
        settled: list[tuple[SweepConfig, dict[str, float]]] = []
        failed: list[str] = []
        for config in configs:
            slot = (f"sweep:{spec.base}", config.label)
            if slot in raw:
                settled.append((config, dict(raw[slot])))
            else:
                failed.append(config.label)
        verdicts = {
            v.label: v
            for v in pareto_classify(
                [(config.label, metrics_) for config, metrics_ in settled],
                spec.objectives,
            )
        } if settled else {}
        results = [
            ConfigResult(
                label=config.label,
                params=dict(config.params),
                metrics=metrics_,
                dominated=verdicts[config.label].dominated,
                dominated_by=verdicts[config.label].dominated_by,
            )
            for config, metrics_ in settled
        ]
        sp.add("dominated", sum(1 for r in results if r.dominated))
    return SweepOutcome(spec=spec, configs=results, failed=failed), metrics
