"""The ``python -m repro sweep`` command-line interface.

    python -m repro sweep list                  # checked-in sweep specs
    python -m repro sweep run fig7-line-bank    # expand, fan out, reduce
    python -m repro sweep run path/to/spec.toml --jobs 4
    python -m repro sweep report                # regenerate SWEEPS.md

``run`` resolves its argument as a checked-in spec name under
``artifacts/sweeps/`` or a direct path, validates it (every violation
is a named ``SweepSpecError`` rule), executes the expanded grid through
the same supervised pool as ``python -m repro <experiment>`` — so the
full flag set (``--jobs``, ``--resume``, ``--inject``, ``--trace``,
``--task-timeout``, ...) carries over — and writes the deterministic
report artifact next to the spec.  ``report`` only rereads checked-in
artifacts; it never recomputes.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import obs
from repro.faults import FaultPlan, FaultPlanError
from repro.runner import (
    FailFastError,
    ResultCache,
    RunJournal,
    SupervisionPolicy,
    default_cache_dir,
    sigterm_interrupts,
)
from repro.sweep.engine import run_sweep
from repro.sweep.report import (
    DEFAULT_SWEEPS_DOC,
    build_sweep_artifact,
    regenerate_doc,
    report_path,
    write_sweep_artifact,
)
from repro.sweep.spec import (
    DEFAULT_SWEEPS_DIR,
    SweepSpecError,
    discover_specs,
    load_spec,
    resolve_spec,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="Declarative design-space sweeps over the registry.",
    )
    verbs = parser.add_subparsers(dest="verb", required=True)

    verbs.add_parser(
        "list", help="show the checked-in sweep specs under artifacts/sweeps/"
    )

    report = verbs.add_parser(
        "report", help="regenerate SWEEPS.md from the checked-in artifacts"
    )
    report.add_argument(
        "--out",
        default=str(DEFAULT_SWEEPS_DOC),
        metavar="PATH",
        help="SWEEPS.md path (default SWEEPS.md)",
    )

    run = verbs.add_parser(
        "run", help="expand a sweep spec and run every configuration"
    )
    run.add_argument(
        "spec",
        help="checked-in sweep name (see 'list') or a path to a "
             "TOML/JSON spec file",
    )
    run.add_argument(
        "--jobs", "-j",
        type=int,
        default=1,
        help="worker processes for independent configurations (default 1)",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every configuration, and do not store results",
    )
    run.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default .repro-cache, or "
             "$REPRO_CACHE_DIR)",
    )
    run.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write per-configuration run metrics (wall time, cache "
             "status, fingerprint kind) as JSON",
    )
    run.add_argument(
        "--report-out",
        default=None,
        metavar="PATH",
        help="sweep report artifact path "
             "(default artifacts/sweeps/<name>.json)",
    )
    run.add_argument(
        "--no-report",
        action="store_true",
        help="run and print the frontier without writing the artifact",
    )
    run.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-attempt wall-clock limit; a stuck worker is killed, "
             "replaced, and the configuration retried (default: no limit)",
    )
    run.add_argument(
        "--max-retries",
        type=int,
        default=1,
        metavar="N",
        help="extra attempts for a crashed/hung/failed configuration "
             "before it is quarantined (default 1)",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="skip configurations journaled as completed by an "
             "interrupted run (requires the cache)",
    )
    run.add_argument(
        "--fail-fast",
        action="store_true",
        help="abort the sweep on the first quarantined configuration",
    )
    run.add_argument(
        "--inject",
        action="append",
        default=None,
        metavar="LABEL=KIND",
        help="deterministic fault injection: fault configurations "
             "matching LABEL (fnmatch over 'sweep:<base>/<label>') with "
             "KIND (crash, hang, raise, corrupt); repeatable, also read "
             "from $REPRO_INJECT",
    )
    run.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="enable span tracing and write a Chrome trace-event JSON "
             "covering compile/run/reduce and every modeling layer",
    )
    run.add_argument(
        "--perf-summary",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help="enable span tracing and write a per-run perf summary JSON",
    )
    return parser


def _cmd_list() -> int:
    specs = discover_specs()
    if not specs:
        print(f"no sweep specs under {DEFAULT_SWEEPS_DIR}/", file=sys.stderr)
        return 0
    for path in specs:
        try:
            spec = load_spec(path)
        except SweepSpecError as exc:
            print(f"{path.stem:18s} INVALID [{exc.rule}]: {exc}")
            continue
        axes = "×".join(str(len(values)) for _, values in spec.axes)
        print(f"{spec.name:18s} base={spec.base:12s} "
              f"{len(spec.configs()):3d} configs ({axes})  {spec.description}")
    return 0


def _cmd_report(out: str) -> int:
    reports = regenerate_doc(doc_path=out)
    print(f"wrote {out} from {len(reports)} sweep artifact(s)",
          file=sys.stderr)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        spec_path = resolve_spec(args.spec)
        spec = load_spec(spec_path)
    except FileNotFoundError as exc:
        print(f"sweep spec not found: {exc}", file=sys.stderr)
        known = ", ".join(p.stem for p in discover_specs()) or "none"
        print(f"checked-in specs: {known}", file=sys.stderr)
        return 2
    except SweepSpecError as exc:
        print(f"invalid sweep spec [{exc.rule}]: {exc}", file=sys.stderr)
        return 2

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    if args.resume and cache is None:
        print("--resume needs the result cache (drop --no-cache)",
              file=sys.stderr)
        return 2
    try:
        faults = FaultPlan.parse(args.inject or []) if args.inject \
            else FaultPlan()
        faults = FaultPlan(faults.specs + FaultPlan.from_env().specs)
    except FaultPlanError as exc:
        print(f"bad --inject / $REPRO_INJECT: {exc}", file=sys.stderr)
        return 2
    try:
        policy = SupervisionPolicy(
            task_timeout=args.task_timeout,
            max_retries=args.max_retries,
            fail_fast=args.fail_fast,
        )
    except ValueError as exc:
        print(f"bad supervision flags: {exc}", file=sys.stderr)
        return 2
    journal = RunJournal(cache.root, cache.fingerprint) if cache else None

    tracing = args.trace is not None or args.perf_summary is not None
    spans_before = 0
    if tracing:
        obs.enable()
        spans_before = obs.mark()

    def write_partial(partial) -> None:
        if args.metrics_out:
            partial.write(args.metrics_out)

    configs = spec.configs()
    print(f"sweep {spec.name}: {len(configs)} configurations of "
          f"{spec.base} ({'×'.join(str(len(v)) for _, v in spec.axes)})",
          file=sys.stderr)
    try:
        # SIGTERM drains like Ctrl-C: journal flushed, workers reaped.
        with sigterm_interrupts():
            outcome, metrics = run_sweep(
                spec, jobs=args.jobs, cache=cache, policy=policy,
                faults=faults or None, journal=journal, resume=args.resume,
                on_partial=write_partial,
            )
    except KeyboardInterrupt:
        print("\ninterrupted — completed configurations are journaled and "
              "cached; rerun with --resume", file=sys.stderr)
        return 130
    except FailFastError as exc:
        print(f"fail-fast: {exc}", file=sys.stderr)
        return 1

    hits = sum(1 for t in metrics.tasks if t.cache in ("hit", "resumed"))
    print(f"[{spec.name}: {metrics.wall_s:.1f}s, "
          f"{hits}/{len(metrics.tasks)} cached]", file=sys.stderr)
    print(metrics.render(), file=sys.stderr)
    if args.metrics_out:
        metrics.write(args.metrics_out)
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)

    if tracing:
        from repro.obs import export as obs_export
        from repro.runner import code_fingerprint

        records = obs.since(spans_before)
        if args.trace is not None:
            obs_export.write_chrome_trace(args.trace, records)
            print(f"trace written to {args.trace} "
                  f"({len(records)} spans)", file=sys.stderr)
        if args.perf_summary is not None:
            fingerprint = cache.fingerprint if cache \
                else code_fingerprint()
            summary = obs_export.perf_summary(
                records, fingerprint=fingerprint, jobs=args.jobs,
                wall_s=metrics.wall_s,
            )
            bench_path = (Path(args.perf_summary) if args.perf_summary
                          else obs_export.default_bench_path(fingerprint))
            obs_export.write_perf_summary(bench_path, summary)
            print(f"perf summary written to {bench_path}", file=sys.stderr)

    # The human-readable reduction goes to stdout, like rendered tables.
    print(f"sweep {spec.name}: frontier {len(outcome.frontier)} of "
          f"{len(outcome.configs)} configurations")
    for result in outcome.configs:
        shown = ", ".join(
            f"{o.metric}={result.metrics[o.metric]:.4f}"
            for o in spec.objectives
        )
        verdict = (f"dominated by {result.dominated_by}"
                   if result.dominated else "frontier")
        print(f"  {result.label:40s} {shown}  [{verdict}]")
    for label in outcome.failed:
        print(f"  {label:40s} quarantined — no metrics")

    if not args.no_report:
        artifact = build_sweep_artifact(outcome)
        out = Path(args.report_out) if args.report_out \
            else report_path(spec.name)
        write_sweep_artifact(out, artifact)
        print(f"report written to {out}", file=sys.stderr)

    if outcome.failed:
        print(f"sweep finished with {len(outcome.failed)} quarantined "
              f"configuration(s); see the metrics for tracebacks",
              file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.verb == "list":
        return _cmd_list()
    if args.verb == "report":
        return _cmd_report(args.out)
    return _cmd_run(args)


if __name__ == "__main__":
    raise SystemExit(main())
