"""Declarative sweep specifications: parse, validate, expand.

A sweep spec is a checked-in TOML (or JSON) document under
``artifacts/sweeps/`` declaring a *base* pipeline
(:data:`repro.sweep.points.BASES`), the axes to sweep, how to expand
them, and what to optimize::

    name = "fig7-line-bank"
    base = "figure7"
    description = "line size x bank count on the Figure 7 pipeline"
    mode = "grid"                  # cartesian product (default); "list"
                                   # zips equal-length value rows instead

    [axes]
    line_bytes = [256, 512, 1024]
    num_banks = [4, 8, 16]

    [fixed]                        # pinned non-axis knobs of the base
    benchmark = "126.gcc"
    trace_len = 40000

    [[objectives]]                 # optional; defaults come from the base
    metric = "miss_rate"
    goal = "min"

Validation is exhaustive and every failure carries a stable kebab-case
rule name (:class:`SweepSpecError.rule`) so tests and callers can match
on *what* is wrong, not on message prose — the same discipline as the
``repro check`` finding rules.  Expansion is deterministic: grid order
is row-major in axis declaration order, labels are the
``axis=value`` pairs joined with commas, and duplicate configurations
are a spec error rather than silent recomputation (across sweeps and
reruns, identical configurations collapse in the result cache instead
— see :mod:`repro.sweep.engine`).
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.common.errors import ReproError
from repro.sweep.points import AXES, BASES, validate_axis_value

SPEC_SUFFIXES = (".toml", ".json")
DEFAULT_SWEEPS_DIR = Path("artifacts") / "sweeps"

#: Every rule a :class:`SweepSpecError` may carry.
SPEC_RULES: tuple[str, ...] = (
    "bad-spec",
    "missing-field",
    "unknown-field",
    "bad-name",
    "unknown-base",
    "bad-mode",
    "unknown-axis",
    "empty-axis",
    "bad-value",
    "empty-grid",
    "length-mismatch",
    "duplicate-configuration",
    "unknown-fixed",
    "unknown-metric",
    "bad-goal",
    "duplicate-objective",
)


class SweepSpecError(ReproError):
    """A sweep spec failed validation; ``rule`` names the failure."""

    def __init__(self, rule: str, message: str) -> None:
        assert rule in SPEC_RULES, rule
        super().__init__(f"[{rule}] {message}")
        self.rule = rule


@dataclass(frozen=True)
class Objective:
    """One Pareto objective: a metric and the direction that improves it."""

    metric: str
    goal: str  # "min" | "max"


@dataclass(frozen=True)
class SweepConfig:
    """One expanded configuration: label plus full kwargs for the base."""

    label: str
    params: dict[str, Any] = field(hash=False)


@dataclass(frozen=True)
class SweepSpec:
    """A validated sweep: base, axes, expansion mode, objectives."""

    name: str
    base: str
    axes: tuple[tuple[str, tuple[Any, ...]], ...]
    mode: str = "grid"
    fixed: dict[str, Any] = field(default_factory=dict, hash=False)
    objectives: tuple[Objective, ...] = ()
    description: str = ""

    @property
    def axis_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.axes)

    def configs(self) -> list[SweepConfig]:
        """Expanded configurations, deterministic order, unique labels."""
        rows: list[tuple[Any, ...]]
        if self.mode == "grid":
            rows = list(itertools.product(*(values for _, values in self.axes)))
        else:  # "list": parallel rows, validated equal-length
            rows = list(zip(*(values for _, values in self.axes)))
        configs = []
        for row in rows:
            label = ",".join(
                f"{name}={value}" for name, value in zip(self.axis_names, row)
            )
            params = dict(self.fixed)
            params.update(zip(self.axis_names, row))
            configs.append(SweepConfig(label=label, params=params))
        return configs


def _require(table: dict, key: str, kind: type, rule: str = "missing-field"):
    if key not in table:
        raise SweepSpecError(rule, f"spec is missing required field {key!r}")
    value = table[key]
    if not isinstance(value, kind) or isinstance(value, bool):
        raise SweepSpecError(
            "bad-spec", f"field {key!r} must be {kind.__name__}, "
                        f"got {type(value).__name__}")
    return value


_KNOWN_FIELDS = frozenset(
    {"name", "base", "description", "mode", "axes", "fixed", "objectives"}
)


def parse_spec(table: dict[str, Any]) -> SweepSpec:
    """Validate a raw spec table into a :class:`SweepSpec`.

    Raises :class:`SweepSpecError` with a named rule on the first
    violation; validation order is stable (identity, base, axes,
    expansion, fixed knobs, objectives) so error output is
    deterministic.
    """
    if not isinstance(table, dict):
        raise SweepSpecError("bad-spec", "spec must be a table/object")
    unknown = sorted(set(table) - _KNOWN_FIELDS)
    if unknown:
        raise SweepSpecError(
            "unknown-field",
            f"unknown spec field(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(_KNOWN_FIELDS))})")

    name = _require(table, "name", str)
    if not name or not all(c.isalnum() or c in "-_." for c in name):
        raise SweepSpecError(
            "bad-name",
            f"sweep name {name!r} must be non-empty and use only "
            f"alphanumerics, '-', '_', '.' (it names files and labels)")

    base_name = _require(table, "base", str)
    if base_name not in BASES:
        raise SweepSpecError(
            "unknown-base",
            f"base {base_name!r} is not sweepable "
            f"(known bases: {', '.join(sorted(BASES))})")
    base = BASES[base_name]

    mode = table.get("mode", "grid")
    if mode not in ("grid", "list"):
        raise SweepSpecError(
            "bad-mode", f"mode must be 'grid' or 'list', got {mode!r}")

    axes_table = _require(table, "axes", dict)
    if not axes_table:
        raise SweepSpecError("empty-grid", "spec declares no axes")
    axes: list[tuple[str, tuple[Any, ...]]] = []
    for axis_name, values in axes_table.items():
        if axis_name not in AXES:
            raise SweepSpecError(
                "unknown-axis",
                f"axis {axis_name!r} is not a known axis "
                f"(known: {', '.join(sorted(AXES))})")
        if axis_name not in base.axes:
            raise SweepSpecError(
                "unknown-axis",
                f"axis {axis_name!r} does not apply to base {base.name!r} "
                f"(its axes: {', '.join(base.axes)})")
        if not isinstance(values, (list, tuple)):
            raise SweepSpecError(
                "bad-value",
                f"axis {axis_name!r} must list its values, got "
                f"{type(values).__name__}")
        if not values:
            raise SweepSpecError(
                "empty-axis", f"axis {axis_name!r} has no values")
        for value in values:
            reason = validate_axis_value(axis_name, value)
            if reason is not None:
                raise SweepSpecError(
                    "bad-value", f"axis {axis_name!r}: {reason}")
        if len(set(map(repr, values))) != len(values):
            raise SweepSpecError(
                "duplicate-configuration",
                f"axis {axis_name!r} repeats a value; every grid point "
                f"must be unique")
        axes.append((axis_name, tuple(values)))

    if mode == "list":
        lengths = {name: len(values) for name, values in axes}
        if len(set(lengths.values())) > 1:
            detail = ", ".join(f"{n}={c}" for n, c in lengths.items())
            raise SweepSpecError(
                "length-mismatch",
                f"list mode zips axes row-by-row, so every axis needs "
                f"the same number of values (got {detail})")

    fixed = table.get("fixed", {})
    if not isinstance(fixed, dict):
        raise SweepSpecError("bad-spec", "fixed must be a table of knobs")
    for knob in fixed:
        if knob in axes_table:
            raise SweepSpecError(
                "unknown-fixed",
                f"{knob!r} is both a swept axis and a fixed knob")
        if knob not in base.fixed and knob not in base.axes:
            raise SweepSpecError(
                "unknown-fixed",
                f"base {base.name!r} accepts no knob {knob!r} "
                f"(fixed knobs: {', '.join(base.fixed)}; "
                f"axes: {', '.join(base.axes)})")
        if knob in base.axes:
            reason = validate_axis_value(knob, fixed[knob])
            if reason is not None:
                raise SweepSpecError("bad-value", f"fixed {knob!r}: {reason}")

    objectives = _parse_objectives(table.get("objectives"), base)

    spec = SweepSpec(
        name=name,
        base=base_name,
        axes=tuple(axes),
        mode=mode,
        fixed=dict(fixed),
        objectives=objectives,
        description=str(table.get("description", "")),
    )

    configs = spec.configs()
    if not configs:
        raise SweepSpecError("empty-grid", "expansion produced no "
                                           "configurations")
    seen: dict[str, str] = {}
    for config in configs:
        key = json.dumps(config.params, sort_keys=True, default=repr)
        if key in seen:
            raise SweepSpecError(
                "duplicate-configuration",
                f"configurations {seen[key]!r} and {config.label!r} are "
                f"identical; deduplicate the spec (identical points "
                f"across sweeps already collapse in the result cache)")
        seen[key] = config.label
    return spec


def _parse_objectives(raw: Any, base) -> tuple[Objective, ...]:
    if raw is None:
        return tuple(Objective(metric, goal) for metric, goal in base.objectives)
    if not isinstance(raw, list) or not raw:
        raise SweepSpecError(
            "bad-spec", "objectives must be a non-empty array of tables")
    objectives = []
    seen = set()
    for entry in raw:
        if not isinstance(entry, dict):
            raise SweepSpecError(
                "bad-spec", "each objective must be a table with "
                            "'metric' and optional 'goal'")
        metric = _require(entry, "metric", str)
        if metric not in base.metrics:
            raise SweepSpecError(
                "unknown-metric",
                f"objective metric {metric!r} is not produced by base "
                f"{base.name!r} (metrics: {', '.join(base.metrics)})")
        goal = entry.get("goal", "min")
        if goal not in ("min", "max"):
            raise SweepSpecError(
                "bad-goal", f"objective goal must be 'min' or 'max', "
                            f"got {goal!r}")
        if metric in seen:
            raise SweepSpecError(
                "duplicate-objective",
                f"metric {metric!r} appears in two objectives")
        seen.add(metric)
        objectives.append(Objective(metric, goal))
    return tuple(objectives)


def load_spec(path: Path | str) -> SweepSpec:
    """Parse and validate a spec file (TOML by default, JSON by suffix)."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise SweepSpecError("bad-spec", f"cannot read {path}: {exc}") from exc
    if path.suffix == ".json":
        try:
            table = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SweepSpecError(
                "bad-spec", f"{path} is not valid JSON: {exc}") from exc
    elif path.suffix == ".toml":
        import tomllib

        try:
            table = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise SweepSpecError(
                "bad-spec", f"{path} is not valid TOML: {exc}") from exc
    else:
        raise SweepSpecError(
            "bad-spec",
            f"{path.name}: spec files use {' or '.join(SPEC_SUFFIXES)}")
    spec = parse_spec(table)
    stem = path.name[: -len(path.suffix)]
    if stem != spec.name:
        raise SweepSpecError(
            "bad-name",
            f"spec file {path.name!r} must be named after the sweep "
            f"({spec.name}{path.suffix}) so reports and specs pair up")
    return spec


def discover_specs(sweeps_dir: Path | str = DEFAULT_SWEEPS_DIR) -> list[Path]:
    """Checked-in spec files (``*.toml``) under the sweeps directory."""
    root = Path(sweeps_dir)
    if not root.is_dir():
        return []
    return sorted(root.glob("*.toml"))


def resolve_spec(ref: str, sweeps_dir: Path | str = DEFAULT_SWEEPS_DIR) -> Path:
    """A spec path from a CLI reference: literal path, or checked-in name."""
    candidate = Path(ref)
    if candidate.suffix in SPEC_SUFFIXES or candidate.exists():
        return candidate
    named = Path(sweeps_dir) / f"{ref}.toml"
    if named.exists():
        return named
    known = ", ".join(p.stem for p in discover_specs(sweeps_dir)) or "none"
    raise SweepSpecError(
        "bad-spec",
        f"no sweep spec {ref!r}: not a file, and {named} does not exist "
        f"(checked-in sweeps: {known})")
