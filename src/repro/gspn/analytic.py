"""Analytic cross-checks for the GSPN Monte-Carlo evaluator.

The Figure 9 memory-bank net is, in isolation, an M/D/1 queue with
deterministic service ``access + precharge`` and Poisson arrivals at
rate ``ifetch_rate + data_rate``.  Queueing theory then gives closed
forms for utilization and mean waiting time (Pollaczek-Khinchine), which
the test suite compares against the simulator — an independent
verification of both the engine's timing semantics and its statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class MD1Prediction:
    """Closed-form M/D/1 results for the single-bank model."""

    arrival_rate: float
    service_cycles: float

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0 or self.service_cycles <= 0:
            raise ConfigError("rates and service time must be positive")
        if self.utilization >= 1.0:
            raise ConfigError("queue is unstable (utilization >= 1)")

    @property
    def utilization(self) -> float:
        """Fraction of time the bank is busy (rho = lambda x D)."""
        return self.arrival_rate * self.service_cycles

    @property
    def mean_wait_cycles(self) -> float:
        """Mean queueing delay before service starts (P-K formula).

        For deterministic service: W = rho * D / (2 * (1 - rho)).
        """
        rho = self.utilization
        return rho * self.service_cycles / (2.0 * (1.0 - rho))

    @property
    def mean_response_cycles(self) -> float:
        """Waiting plus service."""
        return self.mean_wait_cycles + self.service_cycles

    @property
    def throughput(self) -> float:
        """Served requests per cycle (equals arrivals below saturation)."""
        return self.arrival_rate


def membank_prediction(
    access: float = 6.0,
    precharge: float = 4.0,
    ifetch_rate: float = 0.02,
    data_rate: float = 0.02,
) -> MD1Prediction:
    """Analytic counterpart of :func:`repro.gspn.models.build_membank_net`."""
    return MD1Prediction(
        arrival_rate=ifetch_rate + data_rate,
        service_cycles=access + precharge,
    )


def bank_contention_estimate(
    miss_rate_per_instruction: float,
    num_banks: int,
    access: float = 6.0,
    precharge: float = 4.0,
) -> MD1Prediction:
    """Per-bank queueing for uniformly distributed misses (Section 5.6).

    With misses spread evenly, each bank sees ``miss_rate / banks``
    arrivals per cycle; the paper's observation that 2-16 banks perform
    alike follows from the resulting utilizations staying tiny.
    """
    if num_banks < 1:
        raise ConfigError("need at least one bank")
    return MD1Prediction(
        arrival_rate=miss_rate_per_instruction / num_banks,
        service_cycles=access + precharge,
    )
