"""Generalized Stochastic Petri Nets: engine, evaluator and paper models."""

from repro.gspn.analytic import MD1Prediction, bank_contention_estimate, membank_prediction
from repro.gspn.models import (
    ISSUE_TRANSITION,
    MemoryPathProbs,
    ProcessorNetParams,
    bank_ready_place,
    build_membank_net,
    build_processor_net,
)
from repro.gspn.net import PetriNet, Transition, TransitionKind
from repro.gspn.sim import GSPNSimulator, SimResult

__all__ = [
    "GSPNSimulator",
    "MD1Prediction",
    "bank_contention_estimate",
    "membank_prediction",
    "ISSUE_TRANSITION",
    "MemoryPathProbs",
    "PetriNet",
    "ProcessorNetParams",
    "SimResult",
    "Transition",
    "TransitionKind",
    "bank_ready_place",
    "build_membank_net",
    "build_processor_net",
]
