"""Generalized Stochastic Petri Net structure.

The paper evaluates its processor and memory models with GSPNs in the
style of Marsan & Conti [23]: places hold tokens, *immediate* transitions
fire in zero time with probabilistic conflict resolution by weight,
*deterministic* transitions fire a fixed delay after becoming enabled,
and *exponential* transitions fire after a memoryless random delay.
Inhibitor arcs disable a transition while a place holds too many tokens.

This module defines the net structure; :mod:`repro.gspn.sim` provides the
Monte-Carlo evaluator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

from repro.common.errors import ConfigError


class TransitionKind(Enum):
    IMMEDIATE = "immediate"
    DETERMINISTIC = "deterministic"
    EXPONENTIAL = "exponential"


@dataclass(frozen=True)
class Transition:
    """One transition with its arcs.

    ``param`` is the weight (immediate), delay (deterministic) or rate
    (exponential).  ``inputs``/``outputs`` map place names to arc
    multiplicities; ``inhibitors`` maps place names to thresholds — the
    transition is disabled while ``marking[place] >= threshold``.
    """

    name: str
    kind: TransitionKind
    param: float
    inputs: dict[str, int] = field(default_factory=dict)
    outputs: dict[str, int] = field(default_factory=dict)
    inhibitors: dict[str, int] = field(default_factory=dict)
    priority: int = 0  # among immediates: higher fires first

    def __post_init__(self) -> None:
        # NaN fails every comparison, so `param <= 0` alone would let a
        # NaN weight/rate/delay through and poison conflict resolution.
        if not math.isfinite(self.param) or (
            self.param <= 0
            and not (
                self.kind is TransitionKind.DETERMINISTIC and self.param == 0
            )
        ):
            raise ConfigError(
                f"transition {self.name}: param must be positive and finite"
            )
        for mult in list(self.inputs.values()) + list(self.outputs.values()):
            if mult < 1:
                raise ConfigError(f"transition {self.name}: arc multiplicity >= 1")
        for threshold in self.inhibitors.values():
            if threshold < 1:
                raise ConfigError(f"transition {self.name}: inhibitor threshold >= 1")


class PetriNet:
    """A GSPN under construction.

    Places are created with :meth:`place`; transitions with
    :meth:`immediate`, :meth:`deterministic` and :meth:`exponential`.
    The builder validates that every arc references a declared place.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.initial_marking: dict[str, int] = {}
        self.transitions: dict[str, Transition] = {}

    # -- construction -----------------------------------------------------

    def place(self, name: str, tokens: int = 0) -> str:
        if name in self.initial_marking:
            raise ConfigError(f"duplicate place {name}")
        if tokens < 0:
            raise ConfigError(f"place {name}: negative initial marking")
        self.initial_marking[name] = tokens
        return name

    def _add(self, transition: Transition) -> None:
        if transition.name in self.transitions:
            raise ConfigError(f"duplicate transition {transition.name}")
        for place in (
            list(transition.inputs)
            + list(transition.outputs)
            + list(transition.inhibitors)
        ):
            if place not in self.initial_marking:
                raise ConfigError(
                    f"transition {transition.name} references unknown place {place}"
                )
        self.transitions[transition.name] = transition

    def immediate(
        self,
        name: str,
        inputs: dict[str, int],
        outputs: dict[str, int] | None = None,
        weight: float = 1.0,
        priority: int = 0,
        inhibitors: dict[str, int] | None = None,
    ) -> str:
        self._add(
            Transition(
                name,
                TransitionKind.IMMEDIATE,
                weight,
                dict(inputs),
                dict(outputs or {}),
                dict(inhibitors or {}),
                priority,
            )
        )
        return name

    def deterministic(
        self,
        name: str,
        inputs: dict[str, int],
        outputs: dict[str, int] | None = None,
        delay: float = 1.0,
        inhibitors: dict[str, int] | None = None,
    ) -> str:
        self._add(
            Transition(
                name,
                TransitionKind.DETERMINISTIC,
                delay,
                dict(inputs),
                dict(outputs or {}),
                dict(inhibitors or {}),
            )
        )
        return name

    def exponential(
        self,
        name: str,
        inputs: dict[str, int],
        outputs: dict[str, int] | None = None,
        rate: float = 1.0,
        inhibitors: dict[str, int] | None = None,
    ) -> str:
        self._add(
            Transition(
                name,
                TransitionKind.EXPONENTIAL,
                rate,
                dict(inputs),
                dict(outputs or {}),
                dict(inhibitors or {}),
            )
        )
        return name

    # -- introspection ----------------------------------------------------

    @property
    def places(self) -> list[str]:
        return list(self.initial_marking)

    def validate(self) -> None:
        """Structural sanity checks beyond per-arc validation."""
        if not self.transitions:
            raise ConfigError(f"net {self.name} has no transitions")
        for transition in self.transitions.values():
            if not transition.inputs:
                raise ConfigError(
                    f"transition {transition.name} has no input arcs; "
                    "source transitions are not supported"
                )

    def token_count(self) -> int:
        return sum(self.initial_marking.values())

    def is_conservative(self) -> bool:
        """True when every transition preserves the total token count."""
        return all(
            sum(t.inputs.values()) == sum(t.outputs.values())
            for t in self.transitions.values()
        )
