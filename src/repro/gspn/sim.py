"""Monte-Carlo evaluation of GSPNs.

The evaluator plays the token game by discrete-event simulation:

1. Enabled *immediate* transitions fire first, in zero time; conflicts
   are resolved by priority, then by weighted random choice.
2. Enabled *timed* transitions hold one timer each (single-server
   semantics).  Deterministic transitions fire ``delay`` after enabling;
   exponential transitions sample a memoryless delay.  A transition that
   loses its enabling loses its timer and resamples when re-enabled
   (race-with-restart policy, the standard choice for GSPN tools).
3. The clock jumps to the earliest timer; that transition fires; repeat.

Enabling checks are incremental: only transitions adjacent to places whose
marking changed are re-examined, which keeps large bank-array models fast.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro import obs
from repro.common import tally
from repro.common.errors import SimulationError
from repro.gspn.net import PetriNet, TransitionKind

_MAX_IMMEDIATE_CHAIN = 1_000_000


@dataclass
class SimResult:
    """Outcome of one simulation run.

    ``time``, ``firings`` and ``events`` are *lifetime* quantities (the
    simulator's clock and counts since construction/:meth:`reset`);
    ``mean_marking`` and ``busy_fraction`` are averaged over the
    **window of the** :meth:`~GSPNSimulator.run` **call that returned
    this result**, so a warmup run followed by a measurement run
    reports steady-state means uncontaminated by the transient.

    ``busy_fraction`` maps each tracked place to the fraction of window
    time its resource was committed: the place was empty (its token out
    working elsewhere, e.g. a bank in precharge) or a timed transition
    consuming from it held a running timer (an access in service).  For
    a server place such as the membank net's ``ready`` this is exactly
    the queueing-theoretic utilization; for pure buffer places it is
    not meaningful.
    """

    time: float
    firings: dict[str, int]
    mean_marking: dict[str, float]
    events: int
    deadlocked: bool
    busy_fraction: dict[str, float] = field(default_factory=dict)

    def throughput(self, transition: str) -> float:
        """Firings of ``transition`` per unit time."""
        if self.time <= 0:
            return 0.0
        return self.firings.get(transition, 0) / self.time


class GSPNSimulator:
    """Single-run Monte-Carlo simulator for a :class:`PetriNet`.

    ``track_places`` selects places whose time-averaged marking should be
    reported (tracking every place costs time on big nets).
    """

    def __init__(
        self,
        net: PetriNet,
        rng: np.random.Generator,
        track_places: tuple[str, ...] = (),
    ) -> None:
        net.validate()
        self.net = net
        self.rng = rng
        self._place_ids = {name: i for i, name in enumerate(net.initial_marking)}
        self._place_names = list(net.initial_marking)
        self._tran_names = list(net.transitions)
        self._tran_ids = {name: i for i, name in enumerate(self._tran_names)}
        self._kind: list[TransitionKind] = []
        self._param: list[float] = []
        self._priority: list[int] = []
        self._inputs: list[list[tuple[int, int]]] = []
        self._outputs: list[list[tuple[int, int]]] = []
        self._inhibitors: list[list[tuple[int, int]]] = []
        self._affected: list[list[int]] = [[] for _ in self._place_names]
        for tid, name in enumerate(self._tran_names):
            tran = net.transitions[name]
            self._kind.append(tran.kind)
            self._param.append(tran.param)
            self._priority.append(tran.priority)
            self._inputs.append(
                [(self._place_ids[p], m) for p, m in tran.inputs.items()]
            )
            self._outputs.append(
                [(self._place_ids[p], m) for p, m in tran.outputs.items()]
            )
            self._inhibitors.append(
                [(self._place_ids[p], t) for p, t in tran.inhibitors.items()]
            )
            for place, _ in list(tran.inputs.items()) + list(tran.inhibitors.items()):
                self._affected[self._place_ids[place]].append(tid)
        self._track = [self._place_ids[p] for p in track_places]
        self._track_names = list(track_places)
        # Timed transitions consuming from each tracked place: a running
        # timer on one of these marks the place's resource as committed
        # (in service), which feeds the busy_fraction statistic.
        self._track_consumers = [
            [
                tid
                for tid in range(len(self._tran_names))
                if self._kind[tid] is not TransitionKind.IMMEDIATE
                and any(p == place for p, _ in self._inputs[tid])
            ]
            for place in self._track
        ]
        self.reset()

    # -- state ------------------------------------------------------------

    def reset(self) -> None:
        self.marking = [
            self.net.initial_marking[name] for name in self._place_names
        ]
        self.clock = 0.0
        self.firing_counts = [0] * len(self._tran_names)
        self.events = 0
        self._timers: dict[int, tuple[float, int]] = {}  # tid -> (time, epoch)
        self._epoch = [0] * len(self._tran_names)
        self._heap: list[tuple[float, int, int]] = []  # (time, tid, epoch)
        self._enabled_imm: set[int] = set()
        self._marking_area = [0.0] * len(self._track)
        self._busy_area = [0.0] * len(self._track)
        for tid in range(len(self._tran_names)):
            self._refresh(tid)

    def _is_enabled(self, tid: int) -> bool:
        marking = self.marking
        for place, mult in self._inputs[tid]:
            if marking[place] < mult:
                return False
        for place, threshold in self._inhibitors[tid]:
            if marking[place] >= threshold:
                return False
        return True

    def _refresh(self, tid: int) -> None:
        enabled = self._is_enabled(tid)
        if self._kind[tid] is TransitionKind.IMMEDIATE:
            if enabled:
                self._enabled_imm.add(tid)
            else:
                self._enabled_imm.discard(tid)
            return
        if enabled:
            if tid not in self._timers:
                if self._kind[tid] is TransitionKind.DETERMINISTIC:
                    delay = self._param[tid]
                else:
                    delay = self.rng.exponential(1.0 / self._param[tid])
                self._epoch[tid] += 1
                entry = (self.clock + delay, self._epoch[tid])
                self._timers[tid] = entry
                heapq.heappush(self._heap, (entry[0], tid, entry[1]))
        elif tid in self._timers:
            del self._timers[tid]
            self._epoch[tid] += 1  # invalidates the heap entry lazily

    def _fire(self, tid: int) -> None:
        marking = self.marking
        touched: list[int] = []
        for place, mult in self._inputs[tid]:
            marking[place] -= mult
            if marking[place] < 0:
                raise SimulationError(
                    f"negative marking at {self._place_names[place]}"
                )
            touched.append(place)
        for place, mult in self._outputs[tid]:
            marking[place] += mult
            touched.append(place)
        if tid in self._timers:
            del self._timers[tid]
            self._epoch[tid] += 1
        self.firing_counts[tid] += 1
        self.events += 1
        seen: set[int] = set()
        for place in touched:
            for other in self._affected[place]:
                if other not in seen:
                    seen.add(other)
                    self._refresh(other)
        if tid not in seen:
            self._refresh(tid)

    def _settle_immediates(self) -> None:
        chain = 0
        while self._enabled_imm:
            chain += 1
            if chain > _MAX_IMMEDIATE_CHAIN:
                raise SimulationError("immediate-transition livelock")
            if len(self._enabled_imm) == 1:
                (tid,) = self._enabled_imm
            else:
                best = max(self._priority[t] for t in self._enabled_imm)
                ready = [t for t in self._enabled_imm if self._priority[t] == best]
                if len(ready) == 1:
                    tid = ready[0]
                else:
                    weights = np.array([self._param[t] for t in ready])
                    tid = ready[self.rng.choice(len(ready), p=weights / weights.sum())]
            self._fire(tid)

    def _advance(self) -> bool:
        """Jump to the next timed firing; False when the net is dead."""
        while self._heap:
            time, tid, epoch = heapq.heappop(self._heap)
            current = self._timers.get(tid)
            if current is None or current[1] != epoch:
                continue  # stale entry
            dt = time - self.clock
            for slot, place in enumerate(self._track):
                self._marking_area[slot] += self.marking[place] * dt
                if self.marking[place] == 0 or any(
                    t in self._timers for t in self._track_consumers[slot]
                ):
                    self._busy_area[slot] += dt
            self.clock = time
            self._fire(tid)
            return True
        return False

    # -- driving ----------------------------------------------------------

    def run(
        self,
        max_time: float = math.inf,
        stop_transition: str | None = None,
        stop_count: int = 0,
        max_events: int = 50_000_000,
    ) -> SimResult:
        """Run until ``max_time``, a firing-count target, or deadlock.

        Repeated calls continue from the current state; each call's
        result reports ``mean_marking``/``busy_fraction`` averaged over
        that call's window only (the warmup-then-measure idiom), while
        ``time``/``firings``/``events`` stay lifetime totals.
        """
        if stop_transition is not None:
            if stop_transition not in self._tran_ids:
                raise SimulationError(f"unknown transition {stop_transition}")
            if stop_count < 1:
                raise SimulationError(
                    f"stop_transition={stop_transition!r} requires "
                    f"stop_count >= 1, got {stop_count}: a firing-count "
                    f"target of {stop_count} is already met before the "
                    f"first event, so the run would return immediately"
                )
        stop_tid = self._tran_ids.get(stop_transition) if stop_transition else None
        events_before = self.events
        clock_before = self.clock
        marking_area_before = list(self._marking_area)
        busy_area_before = list(self._busy_area)
        deadlocked = False
        with obs.span(f"gspn/run/{self.net.name}"):
            self._settle_immediates()
            while self.clock < max_time and self.events < max_events:
                if stop_tid is not None and self.firing_counts[stop_tid] >= stop_count:
                    break
                if not self._advance():
                    deadlocked = True
                    break
                self._settle_immediates()
            tally.add("gspn_firings", self.events - events_before)
        window = self.clock - clock_before
        mean_marking = {
            name: (
                (self._marking_area[slot] - marking_area_before[slot]) / window
                if window > 0
                else 0.0
            )
            for slot, name in enumerate(self._track_names)
        }
        busy_fraction = {
            name: (
                (self._busy_area[slot] - busy_area_before[slot]) / window
                if window > 0
                else 0.0
            )
            for slot, name in enumerate(self._track_names)
        }
        return SimResult(
            time=self.clock,
            firings={
                name: self.firing_counts[tid]
                for tid, name in enumerate(self._tran_names)
                if self.firing_counts[tid]
            },
            mean_marking=mean_marking,
            events=self.events,
            deadlocked=deadlocked,
            busy_fraction=busy_fraction,
        )


# ---------------------------------------------------------------------------
# Monte-Carlo replication fan-out
# ---------------------------------------------------------------------------


def _replicate(job: tuple) -> SimResult:
    """Pool worker: build one simulator and run it (module-level so it
    pickles under the supervised executor)."""
    factory, seed, run_kwargs = job
    return factory(seed).run(**run_kwargs)


def run_replications(
    factory: "Callable[[int], GSPNSimulator]",
    seeds: "Sequence[int]",
    *,
    jobs: int = 1,
    policy=None,
    faults=None,
    **run_kwargs,
) -> list[SimResult]:
    """Evaluate independent Monte-Carlo replications, optionally in
    parallel.

    ``factory(seed)`` must be a picklable (module-level) callable that
    builds a fresh :class:`GSPNSimulator` — net plus a seed-derived RNG —
    for one replication.  Results come back in ``seeds`` order, and the
    replications are independent by construction, so ``jobs=N`` is
    bit-identical to ``jobs=1``.

    Replications run under the supervised executor
    (:func:`repro.runner.resilience.supervised_map`): a crashed or hung
    worker is retried per ``policy`` (default: one retry, no timeout)
    without losing the other replications, and a replication that
    exhausts its retries raises :class:`SimulationError` **naming the
    offending seed** instead of an opaque pool traceback.  ``faults``
    (a :class:`repro.faults.FaultPlan`) can inject deterministic
    failures into labels of the form ``replication/seed=<seed>``.
    """
    from repro.runner.resilience import SupervisionPolicy, supervised_map

    jobs_list = [(factory, seed, run_kwargs) for seed in seeds]
    outcomes = supervised_map(
        _replicate,
        jobs_list,
        labels=[f"replication/seed={seed}" for seed in seeds],
        jobs=jobs,
        policy=policy or SupervisionPolicy(),
        faults=faults,
    )
    results: list[SimResult] = []
    for seed, outcome in zip(seeds, outcomes):
        if outcome.failure is not None:
            failure = outcome.failure
            detail = f"\n{failure.traceback}" if failure.traceback else ""
            raise SimulationError(
                f"replication seed={seed} failed after {failure.attempts} "
                f"attempt(s) ({failure.kind}): {failure.error_type}: "
                f"{failure.message}{detail}"
            )
        results.append(outcome.result)
    return results
