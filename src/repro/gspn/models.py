"""The paper's GSPN models: the memory bank (Figure 9) and the
processor/cache pipeline (Figure 10).

Both nets are built programmatically on :class:`repro.gspn.net.PetriNet`.
The processor model covers the two configurations of Section 5.5 with one
builder:

- the **integrated** system: no second-level cache, 16 on-die DRAM banks
  at 6-cycle access, scoreboarding enabled (T23 rate 1);
- the **conventional reference** system: the grey components of Figure 10
  — a unified second-level cache behind split L1s with a shared port
  (place P6), a dual-banked main memory, configurable scoreboarding.

Cache hit probabilities are *dialed in* from the trace-driven simulations
exactly as the paper describes: the immediate transitions that route a
fetch/load/store to the cache, the L2 or memory carry the measured
probabilities as weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.gspn.net import PetriNet

ISSUE_TRANSITION = "T_issue"
"""Firing this transition retires one instruction (the paper's T1)."""


@dataclass(frozen=True)
class MemoryPathProbs:
    """Where an access is served: cache hit, L2 hit, or main memory."""

    hit: float
    l2: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.hit <= 1.0 or not 0.0 <= self.l2 <= 1.0:
            raise ConfigError("probabilities must be in [0, 1]")
        if self.hit + self.l2 > 1.0 + 1e-12:
            raise ConfigError("hit + l2 probability exceeds 1")

    @property
    def mem(self) -> float:
        return max(0.0, 1.0 - self.hit - self.l2)


@dataclass(frozen=True)
class ProcessorNetParams:
    """Everything the Figure 10 net needs.

    ``has_l2`` selects the conventional reference configuration (the grey
    components); ``scoreboard_rate=None`` models a pipeline without
    scoreboarding, which stalls the instant a load misses (the paper sets
    T23's rate "to infinity").
    """

    p_load: float = 0.25
    p_store: float = 0.10
    ifetch: MemoryPathProbs = field(default_factory=lambda: MemoryPathProbs(0.99))
    load: MemoryPathProbs = field(default_factory=lambda: MemoryPathProbs(0.95))
    store: MemoryPathProbs = field(default_factory=lambda: MemoryPathProbs(0.95))
    hit_latency: float = 1.0
    l2_latency: float = 6.0
    mem_access: float = 6.0
    precharge: float = 4.0
    num_banks: int = 16
    has_l2: bool = False
    scoreboard_rate: float | None = 1.0

    def __post_init__(self) -> None:
        if self.p_load < 0 or self.p_store < 0 or self.p_load + self.p_store > 1:
            raise ConfigError("instruction mix probabilities are inconsistent")
        if not self.has_l2 and (self.ifetch.l2 or self.load.l2 or self.store.l2):
            raise ConfigError("L2 hit probability given but has_l2 is False")
        if self.num_banks < 1:
            raise ConfigError("need at least one memory bank")
        if min(self.hit_latency, self.l2_latency, self.mem_access) <= 0:
            raise ConfigError("latencies must be positive")
        if self.scoreboard_rate is not None and self.scoreboard_rate <= 0:
            raise ConfigError("scoreboard rate must be positive or None")


def bank_ready_place(bank: int) -> str:
    return f"bank{bank}_ready"


def _add_bank_array(
    net: PetriNet,
    params: ProcessorNetParams,
    request_kinds: list[tuple[str, str]],
) -> None:
    """The Figure 9 subnet, replicated per bank.

    ``request_kinds`` pairs a routing place (requests of one kind awaiting
    a bank) with the place that receives the completed data.  Each bank
    owns a ready token; an access holds it for ``mem_access`` cycles and a
    precharge transition returns it ``precharge`` cycles later, exactly
    the T1/T3 + T2 structure of Figure 9.
    """
    for bank in range(params.num_banks):
        ready = net.place(bank_ready_place(bank), tokens=1)
        pre = net.place(f"bank{bank}_precharge")
        net.deterministic(
            f"T_bank{bank}_precharge", {pre: 1}, {ready: 1}, delay=params.precharge
        )
        for kind, done_place in request_kinds:
            req = net.place(f"bank{bank}_{kind}_req")
            net.immediate(
                f"T_route_{kind}_bank{bank}",
                {f"{kind}_memreq": 1},
                {req: 1},
                weight=1.0,
            )
            net.deterministic(
                f"T_bank{bank}_{kind}_access",
                {req: 1, ready: 1},
                {done_place: 1, pre: 1},
                delay=params.mem_access,
            )


def build_processor_net(params: ProcessorNetParams) -> PetriNet:
    """The Figure 10 processor/cache GSPN."""
    net = PetriNet("processor")

    # Pipeline core.
    can_issue = net.place("can_issue", tokens=1)
    inst = net.place("inst", tokens=1)
    fetch = net.place("fetch")
    route = net.place("route")
    is_load = net.place("is_load")
    is_store = net.place("is_store")
    lsu = net.place("lsu", tokens=1)

    # T1: one instruction issues per cycle; a memory op waiting for the
    # load/store unit blocks the next issue (the P10 token of the paper).
    net.deterministic(
        ISSUE_TRANSITION,
        {inst: 1, can_issue: 1},
        {can_issue: 1, route: 1, fetch: 1},
        delay=1.0,
        inhibitors={is_load: 1, is_store: 1},
    )

    # Instruction classification (T7/T8/T9 rates = instruction mix).
    p_other = 1.0 - params.p_load - params.p_store
    if p_other > 0:
        net.immediate("T_class_other", {route: 1}, {}, weight=p_other)
    if params.p_load > 0:
        net.immediate("T_class_load", {route: 1}, {is_load: 1}, weight=params.p_load)
    if params.p_store > 0:
        net.immediate(
            "T_class_store", {route: 1}, {is_store: 1}, weight=params.p_store
        )

    # Completion and memory-request places shared with the bank array.
    i_memreq = net.place("i_memreq")
    l_memreq = net.place("l_memreq")
    s_memreq = net.place("s_memreq")
    l_done = net.place("l_done")
    s_done = net.place("s_done")
    load_out = net.place("load_out")
    stalled = net.place("stalled")

    # Optional second-level cache port (the paper's P6 mutex between data
    # and instruction accesses at the shared unified L2).
    if params.has_l2:
        net.place("l2_port", tokens=1)

    # Instruction fetch path.
    net.immediate("T_ifetch_hit", {fetch: 1}, {inst: 1}, weight=max(params.ifetch.hit, 1e-12))
    if params.has_l2:
        if params.ifetch.l2 > 0:
            queue = net.place("i_l2q")
            net.immediate("T_ifetch_l2", {fetch: 1}, {queue: 1}, weight=params.ifetch.l2)
            net.deterministic(
                "T_i_l2_access",
                {queue: 1, "l2_port": 1},
                {inst: 1, "l2_port": 1},
                delay=params.l2_latency,
            )
        if params.ifetch.mem > 0:
            lookup = net.place("i_l2_lookup")
            net.immediate("T_ifetch_mem", {fetch: 1}, {lookup: 1}, weight=params.ifetch.mem)
            net.deterministic(
                "T_i_l2_miss",
                {lookup: 1, "l2_port": 1},
                {i_memreq: 1, "l2_port": 1},
                delay=params.l2_latency,
            )
    elif params.ifetch.mem > 0:
        net.immediate("T_ifetch_mem", {fetch: 1}, {i_memreq: 1}, weight=params.ifetch.mem)
    i_filled = net.place("i_filled")
    net.immediate("T_ifill", {i_filled: 1}, {inst: 1}, weight=1.0)

    # Load path.  Hits complete within the pipeline and never raise the
    # "incomplete load" flag; L2/memory loads mark load_out so the
    # scoreboard transition T23 can stall the pipeline.
    if params.p_load > 0:
        hit_busy = net.place("load_hit_busy")
        net.immediate(
            "T_load_hit",
            {is_load: 1, lsu: 1},
            {hit_busy: 1},
            weight=max(params.load.hit, 1e-12),
        )
        hit_done = net.place("load_hit_done")
        net.deterministic(
            "T_load_hit_access", {hit_busy: 1}, {hit_done: 1}, delay=params.hit_latency
        )
        net.immediate("T_load_hit_complete", {hit_done: 1}, {lsu: 1}, priority=1)
        if params.has_l2 and params.load.l2 > 0:
            queue = net.place("l_l2q")
            net.immediate(
                "T_load_l2", {is_load: 1, lsu: 1}, {queue: 1, load_out: 1},
                weight=params.load.l2,
            )
            net.deterministic(
                "T_l_l2_access",
                {queue: 1, "l2_port": 1},
                {l_done: 1, "l2_port": 1},
                delay=params.l2_latency,
            )
        if params.load.mem > 0:
            if params.has_l2:
                lookup = net.place("l_l2_lookup")
                net.immediate(
                    "T_load_mem", {is_load: 1, lsu: 1}, {lookup: 1, load_out: 1},
                    weight=params.load.mem,
                )
                net.deterministic(
                    "T_l_l2_miss",
                    {lookup: 1, "l2_port": 1},
                    {l_memreq: 1, "l2_port": 1},
                    delay=params.l2_latency,
                )
            else:
                net.immediate(
                    "T_load_mem", {is_load: 1, lsu: 1}, {l_memreq: 1, load_out: 1},
                    weight=params.load.mem,
                )
        # Completion: prefer waking a stalled pipeline (higher priority).
        net.immediate(
            "T_load_complete_stalled",
            {l_done: 1, load_out: 1, stalled: 1},
            {lsu: 1, can_issue: 1},
            priority=2,
        )
        net.immediate(
            "T_load_complete", {l_done: 1, load_out: 1}, {lsu: 1}, priority=1
        )
        # T23: the scoreboard allows on average 1/rate instructions below
        # an incomplete load before the pipeline freezes.
        if params.scoreboard_rate is None:
            net.immediate(
                "T23_stall", {load_out: 1, can_issue: 1},
                {load_out: 1, stalled: 1},
                priority=3,
            )
        else:
            net.exponential(
                "T23_stall",
                {load_out: 1, can_issue: 1},
                {load_out: 1, stalled: 1},
                rate=params.scoreboard_rate,
            )

    # Store path: the store buffer hides completion from the pipeline;
    # only the load/store unit is held (Figure 10's P9/P10 discussion).
    if params.p_store > 0:
        hit_busy = net.place("store_hit_busy")
        net.immediate(
            "T_store_hit",
            {is_store: 1, lsu: 1},
            {hit_busy: 1},
            weight=max(params.store.hit, 1e-12),
        )
        net.deterministic(
            "T_store_hit_access", {hit_busy: 1}, {s_done: 1}, delay=params.hit_latency
        )
        if params.has_l2 and params.store.l2 > 0:
            queue = net.place("s_l2q")
            net.immediate(
                "T_store_l2", {is_store: 1, lsu: 1}, {queue: 1}, weight=params.store.l2
            )
            net.deterministic(
                "T_s_l2_access",
                {queue: 1, "l2_port": 1},
                {s_done: 1, "l2_port": 1},
                delay=params.l2_latency,
            )
        if params.store.mem > 0:
            if params.has_l2:
                lookup = net.place("s_l2_lookup")
                net.immediate(
                    "T_store_mem", {is_store: 1, lsu: 1}, {lookup: 1},
                    weight=params.store.mem,
                )
                net.deterministic(
                    "T_s_l2_miss",
                    {lookup: 1, "l2_port": 1},
                    {s_memreq: 1, "l2_port": 1},
                    delay=params.l2_latency,
                )
            else:
                net.immediate(
                    "T_store_mem", {is_store: 1, lsu: 1}, {s_memreq: 1},
                    weight=params.store.mem,
                )
        net.immediate("T_store_complete", {s_done: 1}, {lsu: 1}, priority=1)

    # The Figure 9 bank array serves all three request kinds.
    _add_bank_array(
        net,
        params,
        [("i", i_filled), ("l", l_done), ("s", s_done)],
    )
    return net


def build_membank_net(
    access: float = 6.0,
    precharge: float = 4.0,
    ifetch_rate: float = 0.05,
    data_rate: float = 0.05,
) -> PetriNet:
    """The standalone Figure 9 net with Poisson request sources.

    Instruction and data misses arrive at exponential rates (per cycle);
    the bank serves one at a time (T1/T3) and precharges (T2).  Used to
    study single-bank utilization and queueing in isolation.
    """
    net = PetriNet("membank")
    src = net.place("src", tokens=1)
    p1 = net.place("P1_ifetch")  # waiting instruction misses
    p2 = net.place("P2_data")  # waiting data misses
    ready = net.place("ready", tokens=1)
    pre = net.place("precharge")
    served_i = net.place("served_i")
    served_d = net.place("served_d")
    net.exponential("T_gen_i", {src: 1}, {src: 1, p1: 1}, rate=ifetch_rate)
    net.exponential("T_gen_d", {src: 1}, {src: 1, p2: 1}, rate=data_rate)
    net.deterministic("T1_iaccess", {p1: 1, ready: 1}, {served_i: 1, pre: 1}, delay=access)
    net.deterministic("T3_daccess", {p2: 1, ready: 1}, {served_d: 1, pre: 1}, delay=access)
    net.deterministic("T2_precharge", {pre: 1}, {ready: 1}, delay=precharge)
    net.immediate("T_sink_i", {served_i: 1}, {}, weight=1.0)
    net.immediate("T_sink_d", {served_d: 1}, {}, weight=1.0)
    return net


def registered_nets() -> dict[str, PetriNet]:
    """Every net the evaluation rests on, for static verification.

    One representative instance per configuration family: the Figure 9
    membank net, the Figure 10 processor net in its integrated
    (Figure 12, Tables 3-4) and conventional-reference (Figure 11)
    configurations, the no-scoreboard ablation, and the Section 5.6
    bank-sweep variants.  ``repro.check``'s structural pass analyzes each
    of these; probabilities are representative (the measured per-benchmark
    weights only rescale immediate transitions, never the structure).
    """
    conventional = ProcessorNetParams(
        ifetch=MemoryPathProbs(0.95, 0.04),
        load=MemoryPathProbs(0.90, 0.07),
        store=MemoryPathProbs(0.90, 0.07),
        mem_access=24.0,
        num_banks=2,
        has_l2=True,
    )
    nets = {
        "fig9.membank": build_membank_net(),
        "fig10.integrated": build_processor_net(ProcessorNetParams()),
        "fig10.conventional": build_processor_net(conventional),
        "fig10.no-scoreboard": build_processor_net(
            ProcessorNetParams(scoreboard_rate=None)
        ),
    }
    for banks in (2, 4, 8):  # 16 banks == the integrated default above
        nets[f"sec5.6.banks{banks}"] = build_processor_net(
            ProcessorNetParams(num_banks=banks)
        )
    return nets
