"""Serial-link interconnect fabric model."""

from repro.interconnect.fabric import Fabric, FabricStats, MessageType

__all__ = ["Fabric", "FabricStats", "MessageType"]
