"""The serial-link interconnect fabric (Section 4.2, Figure 4).

Four 2.5 Gbit/s serial links per node give 1.6 GB/s of peak I/O
bandwidth.  The MP evaluation uses the lumped end-to-end latencies of
Table 6, so this model's job is accounting: per-message-type counts and
byte volumes, link utilization against the serial-link budget, and the
point-to-point latency helper used by the system model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.common.params import COHERENCE_UNIT_BYTES, IntegratedDeviceParams
from repro.common.units import MHZ, time_for_cycles


class MessageType(Enum):
    READ_REQUEST = "read_request"
    READ_REPLY = "read_reply"  # carries a 32 B block
    WRITE_REQUEST = "write_request"
    INVALIDATE = "invalidate"
    ACK = "ack"
    WRITEBACK = "writeback"  # carries a 32 B block

    @property
    def payload_bytes(self) -> int:
        if self in (MessageType.READ_REPLY, MessageType.WRITEBACK):
            return COHERENCE_UNIT_BYTES
        return 0


HEADER_BYTES = 8  # address + command + routing


@dataclass
class FabricStats:
    messages: dict[MessageType, int] = field(default_factory=dict)
    bytes_sent: int = 0

    def record(self, kind: MessageType, count: int = 1) -> None:
        self.messages[kind] = self.messages.get(kind, 0) + count
        self.bytes_sent += count * (HEADER_BYTES + kind.payload_bytes)


class Fabric:
    """Lumped-latency interconnect with bandwidth accounting."""

    def __init__(self, params: IntegratedDeviceParams | None = None) -> None:
        self.params = params or IntegratedDeviceParams()
        self.stats = FabricStats()

    def send(self, kind: MessageType, count: int = 1) -> None:
        self.stats.record(kind, count)

    def bandwidth_gbytes(self) -> float:
        """Peak I/O bandwidth of one node's links."""
        return self.params.io_bandwidth_gbytes

    def utilization(self, elapsed_cycles: int, num_nodes: int) -> float:
        """Mean fraction of aggregate link bandwidth actually used."""
        if elapsed_cycles <= 0 or num_nodes <= 0:
            return 0.0
        clock_hz = self.params.pipeline.clock_mhz * MHZ
        elapsed_seconds = time_for_cycles(elapsed_cycles, clock_hz)
        capacity = self.bandwidth_gbytes() * 1e9 * elapsed_seconds * num_nodes
        return min(1.0, self.stats.bytes_sent / capacity) if capacity else 0.0

    def reset(self) -> None:
        self.stats = FabricStats()
