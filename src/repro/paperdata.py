"""Reference numbers transcribed from the paper's tables.

Used for (a) deriving the per-benchmark Spec-ratio conversion constants
and (b) the paper-vs-measured comparisons in EXPERIMENTS.md.  Nothing in
the simulators reads these values.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Table3Row:
    """Spec'95 estimates without the victim cache (paper Table 3)."""

    cpu_cpi: float
    memory_cpi: float
    spec_ratio: float


@dataclass(frozen=True)
class Table4Row:
    """With victim cache, plus the Alpha 21164 reference (paper Table 4)."""

    total_cpi: float
    spec_ratio: float
    alpha_ratio: float


PAPER_TABLE3: dict[str, Table3Row] = {
    "099.go": Table3Row(1.01, 0.48, 6.0),
    "124.m88ksim": Table3Row(1.01, 0.12, 4.3),
    "126.gcc": Table3Row(1.01, 0.14, 7.6),
    "129.compress": Table3Row(1.03, 0.17, 6.4),
    "130.li": Table3Row(1.02, 0.06, 6.7),
    "132.ijpeg": Table3Row(1.00, 0.01, 5.8),
    "134.perl": Table3Row(1.04, 0.21, 6.0),
    "147.vortex": Table3Row(1.02, 0.27, 6.4),
    "101.tomcatv": Table3Row(1.15, 0.50, 8.2),
    "102.swim": Table3Row(1.56, 0.97, 12.7),
    "103.su2cor": Table3Row(1.41, 0.44, 3.2),
    "104.hydro2d": Table3Row(1.74, 0.04, 4.2),
    "107.mgrid": Table3Row(1.20, 0.01, 3.2),
    "110.applu": Table3Row(1.53, 0.01, 3.9),
    "125.turb3d": Table3Row(1.16, 0.05, 4.3),
    "141.apsi": Table3Row(1.70, 0.08, 5.0),
    "145.fpppp": Table3Row(1.34, 0.08, 7.5),
    "146.wave5": Table3Row(1.31, 0.25, 7.6),
}

PAPER_TABLE4: dict[str, Table4Row] = {
    "099.go": Table4Row(1.30, 6.9, 10.1),
    "124.m88ksim": Table4Row(1.10, 4.5, 7.1),
    "126.gcc": Table4Row(1.13, 7.8, 6.7),
    "129.compress": Table4Row(1.16, 6.6, 6.8),
    "130.li": Table4Row(1.07, 6.8, 6.8),
    "132.ijpeg": Table4Row(1.01, 5.8, 6.9),
    "134.perl": Table4Row(1.21, 6.2, 8.1),
    "147.vortex": Table4Row(1.17, 7.1, 7.4),
    "101.tomcatv": Table4Row(1.23, 11.1, 14.0),
    "102.swim": Table4Row(1.65, 19.5, 18.3),
    "103.su2cor": Table4Row(1.51, 3.9, 7.2),
    "104.hydro2d": Table4Row(1.75, 4.2, 7.8),
    "107.mgrid": Table4Row(1.21, 3.2, 9.1),
    "110.applu": Table4Row(1.54, 4.0, 6.5),
    "125.turb3d": Table4Row(1.20, 4.3, 10.8),
    "141.apsi": Table4Row(1.76, 5.1, 14.5),
    "145.fpppp": Table4Row(1.42, 7.5, 21.3),
    "146.wave5": Table4Row(1.41, 8.4, 16.8),
}

# Table 1: SS-5 vs SS-10/61.
PAPER_TABLE1 = {
    "SS-5": {"spec_int": 64, "spec_fp": 54.6, "synopsys_minutes": 32},
    "SS-10/61": {"spec_int": 89, "spec_fp": 103, "synopsys_minutes": 44},
}

# Section 5.6: gcc bank utilization.
PAPER_BANK_UTILIZATION = {16: 0.012, 2: 0.096}


def spec_ratio_constant(name: str) -> float:
    """Per-benchmark constant K with Spec-ratio = K / total CPI.

    Spec-ratio = ref_time / (N_instr x CPI x T_clk); everything except the
    CPI is fixed per benchmark and machine clock, so K is derived once
    from the paper's own (CPI, ratio) pair (Table 4).
    """
    row = PAPER_TABLE4[name]
    return row.total_cpi * row.spec_ratio
