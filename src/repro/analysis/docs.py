"""Auto-generation of EXPERIMENTS.md from runner artifacts.

``python -m repro docs`` runs every experiment through the parallel
runner (instant when cached), stores the deterministic outcome of each —
rendered tables, simulator event tallies, the code fingerprint — in
``artifacts/experiments.json``, and rewrites EXPERIMENTS.md from it.
The document therefore has two kinds of content:

- **authored commentary** (the paper-vs-measured claims tables below,
  curated by humans when the model changes), and
- **mechanical sections** (the measured output blocks and the run
  metadata footer), regenerated verbatim from the artifacts.

``scripts/check_docs.py`` (and the tier-1 test wrapping it) regenerates
the document from the checked-in artifacts into a buffer and diffs it
against the checked-in EXPERIMENTS.md, so the two can never drift
silently.  Everything embedded in the document is deterministic — fixed
seeds, no timestamps, no wall times — which is what makes the zero-diff
check possible; timing lives in the separate ``--metrics-out`` JSON.
"""

from __future__ import annotations

import difflib
import json
from pathlib import Path
from typing import Any

ARTIFACTS_SCHEMA_VERSION = 1
DEFAULT_ARTIFACTS_PATH = Path("artifacts") / "experiments.json"
DEFAULT_DOC_PATH = Path("EXPERIMENTS.md")

# ---------------------------------------------------------------------------
# Authored commentary (curate here, never in EXPERIMENTS.md directly)
# ---------------------------------------------------------------------------

PREAMBLE = """\
Every table and figure of the paper's evaluation, paper-reference vs
measured.  Measured values come from the default configuration (trace
length 100-120 K references, 10-15 K GSPN instructions, default SPLASH
sizes, fixed seeds); absolute numbers shift a little with trace length
but the comparisons are stable.  The substrate is a simulator rather
than the authors' testbed, so the criterion is **shape**: direction of
every comparison the paper draws, and rough magnitude of every factor
it quotes.

Conventions: "prop" = the proposed integrated device; "conv NK" =
conventional direct-mapped cache of N KB with 32 B lines; check-mark =
direction and rough magnitude reproduced, ~ = direction reproduced with
a noted magnitude gap.\
"""

COMMENTARY: dict[str, str] = {
    "table1": """\
| quantity | paper | measured | verdict |
|---|---|---|---|
| Spec-class: SS-10 faster | 89 vs 64 SpecInt (1.39x) | 1.31x faster | ok |
| Synopsys: SS-5 faster | 32 vs 44 min (1.375x) | 31.1 vs 41.7 min (1.34x) | ok |\
""",
    "crossover": """\
Derived experiment (not a paper table): the break-even main-memory
latency at which a conventional system falls behind the integrated
device.  Even an 8-cycle conventional memory loses to the integrated
device for gcc/swim/apsi.\
""",
    "figure2": """\
| feature | paper | measured | verdict |
|---|---|---|---|
| SS-10 wins while the array fits its 1 MB L2 | yes | 102 ns vs 262 ns at 512 KB | ok |
| SS-5 wins beyond the L2 | yes | 262 ns vs 705 ns at >=2 MB | ok |
| SS-10 prefetch hides small strides (footnote 2) | yes | modelled via `prefetch_threshold_bytes` | ok |\
""",
    "figure7": """\
| claim (Section 5.2) | paper | measured | verdict |
|---|---|---|---|
| applu/compress/swim/mgrid/ijpeg fit 8 KB | ~0 everywhere | all <=0.01 % on prop | ok |
| prop beats conventional of >2x size, almost all apps | yes | 18 of 19 (turb3d excepted) | ok |
| fpppp long-line factor vs conv 8K | 11.2x | 15.6x (0.76 % vs 11.9 %) | ok |
| fpppp vs conv 16K | 8.2x | 14x | ~ (stronger than paper) |
| fpppp fits 64 KB conventional | ~fits | conv 64K at 1.28 % (residual conflicts) | ~ |
| turb3d is the only inversion (loop/callee aliasing) | yes | prop 0.85 % vs conv 8K 0.13 % | ok |
| perl high but below conv of same size | yes | 1.08 % vs 4.65 % | ok |
| gcc "within 27 % of a 64 KB conventional" | prop ~ 1.27x conv64 | prop 0.58 % vs conv64 1.38 % — prop lands *below* conv64 | ~ (prop between conv-32K and conv-64K behaviour; our cold-code model charges conventional caches more per episode migration) |\
""",
    "figure8": """\
| claim (Sections 5.3-5.4) | paper | measured | verdict |
|---|---|---|---|
| mgrid: prop >=10x better than conv same size | >10x | 15.6x (0.32 % vs 5.0 %) | ok |
| hydro2d: marked long-line win | ~10x | 9.3x (0.90 % vs 8.35 %) | ok |
| tomcatv/swim/su2cor: prop (no victim) ~5x worse than conv 16K | ~5x | 3.7x / 4.6x / 3.2x | ok |
| victim returns them to ~ conv 2-way 16K | yes | 4.5-5.0 % vs 8.3 % (below 2-way) | ok |
| swim/wave5/li: victim cuts 2-5x | 2-5x | 7.9x / 4.6x / 2.3x | ok |
| go: victim helps ~25 %, long lines still a net loss | 25 % | 23 % cut; prop 11.9 % > conv16 6.6 % | ok |
| victim beats conv 16K DM in all but one app | 1 exception | 2 exceptions (go, perl) | ~ |
| go absolute miss level | ~0.3 (from CPI arithmetic) | 0.12 | ~ (lower magnitude, same ordering) |\
""",
    "figure11": """\
| claim (Section 5.5) | paper | measured | verdict |
|---|---|---|---|
| conventional: memory latency can cost up to ~2x raw CPI | <=2x | gcc 1.87->3.80 over 10->50-cycle memory (2.0x) | ok |
| apsi = high raw CPI, gcc = low | yes | apsi starts 2.11, gcc 1.87; gcc's slope steeper (more misses) | ok |\
""",
    "figure12": """\
| claim (Section 5.5) | paper | measured | verdict |
|---|---|---|---|
| integrated at 30 ns: +10-25 % over raw CPI | 10-25 % | gcc +21 %, apsi +0.9 % (apsi's D-misses are tiny in our proxy) | ok/~ |\
""",
    "table3": """\
Spec'95 CPI estimates without the victim cache; the interesting story is
the Table 3 -> Table 4 victim-cache deltas, discussed under `table4`.\
""",
    "table4": """\
14 of 18 totals within 10 % of the paper, 18 of 18 within 13 %.  The
victim-cache deltas (Table 3 -> Table 4) reproduce where they matter:
tomcatv 0.61->0.10 memory CPI (paper 0.50->0.08), swim 0.78->0.11 (paper
0.97->0.09), wave5 0.62->0.16 (paper 0.25->0.11).  Known gap: go's
memory CPI is low (0.16 vs paper 0.29) because our go proxy's D-miss
magnitude is below the paper's (see the `figure8` note).\
""",
    "section5.6": """\
| claim | paper | measured | verdict |
|---|---|---|---|
| CPI differences below simulation noise for 4/8/16 banks | yes | max/min CPI ratio 1.02 over {2,4,8,16} | ok |
| gcc bank utilization 16 banks | 1.2 % | 2.0 % | ok |
| gcc bank utilization 2 banks | 9.6 % | 15.4 % | ~ (same ~8x scaling) |\
""",
    "figures13-17": """\
Execution times in cycles, default scaled data sets
(LU 64x64 / block 4; MP3D 1200 particles, 12^3 cells, 6 steps; OCEAN
64x64, 6 iterations; WATER 48 molecules x600 B, 3 steps; PTHOR 1500
gates, 25 steps — Table 5 used 200x200, 10 K particles, 128x128, 288
molecules, 1000 steps respectively).

| claim (Section 6.2) | paper | measured | verdict |
|---|---|---|---|
| integrated outperforms reference at small p, all apps | yes | true at p=1 for all five kernels | ok |
| LU: clean scaling, integrated best, no-victim worst | Fig 13 | 450 K->91 K cycles (1->16 p); no-victim 1.5x slower | ok |
| MP3D: worst scaler, systems converge at high p | Fig 14 | flattens past p=4; all three within 1.3 % at p=16 | ok |
| OCEAN: reference better than plain column buffers | Fig 15 | no-victim ~ reference (within 0.5 %), not clearly worse | ~ |
| WATER: the one case where reference beats no-victim integrated | Fig 16 | p=4: reference 40.5 K < no-victim 50.2 K; victim brings integrated to 40.1 K (best) | ok |
| victim cuts WATER up to 2x | <=2x | 1.25x at p=2-4 | ~ |
| PTHOR: integrated wins small p, converges | Fig 17 | 63.5 K vs 90.4 K at p=1; within 2 % at p=16 | ok |
| with victim, integrated best overall | yes | best or tied-best for all kernels at p>=4 | ok |

Known deviations, both recorded above: OCEAN's no-victim configuration
ties the reference instead of losing to it (our 5-point stencil re-reads
remote boundary blocks too few times per sweep for the INC's extra cycle
to bite), and PTHOR/OCEAN absolute speedups at 16 processors are milder
than the paper's figures because the scaled-down data sets shrink the
per-processor working set faster.\
""",
}

EXTRA_SECTIONS = """\
## Extensions (bench: `test_bench_extensions`)

Paper claims outside the tables, made quantitative:

| claim | paper | measured |
|---|---|---|
| protocol engines support S-COMA too (Section 4.2) | stated | LU on S-COMA within 5 % of CC-NUMA; S-COMA 3.7x faster when the imported working set exceeds the INC, 4.7x slower on single-touch pages |
| speculative writebacks hide dirty-line retirement (Section 4.1) | stated | 100 % of swim's dirty-column writebacks absorbed into idle bank cycles; conventional policy serializes all of them on the miss path |
| Table 6 assumes unsaturated protocol engines (Section 4.2) | implicit | LU/Ocean runs keep mean engine occupancy well under 10 % |
| framebuffer from main memory is feasible (Section 8) | stated | 1280x1024x24 @72 Hz = 0.28 GB/s = 18 % of one datapath's 1.6 GB/s |
| longer lines for fewer banks degrade performance (Section 5.6) | stated | tomcatv D-miss 31.8 % -> 59.9 % going 16x512 B -> 4x2048 B at constant capacity |
| conventional break-even memory latency (derived) | — | even an 8-cycle conventional memory loses to the integrated device for gcc/swim/apsi (`python -m repro crossover`) |

## Ablations (bench: `test_bench_ablations`)

Beyond the paper: victim-size sweep (16 entries capture >=90 % of the
achievable conflict absorption on tomcatv), scoreboard-rate sweep (no
scoreboard costs swim ~40 % more memory CPI than rate 1.0), and the
ECC-widening arithmetic (12.5 % -> 7 % overhead, exactly 14 bits freed
per 32 B block).

## Tooling: static verification

Every number above is produced by code that `python -m repro check`
(see CHECKS.md) verifies statically before anything runs: exhaustive
model checking of the directory protocol at small node/block counts,
P/T-invariant analysis of every GSPN behind Figures 9-12 and the
Section 5.6 bank sweep, and determinism lints over the source tree.
CI runs it alongside `scripts/check_docs.py`; a non-zero exit blocks
the build.\
"""


# ---------------------------------------------------------------------------
# Artifacts
# ---------------------------------------------------------------------------


def render_result(result: Any) -> str:
    """Render an experiment result (or list of results) to text."""
    if isinstance(result, list):
        return "\n\n".join(item.render() for item in result)
    return result.render()


def build_artifacts(results: dict[str, Any], metrics: Any,
                    fingerprint: str) -> dict:
    """Deterministic per-experiment records for docs regeneration.

    ``results`` maps experiment name to its (merged) result object and
    ``metrics`` is the :class:`~repro.runner.metrics.RunMetrics` of the
    run that produced them.  Wall times are deliberately excluded —
    everything here must be byte-stable across reruns.
    """
    from repro.analysis.registry import SPECS

    records = []
    for name, result in results.items():
        spec = SPECS[name]
        records.append({
            "name": name,
            "paper_ref": spec.paper_ref,
            "summary": spec.summary,
            "modules": list(spec.modules),
            "tasks": sum(1 for t in metrics.tasks if t.experiment == name),
            "tallies": metrics.tallies_for(name),
            "rendered": render_result(result),
        })
    return {
        "schema": ARTIFACTS_SCHEMA_VERSION,
        "fingerprint": fingerprint,
        "results": records,
    }


def write_artifacts(path: Path | str, artifacts: dict) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(artifacts, indent=2, sort_keys=True) + "\n")


def load_artifacts(path: Path | str) -> dict:
    return json.loads(Path(path).read_text())


# ---------------------------------------------------------------------------
# Document generation
# ---------------------------------------------------------------------------


def generate_experiments_md(artifacts: dict) -> str:
    """The full EXPERIMENTS.md text for one artifacts payload."""
    lines: list[str] = []
    out = lines.append
    out("# EXPERIMENTS — paper vs measured")
    out("")
    out("<!-- Auto-generated by `python -m repro docs`.  Edit the")
    out("     commentary in src/repro/analysis/docs.py, then regenerate;")
    out("     scripts/check_docs.py fails when this file drifts from")
    out("     artifacts/experiments.json. -->")
    out("")
    out(PREAMBLE)
    out("")
    for record in artifacts["results"]:
        name = record["name"]
        out(f"## {record['paper_ref']} — `{name}`")
        out("")
        summary = record["summary"]
        out(summary[:1].upper() + summary[1:] + ".  Modules: "
            + ", ".join(f"`{m}`" for m in record["modules"]) + ".")
        out("")
        commentary = COMMENTARY.get(name)
        if commentary:
            out(commentary)
            out("")
        out(f"Measured (`python -m repro {name}`):")
        out("")
        out("```text")
        out(record["rendered"])
        out("```")
        out("")
    out(EXTRA_SECTIONS)
    out("")
    out("## Run metadata")
    out("")
    out("Generated by `python -m repro docs` from "
        "`artifacts/experiments.json`; deterministic by construction "
        "(fixed seeds, no timestamps).  Wall-clock and cache metrics "
        "live in the `--metrics-out` JSON, not here.")
    out("")
    out(f"- code fingerprint: `{artifacts['fingerprint'][:16]}`")
    out(f"- experiments: {len(artifacts['results'])}, tasks: "
        f"{sum(r['tasks'] for r in artifacts['results'])}")
    out("")
    out("| experiment | tasks | GSPN firings | MP ops |")
    out("|---|---|---|---|")
    for record in artifacts["results"]:
        tallies = record["tallies"]
        out("| `{}` | {} | {} | {} |".format(
            record["name"],
            record["tasks"],
            f"{tallies['gspn_firings']:,}" if "gspn_firings" in tallies else "—",
            f"{tallies['mp_ops']:,}" if "mp_ops" in tallies else "—",
        ))
    out("")
    return "\n".join(lines)


def regenerate(
    *,
    jobs: int = 1,
    cache: Any = None,
    artifacts_path: Path | str = DEFAULT_ARTIFACTS_PATH,
    doc_path: Path | str = DEFAULT_DOC_PATH,
) -> tuple[dict, Any]:
    """Run everything, refresh the artifacts file, rewrite EXPERIMENTS.md."""
    from repro.analysis.registry import SPECS, run_experiments
    from repro.runner import code_fingerprint

    results, metrics = run_experiments(list(SPECS), jobs=jobs, cache=cache)
    fingerprint = cache.fingerprint if cache is not None else code_fingerprint()
    artifacts = build_artifacts(results, metrics, fingerprint)
    write_artifacts(artifacts_path, artifacts)
    Path(doc_path).write_text(generate_experiments_md(artifacts))
    return artifacts, metrics


def check_drift(repo_root: Path | str = ".") -> list[str]:
    """Diff the checked-in EXPERIMENTS.md against a regeneration from the
    checked-in artifacts.  Empty list = in sync."""
    root = Path(repo_root)
    artifacts = load_artifacts(root / DEFAULT_ARTIFACTS_PATH)
    expected = generate_experiments_md(artifacts)
    actual = (root / DEFAULT_DOC_PATH).read_text()
    if expected == actual:
        return []
    return list(difflib.unified_diff(
        actual.splitlines(), expected.splitlines(),
        fromfile="EXPERIMENTS.md (checked in)",
        tofile="EXPERIMENTS.md (regenerated from artifacts)",
        lineterm="",
    ))
