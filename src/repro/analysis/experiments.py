"""One function per table and figure of the paper's evaluation.

Every function returns a result object whose ``render()`` produces the
rows/series the paper reports; the benchmark harness under
``benchmarks/`` calls these and prints the output next to the paper's
reference values (see EXPERIMENTS.md).

Sizes are parameterized: the defaults complete in seconds-to-minutes at
Python speed; raise ``trace_len`` / ``instructions`` / kernel sizes for
tighter estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.paperdata import (
    PAPER_BANK_UTILIZATION,
    PAPER_TABLE1,
    PAPER_TABLE3,
    PAPER_TABLE4,
)
from repro.analysis.render import ascii_table, percent, series_block
from repro.caches import (
    direct_mapped_miss_rate,
    set_assoc_miss_rate,
    simulate_column_buffer,
)
from repro.common.params import CacheGeometry, IntegratedDeviceParams
from repro.common.rng import make_rng, split_rng
from repro.common.units import KB
from repro.gspn.models import ISSUE_TRANSITION, ProcessorNetParams, bank_ready_place
from repro.gspn.models import build_processor_net
from repro.gspn.sim import GSPNSimulator
from repro.machines.models import sparcstation_5, sparcstation_10
from repro.machines.stridewalk import stride_walk_curve
from repro.machines.table1 import table1_model
from repro.mp.system import SystemKind
from repro.uniproc.measurement import measure_integrated
from repro.uniproc.pipeline import conventional_cpi, integrated_cpi
from repro.workloads.spec import ALL_NAMES, get_proxy
from repro.workloads.splash import KERNELS

# ---------------------------------------------------------------------------
# Table 1 and Figure 2
# ---------------------------------------------------------------------------


@dataclass
class Table1Experiment:
    rows: list[tuple[str, float, float]]

    def render(self) -> str:
        headers = ["Machine", "Spec-class runtime (s)", "Synopsys runtime (min)",
                   "paper Synopsys (min)"]
        paper = {
            "SparcStation-5": PAPER_TABLE1["SS-5"]["synopsys_minutes"],
            "SparcStation-10/61": PAPER_TABLE1["SS-10/61"]["synopsys_minutes"],
        }
        body = [
            (name, spec, syn / 60, paper.get(name, "-"))
            for name, spec, syn in self.rows
        ]
        return "Table 1: SS-5 vs SS-10/61\n" + ascii_table(headers, body)


def table1() -> Table1Experiment:
    """SS-5 vs SS-10/61: Spec-class and Synopsys-class runtimes."""
    results = table1_model()
    return Table1Experiment(
        rows=[(r.machine, r.spec_runtime_s, r.synopsys_runtime_s) for r in results]
    )


@dataclass
class Figure2Experiment:
    sizes: list[int]
    curves: dict[str, list[float]]  # machine -> latency per size

    def render(self) -> str:
        return series_block(
            "Figure 2: load latency (ns) vs array size, stride 4 KB",
            [f"{s // 1024}KB" for s in self.sizes],
            self.curves,
            x_label="array",
        )


def figure2(stride: int = 4096) -> Figure2Experiment:
    """Load latency vs array size for the SS-5 and SS-10/61."""
    machines = {
        "SS-5": sparcstation_5(),
        "SS-10/61": sparcstation_10(),
    }
    sizes = None
    curves: dict[str, list[float]] = {}
    for name, machine in machines.items():
        points = stride_walk_curve(machine, strides=(stride,))
        sizes = [p.array_bytes for p in points]
        curves[name] = [p.latency_ns for p in points]
    return Figure2Experiment(sizes=sizes or [], curves=curves)


# ---------------------------------------------------------------------------
# Figures 7 and 8: miss rates
# ---------------------------------------------------------------------------

CONVENTIONAL_I_SIZES = (8, 16, 32, 64)  # KB, direct-mapped, 32 B lines
CONVENTIONAL_D_SIZES = (8, 16, 64, 256)  # KB


@dataclass
class MissRateExperiment:
    title: str
    benchmarks: list[str]
    columns: list[str]
    rows: dict[str, list[float]]  # benchmark -> miss rate per column

    def render(self) -> str:
        body = [
            [name] + [percent(rate) for rate in self.rows[name]]
            for name in self.benchmarks
        ]
        return f"{self.title}\n" + ascii_table(["benchmark"] + self.columns, body)


def figure7(trace_len: int = 120_000, seed: int = 1,
            names: tuple[str, ...] | None = None) -> MissRateExperiment:
    """I-cache miss rates: proposed vs conventional direct-mapped.

    ``names`` restricts the benchmark set (the runner shards the full
    sweep one benchmark per task; each benchmark's trace and caches are
    independent, so shards merge losslessly).
    """
    columns = ["proposed 8K/512B"] + [f"DM {s}K/32B" for s in CONVENTIONAL_I_SIZES]
    rows = {}
    device = IntegratedDeviceParams()
    for name in names if names is not None else ALL_NAMES:
        trace = get_proxy(name).instruction_trace(trace_len, seed)
        proposed = simulate_column_buffer(trace, device.icache_geometry)
        conv = [
            direct_mapped_miss_rate(trace.addresses, CacheGeometry(s * KB, 32, 1))
            for s in CONVENTIONAL_I_SIZES
        ]
        rows[name] = [proposed.stats.miss_rate] + conv
    return MissRateExperiment(
        "Figure 7: instruction cache miss rates", list(rows), columns, rows
    )


def figure8(trace_len: int = 120_000, seed: int = 1,
            names: tuple[str, ...] | None = None) -> MissRateExperiment:
    """D-cache miss rates: proposed (with/without victim) vs conventional."""
    columns = (
        ["proposed 16K 2-way/512B", "proposed + victim"]
        + [f"DM {s}K/32B" for s in CONVENTIONAL_D_SIZES]
        + ["2-way 16K/32B"]
    )
    rows = {}
    device = IntegratedDeviceParams()
    for name in names if names is not None else ALL_NAMES:
        trace = get_proxy(name).data_trace(trace_len, seed)
        plain = simulate_column_buffer(trace, device.dcache_geometry)
        vict = simulate_column_buffer(
            trace, device.dcache_geometry, victim=device.victim
        )
        conv = [
            direct_mapped_miss_rate(trace.addresses, CacheGeometry(s * KB, 32, 1))
            for s in CONVENTIONAL_D_SIZES
        ]
        two_way = set_assoc_miss_rate(trace.addresses, CacheGeometry(16 * KB, 32, 2))
        rows[name] = [plain.stats.miss_rate, vict.stats.miss_rate] + conv + [two_way]
    return MissRateExperiment(
        "Figure 8: data cache miss rates", list(rows), columns, rows
    )


# ---------------------------------------------------------------------------
# Figures 11 and 12: CPI vs latency
# ---------------------------------------------------------------------------


@dataclass
class CPICurveExperiment:
    title: str
    xs: list[float]
    curves: dict[str, list[float]]
    x_label: str

    def render(self) -> str:
        return series_block(self.title, self.xs, self.curves, x_label=self.x_label)


def figure11(
    mem_latencies: tuple[float, ...] = (10, 20, 30, 40, 50),
    l2_latency: float = 6.0,
    trace_len: int = 60_000,
    instructions: int = 10_000,
    names: tuple[str, ...] = ("141.apsi", "126.gcc"),
) -> CPICurveExperiment:
    """Conventional-CPU CPI vs main memory latency (apsi high, gcc low)."""
    curves: dict[str, list[float]] = {}
    for name in names:
        proxy = get_proxy(name)
        curves[name] = [
            conventional_cpi(
                proxy, l2_latency=l2_latency, mem_latency=lat,
                trace_len=trace_len, instructions=instructions,
            ).total_cpi
            for lat in mem_latencies
        ]
    return CPICurveExperiment(
        "Figure 11: conventional CPI vs memory latency (L2 = "
        f"{l2_latency} cycles)",
        list(mem_latencies),
        curves,
        x_label="mem cycles",
    )


def figure12(
    mem_latencies: tuple[float, ...] = (2, 4, 6, 8, 12, 16),
    trace_len: int = 60_000,
    instructions: int = 10_000,
    names: tuple[str, ...] = ("141.apsi", "126.gcc"),
) -> CPICurveExperiment:
    """Integrated-device CPI vs DRAM access latency (6 cycles = 30 ns)."""
    curves: dict[str, list[float]] = {}
    for name in names:
        proxy = get_proxy(name)
        curves[name] = [
            integrated_cpi(
                proxy, mem_access=lat, trace_len=trace_len,
                instructions=instructions,
            ).total_cpi
            for lat in mem_latencies
        ]
    return CPICurveExperiment(
        "Figure 12: integrated CPI vs DRAM access latency",
        list(mem_latencies),
        curves,
        x_label="DRAM cycles",
    )


# ---------------------------------------------------------------------------
# Tables 3 and 4: Spec'95 estimates
# ---------------------------------------------------------------------------


@dataclass
class SpecTableExperiment:
    title: str
    with_victim: bool
    rows: list[tuple[str, float, float, float | None]]  # name, cpu, mem, ratio

    def render(self) -> str:
        paper = PAPER_TABLE4 if self.with_victim else PAPER_TABLE3
        headers = ["benchmark", "cpu CPI", "mem CPI", "total", "Spec-ratio",
                   "paper CPI", "paper ratio"]
        body = []
        for name, cpu, mem, ratio in self.rows:
            ref = paper.get(name)
            if self.with_victim:
                paper_cpi = ref.total_cpi if ref else "-"
            else:
                paper_cpi = f"{ref.cpu_cpi}+{ref.memory_cpi}" if ref else "-"
            body.append([
                name, cpu, mem, cpu + mem,
                f"{ratio:.1f}" if ratio is not None else "-",
                paper_cpi,
                ref.spec_ratio if ref else "-",
            ])
        return f"{self.title}\n" + ascii_table(headers, body)


def _spec_table(with_victim: bool, trace_len: int, instructions: int,
                names: list[str]) -> SpecTableExperiment:
    rows = []
    for name in names:
        est = integrated_cpi(
            get_proxy(name), with_victim=with_victim,
            trace_len=trace_len, instructions=instructions,
        )
        rows.append((name, est.cpu_cpi, est.memory_cpi, est.spec_ratio))
    title = (
        "Table 4: Spec'95 estimates with victim cache"
        if with_victim
        else "Table 3: Spec'95 estimates, no victim cache"
    )
    return SpecTableExperiment(title, with_victim, rows)


def table3(trace_len: int = 100_000, instructions: int = 15_000,
           names: list[str] | None = None) -> SpecTableExperiment:
    """Spec'95 CPI estimates (cpu + memory split), no victim cache."""
    return _spec_table(False, trace_len, instructions,
                       names or list(PAPER_TABLE3))


def table4(trace_len: int = 100_000, instructions: int = 15_000,
           names: list[str] | None = None) -> SpecTableExperiment:
    """Spec'95 CPI and Spec-ratio estimates with the victim cache."""
    return _spec_table(True, trace_len, instructions,
                       names or list(PAPER_TABLE4))


@dataclass
class CrossoverExperiment:
    """Where the conventional system falls behind the integrated device."""

    benchmarks: list[str]
    mem_latencies: list[float]
    integrated: dict[str, float]  # benchmark -> integrated total CPI
    conventional: dict[str, list[float]]  # benchmark -> CPI per latency
    crossover: dict[str, float | None]  # first latency where integrated wins

    def render(self) -> str:
        headers = (
            ["benchmark", "integrated CPI"]
            + [f"conv@{int(lat)}cyc" for lat in self.mem_latencies]
            + ["crossover"]
        )
        rows = []
        for name in self.benchmarks:
            cross = self.crossover[name]
            rows.append(
                [name, self.integrated[name]]
                + self.conventional[name]
                + [f"{int(cross)} cyc" if cross is not None else "never"]
            )
        return (
            "Crossover: conventional CPI vs the integrated device\n"
            + ascii_table(headers, rows)
        )


def crossover(
    benchmarks: tuple[str, ...] = ("126.gcc", "102.swim", "141.apsi"),
    mem_latencies: tuple[float, ...] = (8, 16, 24, 40),
    trace_len: int = 60_000,
    instructions: int = 8_000,
) -> CrossoverExperiment:
    """Conventional-vs-integrated break-even memory latency (derived)."""
    integrated: dict[str, float] = {}
    conventional: dict[str, list[float]] = {}
    cross: dict[str, float | None] = {}
    for name in benchmarks:
        proxy = get_proxy(name)
        integrated[name] = integrated_cpi(
            proxy, trace_len=trace_len, instructions=instructions
        ).total_cpi
        series = [
            conventional_cpi(
                proxy, mem_latency=lat, trace_len=trace_len,
                instructions=instructions,
            ).total_cpi
            for lat in mem_latencies
        ]
        conventional[name] = series
        cross[name] = next(
            (lat for lat, cpi in zip(mem_latencies, series)
             if cpi > integrated[name]),
            None,
        )
    return CrossoverExperiment(
        list(benchmarks), list(mem_latencies), integrated, conventional, cross
    )


# ---------------------------------------------------------------------------
# Section 5.6: bank-count sensitivity
# ---------------------------------------------------------------------------


@dataclass
class BankSweepExperiment:
    bank_counts: list[int]
    cpi: dict[int, float]
    utilization: dict[int, float]  # mean bank busy fraction
    benchmark: str

    def render(self) -> str:
        headers = ["banks", "CPI", "mean bank utilization", "paper utilization"]
        body = [
            [
                banks,
                self.cpi[banks],
                percent(self.utilization[banks]),
                percent(PAPER_BANK_UTILIZATION.get(banks, float("nan")))
                if banks in PAPER_BANK_UTILIZATION
                else "-",
            ]
            for banks in self.bank_counts
        ]
        return (
            f"Section 5.6: bank-count sensitivity ({self.benchmark})\n"
            + ascii_table(headers, body)
        )


def section56(
    benchmark: str = "126.gcc",
    bank_counts: tuple[int, ...] = (2, 4, 8, 16),
    trace_len: int = 60_000,
    instructions: int = 10_000,
    seed: int = 0,
) -> BankSweepExperiment:
    """Bank-count sensitivity: CPI and bank utilization (Section 5.6)."""
    proxy = get_proxy(benchmark)
    rates = measure_integrated(proxy, trace_len, seed)
    cpi: dict[int, float] = {}
    utilization: dict[int, float] = {}
    for banks in bank_counts:
        params = ProcessorNetParams(
            p_load=proxy.mix.p_load,
            p_store=proxy.mix.p_store,
            ifetch=rates.ifetch,
            load=rates.load,
            store=rates.store,
            num_banks=banks,
        )
        net = build_processor_net(params)
        track = tuple(bank_ready_place(b) for b in range(banks))
        sim = GSPNSimulator(
            net, split_rng(make_rng(seed), benchmark, f"banks{banks}"),
            track_places=track,
        )
        result = sim.run(stop_transition=ISSUE_TRANSITION, stop_count=instructions)
        cpi[banks] = result.time / result.firings[ISSUE_TRANSITION]
        # Time-averaged busy fraction of each bank's ready place, straight
        # from the simulator (busy = token absent, in precharge, or held by
        # a running access timer), averaged across banks.
        utilization[banks] = (
            sum(result.busy_fraction[place] for place in track) / banks
        )
    return BankSweepExperiment(list(bank_counts), cpi, utilization, benchmark)


# ---------------------------------------------------------------------------
# Figures 13-17: SPLASH execution times
# ---------------------------------------------------------------------------

SPLASH_FIGURES = {
    "lu": "Figure 13",
    "mp3d": "Figure 14",
    "ocean": "Figure 15",
    "water": "Figure 16",
    "pthor": "Figure 17",
    "cholesky": "Extension",  # not in the paper; see DESIGN.md
}

PAPER_SPLASH_KERNELS = ("lu", "mp3d", "ocean", "water", "pthor")


@dataclass
class SplashExperiment:
    kernel: str
    proc_counts: list[int]
    times: dict[str, list[int]]  # system kind -> execution times
    data_set: str = ""

    def render(self) -> str:
        title = (
            f"{SPLASH_FIGURES[self.kernel]}: {self.kernel.upper()} execution time "
            f"(cycles) vs processors [{self.data_set}]"
        )
        return series_block(title, self.proc_counts, self.times, x_label="procs")


def splash_figure(
    kernel_name: str,
    proc_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
    kinds: tuple[SystemKind, ...] = (
        SystemKind.INTEGRATED,
        SystemKind.INTEGRATED_NO_VICTIM,
        SystemKind.REFERENCE,
    ),
    **kernel_kwargs,
) -> SplashExperiment:
    """One SPLASH kernel's execution time vs processor count, per system.

    The per-kernel building block behind Figures 13-17: runs
    ``kernel_name`` on every requested system kind at every processor
    count and collects the simulated execution times for rendering.
    """
    kernel_cls = KERNELS[kernel_name]
    times: dict[str, list[int]] = {kind.value: [] for kind in kinds}
    data_set = ""
    for kind in kinds:
        for procs in proc_counts:
            kernel = kernel_cls(**kernel_kwargs)
            result, _ = kernel.run_on(kind, procs)
            times[kind.value].append(result.execution_time)
            data_set = kernel.description
    return SplashExperiment(kernel_name, list(proc_counts), times, data_set)


def figures13_17(
    proc_counts: tuple[int, ...] = (1, 2, 4, 8, 16), **kernel_kwargs
) -> list[SplashExperiment]:
    """SPLASH execution times on all three systems (Figures 13-17)."""
    return [
        splash_figure(name, proc_counts, **kernel_kwargs)
        for name in PAPER_SPLASH_KERNELS
    ]
