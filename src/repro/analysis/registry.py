"""Experiment registry: what each experiment is, and how to shard it.

Each :class:`ExperimentSpec` ties a CLI experiment name to

- the function that computes it,
- the paper table/figure it reproduces and the modules it exercises
  (this drives the docs table in :mod:`repro.analysis` and the
  auto-generated EXPERIMENTS.md),
- the CLI knobs it accepts (``--trace-len``, ``--procs``) so the CLI
  can warn instead of silently ignoring a flag, and
- an optional sharding: how to split the experiment into independent
  tasks for the process pool, and how to merge the shard results back
  into exactly the object the unsharded function returns.

Shards are only valid because every experiment iterates over
independent units (one Spec benchmark, one SPLASH kernel, one bank
count) whose RNG streams are derived from per-unit constants — see the
equality tests in ``tests/runner``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.analysis.experiments import (
    BankSweepExperiment,
    CPICurveExperiment,
    CrossoverExperiment,
    MissRateExperiment,
    PAPER_SPLASH_KERNELS,
    SpecTableExperiment,
    crossover,
    figure2,
    figure7,
    figure8,
    figure11,
    figure12,
    section56,
    splash_figure,
    table1,
    table3,
    table4,
)
from repro.paperdata import PAPER_TABLE3, PAPER_TABLE4
from repro.runner import ResultCache, RunMetrics, Task, run_tasks
from repro.workloads.spec import ALL_NAMES

# -- shard merges (module-level, keep results identical to unsharded runs) --


def _merge_first(parts: list[Any]) -> Any:
    return parts[0]


def _merge_missrate(parts: list[MissRateExperiment]) -> MissRateExperiment:
    first = parts[0]
    return MissRateExperiment(
        title=first.title,
        benchmarks=[b for part in parts for b in part.benchmarks],
        columns=first.columns,
        rows={name: rates for part in parts for name, rates in part.rows.items()},
    )


def _merge_cpicurve(parts: list[CPICurveExperiment]) -> CPICurveExperiment:
    first = parts[0]
    return CPICurveExperiment(
        title=first.title,
        xs=first.xs,
        curves={name: ys for part in parts for name, ys in part.curves.items()},
        x_label=first.x_label,
    )


def _merge_spec_table(parts: list[SpecTableExperiment]) -> SpecTableExperiment:
    first = parts[0]
    return SpecTableExperiment(
        title=first.title,
        with_victim=first.with_victim,
        rows=[row for part in parts for row in part.rows],
    )


def _merge_crossover(parts: list[CrossoverExperiment]) -> CrossoverExperiment:
    first = parts[0]
    return CrossoverExperiment(
        benchmarks=[b for part in parts for b in part.benchmarks],
        mem_latencies=first.mem_latencies,
        integrated={k: v for part in parts for k, v in part.integrated.items()},
        conventional={k: v for part in parts for k, v in part.conventional.items()},
        crossover={k: v for part in parts for k, v in part.crossover.items()},
    )


def _merge_banksweep(parts: list[BankSweepExperiment]) -> BankSweepExperiment:
    first = parts[0]
    return BankSweepExperiment(
        bank_counts=[b for part in parts for b in part.bank_counts],
        cpi={k: v for part in parts for k, v in part.cpi.items()},
        utilization={k: v for part in parts for k, v in part.utilization.items()},
        benchmark=first.benchmark,
    )


def _merge_splash_list(parts: list[Any]) -> list[Any]:
    return list(parts)


# -- spec ------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment: function, paper mapping, CLI knobs, sharding."""

    name: str
    fn: Callable
    paper_ref: str
    summary: str
    modules: tuple[str, ...]
    accepts: frozenset[str] = frozenset()
    # Sharding: split `shard_param` over `shard_values`, one task each.
    shard_param: str | None = None
    shard_values: tuple = ()
    shard_wrap: Callable[[Any], Any] = field(default=lambda v: (v,))
    merge: Callable[[list[Any]], Any] = _merge_first

    def tasks(self, overrides: dict[str, Any] | None = None) -> list[Task]:
        """The independent tasks this run decomposes into.

        ``overrides`` are extra kwargs (already validated against
        :attr:`accepts` plus the experiment signature) applied to every
        shard.
        """
        kwargs = dict(overrides or {})
        if self.shard_param is None:
            return [Task(self.name, "", self.fn, kwargs)]
        values = kwargs.pop(self.shard_param, None)
        if values is None:
            values = self.shard_values
        return [
            Task(self.name, str(value), self.fn,
                 {**kwargs, self.shard_param: self.shard_wrap(value)})
            for value in values
        ]

    def merge_results(self, parts: list[Any]) -> Any:
        return self.merge(parts)

    @property
    def entry_point(self) -> str:
        """Dotted name of this experiment's function, for static analysis.

        The ``deps`` check pass resolves it in the call graph, and
        :func:`repro.runner.fingerprint.slice_fingerprint` hashes the
        module slice reachable from it.
        """
        return f"{self.fn.__module__}.{self.fn.__qualname__}"


def _splash_shard(value: str) -> str:
    return value


SPECS: dict[str, ExperimentSpec] = {}


def _register(spec: ExperimentSpec) -> None:
    SPECS[spec.name] = spec


_register(ExperimentSpec(
    name="table1",
    fn=table1,
    paper_ref="Table 1 / Section 2",
    summary="SS-5 vs SS-10/61 Spec-class and Synopsys-class runtimes",
    modules=("repro.machines",),
))
_register(ExperimentSpec(
    name="crossover",
    fn=crossover,
    paper_ref="derived (Sections 5.5-5.6)",
    summary="conventional-vs-integrated break-even memory latency",
    modules=("repro.uniproc", "repro.gspn", "repro.workloads.spec"),
    accepts=frozenset({"trace_len"}),
    shard_param="benchmarks",
    shard_values=("126.gcc", "102.swim", "141.apsi"),
    merge=_merge_crossover,
))
_register(ExperimentSpec(
    name="figure2",
    fn=figure2,
    paper_ref="Figure 2 / Section 2",
    summary="load latency vs array size on the two SparcStations",
    modules=("repro.machines",),
))
_register(ExperimentSpec(
    name="figure7",
    fn=figure7,
    paper_ref="Figure 7 / Section 5.2",
    summary="I-cache miss rates, proposed column buffers vs conventional",
    modules=("repro.caches", "repro.workloads.spec", "repro.trace"),
    accepts=frozenset({"trace_len"}),
    shard_param="names",
    shard_values=tuple(ALL_NAMES),
    merge=_merge_missrate,
))
_register(ExperimentSpec(
    name="figure8",
    fn=figure8,
    paper_ref="Figure 8 / Sections 5.3-5.4",
    summary="D-cache miss rates with and without the victim cache",
    modules=("repro.caches", "repro.workloads.spec", "repro.trace"),
    accepts=frozenset({"trace_len"}),
    shard_param="names",
    shard_values=tuple(ALL_NAMES),
    merge=_merge_missrate,
))
_register(ExperimentSpec(
    name="figure11",
    fn=figure11,
    paper_ref="Figure 11 / Section 5.5",
    summary="conventional CPI vs main-memory latency",
    modules=("repro.uniproc", "repro.gspn", "repro.caches"),
    accepts=frozenset({"trace_len"}),
    shard_param="names",
    shard_values=("141.apsi", "126.gcc"),
    merge=_merge_cpicurve,
))
_register(ExperimentSpec(
    name="figure12",
    fn=figure12,
    paper_ref="Figure 12 / Section 5.5",
    summary="integrated-device CPI vs DRAM access latency",
    modules=("repro.uniproc", "repro.gspn", "repro.caches"),
    accepts=frozenset({"trace_len"}),
    shard_param="names",
    shard_values=("141.apsi", "126.gcc"),
    merge=_merge_cpicurve,
))
_register(ExperimentSpec(
    name="table3",
    fn=table3,
    paper_ref="Table 3 / Section 5.5",
    summary="Spec'95 CPI estimates without the victim cache",
    modules=("repro.uniproc", "repro.gspn", "repro.caches",
             "repro.workloads.spec"),
    accepts=frozenset({"trace_len"}),
    shard_param="names",
    shard_values=tuple(PAPER_TABLE3),
    shard_wrap=lambda v: [v],
    merge=_merge_spec_table,
))
_register(ExperimentSpec(
    name="table4",
    fn=table4,
    paper_ref="Table 4 / Section 5.5",
    summary="Spec'95 CPI and Spec-ratio estimates with the victim cache",
    modules=("repro.uniproc", "repro.gspn", "repro.caches",
             "repro.workloads.spec"),
    accepts=frozenset({"trace_len"}),
    shard_param="names",
    shard_values=tuple(PAPER_TABLE4),
    shard_wrap=lambda v: [v],
    merge=_merge_spec_table,
))
_register(ExperimentSpec(
    name="section5.6",
    fn=section56,
    paper_ref="Section 5.6",
    summary="bank-count sensitivity: CPI and bank utilization",
    modules=("repro.gspn", "repro.dram", "repro.uniproc"),
    accepts=frozenset({"trace_len"}),
    shard_param="bank_counts",
    shard_values=(2, 4, 8, 16),
    merge=_merge_banksweep,
))
# figures13-17 always shards: each task runs splash_figure(kernel_name=k),
# and the merged list is exactly what figures13_17() returns.
_register(ExperimentSpec(
    name="figures13-17",
    fn=splash_figure,
    paper_ref="Figures 13-17 / Section 6.2",
    summary="SPLASH execution times on the three multiprocessor systems",
    modules=("repro.mp", "repro.workloads.splash", "repro.coherence",
             "repro.interconnect"),
    accepts=frozenset({"procs"}),
    shard_param="kernel_name",
    shard_values=tuple(PAPER_SPLASH_KERNELS),
    shard_wrap=_splash_shard,
    merge=_merge_splash_list,
))


# CLI flag -> experiment kwarg it maps onto.
CLI_KNOBS = {"procs": "proc_counts", "trace_len": "trace_len"}


def entry_points() -> dict[str, str]:
    """Analysis roots: experiment name -> dotted entry-point function.

    Besides the registered experiments this includes the simulation
    service's roots (``serve:*``), so the ``deps``/``units``/``lints``
    passes reach the serving subsystem — its admission path, breaker
    and HTTP stack — exactly like experiment code.  Lazy import: the
    serve package resolves requests *against* this registry."""
    points = {name: spec.entry_point for name, spec in SPECS.items()}
    from repro.serve.api import serve_entry_points

    points.update(serve_entry_points())
    return points


def docs_table() -> str:
    """The experiment-to-paper mapping as a markdown table."""
    lines = [
        "| experiment | paper reference | modules exercised |",
        "|---|---|---|",
    ]
    for spec in SPECS.values():
        modules = ", ".join(f"`{m}`" for m in spec.modules)
        lines.append(f"| `{spec.name}` | {spec.paper_ref} | {modules} |")
    return "\n".join(lines)


def run_experiments(
    names: Sequence[str],
    overrides: dict[str, dict[str, Any]] | None = None,
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    policy: Any = None,
    faults: Any = None,
    journal: Any = None,
    resume: bool = False,
    on_partial: Any = None,
) -> tuple[dict[str, Any], RunMetrics]:
    """Run experiments by name through the supervised parallel runner.

    Returns ``(results, metrics)``: ``results[name]`` is exactly what
    calling the experiment function directly would return (shards are
    merged), regardless of ``jobs`` or cache state.  Shards quarantined
    by the supervisor (see ``policy``/``faults`` on
    :func:`repro.runner.run_tasks`) are left out of the merge — the
    healthy shards still produce a partial result — and
    ``results[name]`` is ``None`` when *every* shard of an experiment
    was quarantined; the failures themselves are in ``metrics``.
    """
    overrides = overrides or {}
    per_spec: dict[str, list[Task]] = {}
    all_tasks: list[Task] = []
    for name in names:
        spec = SPECS[name]
        tasks = spec.tasks(overrides.get(name))
        per_spec[name] = tasks
        all_tasks.extend(tasks)
    raw, metrics = run_tasks(
        all_tasks, jobs=jobs, cache=cache, policy=policy, faults=faults,
        journal=journal, resume=resume, on_partial=on_partial,
    )
    results: dict[str, Any] = {}
    for name in names:
        parts = [
            raw[(name, task.shard)] for task in per_spec[name]
            if (name, task.shard) in raw
        ]
        results[name] = SPECS[name].merge_results(parts) if parts else None
    return results, metrics
