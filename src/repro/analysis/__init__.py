"""Experiment registry: every table and figure of the paper's evaluation.

Each experiment is a plain function (:mod:`repro.analysis.experiments`)
returning a result object whose ``render()`` reproduces the paper's
rows/series; :mod:`repro.analysis.registry` wraps them in
:class:`~repro.analysis.registry.ExperimentSpec` records that the
parallel runner (:mod:`repro.runner`) shards across a process pool, and
:mod:`repro.analysis.docs` regenerates EXPERIMENTS.md from the results.

Experiment-to-paper mapping (kept in sync with
``repro.analysis.registry.SPECS``; regenerate with
``python -c "from repro.analysis import docs_table; print(docs_table())"``):

=============  ===========================  =======================================
experiment     paper reference              modules exercised
=============  ===========================  =======================================
table1         Table 1 / Section 2          machines
crossover      derived (Sections 5.5-5.6)   uniproc, gspn, workloads.spec
figure2        Figure 2 / Section 2         machines
figure7        Figure 7 / Section 5.2       caches, workloads.spec, trace
figure8        Figure 8 / Sections 5.3-5.4  caches, workloads.spec, trace
figure11       Figure 11 / Section 5.5      uniproc, gspn, caches
figure12       Figure 12 / Section 5.5      uniproc, gspn, caches
table3         Table 3 / Section 5.5        uniproc, gspn, caches, workloads.spec
table4         Table 4 / Section 5.5        uniproc, gspn, caches, workloads.spec
section5.6     Section 5.6                  gspn, dram, uniproc
figures13-17   Figures 13-17 / Section 6.2  mp, workloads.splash, coherence,
                                            interconnect
=============  ===========================  =======================================
"""

from repro.analysis.experiments import (
    crossover,
    figure2,
    figure7,
    figure8,
    figure11,
    figure12,
    figures13_17,
    section56,
    splash_figure,
    table1,
    table3,
    table4,
)
from repro.paperdata import (
    PAPER_BANK_UTILIZATION,
    PAPER_TABLE1,
    PAPER_TABLE3,
    PAPER_TABLE4,
    spec_ratio_constant,
)
from repro.analysis.render import ascii_table, percent, series_block
from repro.analysis.registry import (
    CLI_KNOBS,
    SPECS,
    ExperimentSpec,
    docs_table,
    run_experiments,
)
from repro.analysis.vision import (
    FramebufferBudget,
    MotherboardBudget,
    framebuffer_budget,
    motherboard_budget,
)

EXPERIMENTS = {
    "table1": table1,
    "crossover": crossover,
    "figure2": figure2,
    "figure7": figure7,
    "figure8": figure8,
    "figure11": figure11,
    "figure12": figure12,
    "table3": table3,
    "table4": table4,
    "section5.6": section56,
    "figures13-17": figures13_17,
}

__all__ = [
    "CLI_KNOBS",
    "EXPERIMENTS",
    "PAPER_BANK_UTILIZATION",
    "PAPER_TABLE1",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "SPECS",
    "ExperimentSpec",
    "FramebufferBudget",
    "MotherboardBudget",
    "ascii_table",
    "docs_table",
    "framebuffer_budget",
    "motherboard_budget",
    "crossover",
    "figure2",
    "figure7",
    "figure8",
    "figure11",
    "figure12",
    "figures13_17",
    "percent",
    "run_experiments",
    "section56",
    "series_block",
    "spec_ratio_constant",
    "splash_figure",
    "table1",
    "table3",
    "table4",
]
