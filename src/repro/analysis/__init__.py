"""Experiment registry: every table and figure of the paper's evaluation."""

from repro.analysis.experiments import (
    crossover,
    figure2,
    figure7,
    figure8,
    figure11,
    figure12,
    figures13_17,
    section56,
    splash_figure,
    table1,
    table3,
    table4,
)
from repro.paperdata import (
    PAPER_BANK_UTILIZATION,
    PAPER_TABLE1,
    PAPER_TABLE3,
    PAPER_TABLE4,
    spec_ratio_constant,
)
from repro.analysis.render import ascii_table, percent, series_block
from repro.analysis.vision import (
    FramebufferBudget,
    MotherboardBudget,
    framebuffer_budget,
    motherboard_budget,
)

EXPERIMENTS = {
    "table1": table1,
    "crossover": crossover,
    "figure2": figure2,
    "figure7": figure7,
    "figure8": figure8,
    "figure11": figure11,
    "figure12": figure12,
    "table3": table3,
    "table4": table4,
    "section5.6": section56,
    "figures13-17": figures13_17,
}

__all__ = [
    "EXPERIMENTS",
    "PAPER_BANK_UTILIZATION",
    "PAPER_TABLE1",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "FramebufferBudget",
    "MotherboardBudget",
    "ascii_table",
    "framebuffer_budget",
    "motherboard_budget",
    "crossover",
    "figure2",
    "figure7",
    "figure8",
    "figure11",
    "figure12",
    "figures13_17",
    "percent",
    "section56",
    "series_block",
    "spec_ratio_constant",
    "splash_figure",
    "table1",
    "table3",
    "table4",
]
