"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows and series the paper's tables
and figures report; these helpers keep the formatting consistent.
"""

from __future__ import annotations

from typing import Sequence


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A fixed-width ASCII table."""
    columns = [[str(h)] for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            if isinstance(cell, float):
                columns[i].append(f"{cell:.3f}")
            else:
                columns[i].append(str(cell))
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for r in range(1, len(columns[0])):
        lines.append(
            "  ".join(columns[c][r].rjust(widths[c]) for c in range(len(columns)))
        )
    return "\n".join(lines)


def series_block(title: str, xs: Sequence[object], series: dict[str, Sequence[float]],
                 x_label: str = "x") -> str:
    """A labelled multi-series block (one row per x value)."""
    headers = [x_label] + list(series)
    rows = [[x] + [series[name][i] for name in series] for i, x in enumerate(xs)]
    return f"{title}\n{ascii_table(headers, rows)}"


def percent(value: float) -> str:
    return f"{100 * value:.2f}%"
