"""The Section 8 vision, quantified.

Three feasibility calculations behind Figure 18's silicon-less
motherboard:

- a **framebuffer** that refreshes the display straight out of main
  memory, living off the device's internal bandwidth;
- the **bisection bandwidth** of a machine that grows by plugging in
  more integrated devices (each brings four 2.5 Gbit/s links);
- the **power budget** of a socket-only motherboard (each device
  dissipates ~1.5 W, Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.params import IntegratedDeviceParams


@dataclass(frozen=True)
class FramebufferBudget:
    width: int
    height: int
    bits_per_pixel: int
    refresh_hz: float
    bandwidth_gbytes: float  # consumed by refresh
    internal_fraction: float  # of one device's internal bandwidth

    @property
    def feasible(self) -> bool:
        """Refresh must leave most of the internal bandwidth to the CPU."""
        return self.internal_fraction < 0.25


def framebuffer_budget(
    width: int = 1280,
    height: int = 1024,
    bits_per_pixel: int = 24,
    refresh_hz: float = 72.0,
    params: IntegratedDeviceParams | None = None,
) -> FramebufferBudget:
    """Bandwidth cost of refreshing a display from main memory."""
    if min(width, height, bits_per_pixel) <= 0 or refresh_hz <= 0:
        raise ConfigError("display parameters must be positive")
    params = params or IntegratedDeviceParams()
    bytes_per_second = width * height * bits_per_pixel / 8 * refresh_hz
    gbytes = bytes_per_second / 1e9
    return FramebufferBudget(
        width=width,
        height=height,
        bits_per_pixel=bits_per_pixel,
        refresh_hz=refresh_hz,
        bandwidth_gbytes=gbytes,
        internal_fraction=gbytes / params.internal_bandwidth_gbytes,
    )


@dataclass(frozen=True)
class MotherboardBudget:
    nodes: int
    memory_gbytes: float
    bisection_gbytes: float
    power_watts: float


def motherboard_budget(
    nodes: int,
    params: IntegratedDeviceParams | None = None,
    megabits_per_device: int = 256,
    watts_per_device: float = 1.5,
) -> MotherboardBudget:
    """Aggregate capability of ``nodes`` devices on a passive board.

    Bisection bandwidth scales with node count because every added
    device brings its own links (Section 8: "the system's bi-sectional
    bandwidth increases as components are added").
    """
    if nodes < 1:
        raise ConfigError("need at least one node")
    params = params or IntegratedDeviceParams()
    per_node_io = params.io_bandwidth_gbytes
    return MotherboardBudget(
        nodes=nodes,
        memory_gbytes=nodes * megabits_per_device / 8 / 1024,
        bisection_gbytes=nodes / 2 * per_node_io,
        power_watts=nodes * watts_per_device,
    )
