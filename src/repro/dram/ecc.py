"""SEC-DED error-correcting codes over DRAM words.

Section 4.1/4.2: the device protects memory with single-error-correct /
double-error-detect (SEC-DED) Hamming codes.  Standard practice computes
ECC over 64-bit words (8 check bits, 12.5 % overhead); the directory trick
of Figure 5 widens the code word to 128 bits (9 check bits), freeing
``32 - 18 = 14`` bits per 32-byte coherence block for directory state.

This module implements a real extended Hamming code: ``encode`` produces
a codeword, ``decode`` corrects any single-bit error and detects (without
miscorrecting) any double-bit error.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.units import bits_for_bytes


def check_bits_for(data_bits: int) -> int:
    """Check bits for SEC-DED over ``data_bits``: Hamming + overall parity."""
    if data_bits <= 0:
        raise ConfigError("data width must be positive")
    r = 0
    while (1 << r) < data_bits + r + 1:
        r += 1
    return r + 1  # +1 for the overall (DED) parity bit


@dataclass(frozen=True)
class DecodeResult:
    data: int
    corrected: bool  # a single-bit error was corrected
    uncorrectable: bool  # a double-bit error was detected


class SECDED:
    """Extended Hamming SEC-DED code over a fixed data width.

    Codeword layout is the classic one: positions 1..n with check bits at
    the power-of-two positions, plus an overall parity bit at position 0.
    """

    def __init__(self, data_bits: int) -> None:
        self.data_bits = data_bits
        self.hamming_bits = check_bits_for(data_bits) - 1
        self.codeword_bits = data_bits + self.hamming_bits + 1
        # Positions 1..m excluding powers of two carry data bits.
        self._data_positions = [
            pos
            for pos in range(1, data_bits + self.hamming_bits + 1)
            if pos & (pos - 1)
        ]
        if len(self._data_positions) != data_bits:
            raise ConfigError("internal: data position count mismatch")

    @property
    def check_bits(self) -> int:
        return self.hamming_bits + 1

    @property
    def overhead(self) -> float:
        """Check bits as a fraction of data bits."""
        return self.check_bits / self.data_bits

    def encode(self, data: int) -> int:
        if data < 0 or data >> self.data_bits:
            raise ValueError(f"data does not fit in {self.data_bits} bits")
        word = 0
        for i, pos in enumerate(self._data_positions):
            if (data >> i) & 1:
                word |= 1 << pos
        for r in range(self.hamming_bits):
            parity_pos = 1 << r
            parity = 0
            pos = 1
            while pos < self.codeword_bits:
                if pos & parity_pos and (word >> pos) & 1:
                    parity ^= 1
                pos += 1
            if parity:
                word |= 1 << parity_pos
        if bin(word).count("1") & 1:
            word |= 1  # overall parity at position 0
        return word

    def decode(self, word: int) -> DecodeResult:
        syndrome = 0
        for r in range(self.hamming_bits):
            parity_pos = 1 << r
            parity = 0
            pos = 1
            while pos < self.codeword_bits:
                if pos & parity_pos and (word >> pos) & 1:
                    parity ^= 1
                pos += 1
            if parity:
                syndrome |= parity_pos
        overall = bin(word).count("1") & 1
        corrected = False
        uncorrectable = False
        if syndrome and overall:
            # Single-bit error at codeword position `syndrome`.
            word ^= 1 << syndrome
            corrected = True
        elif syndrome and not overall:
            uncorrectable = True  # double-bit error
        elif not syndrome and overall:
            word ^= 1  # error in the overall parity bit itself
            corrected = True
        data = 0
        for i, pos in enumerate(self._data_positions):
            if (word >> pos) & 1:
                data |= 1 << i
        return DecodeResult(data=data, corrected=corrected, uncorrectable=uncorrectable)


def directory_bits_per_block(block_bytes: int = 32) -> int:
    """Directory bits freed by widening ECC words from 64 to 128 bits.

    A 32-byte block holds four 64-bit words (4 x 8 = 32 check bits) or two
    128-bit words (2 x 9 = 18 check bits); the difference, 14 bits, stores
    the directory state and pointer (Figure 5).
    """
    block_bits = bits_for_bytes(block_bytes)
    narrow = (block_bits // 64) * SECDED(64).check_bits
    wide = (block_bits // 128) * SECDED(128).check_bits
    return narrow - wide


def ecc_overhead_fraction(word_bits: int = 64) -> float:
    """Memory-size overhead of ECC at the given word width.

    64-bit words cost 8/64 = 12.5 %, the paper's "12 % memory-size
    increase"; 128-bit words cost 9/128 = 7 %.
    """
    return SECDED(word_bits).overhead
