"""The 256 Mbit multi-banked DRAM device: banks, timing, ECC, directory."""

from repro.dram.bank import BankAccessResult, DRAMBank
from repro.dram.device import DeviceStats, DRAMDevice
from repro.dram.directory import (
    BROADCAST_POINTER,
    MAX_NODE_ID,
    DirectoryEntry,
    DirectoryStore,
    DirState,
)
from repro.dram.writeback import WritebackStudyResult, writeback_study
from repro.dram.ecc import (
    SECDED,
    DecodeResult,
    check_bits_for,
    directory_bits_per_block,
    ecc_overhead_fraction,
)

__all__ = [
    "BROADCAST_POINTER",
    "BankAccessResult",
    "DRAMBank",
    "DRAMDevice",
    "DecodeResult",
    "DeviceStats",
    "DirState",
    "DirectoryEntry",
    "DirectoryStore",
    "MAX_NODE_ID",
    "SECDED",
    "WritebackStudyResult",
    "writeback_study",
    "check_bits_for",
    "directory_bits_per_block",
    "ecc_overhead_fraction",
]
