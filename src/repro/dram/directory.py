"""Directory state encoded in the spare ECC bits (Figure 5).

Widening the ECC word from 64 to 128 bits frees 14 bits per 32-byte
coherence block.  This module packs a directory entry — a 2-bit state and
a 12-bit field — into those 14 bits and unpacks it again.  The 12-bit
field is either the owner/first-sharer node id (limited-pointer scheme)
or, for widely shared lines, a coarse marker that forces broadcast
invalidation.  The coherence protocol itself lives in
:mod:`repro.coherence`; this module is only the bit-level encoding,
proving the storage claim of Section 4.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.common.errors import ConfigError
from repro.common.params import DIRECTORY_BITS_PER_BLOCK

_STATE_BITS = 2
_POINTER_BITS = DIRECTORY_BITS_PER_BLOCK - _STATE_BITS
MAX_NODE_ID = (1 << _POINTER_BITS) - 2
BROADCAST_POINTER = (1 << _POINTER_BITS) - 1


class DirState(IntEnum):
    """Home-node view of one coherence block."""

    UNOWNED = 0  # only the home memory copy exists
    SHARED = 1  # one or more read-only copies; pointer names one sharer
    EXCLUSIVE = 2  # one writable copy; pointer names the owner
    SHARED_BROADCAST = 3  # too many sharers to track; invalidate by broadcast


@dataclass(frozen=True)
class DirectoryEntry:
    """One block's directory state and pointer."""

    state: DirState = DirState.UNOWNED
    pointer: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.pointer <= BROADCAST_POINTER:
            raise ConfigError(f"pointer must fit in {_POINTER_BITS} bits")

    def encode(self) -> int:
        """Pack into the 14 spare ECC bits."""
        return (int(self.state) << _POINTER_BITS) | self.pointer

    @staticmethod
    def decode(bits: int) -> "DirectoryEntry":
        if not 0 <= bits < (1 << DIRECTORY_BITS_PER_BLOCK):
            raise ConfigError("encoded entry exceeds 14 bits")
        return DirectoryEntry(
            state=DirState(bits >> _POINTER_BITS),
            pointer=bits & BROADCAST_POINTER,
        )


class DirectoryStore:
    """All directory entries of one node's local memory.

    Entries are lazily materialized — an absent block is UNOWNED, exactly
    as uninitialized spare ECC bits would read after memory is scrubbed to
    zero.
    """

    def __init__(self, block_bytes: int = 32) -> None:
        self.block_bytes = block_bytes
        self._entries: dict[int, DirectoryEntry] = {}

    def _key(self, addr: int) -> int:
        return addr // self.block_bytes

    def lookup(self, addr: int) -> DirectoryEntry:
        return self._entries.get(self._key(addr), DirectoryEntry())

    def update(self, addr: int, entry: DirectoryEntry) -> None:
        key = self._key(addr)
        if entry.state is DirState.UNOWNED and entry.pointer == 0:
            self._entries.pop(key, None)
        else:
            self._entries[key] = entry

    def __len__(self) -> int:
        return len(self._entries)

    def storage_overhead_bits(self) -> int:
        """Extra storage the directory consumes beyond ECC: zero, by design."""
        return 0
