"""A single DRAM bank with column buffers and timing.

Each bank (Section 4.1, Figure 3) can move one 4 Kbit column between the
sense-amplifier array and its three 512-byte column buffers per access.
An access occupies the bank for ``access_cycles`` (30 ns = 6 cycles at
200 MHz) and is followed by a precharge window during which the bank
cannot start a new transaction (the GSPN transition T2 of Figure 9).

The bank model is a timing resource: callers ask for an array access at a
given cycle and learn when the data is available and when the bank frees
up.  Column-buffer *contents* are tracked by the cache models; here we
track which rows the buffers currently hold so speculative writebacks and
utilization statistics can be computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import SimulationError
from repro.common.params import DRAMTiming


@dataclass
class BankAccessResult:
    """Outcome of one array access request."""

    start_cycle: int  # when the access actually began (after queueing)
    data_ready_cycle: int  # when the column is in the buffer
    bank_free_cycle: int  # when the bank can accept the next access
    queued_cycles: int  # how long the request waited for the bank


@dataclass
class DRAMBank:
    """Timing model of one bank.

    ``busy_until`` is the first cycle at which a new access may start.
    ``busy_cycles`` accumulates occupied time for utilization reporting
    (the paper quotes gcc keeping each of 16 banks busy 1.2 % of cycles).
    """

    timing: DRAMTiming = field(default_factory=DRAMTiming)
    busy_until: int = 0
    busy_cycles: int = 0
    accesses: int = 0
    open_rows: dict[int, int] = field(default_factory=dict)  # buffer slot -> row

    def access(self, cycle: int, row: int, buffer_slot: int = 0) -> BankAccessResult:
        """Fetch ``row`` into ``buffer_slot`` starting no earlier than ``cycle``."""
        if cycle < 0:
            raise SimulationError("access cycle must be non-negative")
        start = max(cycle, self.busy_until)
        ready = start + self.timing.access_cycles
        free = ready + self.timing.precharge_cycles
        self.busy_until = free
        self.busy_cycles += free - start
        self.accesses += 1
        self.open_rows[buffer_slot] = row
        return BankAccessResult(
            start_cycle=start,
            data_ready_cycle=ready,
            bank_free_cycle=free,
            queued_cycles=start - cycle,
        )

    def row_in_buffer(self, row: int) -> bool:
        """True when some column buffer currently holds ``row``."""
        return row in self.open_rows.values()

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of ``elapsed_cycles`` during which the bank was busy."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed_cycles)

    def reset(self) -> None:
        self.busy_until = 0
        self.busy_cycles = 0
        self.accesses = 0
        self.open_rows.clear()
