"""Speculative-writeback study (Section 4.1).

The paper credits integration with "speculative writebacks, removing
contention between cache misses and dirty lines": a dirty column can be
retired to the array during idle bank cycles, so a later miss to that
buffer never waits behind the writeback.  A conventional design must
write the dirty victim back *before* (or while) fetching the new line,
serializing two array accesses on the critical path when they hit the
same bank.

``writeback_study`` replays a data trace through the proposed D-cache on
top of the banked DRAM timing model under both policies and reports the
average miss service time — the quantitative version of the claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caches.column_buffer import ColumnBufferCache
from repro.caches.victim import VictimCache
from repro.common.params import IntegratedDeviceParams
from repro.dram.device import DRAMDevice
from repro.trace.stream import ReferenceTrace


@dataclass
class WritebackStudyResult:
    policy: str
    misses: int
    dirty_evictions: int
    total_miss_cycles: int
    hidden_writebacks: int  # absorbed into idle bank time (speculative only)
    serialized_writebacks: int  # paid on the miss critical path

    @property
    def mean_miss_cycles(self) -> float:
        return self.total_miss_cycles / self.misses if self.misses else 0.0

    @property
    def hidden_fraction(self) -> float:
        total = self.hidden_writebacks + self.serialized_writebacks
        return self.hidden_writebacks / total if total else 0.0


def writeback_study(
    trace: ReferenceTrace,
    speculative: bool,
    params: IntegratedDeviceParams | None = None,
    with_victim: bool = True,
) -> WritebackStudyResult:
    """Replay ``trace`` under one writeback policy.

    Time advances one cycle per cache hit; a miss advances to the DRAM
    fill completion.  Under the *conventional* policy a dirty eviction
    issues its writeback access before the fill; under the *speculative*
    policy the writeback is attempted in the background at fill time and
    only serializes when its bank never goes idle before the next miss
    to it.
    """
    params = params or IntegratedDeviceParams()
    device = DRAMDevice(params)
    pending_eviction: list[tuple[int, bool]] = []

    def remember_eviction(addr: int, dirty: bool) -> None:
        pending_eviction.append((addr, dirty))

    victim = VictimCache(params.victim) if with_victim else None
    cache = ColumnBufferCache(
        params.dcache_geometry, victim=victim, on_evict_line=remember_eviction
    )

    now = 0
    misses = 0
    dirty_evictions = 0
    total_miss_cycles = 0
    hidden = 0
    serialized = 0
    deferred: list[int] = []  # speculative writebacks not yet retired

    for addr, write in trace:
        pending_eviction.clear()
        hit = cache.access(addr, write)
        if hit:
            now += 1
            continue
        misses += 1
        start = now
        dirty_victim = next(
            (evicted for evicted, dirty in pending_eviction if dirty), None
        )
        if dirty_victim is not None:
            dirty_evictions += 1
        if not speculative and dirty_victim is not None:
            # Conventional: retire the dirty line first.
            result = device.access(now, dirty_victim)
            now = result.data_ready_cycle
            serialized += 1
        fill = device.access(now, addr)
        now = fill.data_ready_cycle
        if speculative and dirty_victim is not None:
            if device.try_speculative_writeback(now, dirty_victim):
                hidden += 1
            else:
                deferred.append(dirty_victim)
                serialized += 1  # will contend with a later access
        # Retire any deferred speculative writebacks that now fit.
        if speculative and deferred:
            still = [
                pending
                for pending in deferred
                if not device.try_speculative_writeback(now, pending)
            ]
            hidden += len(deferred) - len(still)
            serialized -= len(deferred) - len(still)
            deferred = still
        total_miss_cycles += now - start
    return WritebackStudyResult(
        policy="speculative" if speculative else "conventional",
        misses=misses,
        dirty_evictions=dirty_evictions,
        total_miss_cycles=total_miss_cycles,
        hidden_writebacks=hidden,
        serialized_writebacks=max(0, serialized),
    )
