"""The multi-banked DRAM device.

Banks are interleaved at column (512 B) granularity; address bits just
above the column offset select the bank, so consecutive columns live in
consecutive banks and the 16 banks serve independent requests (Section
4.1).  The device also models the *speculative writeback* the paper
credits to integration: a dirty column can be written back to the array
during idle bank cycles, removing writeback contention from misses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.address import bank_of
from repro.common.params import IntegratedDeviceParams
from repro.common.units import log2_int
from repro.dram.bank import BankAccessResult, DRAMBank


@dataclass
class DeviceStats:
    accesses: int = 0
    total_queued_cycles: int = 0
    speculative_writebacks: int = 0
    blocked_writebacks: int = 0

    @property
    def mean_queue_cycles(self) -> float:
        return self.total_queued_cycles / self.accesses if self.accesses else 0.0


class DRAMDevice:
    """A bank-interleaved DRAM array with per-bank timing."""

    def __init__(self, params: IntegratedDeviceParams | None = None) -> None:
        self.params = params or IntegratedDeviceParams()
        self.banks = [
            DRAMBank(timing=self.params.dram) for _ in range(self.params.num_banks)
        ]
        self.stats = DeviceStats()
        self._column_shift = log2_int(self.params.column_bytes)
        self._bank_shift = self._column_shift + log2_int(self.params.num_banks)

    def bank_index(self, addr: int) -> int:
        return bank_of(addr, self.params.column_bytes, self.params.num_banks)

    def row_of(self, addr: int) -> int:
        """The DRAM row (column index within the bank) holding ``addr``."""
        return addr >> self._bank_shift

    def access(self, cycle: int, addr: int, buffer_slot: int = 0) -> BankAccessResult:
        """Fetch the column containing ``addr`` into a buffer of its bank."""
        bank = self.banks[self.bank_index(addr)]
        result = bank.access(cycle, self.row_of(addr), buffer_slot)
        self.stats.accesses += 1
        self.stats.total_queued_cycles += result.queued_cycles
        return result

    def try_speculative_writeback(self, cycle: int, addr: int) -> bool:
        """Write a dirty column back if its bank is idle at ``cycle``.

        Returns True when the writeback was absorbed into idle time; False
        when the bank was busy and the writeback must contend later (the
        conventional-design behaviour the paper avoids).
        """
        bank = self.banks[self.bank_index(addr)]
        if bank.busy_until > cycle:
            self.stats.blocked_writebacks += 1
            return False
        bank.access(cycle, self.row_of(addr))
        self.stats.speculative_writebacks += 1
        return True

    def utilizations(self, elapsed_cycles: int) -> list[float]:
        return [bank.utilization(elapsed_cycles) for bank in self.banks]

    def reset(self) -> None:
        for bank in self.banks:
            bank.reset()
        self.stats = DeviceStats()
