"""Parametric machine models: SS-5, SS-10/61 and the proposed device.

Section 2 motivates integration with two real machines:

- **SparcStation-5**: 85 MHz single-scalar MicroSparc-II, single-level
  16 KB I / 8 KB D caches, memory controller *on the CPU die* — low main
  memory latency.
- **SparcStation-10/61**: 60 MHz superscalar SuperSparc, 20 KB I / 16 KB
  D first-level caches, 1 MB second-level cache, memory behind MBus —
  high main memory latency.

The models carry per-level capacities and latencies and a base CPI.
They feed the Figure 2 stride-walk microbenchmark and the Table 1
runtime model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.common.units import KB, MB, MHZ, time_for_cycles


@dataclass(frozen=True)
class CacheLevel:
    """One level of a machine's cache hierarchy."""

    size_bytes: int
    line_bytes: int
    latency_ns: float
    associativity: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.latency_ns <= 0:
            raise ConfigError("cache level parameters must be positive")


@dataclass(frozen=True)
class MachineModel:
    """A whole machine: data-cache hierarchy + memory + core."""

    name: str
    clock_mhz: float
    # CPI with all references hitting the first level.
    base_cpi: float  # repro: unit(cpi)
    levels: tuple[CacheLevel, ...] = field(default_factory=tuple)
    memory_latency_ns: float = 200.0
    # Loads+stores per instruction.
    reference_fraction: float = 0.35  # repro: unit(fraction)

    def __post_init__(self) -> None:
        if self.clock_mhz <= 0 or self.base_cpi <= 0:
            raise ConfigError("clock and base CPI must be positive")
        if not self.levels:
            raise ConfigError("a machine needs at least one cache level")
        sizes = [level.size_bytes for level in self.levels]
        if sizes != sorted(sizes):
            raise ConfigError("cache levels must grow monotonically")

    @property
    def cycle_ns(self) -> float:  # repro: unit(ns)
        return 1e3 / self.clock_mhz

    def access_time_ns(self, array_bytes: int, stride_bytes: int) -> float:
        """Mean load latency while walking ``array_bytes`` at ``stride_bytes``.

        The lmbench-style model behind Figure 2: the walk hits in the
        smallest level that holds the whole array; otherwise every
        distinct line touched costs the next level, amortized over the
        accesses that share a line.
        """
        if array_bytes <= 0 or stride_bytes <= 0:
            raise ConfigError("array and stride must be positive")
        for depth, level in enumerate(self.levels):
            if array_bytes <= level.size_bytes:
                return level.latency_ns
            # The array overflows this level: accesses miss here whenever
            # they touch a new line of the next level upward.
            next_latency = (
                self.levels[depth + 1].latency_ns
                if depth + 1 < len(self.levels)
                else self.memory_latency_ns
            )
            if depth + 1 < len(self.levels) and array_bytes <= self.levels[
                depth + 1
            ].size_bytes:
                miss_fraction = min(1.0, stride_bytes / level.line_bytes)
                return (
                    level.latency_ns
                    + miss_fraction * (next_latency - 0.0)
                )
        # Overflows every level: misses all the way to memory.
        last = self.levels[-1]
        miss_fraction = min(1.0, stride_bytes / last.line_bytes)
        return last.latency_ns + miss_fraction * self.memory_latency_ns

    def runtime_seconds(  # repro: unit(s)
        self,
        instruction_count: float,
        miss_rate_per_level: tuple[float, ...],
    ) -> float:
        """Execution time given per-level miss rates among references.

        ``miss_rate_per_level[i]`` is the fraction of data references that
        miss level ``i`` (and hit level ``i+1`` or, for the last entry,
        memory).  Instruction fetch overheads are folded into base CPI.
        """
        if len(miss_rate_per_level) != len(self.levels):
            raise ConfigError("need one miss rate per cache level")
        cpi = self.base_cpi
        for depth, miss in enumerate(miss_rate_per_level):
            next_latency_ns = (
                self.levels[depth + 1].latency_ns
                if depth + 1 < len(self.levels)
                else self.memory_latency_ns
            )
            cpi += (
                self.reference_fraction
                * miss
                * next_latency_ns
                / self.cycle_ns
            )
        # CPI times instruction count changes quantity: it is a cycle
        # count, converted to wall-clock time at the machine's clock.
        total_cycles = instruction_count * cpi  # repro: unit(cycles)
        return time_for_cycles(total_cycles, self.clock_mhz * MHZ)


def sparcstation_5() -> MachineModel:
    """SS-5: slow, simple core with the memory controller on-die."""
    return MachineModel(
        name="SparcStation-5",
        clock_mhz=85.0,
        base_cpi=1.35,
        levels=(CacheLevel(8 * KB, 16, latency_ns=12.0),),
        memory_latency_ns=250.0,
    )


def sparcstation_10() -> MachineModel:
    """SS-10/61: faster superscalar core, deep hierarchy, distant memory."""
    return MachineModel(
        name="SparcStation-10/61",
        clock_mhz=60.0,
        base_cpi=0.62,  # ~3-way superscalar SuperSparc
        levels=(
            CacheLevel(16 * KB, 32, latency_ns=17.0),
            CacheLevel(1 * MB, 32, latency_ns=85.0),
        ),
        memory_latency_ns=620.0,
    )


def integrated_device() -> MachineModel:
    """The proposed 200 MHz integrated processor/memory device."""
    return MachineModel(
        name="Integrated",
        clock_mhz=200.0,
        base_cpi=1.2,
        levels=(CacheLevel(16 * KB, 512, latency_ns=5.0, associativity=2),),
        memory_latency_ns=30.0,
    )
