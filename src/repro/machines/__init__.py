"""Machine models: SS-5, SS-10/61, the integrated device; Table 1 and
Figure 2 reproductions."""

from repro.machines.models import (
    CacheLevel,
    MachineModel,
    integrated_device,
    sparcstation_5,
    sparcstation_10,
)
from repro.machines.simulated_walk import (
    SimulatedPoint,
    simulate_integrated_walk,
    simulate_machine_walk,
    simulate_walk,
)
from repro.machines.stridewalk import (
    DEFAULT_SIZES,
    DEFAULT_STRIDES,
    StrideWalkPoint,
    crossover_sizes,
    stride_walk_curve,
)
from repro.machines.table1 import (
    SPEC92_CLASS,
    SYNOPSYS_CLASS,
    Table1Result,
    WorkloadClass,
    table1_model,
)

__all__ = [
    "CacheLevel",
    "DEFAULT_SIZES",
    "DEFAULT_STRIDES",
    "MachineModel",
    "SPEC92_CLASS",
    "SimulatedPoint",
    "simulate_integrated_walk",
    "simulate_machine_walk",
    "simulate_walk",
    "SYNOPSYS_CLASS",
    "StrideWalkPoint",
    "Table1Result",
    "WorkloadClass",
    "crossover_sizes",
    "integrated_device",
    "sparcstation_5",
    "sparcstation_10",
    "stride_walk_curve",
    "table1_model",
]
