"""The Figure 2 microbenchmark: latency vs array size and stride.

Walks arrays of increasing size at various strides through a
:class:`~repro.machines.models.MachineModel` and reports the mean load
latency — the classic lmbench ``lat_mem_rd`` plot the paper uses to
expose the SS-5's lower main-memory latency.

An optional prefetch model covers the SS-10's prefetch unit, which hides
memory access time for small linear strides (the paper's footnote 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import KB, MB
from repro.machines.models import MachineModel

DEFAULT_SIZES = tuple(
    size
    for size in (
        4 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB, 128 * KB, 256 * KB,
        512 * KB, 1 * MB, 2 * MB, 4 * MB, 8 * MB, 16 * MB, 32 * MB, 64 * MB,
    )
)
DEFAULT_STRIDES = (16, 64, 256, 4096)


@dataclass(frozen=True)
class StrideWalkPoint:
    array_bytes: int
    stride_bytes: int
    latency_ns: float


def stride_walk_curve(
    machine: MachineModel,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    strides: tuple[int, ...] = DEFAULT_STRIDES,
    prefetch_threshold_bytes: int = 0,
) -> list[StrideWalkPoint]:
    """All (size, stride) latency points for one machine.

    ``prefetch_threshold_bytes`` > 0 models a sequential prefetch unit:
    walks with strides at or below the threshold see first-level latency
    regardless of array size (the SS-10 behaviour for small strides).
    """
    points = []
    for stride in strides:
        for size in sizes:
            if prefetch_threshold_bytes and stride <= prefetch_threshold_bytes:
                latency = machine.levels[0].latency_ns
            else:
                latency = machine.access_time_ns(size, stride)
            points.append(StrideWalkPoint(size, stride, latency))
    return points


def crossover_sizes(
    fast_far: MachineModel,
    slow_far: MachineModel,
    stride: int = 4096,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
) -> list[int]:
    """Array sizes at which ``fast_far`` beats ``slow_far``.

    For the paper's pair: the SS-5 wins once the working set spills the
    SS-10's 1 MB second-level cache.
    """
    wins = []
    for size in sizes:
        if fast_far.access_time_ns(size, stride) < slow_far.access_time_ns(
            size, stride
        ):
            wins.append(size)
    return wins
