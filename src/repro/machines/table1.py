"""The Table 1 runtime model: why the SS-5 beats the SS-10/61 on Synopsys.

Two workload classes, modelled by their per-level miss behaviour:

- **Spec'92-class**: small working sets; nearly everything hits the
  SS-10's 1 MB second-level cache, so its faster superscalar core wins.
- **Synopsys-class**: a >50 MB working set misses every cache level on
  both machines, so the machine with the lower *main memory latency* —
  the SS-5, memory controller on-die — wins despite its slower core.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machines.models import MachineModel, sparcstation_5, sparcstation_10


@dataclass(frozen=True)
class WorkloadClass:
    """Per-machine-level miss behaviour of one workload family."""

    name: str
    instruction_count: float
    # Miss rate of data references at a cache level of a given capacity:
    # modelled as a step function of working-set size vs capacity.
    working_set_bytes: int
    resident_miss_rate: float  # miss rate when the level holds the working set
    overflow_miss_rate: float  # miss rate when it does not

    def miss_rates_for(self, machine: MachineModel) -> tuple[float, ...]:
        rates = []
        for level in machine.levels:
            if self.working_set_bytes <= level.size_bytes:
                rates.append(self.resident_miss_rate)
            else:
                rates.append(self.overflow_miss_rate)
        # A reference that missed an inner level but hits a later level
        # must not be double-charged: only the last overflowing level pays
        # the full next-level latency; inner levels pay their own.  The
        # MachineModel adds each level's contribution independently, so
        # inner-level misses that the next level absorbs are already
        # captured by that level's latency term.
        return tuple(rates)


SPEC92_CLASS = WorkloadClass(
    name="Spec'92-class",
    instruction_count=25e9,
    working_set_bytes=192 * 1024,
    resident_miss_rate=0.02,
    overflow_miss_rate=0.07,
)

SYNOPSYS_CLASS = WorkloadClass(
    name="Synopsys-class",
    instruction_count=80e9,
    working_set_bytes=50 * 1024 * 1024,
    resident_miss_rate=0.02,
    overflow_miss_rate=0.085,
)


@dataclass(frozen=True)
class Table1Result:
    machine: str
    spec_runtime_s: float
    synopsys_runtime_s: float


def table1_model(
    machines: tuple[MachineModel, ...] | None = None,
    spec: WorkloadClass = SPEC92_CLASS,
    synopsys: WorkloadClass = SYNOPSYS_CLASS,
) -> list[Table1Result]:
    """Runtimes of both workload classes on both machines."""
    machines = machines or (sparcstation_5(), sparcstation_10())
    results = []
    for machine in machines:
        results.append(
            Table1Result(
                machine=machine.name,
                spec_runtime_s=machine.runtime_seconds(
                    spec.instruction_count, spec.miss_rates_for(machine)
                ),
                synopsys_runtime_s=machine.runtime_seconds(
                    synopsys.instruction_count, synopsys.miss_rates_for(machine)
                ),
            )
        )
    return results
