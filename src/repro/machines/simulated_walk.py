"""Simulation-based stride walk: Figure 2 by cache simulation.

The analytic model in :mod:`repro.machines.stridewalk` computes each
curve point in closed form; this module *measures* the same quantity by
driving a stride-walk reference trace through real cache simulators with
per-level latencies.  The two must agree — a cross-check between the
machine models and the cache substrate — and the simulated path also
covers organizations the analytic model cannot, like the integrated
device's 512-byte-line column buffers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caches.base import Cache
from repro.caches.column_buffer import proposed_dcache
from repro.caches.set_assoc import SetAssociativeCache
from repro.common.params import CacheGeometry, IntegratedDeviceParams
from repro.machines.models import MachineModel
from repro.trace.generators import strided_sweep


@dataclass(frozen=True)
class SimulatedPoint:
    array_bytes: int
    stride_bytes: int
    latency_ns: float
    miss_rate: float


def _walk_trace(array_bytes: int, stride_bytes: int, passes: int):
    count = max(1, array_bytes // stride_bytes)
    return strided_sweep(0, stride_bytes, count, stride_bytes, sweeps=passes)


def simulate_walk(
    caches: list[tuple[Cache, float]],
    memory_latency_ns: float,
    array_bytes: int,
    stride_bytes: int,
    passes: int = 4,
) -> SimulatedPoint:
    """Mean measured load latency for one (size, stride) point.

    ``caches`` is an ordered list of (cache, latency_ns); a reference is
    charged the first level it hits, or memory.  The first pass warms the
    caches and is excluded from the average (as lmbench does).
    """
    trace = _walk_trace(array_bytes, stride_bytes, passes)
    per_pass = len(trace) // passes
    total_ns = 0.0
    measured = 0
    misses = 0
    for position, (addr, _) in enumerate(trace):
        latency = memory_latency_ns
        hit_level = None
        for level, (cache, level_ns) in enumerate(caches):
            if cache.access(int(addr)):
                latency = level_ns
                hit_level = level
                break
            # A miss at this level falls through (and fills it).
        if position >= per_pass:  # skip the warmup pass
            total_ns += latency
            measured += 1
            if hit_level is None:
                misses += 1
    return SimulatedPoint(
        array_bytes=array_bytes,
        stride_bytes=stride_bytes,
        latency_ns=total_ns / measured if measured else 0.0,
        miss_rate=misses / measured if measured else 0.0,
    )


def machine_caches(machine: MachineModel) -> list[tuple[Cache, float]]:
    """Build cache simulators matching a machine model's hierarchy."""
    return [
        (
            SetAssociativeCache(
                CacheGeometry(
                    level.size_bytes, level.line_bytes,
                    level.associativity,
                )
            ),
            level.latency_ns,
        )
        for level in machine.levels
    ]


def simulate_machine_walk(
    machine: MachineModel,
    array_bytes: int,
    stride_bytes: int,
    passes: int = 4,
) -> SimulatedPoint:
    """Measured stride-walk latency on a :class:`MachineModel`."""
    return simulate_walk(
        machine_caches(machine),
        machine.memory_latency_ns,
        array_bytes,
        stride_bytes,
        passes,
    )


def simulate_integrated_walk(
    array_bytes: int,
    stride_bytes: int,
    params: IntegratedDeviceParams | None = None,
    passes: int = 4,
) -> SimulatedPoint:
    """The integrated device on the same microbenchmark.

    Column-buffer hits cost one 5 ns cycle; misses cost the 30 ns DRAM
    array access — flat in array size, the device's whole argument.
    """
    params = params or IntegratedDeviceParams()
    cycle_ns = params.pipeline.cycle_ns
    dcache = proposed_dcache(params)
    return simulate_walk(
        [(dcache, cycle_ns)],
        params.dram.access_cycles * cycle_ns,
        array_bytes,
        stride_bytes,
        passes,
    )
