"""Functional simulator for the mini-RISC ISA.

Executes an assembled :class:`~repro.isa.assembler.Program`, producing the
architectural result *and* the instruction-fetch / data-reference traces
that feed the cache simulators — the same role SHADE played for the
paper's measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import SimulationError
from repro.isa.assembler import Program
from repro.isa.instructions import WORD_BYTES, Instruction, Opcode
from repro.trace.stream import ReferenceTrace

_MASK32 = 0xFFFF_FFFF


def _signed(value: int) -> int:
    value &= _MASK32
    return value - (1 << 32) if value & (1 << 31) else value


@dataclass
class ExecutionResult:
    """Architectural outcome plus the reference traces."""

    instructions_executed: int
    registers: list[int]
    memory: dict[int, int]
    instruction_trace: ReferenceTrace
    data_trace: ReferenceTrace
    executed: list[Instruction] = field(default_factory=list)

    def load_word(self, addr: int) -> int:
        return self.memory.get(addr, 0)


class CPU:
    """Single-cycle functional interpreter with trace collection."""

    def __init__(self, program: Program, max_instructions: int = 10_000_000,
                 keep_instruction_objects: bool = False) -> None:
        self.program = program
        self.max_instructions = max_instructions
        self.keep_instruction_objects = keep_instruction_objects

    def run(self) -> ExecutionResult:
        program = self.program
        regs = [0] * 32
        memory = dict(program.memory)
        pc = program.entry
        ifetch: list[int] = []
        data_addrs: list[int] = []
        data_writes: list[bool] = []
        executed: list[Instruction] = []
        count = 0

        while True:
            if count >= self.max_instructions:
                raise SimulationError(
                    f"instruction budget exceeded ({self.max_instructions})"
                )
            instr = program.instructions.get(pc)
            if instr is None:
                raise SimulationError(f"no instruction at pc={pc:#x}")
            ifetch.append(pc)
            if self.keep_instruction_objects:
                executed.append(instr)
            count += 1
            next_pc = pc + WORD_BYTES
            op = instr.opcode

            if op is Opcode.HALT:
                break
            elif op is Opcode.NOP:
                pass
            elif op is Opcode.ADD:
                regs[instr.rd] = (regs[instr.rs1] + regs[instr.rs2]) & _MASK32
            elif op is Opcode.SUB:
                regs[instr.rd] = (regs[instr.rs1] - regs[instr.rs2]) & _MASK32
            elif op is Opcode.MUL:
                regs[instr.rd] = (
                    _signed(regs[instr.rs1]) * _signed(regs[instr.rs2])
                ) & _MASK32
            elif op is Opcode.DIV:
                divisor = _signed(regs[instr.rs2])
                if divisor == 0:
                    raise SimulationError(f"division by zero at pc={pc:#x}")
                regs[instr.rd] = int(
                    _signed(regs[instr.rs1]) / divisor
                ) & _MASK32
            elif op is Opcode.AND:
                regs[instr.rd] = regs[instr.rs1] & regs[instr.rs2]
            elif op is Opcode.OR:
                regs[instr.rd] = regs[instr.rs1] | regs[instr.rs2]
            elif op is Opcode.XOR:
                regs[instr.rd] = regs[instr.rs1] ^ regs[instr.rs2]
            elif op is Opcode.SLT:
                regs[instr.rd] = int(
                    _signed(regs[instr.rs1]) < _signed(regs[instr.rs2])
                )
            elif op is Opcode.SLL:
                regs[instr.rd] = (regs[instr.rs1] << (regs[instr.rs2] & 31)) & _MASK32
            elif op is Opcode.SRL:
                regs[instr.rd] = (regs[instr.rs1] & _MASK32) >> (regs[instr.rs2] & 31)
            elif op is Opcode.ADDI:
                regs[instr.rd] = (regs[instr.rs1] + instr.imm) & _MASK32
            elif op is Opcode.ANDI:
                regs[instr.rd] = regs[instr.rs1] & (instr.imm & _MASK32)
            elif op is Opcode.ORI:
                regs[instr.rd] = regs[instr.rs1] | (instr.imm & _MASK32)
            elif op is Opcode.SLTI:
                regs[instr.rd] = int(_signed(regs[instr.rs1]) < instr.imm)
            elif op is Opcode.SLLI:
                regs[instr.rd] = (regs[instr.rs1] << (instr.imm & 31)) & _MASK32
            elif op is Opcode.SRLI:
                regs[instr.rd] = (regs[instr.rs1] & _MASK32) >> (instr.imm & 31)
            elif op is Opcode.LUI:
                regs[instr.rd] = (instr.imm << 16) & _MASK32
            elif op is Opcode.LD:
                addr = (regs[instr.rs1] + instr.imm) & _MASK32
                self._check_alignment(addr, pc)
                data_addrs.append(addr)
                data_writes.append(False)
                regs[instr.rd] = memory.get(addr, 0)
            elif op is Opcode.ST:
                addr = (regs[instr.rs1] + instr.imm) & _MASK32
                self._check_alignment(addr, pc)
                data_addrs.append(addr)
                data_writes.append(True)
                memory[addr] = regs[instr.rs2] & _MASK32
            elif op is Opcode.BEQ:
                if regs[instr.rs1] == regs[instr.rs2]:
                    next_pc = pc + instr.imm
            elif op is Opcode.BNE:
                if regs[instr.rs1] != regs[instr.rs2]:
                    next_pc = pc + instr.imm
            elif op is Opcode.BLT:
                if _signed(regs[instr.rs1]) < _signed(regs[instr.rs2]):
                    next_pc = pc + instr.imm
            elif op is Opcode.BGE:
                if _signed(regs[instr.rs1]) >= _signed(regs[instr.rs2]):
                    next_pc = pc + instr.imm
            elif op is Opcode.JAL:
                if instr.rd:
                    regs[instr.rd] = next_pc
                next_pc = instr.imm
            elif op is Opcode.JALR:
                target = (regs[instr.rs1] + instr.imm) & ~3
                if instr.rd:
                    regs[instr.rd] = next_pc
                next_pc = target
            regs[0] = 0
            pc = next_pc

        return ExecutionResult(
            instructions_executed=count,
            registers=regs,
            memory=memory,
            instruction_trace=ReferenceTrace.reads(np.asarray(ifetch, dtype=np.int64)),
            data_trace=ReferenceTrace(
                np.asarray(data_addrs, dtype=np.int64),
                np.asarray(data_writes, dtype=bool),
            ),
            executed=executed,
        )

    @staticmethod
    def _check_alignment(addr: int, pc: int) -> None:
        if addr % WORD_BYTES:
            raise SimulationError(f"unaligned access {addr:#x} at pc={pc:#x}")
