"""Kernel programs for the mini-RISC ISA.

Each function returns assembly source parameterized by problem size.
These are real, executing programs whose traces cross-validate the
synthetic workload proxies: streaming (vector sum), blocked reuse
(matrix multiply), pointer chasing (list traversal) and the classic
stride walk used for Figure 2.
"""

from __future__ import annotations


def vector_sum(n: int = 1024) -> str:
    """Sum an ``n``-word array: a pure unit-stride streaming kernel."""
    return f"""
    .data
    .org 0x100000
array: .space {4 * n}

    .text
main:
    la   r1, array        # cursor
    li   r2, {n}          # remaining elements
    li   r3, 0            # accumulator
loop:
    ld   r4, 0(r1)
    add  r3, r3, r4
    addi r1, r1, 4
    addi r2, r2, -1
    bne  r2, r0, loop
    st   r3, 0(r1)        # store the checksum just past the array
    halt
"""


def fill_array(n: int = 1024, value: int = 7) -> str:
    """Store ``value`` into every element: a streaming write kernel."""
    return f"""
    .data
    .org 0x100000
buffer: .space {4 * n}

    .text
main:
    la   r1, buffer
    li   r2, {n}
    li   r3, {value}
loop:
    st   r3, 0(r1)
    addi r1, r1, 4
    addi r2, r2, -1
    bne  r2, r0, loop
    halt
"""


def matmul(n: int = 8) -> str:
    """Naive n x n integer matrix multiply C = A x B (row-major words).

    A is filled with row+1, B with the identity, so C must equal A —
    the test suite checks this architecturally.
    """
    a, b, c = 0x100000, 0x100000 + 4 * n * n, 0x100000 + 8 * n * n
    return f"""
    .data
    .org {a:#x}
a_mat: .space {4 * n * n}
b_mat: .space {4 * n * n}
c_mat: .space {4 * n * n}

    .text
main:
    # Fill A[i][j] = i + 1, B = identity.
    li   r1, 0            # i
init_i:
    li   r2, 0            # j
init_j:
    # A[i][j] = i + 1
    li   r5, {n}
    mul  r6, r1, r5
    add  r6, r6, r2
    slli r6, r6, 2
    la   r7, a_mat
    add  r7, r7, r6
    addi r8, r1, 1
    st   r8, 0(r7)
    # B[i][j] = (i == j)
    la   r7, b_mat
    add  r7, r7, r6
    li   r8, 0
    bne  r1, r2, not_diag
    li   r8, 1
not_diag:
    st   r8, 0(r7)
    addi r2, r2, 1
    li   r5, {n}
    blt  r2, r5, init_j
    addi r1, r1, 1
    blt  r1, r5, init_i

    # C = A x B.
    li   r1, 0            # i
mul_i:
    li   r2, 0            # j
mul_j:
    li   r3, 0            # k
    li   r9, 0            # acc
mul_k:
    li   r5, {n}
    mul  r6, r1, r5
    add  r6, r6, r3
    slli r6, r6, 2
    la   r7, a_mat
    add  r7, r7, r6
    ld   r10, 0(r7)       # A[i][k]
    mul  r6, r3, r5
    add  r6, r6, r2
    slli r6, r6, 2
    la   r7, b_mat
    add  r7, r7, r6
    ld   r11, 0(r7)       # B[k][j]
    mul  r12, r10, r11
    add  r9, r9, r12
    addi r3, r3, 1
    blt  r3, r5, mul_k
    mul  r6, r1, r5
    add  r6, r6, r2
    slli r6, r6, 2
    la   r7, c_mat
    add  r7, r7, r6
    st   r9, 0(r7)
    addi r2, r2, 1
    li   r5, {n}
    blt  r2, r5, mul_j
    addi r1, r1, 1
    blt  r1, r5, mul_i
    halt
"""


def list_traversal(nodes: int = 256, node_stride_words: int = 16,
                   laps: int = 4) -> str:
    """Build a linked list with ``node_stride_words`` spacing, traverse it
    ``laps`` times summing payloads: a pointer-chasing kernel."""
    stride = 4 * node_stride_words
    return f"""
    .data
    .org 0x100000
heap: .space {stride * (nodes + 1)}

    .text
main:
    # Build: node i at heap + i*stride; node.next at +0, payload at +4.
    la   r1, heap
    li   r2, {nodes}
    li   r3, 1            # payload value = node index + 1
build:
    addi r4, r1, {stride} # next pointer
    st   r4, 0(r1)
    st   r3, 4(r1)
    mv   r1, r4
    addi r3, r3, 1
    addi r2, r2, -1
    bne  r2, r0, build
    st   r0, 0(r1)        # terminate list

    li   r9, {laps}       # laps
    li   r8, 0            # checksum
lap:
    la   r1, heap
walk:
    ld   r5, 4(r1)        # payload
    add  r8, r8, r5
    ld   r1, 0(r1)        # follow next
    bne  r1, r0, walk
    addi r9, r9, -1
    bne  r9, r0, lap
    la   r1, heap
    st   r8, 8(r1)        # record checksum in node 0's third word
    halt
"""


def stride_walk(array_bytes: int = 65536, stride_bytes: int = 64,
                passes: int = 4) -> str:
    """Walk an array at a fixed stride — the Figure 2 microbenchmark."""
    iters = max(1, array_bytes // stride_bytes)
    return f"""
    .data
    .org 0x100000
arena: .space {array_bytes + stride_bytes}

    .text
main:
    li   r9, {passes}
pass_loop:
    la   r1, arena
    li   r2, {iters}
walk:
    ld   r3, 0(r1)
    addi r1, r1, {stride_bytes}
    addi r2, r2, -1
    bne  r2, r0, walk
    addi r9, r9, -1
    bne  r9, r0, pass_loop
    halt
"""


def saxpy(n: int = 1024, a: int = 3) -> str:
    """y[i] = a*x[i] + y[i]: two streams, one read-write — the canonical
    vector kernel with a store on every iteration."""
    return f"""
    .data
    .org 0x100000
x_vec: .space {4 * n}
y_vec: .space {4 * n}

    .text
main:
    la   r1, x_vec
    la   r2, y_vec
    li   r3, {n}
    li   r4, {a}
loop:
    ld   r5, 0(r1)
    mul  r5, r5, r4
    ld   r6, 0(r2)
    add  r6, r6, r5
    st   r6, 0(r2)
    addi r1, r1, 4
    addi r2, r2, 4
    addi r3, r3, -1
    bne  r3, r0, loop
    halt
"""


def binary_search(elements: int = 1024, probes: int = 64) -> str:
    """Repeated binary searches over a sorted array: log-depth pointer
    hopping with terrible spatial locality — the anti-streaming kernel.

    The array holds value 2*i at index i; each probe searches for an
    even value derived from a linear-congruential sequence, so every
    search succeeds and the total of found indices is checked by tests.
    """
    return f"""
    .data
    .org 0x100000
sorted: .space {4 * elements}
result: .space 8

    .text
main:
    # Fill sorted[i] = 2*i.
    la   r1, sorted
    li   r2, 0
fill:
    slli r3, r2, 1
    st   r3, 0(r1)
    addi r1, r1, 4
    addi r2, r2, 1
    li   r4, {elements}
    blt  r2, r4, fill

    li   r9, {probes}      # probes remaining
    li   r10, 17           # LCG state
    li   r11, 0            # checksum of found indices
probe:
    # target = (state * 13 + 7) mod elements, then doubled (always found).
    li   r4, 13
    mul  r10, r10, r4
    addi r10, r10, 7
    li   r4, {elements - 1}
    and  r10, r10, r4      # elements is a power of two
    slli r12, r10, 1       # target value

    li   r5, 0             # lo
    li   r6, {elements}    # hi (exclusive)
search:
    bge  r5, r6, done_probe
    add  r7, r5, r6
    srli r7, r7, 1         # mid
    slli r8, r7, 2
    la   r13, sorted
    add  r13, r13, r8
    ld   r14, 0(r13)       # sorted[mid]
    beq  r14, r12, found
    blt  r14, r12, go_right
    mv   r6, r7            # hi = mid
    j    search
go_right:
    addi r5, r7, 1         # lo = mid + 1
    j    search
found:
    add  r11, r11, r7      # checksum += index
done_probe:
    addi r9, r9, -1
    bne  r9, r0, probe
    la   r1, result
    st   r11, 0(r1)
    halt
"""


KERNELS = {
    "vector_sum": vector_sum,
    "fill_array": fill_array,
    "matmul": matmul,
    "list_traversal": list_traversal,
    "stride_walk": stride_walk,
    "saxpy": saxpy,
    "binary_search": binary_search,
}
