"""5-stage pipeline timing for mini-RISC executions.

Replays a functional execution through a simple in-order 5-stage timing
model (the R4300i/MicroSparc-II class core of Section 4.1):

- one instruction per cycle when nothing stalls;
- a 1-cycle load-use interlock when an instruction consumes the register
  a load wrote on the immediately preceding instruction;
- a 1-cycle taken-branch/jump bubble;
- instruction-fetch and data stalls from a pluggable memory model.

The memory model decides per-reference latency; :class:`CacheMemoryModel`
wires in any two :class:`repro.caches.base.Cache` objects with hit/miss
latencies, so the same timing engine covers the proposed column-buffer
device and conventional hierarchies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.caches.base import Cache
from repro.isa.cpu import ExecutionResult
from repro.isa.instructions import WORD_BYTES


class MemoryModel(Protocol):
    """Latency oracle for the pipeline timer."""

    def ifetch_cycles(self, addr: int) -> int: ...

    def data_cycles(self, addr: int, write: bool) -> int: ...


@dataclass
class FlatMemory:
    """Uniform-latency memory (1 cycle = the ideal zero-stall system)."""

    latency: int = 1  # repro: unit(cycles)

    def ifetch_cycles(self, addr: int) -> int:
        return self.latency

    def data_cycles(self, addr: int, write: bool) -> int:
        return self.latency


class CacheMemoryModel:
    """Route fetches and data through cache simulators.

    ``miss_cycles`` is the full memory access latency (e.g. 6 for the
    integrated device's DRAM array, much more for a conventional system).
    """

    def __init__(
        self,
        icache: Cache,
        dcache: Cache,
        hit_cycles: int = 1,
        miss_cycles: int = 6,
    ) -> None:
        self.icache = icache
        self.dcache = dcache
        self.hit_cycles = hit_cycles
        self.miss_cycles = miss_cycles

    def ifetch_cycles(self, addr: int) -> int:
        return self.hit_cycles if self.icache.access(addr) else self.miss_cycles

    def data_cycles(self, addr: int, write: bool) -> int:
        return self.hit_cycles if self.dcache.access(addr, write) else self.miss_cycles


@dataclass
class TimingResult:
    cycles: int
    instructions: int
    ifetch_stall_cycles: int
    data_stall_cycles: int
    interlock_cycles: int
    branch_bubble_cycles: int

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


class PipelineTimer:
    """Compute cycles for an :class:`ExecutionResult`.

    The execution must have been produced with
    ``CPU(..., keep_instruction_objects=True)`` so per-instruction operand
    information is available for interlock detection.
    """

    def run(self, result: ExecutionResult, memory: MemoryModel) -> TimingResult:
        if not result.executed:
            raise ValueError(
                "execution has no instruction objects; run the CPU with "
                "keep_instruction_objects=True"
            )
        pcs = result.instruction_trace.addresses
        data_iter = iter(
            zip(result.data_trace.addresses.tolist(),
                result.data_trace.is_write.tolist())
        )
        cycles = 0
        ifetch_stalls = 0
        data_stalls = 0
        interlocks = 0
        bubbles = 0
        previous_load_target: int | None = None
        count = len(result.executed)
        for index, instr in enumerate(result.executed):
            pc = int(pcs[index])
            fetch = memory.ifetch_cycles(pc)
            cycles += 1 + (fetch - 1)
            ifetch_stalls += fetch - 1
            if previous_load_target is not None and (
                previous_load_target in instr.reads()
            ):
                cycles += 1
                interlocks += 1
            previous_load_target = None
            if instr.is_load or instr.is_store:
                addr, write = next(data_iter)
                access = memory.data_cycles(addr, write)
                # Stores retire through the store buffer; loads stall the
                # pipeline for the full access beyond one cycle.
                if instr.is_load:
                    cycles += access - 1
                    data_stalls += access - 1
                    previous_load_target = next(iter(instr.writes()), None)
            if index + 1 < count:
                next_pc = int(pcs[index + 1])
                if (instr.is_branch or instr.is_jump) and next_pc != pc + WORD_BYTES:
                    cycles += 1
                    bubbles += 1
        return TimingResult(
            cycles=cycles,
            instructions=count,
            ifetch_stall_cycles=ifetch_stalls,
            data_stall_cycles=data_stalls,
            interlock_cycles=interlocks,
            branch_bubble_cycles=bubbles,
        )
