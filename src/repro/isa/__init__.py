"""Mini-RISC ISA: assembler, functional CPU, pipeline timing, kernels."""

from repro.isa.assembler import Assembler, Program
from repro.isa.cpu import CPU, ExecutionResult
from repro.isa.instructions import Instruction, Opcode
from repro.isa.pipeline import (
    CacheMemoryModel,
    FlatMemory,
    PipelineTimer,
    TimingResult,
)
from repro.isa.programs import (
    KERNELS,
    binary_search,
    saxpy,
    fill_array,
    list_traversal,
    matmul,
    stride_walk,
    vector_sum,
)

__all__ = [
    "Assembler",
    "CPU",
    "CacheMemoryModel",
    "ExecutionResult",
    "FlatMemory",
    "Instruction",
    "KERNELS",
    "Opcode",
    "PipelineTimer",
    "Program",
    "TimingResult",
    "binary_search",
    "fill_array",
    "saxpy",
    "list_traversal",
    "matmul",
    "stride_walk",
    "vector_sum",
]
