"""The mini-RISC instruction set.

A small SPARC-flavoured load/store ISA used as an *execution-driven* trace
source: 32 general registers (r0 hardwired to zero), 32-bit words,
register+immediate addressing, compare-and-branch.  It exists so the
cache conclusions drawn from the synthetic workload proxies can be
cross-checked against traces from real executing programs
(DESIGN.md section 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.common.errors import ConfigError

NUM_REGISTERS = 32
WORD_BYTES = 4


class Opcode(Enum):
    # Register-register ALU.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLT = "slt"  # set if less-than (signed)
    SLL = "sll"
    SRL = "srl"
    # Register-immediate ALU.
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    SLTI = "slti"
    SLLI = "slli"
    SRLI = "srli"
    LUI = "lui"  # load upper immediate (imm << 16)
    # Memory.
    LD = "ld"  # load word
    ST = "st"  # store word
    # Control.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    JAL = "jal"
    JALR = "jalr"
    HALT = "halt"
    NOP = "nop"


REG_REG_OPS = {
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.AND,
    Opcode.OR, Opcode.XOR, Opcode.SLT, Opcode.SLL, Opcode.SRL,
}
REG_IMM_OPS = {
    Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.SLTI, Opcode.SLLI,
    Opcode.SRLI,
}
BRANCH_OPS = {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE}
MEMORY_OPS = {Opcode.LD, Opcode.ST}


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    Field use by format:
    - reg-reg:   rd, rs1, rs2
    - reg-imm:   rd, rs1, imm
    - lui:       rd, imm
    - ld:        rd, imm(rs1)
    - st:        rs2, imm(rs1)   (stores rs2 to memory)
    - branch:    rs1, rs2, imm (byte offset from this instruction)
    - jal:       rd, imm (absolute byte target)
    - jalr:      rd, rs1, imm
    """

    opcode: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        for reg in (self.rd, self.rs1, self.rs2):
            if not 0 <= reg < NUM_REGISTERS:
                raise ConfigError(f"register r{reg} out of range")

    @property
    def is_load(self) -> bool:
        return self.opcode is Opcode.LD

    @property
    def is_store(self) -> bool:
        return self.opcode is Opcode.ST

    @property
    def is_branch(self) -> bool:
        return self.opcode in BRANCH_OPS

    @property
    def is_jump(self) -> bool:
        return self.opcode in (Opcode.JAL, Opcode.JALR)

    def reads(self) -> set[int]:
        """Source registers (excluding r0)."""
        op = self.opcode
        sources: set[int] = set()
        if op in REG_REG_OPS:
            sources = {self.rs1, self.rs2}
        elif op in REG_IMM_OPS or op is Opcode.LD or op is Opcode.JALR:
            sources = {self.rs1}
        elif op is Opcode.ST:
            sources = {self.rs1, self.rs2}
        elif op in BRANCH_OPS:
            sources = {self.rs1, self.rs2}
        return sources - {0}

    def writes(self) -> set[int]:
        """Destination registers (excluding r0)."""
        op = self.opcode
        if op in REG_REG_OPS or op in REG_IMM_OPS or op in (
            Opcode.LUI, Opcode.LD, Opcode.JAL, Opcode.JALR
        ):
            return {self.rd} - {0}
        return set()

    def disassemble(self) -> str:
        op = self.opcode
        if op in REG_REG_OPS:
            return f"{op.value} r{self.rd}, r{self.rs1}, r{self.rs2}"
        if op in REG_IMM_OPS:
            return f"{op.value} r{self.rd}, r{self.rs1}, {self.imm}"
        if op is Opcode.LUI:
            return f"lui r{self.rd}, {self.imm}"
        if op is Opcode.LD:
            return f"ld r{self.rd}, {self.imm}(r{self.rs1})"
        if op is Opcode.ST:
            return f"st r{self.rs2}, {self.imm}(r{self.rs1})"
        if op in BRANCH_OPS:
            return f"{op.value} r{self.rs1}, r{self.rs2}, {self.imm}"
        if op is Opcode.JAL:
            return f"jal r{self.rd}, {self.imm}"
        if op is Opcode.JALR:
            return f"jalr r{self.rd}, r{self.rs1}, {self.imm}"
        return op.value
